//! Quickstart: build a small network, open a solver session, and answer
//! a batch of failed-edge queries — first cold, then again from the warm
//! artifact cache.
//!
//! Run with: `cargo run --release -p rpaths --example quickstart`

use graphkit::alg::replacement_lengths;
use graphkit::GraphBuilder;
use rpaths_core::{Instance, Params, Query, SolverSession};

fn main() {
    // A ring of 10 routers with a few chords. Traffic flows from router 0
    // to router 5 along the shortest path.
    let n = 10;
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_bidirectional(i, (i + 1) % n);
    }
    b.add_bidirectional(1, 8);
    b.add_bidirectional(2, 6);
    let g = b.build();

    // A session binds the graph once; every query afterwards is planned
    // against its artifact cache.
    let mut session = SolverSession::new(&g, Params::for_n(n));
    let path = session.shortest_path(0, 5).expect("0 reaches 5");
    println!(
        "shortest path from 0 to 5: {:?} ({} hops)",
        path.nodes(),
        path.hops()
    );

    // The failover batch: "what does it cost if this edge fails?" for
    // every edge of the path.
    let queries: Vec<Query> = path
        .edges()
        .iter()
        .map(|&e| Query::avoiding(0, 5, e))
        .collect();
    let answers = session.solve_batch(&queries).expect("ring is connected");

    println!("\nif an edge of the path fails, the best reroute costs:");
    for (i, a) in answers.iter().enumerate() {
        println!(
            "  edge ({} -> {}): {}",
            path.node(i),
            path.node(i + 1),
            a.scaled
        );
    }
    let stats = session.stats();
    println!(
        "\ncold batch: {} queries, {} solver run(s), cache hit rate {:.0}%",
        stats.queries,
        stats.solver_runs,
        100.0 * stats.cache.hit_rate()
    );
    println!(
        "CONGEST cost: {} rounds, {} messages",
        session.metrics().rounds(),
        session.metrics().total.messages
    );

    // The same batch again: the session answers it entirely from the
    // cache — zero additional solver runs, zero additional rounds.
    let rounds_before = session.metrics().rounds();
    let again = session.solve_batch(&queries).expect("still connected");
    assert_eq!(again, answers);
    let stats = session.stats();
    assert_eq!(session.metrics().rounds(), rounds_before);
    println!(
        "warm batch: {} queries total, still {} solver run(s), cache hit rate {:.0}%",
        stats.queries,
        stats.solver_runs,
        100.0 * stats.cache.hit_rate()
    );

    // The distributed answers always match the centralized oracle.
    let inst = Instance::from_endpoints(&g, 0, 5).expect("0 reaches 5");
    let oracle = replacement_lengths(&g, &inst.path);
    for (a, want) in answers.iter().zip(&oracle) {
        assert_eq!(a.scaled, *want);
    }
    println!("\n(verified against the centralized oracle)");
}
