//! Quickstart: build a small network, run the paper's exact
//! replacement-paths algorithm, and print what each edge's failure costs.
//!
//! Run with: `cargo run --release -p rpaths --example quickstart`

use graphkit::alg::replacement_lengths;
use graphkit::GraphBuilder;
use rpaths_core::{unweighted, Instance, Params};

fn main() {
    // A ring of 10 routers with a few chords. Traffic flows from router 0
    // to router 5 along the shortest path.
    let n = 10;
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_bidirectional(i, (i + 1) % n);
    }
    b.add_bidirectional(1, 8);
    b.add_bidirectional(2, 6);
    let g = b.build();

    // The problem instance: the graph plus a validated shortest s-t path.
    let inst = Instance::from_endpoints(&g, 0, 5).expect("0 reaches 5");
    println!(
        "shortest path from 0 to 5: {:?} ({} hops)",
        inst.path.nodes(),
        inst.hops()
    );

    // Solve RPaths with the paper's defaults (ζ = n^{2/3}).
    let params = Params::for_instance(&inst);
    let out = unweighted::solve(&inst, &params).expect("ring is connected");

    println!("\nif an edge of the path fails, the best reroute costs:");
    for (i, len) in out.replacement.iter().enumerate() {
        println!(
            "  edge ({} -> {}): {}",
            inst.path.node(i),
            inst.path.node(i + 1),
            len
        );
    }
    println!("\nsecond simple shortest path (2-SiSP): {}", out.sisp());
    println!(
        "CONGEST cost: {} rounds, {} messages",
        out.metrics.rounds(),
        out.metrics.total.messages
    );

    // The distributed answers always match the centralized oracle.
    assert_eq!(out.replacement, replacement_lengths(&g, &inst.path));
    println!("\n(verified against the centralized oracle)");
}
