//! Warm starts from a snapshot file: solve once, persist the graph and
//! the solver's artifacts with `rpaths-store`, then reload and answer
//! without re-running the CONGEST protocols.
//!
//! Also demonstrates the degraded-load contract: a flipped byte inside
//! an artifact section drops *that artifact* — the graph still loads,
//! and the caller recomputes only what was lost.
//!
//! Run with: `cargo run --release -p rpaths --example snapshot_warmstart`

use congest::bfs_tree::build_bfs_tree;
use congest::Network;
use graphkit::gen::metro_ring;
use rpaths_core::artifacts::{dists_artifact, dists_from, tree_artifact, tree_from};
use rpaths_core::{unweighted, Instance, Params};
use rpaths_store::Loaded;

fn main() {
    let path = std::env::temp_dir().join("rpaths_warmstart.snap");
    let g = metro_ring(12);

    // --- Cold start: pay the full distributed solve -------------------
    let inst = Instance::from_endpoints(&g, 0, 6).expect("ring is connected");
    let params = Params::for_instance(&inst);
    let out = unweighted::solve(&inst, &params).expect("solve");
    let mut net = Network::new(&g);
    let (tree, _) = build_bfs_tree(&mut net, 0).expect("spanning tree");
    println!(
        "cold start: solved in {} CONGEST rounds ({} messages), BFS tree height {}",
        out.metrics.rounds(),
        out.metrics.total.messages,
        tree.height
    );

    // Persist everything a warm start needs in one crash-safe file.
    rpaths_core::artifacts::save(
        &path,
        &g,
        vec![
            tree_artifact("bfs/root-0", &tree),
            dists_artifact("rpaths/0-6", &out.replacement),
        ],
    )
    .expect("write snapshot");
    let file_len = std::fs::metadata(&path).expect("stat").len();
    println!("snapshot: {} bytes at {}", file_len, path.display());

    // --- Warm start: reload, zero protocol rounds ---------------------
    let snap = rpaths_core::artifacts::load(&path)
        .expect("read snapshot")
        .expect_complete("warm start");
    let warm_tree = tree_from(&snap.artifacts[0]).expect("tree artifact");
    let warm_dists = dists_from(&snap.artifacts[1]).expect("dists artifact");
    assert_eq!(warm_dists, out.replacement);
    assert_eq!(warm_tree.depth, tree.depth);
    println!(
        "warm start: graph ({} nodes), tree, and {} replacement lengths \
         recovered in 0 CONGEST rounds",
        snap.graph.node_count(),
        warm_dists.len()
    );

    // --- Degraded load: artifact corruption is survivable -------------
    let mut bytes = std::fs::read(&path).expect("read back");
    let idx = bytes.len() - 20; // inside the dists artifact's payload
    bytes[idx] ^= 0xff;
    std::fs::write(&path, &bytes).expect("rewrite corrupted");
    match rpaths_core::artifacts::load(&path).expect("read corrupted") {
        Loaded::Partial {
            recovered, dropped, ..
        } => {
            println!(
                "corrupted snapshot: graph still loads ({} nodes); {} artifact(s) \
                 dropped:",
                recovered.graph.node_count(),
                dropped.len()
            );
            for d in &dropped {
                println!("  section {} (tag {}): {}", d.section, d.tag, d.error);
            }
            // Recompute only what was lost, from the recovered graph.
            let inst = Instance::from_endpoints(&recovered.graph, 0, 6).expect("still a ring");
            let again = unweighted::solve(&inst, &Params::for_instance(&inst)).expect("re-solve");
            assert_eq!(again.replacement, out.replacement);
            println!("recomputed the dropped answers from the recovered graph");
        }
        other => panic!("expected a partial load, got {other:?}"),
    }

    let _ = std::fs::remove_file(&path);
}
