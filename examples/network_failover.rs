//! Network-reliability scenario: a backbone link carries traffic along a
//! long primary route; parallel "protection" fiber runs beside it with
//! cross-connects every few points of presence. RPaths answers, for every
//! primary link, how expensive the reroute is if that link is cut — and
//! the per-link answers identify unprotected spans.
//!
//! The topology deliberately exercises the *long-detour* machinery: the
//! protection fiber is longer than the short-detour threshold ζ, so the
//! landmark pipeline of Section 5 does the work.
//!
//! Run with: `cargo run --release -p rpaths-bench --example network_failover`

use graphkit::gen::parallel_lane;
use graphkit::Dist;
use rpaths_core::{unweighted, Instance, Params};

fn main() {
    // 48 PoPs on the primary route; protection fiber with cross-connects
    // every 6 PoPs, running at 2x the hop cost (older, longer spans).
    let (g, s, t) = parallel_lane(48, 6, 2);
    let inst = Instance::from_endpoints(&g, s, t).expect("valid route");
    println!(
        "primary route: {} PoPs, {} links; network has {} nodes",
        inst.hops() + 1,
        inst.hops(),
        inst.n()
    );

    // ζ = n^{2/3}; here the protection detours have 2 + 6·2 = 14 hops,
    // longer than ζ = 27? n = 145 -> ζ = 28, so detours are "short".
    // Shrink ζ to put them firmly in the long-detour regime instead:
    let mut params = Params::with_zeta(inst.n(), 8);
    params.landmark_prob = 0.6;
    let out = unweighted::solve(&inst, &params);

    println!(
        "\nfailover cost per primary link (primary route costs {}):",
        inst.hops()
    );
    let mut worst = (0, Dist::ZERO);
    for (i, &len) in out.replacement.iter().enumerate() {
        if let Some(v) = len.finite() {
            if Dist::new(v) > worst.1 {
                worst = (i, Dist::new(v));
            }
        }
        let bar_len = len.finite().unwrap_or(0).min(70) as usize;
        println!(
            "  link {:>2}: {:>4}  {}",
            i,
            len,
            "#".repeat(bar_len.saturating_sub(40))
        );
    }
    println!(
        "\nworst-protected link: {} (reroute costs {}, +{} over primary)",
        worst.0,
        worst.1,
        worst.1.finite().unwrap_or(0) as i64 - inst.hops() as i64
    );
    println!(
        "computed distributedly in {} CONGEST rounds",
        out.metrics.rounds()
    );

    let oracle = graphkit::alg::replacement_lengths(&g, &inst.path);
    assert_eq!(out.replacement, oracle, "distributed ≠ centralized");
    println!("(verified against the centralized oracle)");
}
