//! Network-reliability scenario: a backbone link carries traffic along a
//! long primary route; parallel "protection" fiber runs beside it with
//! cross-connects every few points of presence. RPaths answers, for every
//! primary link, how expensive the reroute is if that link is cut — and
//! the per-link answers identify unprotected spans.
//!
//! The topology deliberately exercises the *long-detour* machinery: the
//! protection fiber is longer than the short-detour threshold ζ, so the
//! landmark pipeline of Section 5 does the work.
//!
//! The second half simulates a *catastrophic* failure that partitions the
//! network: the control plane must detect the partition as a recoverable
//! error (no aborts) and report which side of the cut it can still see.
//!
//! Run with: `cargo run --release -p rpaths --example network_failover`

use congest::bfs_tree::{build_bfs_tree, TreeError};
use congest::Network;
use graphkit::gen::parallel_lane;
use graphkit::{Dist, GraphBuilder};
use rpaths_core::{reachability, unweighted, Instance, Params};

fn main() {
    // 48 PoPs on the primary route; protection fiber with cross-connects
    // every 6 PoPs, running at 2x the hop cost (older, longer spans).
    let (g, s, t) = parallel_lane(48, 6, 2);
    let inst = Instance::from_endpoints(&g, s, t).expect("valid route");
    println!(
        "primary route: {} PoPs, {} links; network has {} nodes",
        inst.hops() + 1,
        inst.hops(),
        inst.n()
    );

    // ζ = n^{2/3}; here the protection detours have 2 + 6·2 = 14 hops,
    // longer than ζ = 27? n = 145 -> ζ = 28, so detours are "short".
    // Shrink ζ to put them firmly in the long-detour regime instead:
    let mut params = Params::with_zeta(inst.n(), 8);
    params.landmark_prob = 0.6;
    let out = unweighted::solve(&inst, &params).expect("backbone is connected");

    println!(
        "\nfailover cost per primary link (primary route costs {}):",
        inst.hops()
    );
    let mut worst = (0, Dist::ZERO);
    for (i, &len) in out.replacement.iter().enumerate() {
        if let Some(v) = len.finite() {
            if Dist::new(v) > worst.1 {
                worst = (i, Dist::new(v));
            }
        }
        let bar_len = len.finite().unwrap_or(0).min(70) as usize;
        println!(
            "  link {:>2}: {:>4}  {}",
            i,
            len,
            "#".repeat(bar_len.saturating_sub(40))
        );
    }
    println!(
        "\nworst-protected link: {} (reroute costs {}, +{} over primary)",
        worst.0,
        worst.1,
        worst.1.finite().unwrap_or(0) as i64 - inst.hops() as i64
    );
    println!(
        "computed distributedly in {} CONGEST rounds",
        out.metrics.rounds()
    );

    let oracle = graphkit::alg::replacement_lengths(&g, &inst.path);
    assert_eq!(out.replacement, oracle, "distributed ≠ centralized");
    println!("(verified against the centralized oracle)");

    // The same answers drive survivability reporting: which links have
    // *no* reroute at all?
    let reach = reachability::solve(&inst, &params).expect("backbone is connected");
    println!(
        "\nsurvivability: {} of {} links protected, SPOFs: {:?}",
        reach.survivable.iter().filter(|&&b| b).count(),
        reach.survivable.len(),
        reach.single_points_of_failure()
    );

    // ------------------------------------------------------------------
    // Catastrophic failure: a fiber cut severs every link between two
    // halves of a metro ring, partitioning the network. Global protocols
    // cannot run — the control plane must see a *recoverable* error and
    // report the partition instead of crashing.
    // ------------------------------------------------------------------
    println!("\n=== catastrophic fiber cut: partitioned metro ring ===");
    let half = 12usize;
    let mut b = GraphBuilder::new(2 * half);
    for i in 0..half - 1 {
        // West ring segment (nodes 0..half), east segment (half..2·half);
        // the inter-segment links are the ones the cut severed.
        b.add_bidirectional(i, i + 1);
        b.add_bidirectional(half + i, half + i + 1);
    }
    let cut_ring = b.build();
    let mut net = Network::new(&cut_ring);
    match build_bfs_tree(&mut net, 0) {
        Ok(_) => unreachable!("the cut severed the ring"),
        Err(TreeError::Disconnected {
            joined,
            total,
            witness,
        }) => {
            println!(
                "partition detected: control plane at PoP 0 reaches {joined} of \
                 {total} PoPs (first unreachable: PoP {witness})"
            );
            println!("-> degraded mode: serving the west segment only, paging ops");
        }
        Err(e) => panic!("unexpected engine failure: {e}"),
    }
    // The instance layer refuses partitioned communication graphs too —
    // also recoverably.
    match Instance::from_endpoints(&cut_ring, 0, half - 1) {
        Ok(_) => println!("note: route stayed within one segment"),
        Err(e) => println!("instance-level report: {e}"),
    }
    println!("(partition handled without aborting)");
}
