//! Network-reliability scenario: a backbone link carries traffic along a
//! long primary route; parallel "protection" fiber runs beside it with
//! cross-connects every few points of presence. RPaths answers, for every
//! primary link, how expensive the reroute is if that link is cut — and
//! the per-link answers identify unprotected spans.
//!
//! The topology deliberately exercises the *long-detour* machinery: the
//! protection fiber is longer than the short-detour threshold ζ, so the
//! landmark pipeline of Section 5 does the work.
//!
//! The second half injects a scripted outage into a metro ring with a
//! seeded `FaultPlan` — a PoP crashes and restarts, a fiber span flaps
//! messages away, and one span is cut for good — and shows the control
//! plane detecting the damage distributedly, then re-solving in degraded
//! mode around the surviving topology.
//!
//! Run with: `cargo run --release -p rpaths --example network_failover`

use congest::bfs_tree::build_bfs_tree;
use congest::{FaultPlan, Network};
use graphkit::gen::{metro_ring, parallel_lane};
use graphkit::Dist;
use rpaths_core::resilient::{solve_with_recovery, Recovery, RecoveryPolicy, Unweighted};
use rpaths_core::{reachability, unweighted, Instance, Params};

fn main() {
    // 48 PoPs on the primary route; protection fiber with cross-connects
    // every 6 PoPs, running at 2x the hop cost (older, longer spans).
    let (g, s, t) = parallel_lane(48, 6, 2);
    let inst = Instance::from_endpoints(&g, s, t).expect("valid route");
    println!(
        "primary route: {} PoPs, {} links; network has {} nodes",
        inst.hops() + 1,
        inst.hops(),
        inst.n()
    );

    // ζ = n^{2/3}; here the protection detours have 2 + 6·2 = 14 hops,
    // longer than ζ = 27? n = 145 -> ζ = 28, so detours are "short".
    // Shrink ζ to put them firmly in the long-detour regime instead:
    let mut params = Params::with_zeta(inst.n(), 8);
    params.landmark_prob = 0.6;
    let out = unweighted::solve(&inst, &params).expect("backbone is connected");

    println!(
        "\nfailover cost per primary link (primary route costs {}):",
        inst.hops()
    );
    let mut worst = (0, Dist::ZERO);
    for (i, &len) in out.replacement.iter().enumerate() {
        if let Some(v) = len.finite() {
            if Dist::new(v) > worst.1 {
                worst = (i, Dist::new(v));
            }
        }
        let bar_len = len.finite().unwrap_or(0).min(70) as usize;
        println!(
            "  link {:>2}: {:>4}  {}",
            i,
            len,
            "#".repeat(bar_len.saturating_sub(40))
        );
    }
    println!(
        "\nworst-protected link: {} (reroute costs {}, +{} over primary)",
        worst.0,
        worst.1,
        worst.1.finite().unwrap_or(0) as i64 - inst.hops() as i64
    );
    println!(
        "computed distributedly in {} CONGEST rounds",
        out.metrics.rounds()
    );

    let oracle = graphkit::alg::replacement_lengths(&g, &inst.path);
    assert_eq!(out.replacement, oracle, "distributed ≠ centralized");
    println!("(verified against the centralized oracle)");

    // The same answers drive survivability reporting: which links have
    // *no* reroute at all?
    let reach = reachability::solve(&inst, &params).expect("backbone is connected");
    println!(
        "\nsurvivability: {} of {} links protected, SPOFs: {:?}",
        reach.survivable.iter().filter(|&&b| b).count(),
        reach.survivable.len(),
        reach.single_points_of_failure()
    );

    // ------------------------------------------------------------------
    // Scripted outage on a metro ring: PoP 6 crashes at round 2 and is
    // restarted at round 30; the span between PoPs 2 and 3 (span 2 =
    // links 4 and 5) is cut permanently; flaky hardware drops 2% of
    // messages. All deterministic from one seed.
    // ------------------------------------------------------------------
    println!("\n=== scripted outage: crash, restart, and a severed span ===");
    let pops = 24;
    let ring = metro_ring(pops);
    let plan = FaultPlan::new(0xc0ffee)
        .crash_node(6, 2, Some(30))
        .fail_link(4, 0, None)
        .fail_link(5, 0, None)
        .drop_messages(0.02);

    // Live detection: the control plane at PoP 0 floods a BFS tree under
    // the outage. While PoP 6 is dark the tree cannot span; each retry
    // re-anchors the plan to the rounds already burned, and the build
    // succeeds once the PoP restarts.
    let mut net = Network::new(&ring);
    net.set_fault_plan(Some(plan.clone()));
    let mut probes = 0;
    loop {
        probes += 1;
        match build_bfs_tree(&mut net, 0) {
            Ok(_) => break,
            Err(e) => println!("  probe {probes}: {e}"),
        }
        assert!(probes < 16, "the outage script recovers by round 30");
        net.set_fault_plan(Some(plan.shifted(net.metrics().rounds())));
    }
    let faults = net.metrics().faults;
    println!(
        "partition healed: probe {probes} spanned after {} rounds \
         ({} crash-dropped, {} link-dropped, {} randomly dropped messages)",
        net.metrics().rounds(),
        faults.dropped_node_down,
        faults.dropped_link_down,
        faults.dropped_random,
    );

    // Degraded solve: the crash recovered but the severed span did not.
    // The recovery wrapper re-poses the 0 -> 12 demand on the surviving
    // ring and answers along the long way round.
    let rec = solve_with_recovery::<Unweighted>(
        &ring,
        0,
        pops / 2,
        &plan,
        &Params::for_n(pops),
        &RecoveryPolicy::default(),
    )
    .expect("the ring survives a single severed span");
    match rec {
        Recovery::Full { .. } => unreachable!("span 2 is down for good"),
        Recovery::Degraded(d) => {
            let route = d.path.expect("ring minus one span stays connected");
            println!(
                "degraded solve: rerouted 0 -> {} over {} hops ({} unreachable PoPs, \
                 {} solve attempt(s))",
                pops / 2,
                route.len() - 1,
                d.unreachable.len(),
                d.attempts,
            );
            println!("  surviving route: {route:?}");
            let answers = d.answered.expect("demand survives the outage");
            let protected = answers.iter().filter(|a| a.is_finite()).count();
            println!(
                "  on the degraded ring, {protected} of {} route links still have a reroute",
                answers.len()
            );
        }
    }
    println!("(outage handled without aborting)");
}
