//! Transportation scenario with *weighted* roads: travel times differ per
//! segment, so the weighted `(1+ε)`-approximate algorithm of Theorem 3 is
//! the right tool. A dispatch desk fields many "segment X just closed —
//! how bad is the detour?" queries against the same city map, which is
//! exactly the workload a [`SolverSession`] batches: one warm session
//! answers the whole sweep with a single solver run.
//!
//! Run with: `cargo run --release -p rpaths --example transport_rerouting`

use graphkit::alg::replacement_lengths;
use graphkit::GraphBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpaths_core::{Instance, Params, Query, SolverSession};

fn main() {
    // A weighted grid city: 6x9 intersections, eastbound and southbound
    // one-way streets with travel times 1..=9 minutes, plus a few
    // two-way arterials.
    let (rows, cols) = (6, 9);
    let mut rng = StdRng::seed_from_u64(2026);
    let mut b = GraphBuilder::new(rows * cols);
    let at = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(at(r, c), at(r, c + 1), rng.gen_range(1..=9));
            }
            if r + 1 < rows {
                b.add_edge(at(r, c), at(r + 1, c), rng.gen_range(1..=9));
            }
        }
    }
    // Two-way arterials back west/north so detours can loop.
    for r in 0..rows {
        b.add_edge(at(r, cols - 1), at(r, 0), 12);
    }
    for c in 0..cols {
        b.add_edge(at(rows - 1, c), at(0, c), 12);
    }
    let g = b.build();

    let (s, t) = (at(0, 0), at(rows - 1, cols - 1));

    // ε = 1/4: answers within 25% of optimal, guaranteed.
    let mut params = Params::for_n(g.node_count()).with_eps(1, 4);
    params.landmark_prob = 1.0; // city-scale n: make w.h.p. a certainty
    let mut session = SolverSession::new(&g, params.clone());

    let route = session.shortest_path(s, t).expect("route exists");
    println!(
        "best route {} -> {}: {} minutes over {} segments",
        s,
        t,
        route.length(&g),
        route.hops()
    );

    // The dispatch sweep: one closure query per segment of the route.
    let queries: Vec<Query> = route
        .edges()
        .iter()
        .map(|&e| Query::avoiding(s, t, e))
        .collect();
    let answers = session
        .solve_batch(&queries)
        .expect("city grid is connected");

    println!("\nif a segment closes, the reroute takes about:");
    for (i, a) in answers.iter().enumerate() {
        println!(
            "  segment {:>2} ({} -> {}): {:>6.1} min",
            i,
            route.node(i),
            route.node(i + 1),
            a.value()
        );
    }
    let stats = session.stats();
    println!(
        "\ncomputed in {} CONGEST rounds with ε = {}: {} queries, {} solver run(s)",
        session.metrics().rounds(),
        params.eps(),
        stats.queries,
        stats.solver_runs,
    );

    // Rush hour: the same closures get re-queried (plus some segments
    // that were never on the best route, answered from the route alone).
    let mut rush: Vec<Query> = queries.clone();
    rush.push(Query::intact(s, t));
    let rounds_before = session.metrics().rounds();
    let rush_answers = session.solve_batch(&rush).expect("still connected");
    assert_eq!(&rush_answers[..queries.len()], &answers[..]);
    let stats = session.stats();
    println!(
        "warm re-query: zero new rounds ({} still), cache hit rate {:.0}%",
        session.metrics().rounds() - rounds_before,
        100.0 * stats.cache.hit_rate()
    );

    // The (1+ε) guarantee, checked in exact rational arithmetic against
    // the one-shot solver's output (bit-identical to the session's).
    let inst = Instance::from_endpoints(&g, s, t).expect("route exists");
    let out = rpaths_core::weighted::solve(&inst, &params).expect("city grid is connected");
    let oracle = replacement_lengths(&g, &inst.path);
    out.check_guarantee(&oracle, params.eps_num, params.eps_den)
        .expect("Theorem 3 guarantee");
    for (a, x) in answers.iter().zip(&out.scaled) {
        assert_eq!(a.scaled, *x, "session and one-shot answers agree");
        assert_eq!(a.den, out.den);
    }
    println!("(all estimates verified within (1+ε) of the exact optimum)");
}
