//! Transportation scenario with *weighted* roads: travel times differ per
//! segment, so the weighted `(1+ε)`-approximate algorithm of Theorem 3 is
//! the right tool. For every segment of the best route we get a
//! guaranteed-within-(1+ε) estimate of the detour cost if that segment
//! closes.
//!
//! Run with: `cargo run --release -p rpaths --example transport_rerouting`

use graphkit::alg::replacement_lengths;
use graphkit::GraphBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpaths_core::{weighted, Instance, Params};

fn main() {
    // A weighted grid city: 6x9 intersections, eastbound and southbound
    // one-way streets with travel times 1..=9 minutes, plus a few
    // two-way arterials.
    let (rows, cols) = (6, 9);
    let mut rng = StdRng::seed_from_u64(2026);
    let mut b = GraphBuilder::new(rows * cols);
    let at = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(at(r, c), at(r, c + 1), rng.gen_range(1..=9));
            }
            if r + 1 < rows {
                b.add_edge(at(r, c), at(r + 1, c), rng.gen_range(1..=9));
            }
        }
    }
    // Two-way arterials back west/north so detours can loop.
    for r in 0..rows {
        b.add_edge(at(r, cols - 1), at(r, 0), 12);
    }
    for c in 0..cols {
        b.add_edge(at(rows - 1, c), at(0, c), 12);
    }
    let g = b.build();

    let (s, t) = (at(0, 0), at(rows - 1, cols - 1));
    let inst = Instance::from_endpoints(&g, s, t).expect("route exists");
    let base = inst.suffix[0];
    println!(
        "best route {} -> {}: {} minutes over {} segments",
        s,
        t,
        base,
        inst.hops()
    );

    // ε = 1/4: answers within 25% of optimal, guaranteed.
    let mut params = Params::for_instance(&inst).with_eps(1, 4);
    params.landmark_prob = 1.0; // city-scale n: make w.h.p. a certainty
    let out = weighted::solve(&inst, &params).expect("city grid is connected");
    let est = out.values();

    println!("\nif a segment closes, the reroute takes about:");
    for (i, v) in est.iter().enumerate() {
        println!(
            "  segment {:>2} ({} -> {}): {:>6.1} min",
            i,
            inst.path.node(i),
            inst.path.node(i + 1),
            v
        );
    }
    println!(
        "\ncomputed in {} CONGEST rounds with ε = {}",
        out.metrics.rounds(),
        params.eps()
    );

    // The (1+ε) guarantee, checked in exact rational arithmetic:
    let oracle = replacement_lengths(&g, &inst.path);
    out.check_guarantee(&oracle, params.eps_num, params.eps_den)
        .expect("Theorem 3 guarantee");
    println!("(all estimates verified within (1+ε) of the exact optimum)");
}
