//! Primer: writing your own CONGEST protocol against the `congest`
//! engine.
//!
//! The engine gives you exactly what the model gives a distributed
//! algorithm: per-round inboxes, one `O(log n)`-bit message per link
//! direction per round (enforced — overdo it and the engine panics),
//! and free local computation. This example implements *leader
//! election by id-flooding* from scratch and cross-checks the round
//! count against the graph's diameter.
//!
//! Run with: `cargo run --release -p rpaths --example congest_primer`

use congest::{Network, NodeCtx, Protocol, Scheduling};
use graphkit::gen::random_digraph;

/// Every node floods the largest node id it has heard; after `D` rounds
/// everyone agrees on the maximum id — the leader.
struct LeaderElection {
    best: Vec<u64>,
}

impl Protocol for LeaderElection {
    type Msg = u64;

    fn msg_bits(&self, id: &u64) -> u64 {
        congest::word_bits(*id)
    }

    fn on_round(&mut self, ctx: &mut NodeCtx<'_, u64>) {
        let v = ctx.node;
        // Round 0: announce yourself. Later: forward improvements only —
        // that is what keeps the message count at O(m·D) worst case and
        // the protocol quiescent once opinions stabilize.
        let mut improved = ctx.round == 0;
        for &(_, id) in ctx.inbox() {
            if id > self.best[v] {
                self.best[v] = id;
                improved = true;
            }
        }
        if improved {
            for p in 0..ctx.ports().len() as u32 {
                ctx.send(p, self.best[v]);
            }
        }
    }

    // Opinions only change on receipt, so the engine can skip settled
    // nodes: with the active-set schedule, simulation cost tracks the
    // number of opinion changes instead of n · rounds.
    fn scheduling(&self) -> Scheduling {
        Scheduling::ActiveSet
    }
}

fn main() {
    let n = 200;
    let g = random_digraph(n, 3 * n, 2026);
    let mut net = Network::new(&g);
    println!("network: {net:?}");

    let mut proto = LeaderElection {
        best: (0..n as u64).collect(), // node v's id is v
    };
    let stats = net
        .run_until_quiet("leader-election", &mut proto, 10 * n as u64)
        .expect("flooding quiesces");

    let leader = proto.best[0];
    assert!(proto.best.iter().all(|&b| b == leader), "disagreement!");
    println!(
        "elected leader {leader} in {} rounds ({} messages, {} bits)",
        stats.rounds, stats.messages, stats.bits
    );

    let diameter = graphkit::alg::undirected_diameter(&g).expect("connected");
    println!("undirected diameter D = {diameter}; flooding needs ≥ D and ≤ D+2 rounds");
    assert!(stats.rounds as usize >= diameter);
    assert!(stats.rounds as usize <= diameter + 2);

    // The engine accounts everything; a phase log accumulates across
    // protocol runs on the same network:
    println!("\nmetrics log:\n{}", net.metrics());
}
