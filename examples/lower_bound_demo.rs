//! Why replacement paths are *hard*: the Section 6 lower bound, live.
//!
//! Alice knows a bit vector `x`, Bob knows `y`. They embed their inputs
//! into the graph `G(k, d, p, φ, M, x)` — Alice by deleting escape edges,
//! Bob by orienting a complete bipartite graph — and then any algorithm
//! that computes the second simple shortest path (2-SiSP) tells them
//! whether their sets intersect. Since set disjointness needs `k²` bits
//! of communication and the construction only offers an `O(d·p·log n)`
//! bit/round channel between the two sides, 2-SiSP needs
//! `eΩ(n^{2/3})` rounds.
//!
//! Run with: `cargo run --release -p rpaths --example lower_bound_demo`

use rpaths_lb::disjointness::{implied_round_lower_bound, run_reduction};

fn main() {
    let (k, d, p) = (3usize, 2usize, 3usize);
    // Alice's set: {0, 3, 7}; Bob's set: {1, 3, 8} — they intersect at 3.
    let mut x = vec![false; k * k];
    for i in [0, 3, 7] {
        x[i] = true;
    }
    let mut y = vec![false; k * k];
    for i in [1, 3, 8] {
        y[i] = true;
    }

    println!("Alice's x: {}", bits(&x));
    println!("Bob's   y: {}", bits(&y));

    let out = run_reduction(k, d, p, &x, &y, 1);
    println!(
        "\nconstruction: n = {} vertices; the bipartite orientations encode Bob's {} bits",
        out.n, out.bob_bits
    );
    println!(
        "distributed 2-SiSP answered {} (threshold: {} = sets intersect)",
        if out.sisp_raw == u64::MAX {
            "∞".to_string()
        } else {
            out.sisp_raw.to_string()
        },
        out.good_length
    );
    println!(
        "decoded disj(x, y) = {} — ground truth: {}",
        out.disjoint, out.expected_disjoint
    );
    assert_eq!(out.disjoint, out.expected_disjoint);

    println!(
        "\nthe solver needed {} rounds and moved {} bits across the Alice/Bob cut",
        out.rounds, out.cut_bits
    );
    println!(
        "(it HAD to move at least {} — Bob's whole input is decision-relevant)",
        out.bob_bits
    );
    assert!(out.cut_bits >= out.bob_bits);

    // Now the disjoint case: flip Bob's bit 3 off.
    y[3] = false;
    let out2 = run_reduction(k, d, p, &x, &y, 2);
    println!(
        "\nafter removing 3 from Bob's set: 2-SiSP = {}, decoded disjoint = {}",
        if out2.sisp_raw == u64::MAX {
            "∞".to_string()
        } else {
            out2.sisp_raw.to_string()
        },
        out2.disjoint
    );
    assert!(out2.disjoint && out2.expected_disjoint);

    println!(
        "\nimplied round lower bound at this size (B = 32): {:.2} rounds;",
        implied_round_lower_bound(k, d, p, 32)
    );
    println!("scaling k² = dᵖ upward, this grows as n^(2/3) / (B·log n) — Theorem 2.");
}

fn bits(v: &[bool]) -> String {
    v.iter().map(|&b| if b { '1' } else { '0' }).collect()
}
