//! Cross-crate integration: Theorem 1 and both baselines against the
//! centralized oracle, across every generator family and across the
//! short/long detour regimes.

use graphkit::alg::replacement_lengths;
use graphkit::gen::{grid, layered_dag, parallel_lane, planted_path_digraph, random_digraph};
use graphkit::Dist;
use rpaths_core::{baseline, unweighted, Instance, Params};

fn exact_params(n: usize, zeta: usize, seed: u64) -> Params {
    // Full landmarks: turn "w.h.p." into certainty on test-sized graphs
    // so any failure is an algorithm bug, not sampling luck.
    let mut p = Params::with_zeta(n, zeta).with_seed(seed);
    p.landmark_prob = 1.0;
    p
}

fn check_all_solvers(g: &graphkit::DiGraph, s: usize, t: usize, zeta: usize, seed: u64) {
    let inst = Instance::from_endpoints(g, s, t).expect("valid instance");
    let oracle = replacement_lengths(g, &inst.path);
    let params = exact_params(inst.n(), zeta, seed);

    let ours = unweighted::solve(&inst, &params).unwrap();
    assert_eq!(ours.replacement, oracle, "theorem1 mismatch");

    let mr = baseline::mr24::solve(&inst, &params).unwrap();
    assert_eq!(mr.replacement, oracle, "mr24 mismatch");

    let naive = baseline::naive::solve(&inst, &params).unwrap();
    assert_eq!(naive.replacement, oracle, "naive mismatch");
}

#[test]
fn all_solvers_agree_on_random_instances() {
    for seed in 0..6 {
        let (g, s, t) = planted_path_digraph(60, 18, 180, seed);
        check_all_solvers(&g, s, t, 6, seed);
    }
}

#[test]
fn all_solvers_agree_on_lane_long_regime() {
    // Detours of 2 + 8·2 = 18 hops, ζ = 5: pure long-detour regime.
    let (g, s, t) = parallel_lane(24, 8, 2);
    check_all_solvers(&g, s, t, 5, 1);
}

#[test]
fn all_solvers_agree_on_lane_short_regime() {
    // Detours of 4 hops, ζ = 10: pure short-detour regime.
    let (g, s, t) = parallel_lane(24, 2, 1);
    check_all_solvers(&g, s, t, 10, 2);
}

#[test]
fn all_solvers_agree_on_structured_graphs() {
    let (g, s, t) = grid(6, 7);
    check_all_solvers(&g, s, t, 5, 3);
    let (g, s, t) = layered_dag(10, 5, 80, 4);
    check_all_solvers(&g, s, t, 4, 4);
}

#[test]
fn zeta_boundary_cases() {
    let (g, s, t) = parallel_lane(12, 3, 1); // detours of exactly 5 hops
    let inst = Instance::from_endpoints(&g, s, t).unwrap();
    let oracle = replacement_lengths(&g, &inst.path);
    // ζ exactly at, below, and above the detour length.
    for zeta in [4, 5, 6] {
        let out = unweighted::solve(&inst, &exact_params(inst.n(), zeta, 9)).unwrap();
        assert_eq!(out.replacement, oracle, "zeta = {zeta}");
    }
}

#[test]
fn unreachable_replacements_are_infinite_everywhere() {
    // Lane with a single protection span: cutting outside it is fatal.
    let (g, s, t) = parallel_lane(9, 9, 1);
    let inst = Instance::from_endpoints(&g, s, t).unwrap();
    let oracle = replacement_lengths(&g, &inst.path);
    let out = unweighted::solve(&inst, &exact_params(inst.n(), 4, 5)).unwrap();
    assert_eq!(out.replacement, oracle);
    assert!(out.replacement.iter().all(|d| d.is_finite()));

    // Pure path: no replacement exists at all.
    let (g2, s2, t2) = planted_path_digraph(10, 9, 0, 0);
    let inst2 = Instance::from_endpoints(&g2, s2, t2).unwrap();
    let out2 = unweighted::solve(&inst2, &exact_params(inst2.n(), 4, 6)).unwrap();
    assert!(out2.replacement.iter().all(|&d| d == Dist::INF));
}

#[test]
fn default_sampling_rate_works_on_midsize_instance() {
    // Paper defaults (ζ = n^{2/3}, landmark_prob = c·ln n / ζ): exercises
    // the actual randomized configuration rather than full landmarks.
    let (g, s, t) = planted_path_digraph(300, 80, 900, 12);
    let inst = Instance::from_endpoints(&g, s, t).unwrap();
    let params = Params::for_instance(&inst).with_seed(1);
    let out = unweighted::solve(&inst, &params).unwrap();
    assert_eq!(out.replacement, replacement_lengths(&g, &inst.path));
}

#[test]
fn arbitrary_random_digraphs_via_extracted_paths() {
    for seed in 0..4 {
        let g = random_digraph(70, 200, seed);
        let Some((s, t)) = graphkit::gen::random_reachable_pair(&g, seed) else {
            continue;
        };
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        if inst.hops() < 2 {
            continue;
        }
        let out = unweighted::solve(&inst, &exact_params(inst.n(), 6, seed)).unwrap();
        assert_eq!(
            out.replacement,
            replacement_lengths(&g, &inst.path),
            "seed {seed}"
        );
    }
}

#[test]
fn theorem1_beats_mr24_when_h_is_large() {
    // The headline: same instance, h_st = Θ(n), our rounds ≪ MR24 rounds.
    let h = 160;
    let (g, s, t) = parallel_lane(h, 8, 3);
    let inst = Instance::from_endpoints(&g, s, t).unwrap();
    let n = inst.n();
    let mut params = Params::for_n(n).with_seed(4);
    params.landmark_prob = ((n as f64).ln() / params.zeta as f64).min(1.0);
    let ours = unweighted::solve(&inst, &params).unwrap();
    let mr = baseline::mr24::solve(&inst, &params).unwrap();
    let oracle = replacement_lengths(&g, &inst.path);
    assert_eq!(ours.replacement, oracle);
    assert_eq!(mr.replacement, oracle);
    assert!(
        ours.metrics.rounds() < mr.metrics.rounds(),
        "ours {} !< mr24 {}",
        ours.metrics.rounds(),
        mr.metrics.rounds()
    );
}
