//! Differential property tests for the active-set round engine and its
//! sharded-parallel execution path.
//!
//! The engine's activation contract (`Protocol::scheduling`), flat
//! mailbox arenas, and sharded parallelism are wall-clock optimizations
//! only: for every protocol in the workspace, an active-set run must
//! produce *bit-identical* [`congest::RunStats`] (rounds, messages,
//! bits, cut bits, max message size) and identical outputs to the
//! full-sweep reference schedule (`Network::set_full_sweep`), and a
//! parallel run must be bit-identical to a sequential one at every
//! thread count. These tests drive all five communication primitives,
//! the Lemma 4.2 hop-BFS, and the end-to-end Theorem 1 solver across
//! random topologies under both schedules, run every migrated
//! sharded protocol through the full
//! `{sequential, 2 threads, 8 threads} × {active-set, full-sweep} ×
//! {sparse, dense}` matrix plus the degree-skewed star / two-hub /
//! power-law families (the adversarial inputs for degree-balanced shard
//! boundaries), and extend the same matrix to *every public solver* —
//! `unweighted`, `weighted`, `sisp`, `reachability`, and both
//! baselines — across graph families, so end-to-end answers and the full
//! per-phase metrics log are pinned bit-identical at any
//! `CONGEST_THREADS` setting.

use congest::aggregate::{aggregate, AggOp};
use congest::bfs_tree::build_bfs_tree;
use congest::broadcast::broadcast;
use congest::multi_bfs::{default_budget, multi_source_bfs, MultiBfsConfig};
use congest::pipeline::{diagonal_dp, prefix_sweep, Lane};
use congest::{FaultPlan, Network, NodeCtx, RunStats, Scheduling, ShardedProtocol, Side};
use graphkit::gen::{planted_path_digraph, random_digraph};
use graphkit::{Dist, GraphBuilder};
use proptest::prelude::*;

/// Runs `f` under both schedules on fresh networks and returns both
/// results.
fn both<T>(g: &graphkit::DiGraph, mut f: impl FnMut(&mut Network<'_>) -> T) -> (T, T) {
    let mut active = Network::new(g);
    let active_out = f(&mut active);
    let mut swept = Network::new(g);
    swept.set_full_sweep(true);
    let swept_out = f(&mut swept);
    (active_out, swept_out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn bfs_tree_is_schedule_invariant(n in 2usize..70, seed in 0u64..500) {
        let g = random_digraph(n, 2 * n, seed);
        let root = seed as usize % n;
        let ((ta, sa), (ts, ss)) = both(&g, |net| build_bfs_tree(net, root).unwrap());
        prop_assert_eq!(sa, ss);
        prop_assert_eq!(ta.parent, ts.parent);
        prop_assert_eq!(ta.depth, ts.depth);
        prop_assert_eq!(ta.child_ports, ts.child_ports);
    }

    #[test]
    fn broadcast_is_schedule_invariant(
        n in 3usize..50,
        per_node in 0usize..4,
        seed in 0u64..500,
    ) {
        let g = random_digraph(n, 2 * n, seed);
        let items: Vec<Vec<u64>> = (0..n)
            .map(|v| (0..per_node).map(|j| (v * 16 + j) as u64).collect())
            .collect();
        let ((oa, sa), (os, ss)) = both(&g, |net| {
            let (tree, _) = build_bfs_tree(net, 0).unwrap();
            broadcast(net, &tree, items.clone(), |_| 16, "bc")
        });
        prop_assert_eq!(sa, ss);
        prop_assert_eq!(oa, os);
    }

    #[test]
    fn aggregate_is_schedule_invariant(n in 2usize..60, seed in 0u64..500) {
        let g = random_digraph(n, 2 * n, seed);
        let values: Vec<Dist> = (0..n)
            .map(|v| Dist::new((v as u64 * 101 + seed) % 997))
            .collect();
        for op in [AggOp::Min, AggOp::Max, AggOp::Sum] {
            let (ra, rs) = both(&g, |net| {
                let (tree, _) = build_bfs_tree(net, 0).unwrap();
                let before = net.metrics().total;
                let result = aggregate(net, &tree, op, &values);
                (result, diff(&net.metrics().total, &before))
            });
            prop_assert_eq!(ra, rs);
        }
    }

    #[test]
    fn multi_bfs_is_schedule_invariant(
        n in 3usize..50,
        k in 1usize..6,
        h in 1u64..30,
        seed in 0u64..500,
    ) {
        let g = random_digraph(n, 3 * n, seed);
        let sources: Vec<usize> = (0..k).map(|i| (i * 13 + 1) % n).collect();
        // Mix in delayed edges on half the cases to cover held-message
        // reactivation.
        let delays: Option<Vec<u64>> = (seed % 2 == 0).then(|| {
            (0..g.edge_count()).map(|e| 1 + (e as u64 + seed) % 3).collect()
        });
        let cfg = MultiBfsConfig {
            sources: &sources,
            max_dist: h,
            reverse: seed % 3 == 0,
            delays: delays.as_deref(),
        };
        let budget = 8 * default_budget(k, h);
        let ((da, sa), (ds, ss)) = both(&g, |net| {
            multi_source_bfs(net, &cfg, |_| true, "mbfs", budget).expect("quiesces")
        });
        prop_assert_eq!(sa, ss);
        prop_assert_eq!(da, ds);
    }

    #[test]
    fn pipelines_are_schedule_invariant(
        len in 2usize..20,
        jobs in 1usize..8,
        seed in 0u64..500,
    ) {
        let mut b = GraphBuilder::new(len);
        let links: Vec<usize> = (0..len - 1).map(|i| b.add_arc(i, i + 1)).collect();
        let g = b.build();
        let lane = Lane::forward((0..len).collect(), links);
        let val = |pos: usize, job: usize| ((pos as u64 * 31 + job as u64 * 7 + seed) % 50) + 1;

        let ((oa, sa), (os, ss)) = both(&g, |net| {
            prefix_sweep(
                net,
                std::slice::from_ref(&lane),
                jobs,
                &|_, pos, job| Dist::new(val(pos, job)),
                "sweep",
            )
        });
        prop_assert_eq!(sa, ss);
        prop_assert_eq!(oa, os);

        let rounds = jobs as u64;
        let ((ca, sa), (cs, ss)) = both(&g, |net| {
            diagonal_dp(
                net,
                &lane,
                |p| Dist::new(val(p, 0)),
                &|p, r| Dist::new(val(p, r as usize)),
                rounds,
                "dp",
            )
        });
        prop_assert_eq!(sa, ss);
        prop_assert_eq!(ca, cs);
    }

    #[test]
    fn theorem1_solver_is_schedule_invariant(
        h in 4usize..14,
        extra in 0usize..100,
        zeta in 2usize..10,
        seed in 0u64..300,
    ) {
        let n = 3 * h + 8;
        let (g, s, t) = planted_path_digraph(n, h, extra, seed);
        let inst = rpaths_core::Instance::from_endpoints(&g, s, t).unwrap();
        let mut params = rpaths_core::Params::with_zeta(n, zeta).with_seed(seed);
        params.landmark_prob = 1.0;
        let ((ra, ma), (rs, ms)) = both(&g, |net| {
            let replacement = rpaths_core::unweighted::solve_on(net, &inst, &params).unwrap();
            (replacement, net.metrics().clone())
        });
        prop_assert_eq!(ra, rs);
        prop_assert_eq!(ma.total, ms.total);
        prop_assert_eq!(ma.phases.len(), ms.phases.len());
        for (pa, ps) in ma.phases.iter().zip(&ms.phases) {
            prop_assert_eq!(&pa.name, &ps.name);
            prop_assert_eq!(pa.stats, ps.stats, "phase {}", pa.name);
        }
    }

    #[test]
    fn cut_bits_are_schedule_invariant(n in 4usize..40, seed in 0u64..300) {
        let g = random_digraph(n, 3 * n, seed);
        let sides: Vec<Side> = (0..n)
            .map(|v| if v < n / 2 { Side::Alice } else { Side::Bob })
            .collect();
        let items: Vec<Vec<u64>> = (0..n).map(|v| vec![v as u64]).collect();
        let ((_, sa), (_, ss)) = both(&g, |net| {
            net.set_cut(sides.clone());
            let (tree, _) = build_bfs_tree(net, 0).unwrap();
            broadcast(net, &tree, items.clone(), |_| 16, "bc")
        });
        prop_assert_eq!(sa, ss);
        prop_assert!(sa.cut_bits > 0, "cut accounting exercised");
    }
}

/// Runs `f` once on the sequential engine (the reference) and then
/// under every configuration of the parallel matrix — thread counts
/// {2, 8} × schedules {active-set, forced full sweep} — with the
/// work-threshold fallback disabled so parallelism engages even on
/// test-sized graphs. Asserts every result is bit-identical to the
/// reference.
fn parallel_matrix<T: PartialEq + std::fmt::Debug>(
    g: &graphkit::DiGraph,
    mut f: impl FnMut(&mut Network<'_>) -> T,
) {
    let mut reference_net = Network::new(g);
    reference_net.set_threads(1);
    let reference = f(&mut reference_net);
    for threads in [2usize, 8] {
        for sweep in [false, true] {
            let mut net = Network::new(g);
            net.set_threads(threads);
            net.set_parallel_threshold(0);
            net.set_full_sweep(sweep);
            let out = f(&mut net);
            assert_eq!(
                out, reference,
                "diverged at threads = {threads}, full_sweep = {sweep}"
            );
        }
    }
}

/// Sparse and dense topologies for the parallel matrix.
fn matrix_graphs() -> Vec<graphkit::DiGraph> {
    vec![
        random_digraph(41, 45, 11),  // sparse: active set stays small
        random_digraph(48, 300, 12), // dense: every node busy most rounds
    ]
}

#[test]
fn parallel_broadcast_matches_sequential_bitwise() {
    for g in matrix_graphs() {
        let n = g.node_count();
        let items: Vec<Vec<u64>> = (0..n)
            .map(|v| (0..1 + v % 3).map(|j| (v * 16 + j) as u64).collect())
            .collect();
        parallel_matrix(&g, |net| {
            let (tree, tree_stats) = build_bfs_tree(net, 0).unwrap();
            let (out, stats) = broadcast(net, &tree, items.clone(), |_| 16, "bc");
            (out, stats, tree_stats)
        });
    }
}

#[test]
fn parallel_multi_bfs_matches_sequential_bitwise() {
    for g in matrix_graphs() {
        let n = g.node_count();
        let sources: Vec<usize> = (0..5).map(|i| (i * 13 + 1) % n).collect();
        let delays: Vec<u64> = (0..g.edge_count()).map(|e| 1 + (e as u64) % 3).collect();
        for (reverse, with_delays) in [(false, false), (true, false), (false, true)] {
            let cfg = MultiBfsConfig {
                sources: &sources,
                max_dist: 25,
                reverse,
                delays: with_delays.then_some(delays.as_slice()),
            };
            parallel_matrix(&g, |net| {
                multi_source_bfs(net, &cfg, |_| true, "mbfs", 8 * default_budget(5, 25))
                    .expect("quiesces")
            });
        }
    }
}

/// Degree-skewed topologies: the star and two-hub families put almost
/// all edge work on one or two nodes, and preferential attachment gives
/// a smooth power-law profile. These are the adversarial inputs for
/// degree-balanced shard boundaries — a node-count split would strand
/// nearly all message traffic in a single shard.
fn skewed_graphs() -> Vec<graphkit::DiGraph> {
    use graphkit::gen::{power_law_digraph, star, two_hub};
    vec![star(49), two_hub(50), power_law_digraph(96, 5)]
}

#[test]
fn parallel_skewed_kernels_match_sequential_bitwise() {
    for g in skewed_graphs() {
        let n = g.node_count();

        // BFS tree + pipelined broadcast rooted at a spoke, so traffic
        // funnels through the hub(s).
        let items: Vec<Vec<u64>> = (0..n)
            .map(|v| (0..1 + v % 2).map(|j| (v * 9 + j) as u64).collect())
            .collect();
        parallel_matrix(&g, |net| {
            let (tree, tree_stats) = build_bfs_tree(net, n - 1).unwrap();
            let (out, stats) = broadcast(net, &tree, items.clone(), |_| 16, "bc");
            (out, stats, tree_stats)
        });

        // Multi-source BFS with sources spread over spokes.
        let sources: Vec<usize> = (0..4).map(|i| (i * 17 + 2) % n).collect();
        let cfg = MultiBfsConfig {
            sources: &sources,
            max_dist: 20,
            reverse: false,
            delays: None,
        };
        parallel_matrix(&g, |net| {
            multi_source_bfs(net, &cfg, |_| true, "mbfs", 8 * default_budget(4, 20))
                .expect("quiesces")
        });

        // Min-aggregation over a hub-rooted tree.
        let values: Vec<Dist> = (0..n).map(|v| Dist::new((v as u64 * 37) % 251)).collect();
        parallel_matrix(&g, |net| {
            let (tree, _) = build_bfs_tree(net, 0).unwrap();
            let result = aggregate(net, &tree, AggOp::Min, &values);
            (result, net.metrics().total)
        });
    }
}

#[test]
fn parallel_hop_bfs_matches_sequential_bitwise() {
    use rpaths_core::short::hop_bfs::{hop_constrained_bfs, HopBfsConfig, Objective};
    for (extra, seed) in [(30usize, 3u64), (400, 4)] {
        let (g, s, t) = planted_path_digraph(44, 12, extra, seed);
        let inst = rpaths_core::Instance::from_endpoints(&g, s, t).unwrap();
        let aux: Vec<u64> = (0..=inst.hops())
            .map(|j| inst.suffix[j].finite().unwrap())
            .collect();
        for objective in [Objective::MaxIndex, Objective::MinIndex] {
            let cfg = HopBfsConfig {
                zeta: 14,
                objective,
                delays: None,
                aux: &aux,
            };
            parallel_matrix(&g, |net| {
                let fstar = hop_constrained_bfs(net, &inst, &cfg, "hop-bfs");
                (fstar.table, net.metrics().total)
            });
        }
    }
}

// ---------------------------------------------------------------------
// End-to-end solver matrices: every public solver, threads {1, 2, 8} ×
// {active-set, full-sweep}, across graph families. Results AND the full
// per-phase metrics log (phase names, rounds, messages, bits) must be
// bit-identical to the sequential reference.
// ---------------------------------------------------------------------

/// Unweighted instance families: sparse planted path, dense planted
/// path, and the parallel-lane (long-detour) family.
fn solver_instances() -> Vec<(graphkit::DiGraph, usize, usize)> {
    let sparse = planted_path_digraph(40, 12, 40, 21);
    let dense = planted_path_digraph(44, 10, 320, 22);
    let lane = graphkit::gen::parallel_lane(12, 4, 2);
    vec![sparse, dense, lane]
}

fn solver_params(n: usize) -> rpaths_core::Params {
    let mut params = rpaths_core::Params::with_zeta(n, 5).with_seed(7);
    params.landmark_prob = 1.0;
    params
}

#[test]
fn parallel_unweighted_solver_matches_sequential_bitwise() {
    for (g, s, t) in solver_instances() {
        let inst = rpaths_core::Instance::from_endpoints(&g, s, t).unwrap();
        let params = solver_params(inst.n());
        parallel_matrix(&g, |net| {
            let replacement = rpaths_core::unweighted::solve_on(net, &inst, &params).unwrap();
            (replacement, net.metrics().clone())
        });
    }
}

#[test]
fn parallel_sisp_solver_matches_sequential_bitwise() {
    for (g, s, t) in solver_instances() {
        let inst = rpaths_core::Instance::from_endpoints(&g, s, t).unwrap();
        let params = solver_params(inst.n());
        parallel_matrix(&g, |net| {
            let value = rpaths_core::sisp::solve_on(net, &inst, &params).unwrap();
            (value, net.metrics().clone())
        });
    }
}

#[test]
fn parallel_reachability_matches_sequential_bitwise() {
    for (g, s, t) in solver_instances() {
        let inst = rpaths_core::Instance::from_endpoints(&g, s, t).unwrap();
        let params = solver_params(inst.n());
        parallel_matrix(&g, |net| {
            let survivable = rpaths_core::reachability::solve_on(net, &inst, &params).unwrap();
            (survivable, net.metrics().clone())
        });
    }
}

#[test]
fn parallel_naive_baseline_matches_sequential_bitwise() {
    for (g, s, t) in solver_instances() {
        let inst = rpaths_core::Instance::from_endpoints(&g, s, t).unwrap();
        let params = solver_params(inst.n());
        parallel_matrix(&g, |net| {
            let replacement = rpaths_core::baseline::naive::solve_on(net, &inst, &params).unwrap();
            (replacement, net.metrics().clone())
        });
    }
}

#[test]
fn parallel_mr24_baseline_matches_sequential_bitwise() {
    for (g, s, t) in solver_instances() {
        let inst = rpaths_core::Instance::from_endpoints(&g, s, t).unwrap();
        let params = solver_params(inst.n());
        parallel_matrix(&g, |net| {
            let replacement = rpaths_core::baseline::mr24::solve_on(net, &inst, &params).unwrap();
            (replacement, net.metrics().clone())
        });
    }
}

#[test]
fn parallel_weighted_solver_matches_sequential_bitwise() {
    use graphkit::gen::random_weighted_digraph;
    let mut tested = 0;
    for seed in 0..10 {
        let g = random_weighted_digraph(30, 90, 8, seed);
        let Some((s, t)) = graphkit::gen::random_reachable_pair(&g, seed) else {
            continue;
        };
        let Ok(inst) = rpaths_core::Instance::from_endpoints(&g, s, t) else {
            continue;
        };
        if inst.hops() < 3 {
            continue;
        }
        let mut params = rpaths_core::Params::with_zeta(inst.n(), 5)
            .with_seed(seed)
            .with_eps(1, 2);
        params.landmark_prob = 1.0;
        parallel_matrix(&g, |net| {
            let out = rpaths_core::weighted::solve_on(net, &inst, &params).unwrap();
            (out.scaled, out.den, net.metrics().clone())
        });
        tested += 1;
        if tested == 2 {
            break;
        }
    }
    assert!(tested >= 1, "no usable weighted instance");
}

// ---------------------------------------------------------------------
// Chaos matrix: deterministic fault injection under the parallel
// engine. A fixed FaultPlan seed must produce bit-identical delivery
// logs, RunStats, and FaultStats at every thread count and schedule,
// because every per-message fate is a pure function of
// (seed, round, link, direction) — never of worker interleaving.
// ---------------------------------------------------------------------

/// Dense traffic generator that logs its inbox verbatim: every node
/// sends a distinct payload on every port each round, so every fault a
/// plan can express (link down, node down, drop, delay) has traffic to
/// act on, and any divergence in delivery contents *or order* shows up
/// as a log difference.
struct ChaosShared {
    send_rounds: u64,
}

struct ChaosNode {
    log: Vec<(u64, u32, u64)>,
}

struct ChaosRecorder {
    shared: ChaosShared,
    nodes: Vec<ChaosNode>,
}

impl ShardedProtocol for ChaosRecorder {
    type Msg = u64;
    type Node = ChaosNode;
    type Shared = ChaosShared;

    fn msg_bits(_: &ChaosShared, _: &u64) -> u64 {
        48
    }

    fn shared(&self) -> &ChaosShared {
        &self.shared
    }

    fn split(&mut self) -> (&ChaosShared, &mut [ChaosNode]) {
        (&self.shared, &mut self.nodes)
    }

    fn step_node(shared: &ChaosShared, node: &mut ChaosNode, ctx: &mut NodeCtx<'_, u64>) {
        for &(port, msg) in ctx.inbox() {
            node.log.push((ctx.round, port, msg));
        }
        if ctx.round < shared.send_rounds {
            let v = ctx.node as u64;
            for p in 0..ctx.ports().len() as u32 {
                ctx.send(p, (v << 24) | (ctx.round << 8) | p as u64);
            }
            ctx.wake();
        }
    }

    fn scheduling(&self) -> Scheduling {
        Scheduling::ActiveSet
    }
}

/// One fault plan per failure mode, plus one with everything at once.
/// Link and node indices are valid in every chaos graph.
fn chaos_plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "timed-link-faults",
            FaultPlan::new(0xf00d)
                .fail_link(0, 1, Some(4))
                .fail_link(3, 2, None),
        ),
        (
            "crash-and-restart",
            FaultPlan::new(0xbeef)
                .crash_node(1, 1, Some(4))
                .crash_node(2, 3, None),
        ),
        ("random-drop", FaultPlan::new(0xd00f).drop_messages(0.2)),
        (
            "random-delay",
            FaultPlan::new(0xcafe).delay_messages(0.35, 3),
        ),
        (
            "everything-at-once",
            FaultPlan::new(0x5eed)
                .fail_link(2, 0, Some(3))
                .crash_node(3, 2, Some(5))
                .drop_messages(0.1)
                .delay_messages(0.2, 2),
        ),
    ]
}

/// Drives the chaos recorder for `send_rounds` sending rounds plus a
/// drain window long enough for every delayed message to land.
fn chaos_run(
    g: &graphkit::DiGraph,
    plan: &FaultPlan,
    net: &mut Network<'_>,
) -> (Vec<Vec<(u64, u32, u64)>>, RunStats, congest::Metrics) {
    let send_rounds = 6;
    net.set_fault_plan(Some(plan.clone()));
    let mut proto = ChaosRecorder {
        shared: ChaosShared { send_rounds },
        nodes: (0..g.node_count())
            .map(|_| ChaosNode { log: Vec::new() })
            .collect(),
    };
    let stats = net.run_rounds_par("chaos", &mut proto, send_rounds + 4);
    (
        proto.nodes.into_iter().map(|nd| nd.log).collect(),
        stats,
        net.metrics().clone(),
    )
}

#[test]
fn chaos_matrix_is_thread_invariant() {
    use graphkit::gen::{metro_ring, power_law_digraph, star};
    for g in [star(33), metro_ring(24), power_law_digraph(48, 5)] {
        for (name, plan) in chaos_plans() {
            // Metrics equality includes FaultStats, so this pins the
            // fault accounting as well as the delivery log.
            parallel_matrix(&g, |net| chaos_run(&g, &plan, net));

            // The matrix would pass vacuously if the plan never fired;
            // make sure the traffic actually met the faults.
            let mut net = Network::new(&g);
            net.set_threads(1);
            let (_, _, metrics) = chaos_run(&g, &plan, &mut net);
            assert!(
                !metrics.faults.is_zero(),
                "plan {name} fired no faults on this graph"
            );
        }
    }
}

/// Component-wise difference of two cumulative stats snapshots.
fn diff(after: &RunStats, before: &RunStats) -> RunStats {
    RunStats {
        rounds: after.rounds - before.rounds,
        messages: after.messages - before.messages,
        bits: after.bits - before.bits,
        cut_bits: after.cut_bits - before.cut_bits,
        max_message_bits: after.max_message_bits,
    }
}
