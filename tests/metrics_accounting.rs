//! Accounting-level tests: the metrics a run reports must reflect the
//! algorithm's documented phase structure, and the CONGEST(B) bandwidth
//! knob must behave.

use congest::Network;
use graphkit::gen::{parallel_lane, planted_path_digraph};
use rpaths_core::{baseline, unweighted, weighted, Instance, Params};

#[test]
fn theorem1_reports_its_documented_phases() {
    let (g, s, t) = planted_path_digraph(60, 18, 150, 2);
    let inst = Instance::from_endpoints(&g, s, t).unwrap();
    let mut params = Params::with_zeta(60, 6);
    params.landmark_prob = 1.0;
    let out = unweighted::solve(&inst, &params).unwrap();
    let m = &out.metrics;
    // One phase per documented stage, each with nonzero rounds.
    for needle in [
        "bfs-tree",
        "lemma2.5/waves",
        "lemma2.5/broadcast",
        "short/hop-bfs",
        "short/pipeline-dp",
        "long/bfs-from-landmarks",
        "long/bfs-to-landmarks",
        "long/broadcast-landmark-pairs",
        "long/sweep-from-s",
        "long/broadcast-from-s",
        "long/sweep-to-t",
        "long/broadcast-to-t",
        "long/shift",
    ] {
        let stats = m.phase_total(needle);
        assert!(stats.rounds > 0, "phase {needle} missing or empty");
    }
    // Totals are consistent with the phase log.
    let sum: u64 = m.phases.iter().map(|p| p.stats.rounds).sum();
    assert_eq!(sum, m.total.rounds);
    let msg_sum: u64 = m.phases.iter().map(|p| p.stats.messages).sum();
    assert_eq!(msg_sum, m.total.messages);
}

#[test]
fn weighted_solver_runs_one_bfs_pair_per_scale() {
    let (g, s, t) = parallel_lane(10, 3, 2);
    let inst = Instance::from_endpoints(&g, s, t).unwrap();
    let mut params = Params::with_zeta(inst.n(), 4);
    params.landmark_prob = 1.0;
    let out = weighted::solve(&inst, &params).unwrap();
    let ends = out
        .metrics
        .phases
        .iter()
        .filter(|p| p.name.starts_with("apx/hop-bfs-end-d"))
        .count();
    let starts = out
        .metrics
        .phases
        .iter()
        .filter(|p| p.name.starts_with("apx/hop-bfs-start-d"))
        .count();
    assert_eq!(ends, starts, "one MaxIndex run per MinIndex run");
    // Scales are d = 2, 4, ..., >= 2·total_weight: at least 4 of them
    // for this instance (total weight = edges > 8).
    assert!(ends >= 4, "only {ends} scales");
}

#[test]
fn every_message_respects_the_declared_bandwidth() {
    // The engine enforces this online; here we check the recorded
    // maximum is comfortably logarithmic.
    let (g, s, t) = planted_path_digraph(120, 30, 300, 4);
    let inst = Instance::from_endpoints(&g, s, t).unwrap();
    let params = Params::for_instance(&inst).with_seed(8);
    let out = unweighted::solve(&inst, &params).unwrap();
    let n = inst.n() as u64;
    let default_bandwidth = 8 * congest::word_bits(n) + 32;
    assert!(out.metrics.total.max_message_bits <= default_bandwidth);
    // And the messages are genuinely small — a few words.
    assert!(out.metrics.total.max_message_bits <= 4 * congest::word_bits(n) + 8);
}

#[test]
fn tight_custom_bandwidth_is_accepted_when_sufficient() {
    // CONGEST(B) with B = 3·log n + 4 is enough for every message of the
    // unweighted pipeline on this instance (index + distance + tags).
    let (g, s, t) = parallel_lane(12, 3, 1);
    let inst = Instance::from_endpoints(&g, s, t).unwrap();
    let mut params = Params::with_zeta(inst.n(), 5);
    params.landmark_prob = 1.0;
    let n = inst.n() as u64;
    let mut net = Network::new(&g).with_bandwidth(3 * congest::word_bits(n) + 8);
    let replacement = unweighted::solve_on(&mut net, &inst, &params).unwrap();
    let oracle = graphkit::alg::replacement_lengths(&g, &inst.path);
    assert_eq!(replacement, oracle);
}

#[test]
fn naive_baseline_charges_one_bfs_per_edge() {
    let (g, s, t) = parallel_lane(9, 3, 1);
    let inst = Instance::from_endpoints(&g, s, t).unwrap();
    let out = baseline::naive::solve(&inst, &Params::for_instance(&inst)).unwrap();
    let bfs_phases = out
        .metrics
        .phases
        .iter()
        .filter(|p| p.name.starts_with("naive/bfs-"))
        .count();
    assert_eq!(bfs_phases, inst.hops());
}

#[test]
fn mr24_fat_broadcast_dwarfs_ours_in_messages() {
    let (g, s, t) = parallel_lane(64, 8, 2);
    let inst = Instance::from_endpoints(&g, s, t).unwrap();
    let n = inst.n();
    let mut params = Params::for_n(n).with_seed(6);
    params.landmark_prob = ((n as f64).ln() / params.zeta as f64).min(1.0);
    let ours = unweighted::solve(&inst, &params).unwrap().metrics;
    let mr = baseline::mr24::solve(&inst, &params).unwrap().metrics;
    let ours_bc = ours.phase_total("long/broadcast").messages;
    let mr_bc = mr.phase_total("fat-broadcast").messages;
    assert!(
        mr_bc > ours_bc,
        "mr24 broadcast {mr_bc} should exceed ours {ours_bc}"
    );
}
