//! Property-based tests (proptest) for the core invariants:
//!
//! - Theorem 1 output == centralized oracle on arbitrary planted
//!   instances (with full landmarks, so randomness cannot excuse a
//!   failure).
//! - Theorem 3 output brackets the oracle within `(1+ε)`.
//! - Lemma 6.8's iff-correspondence for arbitrary `(M, x)`.
//! - `Dist` arithmetic is a commutative monoid with absorbing ∞.
//! - Generator contracts (planted path is shortest; connectivity).

use graphkit::alg::{replacement_lengths, shortest_st_path, undirected_diameter};
use graphkit::gen::{parallel_lane, planted_path_digraph, random_weighted_digraph};
use graphkit::Dist;
use proptest::prelude::*;
use rpaths_core::{unweighted, weighted, Instance, Params};
use rpaths_lb::hard;
use rpaths_lb::lemma68;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn theorem1_matches_oracle_on_planted(
        h in 4usize..20,
        extra in 0usize..150,
        zeta in 2usize..12,
        seed in 0u64..1000,
    ) {
        let n = 3 * h + 8;
        let (g, s, t) = planted_path_digraph(n, h, extra, seed);
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        let mut params = Params::with_zeta(n, zeta).with_seed(seed);
        params.landmark_prob = 1.0;
        let out = unweighted::solve(&inst, &params).unwrap();
        prop_assert_eq!(out.replacement, replacement_lengths(&g, &inst.path));
    }

    #[test]
    fn theorem1_matches_oracle_on_lanes(
        h in 4usize..24,
        c in 1usize..6,
        stretch in 1usize..4,
        zeta in 2usize..10,
    ) {
        let (g, s, t) = parallel_lane(h, c, stretch);
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        let mut params = Params::with_zeta(inst.n(), zeta);
        params.landmark_prob = 1.0;
        let out = unweighted::solve(&inst, &params).unwrap();
        prop_assert_eq!(out.replacement, replacement_lengths(&g, &inst.path));
    }

    #[test]
    fn theorem3_guarantee_on_random_weighted(
        seed in 0u64..400,
        w in 1u64..20,
        zeta in 3usize..8,
    ) {
        let g = random_weighted_digraph(30, 90, w, seed);
        let Some((s, t)) = graphkit::gen::random_reachable_pair(&g, seed) else {
            return Ok(());
        };
        let Some(p) = shortest_st_path(&g, s, t) else { return Ok(()); };
        if p.hops() < 3 {
            return Ok(());
        }
        let inst = Instance::new(&g, p).unwrap();
        let mut params = Params::with_zeta(30, zeta).with_seed(seed);
        params.landmark_prob = 1.0;
        let out = weighted::solve(&inst, &params).unwrap();
        let oracle = replacement_lengths(&g, &inst.path);
        prop_assert!(out.check_guarantee(&oracle, params.eps_num, params.eps_den).is_ok());
    }

    #[test]
    fn lemma_6_8_holds_for_arbitrary_inputs(
        m_bits in proptest::collection::vec(any::<bool>(), 4),
        x_bits in proptest::collection::vec(any::<bool>(), 4),
    ) {
        let m = vec![vec![m_bits[0], m_bits[1]], vec![m_bits[2], m_bits[3]]];
        let report = lemma68::verify_instance(2, 2, 2, &m, &x_bits);
        prop_assert!(report.all_ok(), "{report:?}");
    }

    #[test]
    fn dist_addition_laws(a in 0u64..1_000_000, b in 0u64..1_000_000, c in 0u64..1_000_000) {
        let (da, db, dc) = (Dist::new(a), Dist::new(b), Dist::new(c));
        prop_assert_eq!(da + db, db + da);
        prop_assert_eq!((da + db) + dc, da + (db + dc));
        prop_assert_eq!(da + Dist::ZERO, da);
        prop_assert_eq!(da + Dist::INF, Dist::INF);
        prop_assert!(da + db >= da);
    }

    #[test]
    fn planted_generator_contract(
        h in 1usize..30,
        extra in 0usize..200,
        seed in 0u64..500,
    ) {
        let n = h + 1 + (seed as usize % 40);
        let (g, s, t) = planted_path_digraph(n, h, extra, seed);
        let p = shortest_st_path(&g, s, t).expect("t reachable");
        prop_assert_eq!(p.hops(), h);
        prop_assert!(p.validate_shortest(&g).is_ok());
        prop_assert!(undirected_diameter(&g).is_some());
    }

    #[test]
    fn hard_graph_shape_contract(k in 2usize..4, seed in 0u64..100) {
        let (m, x) = hard::random_inputs(k, seed);
        let g = hard::build(k, 2, 2, &m, &x);
        let dp = 4usize;
        let tree = 7usize;
        prop_assert_eq!(
            g.graph.node_count(),
            2 * k * dp + 2 * k * (2 * k * k + 1) + k * k + 1 + tree
        );
        let diam = undirected_diameter(&g.graph).expect("connected");
        prop_assert!(diam <= 2 * 2 + 2);
        // P* is shortest.
        let p = shortest_st_path(&g.graph, g.s, g.t).expect("reachable");
        prop_assert_eq!(p.hops(), k * k);
    }

    #[test]
    fn replacement_is_monotone_in_edge_additions(
        h in 3usize..10,
        seed in 0u64..200,
    ) {
        // Adding edges can only shorten (or keep) replacement lengths.
        let n = 3 * h;
        let (g1, s, t) = planted_path_digraph(n, h, 10, seed);
        let (g2, s2, t2) = planted_path_digraph(n, h, 60, seed);
        prop_assert_eq!((s, t), (s2, t2));
        // Same seed => g2's first edges coincide with g1's (the generator
        // appends); the planted path is identical.
        let p1 = shortest_st_path(&g1, s, t).unwrap();
        let p2 = shortest_st_path(&g2, s, t).unwrap();
        if p1.nodes() != p2.nodes() {
            return Ok(());
        }
        let r1 = replacement_lengths(&g1, &p1);
        let r2 = replacement_lengths(&g2, &p2);
        for i in 0..h {
            prop_assert!(r2[i] <= r1[i], "edge {i}: {} > {}", r2[i], r1[i]);
        }
    }
}
