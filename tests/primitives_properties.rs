//! Property-based tests for the `congest` communication primitives:
//! whatever the topology, the primitives must deliver exactly the right
//! data within their claimed round bounds.

use congest::aggregate::{aggregate, AggOp};
use congest::bfs_tree::build_bfs_tree;
use congest::broadcast::broadcast;
use congest::multi_bfs::{default_budget, multi_source_bfs, MultiBfsConfig};
use congest::pipeline::{diagonal_dp, prefix_sweep, Lane};
use congest::{FaultPlan, Metrics, Network, NodeCtx, RunStats, Scheduling, ShardedProtocol};
use graphkit::alg::bfs_hop_bounded;
use graphkit::gen::random_digraph;
use graphkit::{DiGraph, Dist, GraphBuilder};
use proptest::prelude::*;

/// A traffic generator that records exactly what the engine delivers:
/// every node sends on a pseudo-random subset of its ports each round
/// and logs its inbox verbatim (round, port, payload). Any change to
/// delivery contents *or order* — the quantities the sharded-parallel
/// engine must preserve — shows up as a log difference.
struct RecShared {
    seed: u64,
    send_rounds: u64,
}

struct RecNode {
    log: Vec<(u64, u32, u64)>,
}

struct Recorder {
    shared: RecShared,
    nodes: Vec<RecNode>,
}

impl ShardedProtocol for Recorder {
    type Msg = u64;
    type Node = RecNode;
    type Shared = RecShared;

    fn msg_bits(_: &RecShared, _: &u64) -> u64 {
        32
    }

    fn shared(&self) -> &RecShared {
        &self.shared
    }

    fn split(&mut self) -> (&RecShared, &mut [RecNode]) {
        (&self.shared, &mut self.nodes)
    }

    fn step_node(shared: &RecShared, node: &mut RecNode, ctx: &mut NodeCtx<'_, u64>) {
        for &(port, msg) in ctx.inbox() {
            node.log.push((ctx.round, port, msg));
        }
        if ctx.round < shared.send_rounds {
            let v = ctx.node as u64;
            for p in 0..ctx.ports().len() as u32 {
                if (v * 31 + ctx.round * 17 + p as u64 * 7 + shared.seed).is_multiple_of(3) {
                    ctx.send(p, (v << 32) | (ctx.round << 16) | p as u64);
                }
            }
            ctx.wake();
        }
    }

    fn scheduling(&self) -> Scheduling {
        Scheduling::ActiveSet
    }
}

/// Drives the recorder for `send_rounds + 1` rounds under `configure`
/// and returns (per-node logs, stats).
fn run_recorder(
    g: &DiGraph,
    seed: u64,
    send_rounds: u64,
    configure: impl FnOnce(&mut Network<'_>),
) -> (Vec<Vec<(u64, u32, u64)>>, RunStats) {
    let mut net = Network::new(g);
    configure(&mut net);
    let mut proto = Recorder {
        shared: RecShared { seed, send_rounds },
        nodes: (0..g.node_count())
            .map(|_| RecNode { log: Vec::new() })
            .collect(),
    };
    let stats = net.run_rounds_par("recorder", &mut proto, send_rounds + 1);
    (proto.nodes.into_iter().map(|nd| nd.log).collect(), stats)
}

/// [`run_recorder`] under a fault plan, with a longer drain window so
/// delayed messages land; also returns the full metrics log so that
/// `FaultStats` parity is part of the comparison.
fn run_recorder_faulty(
    g: &DiGraph,
    seed: u64,
    send_rounds: u64,
    plan: &FaultPlan,
    configure: impl FnOnce(&mut Network<'_>),
) -> (Vec<Vec<(u64, u32, u64)>>, RunStats, Metrics) {
    let mut net = Network::new(g);
    configure(&mut net);
    net.set_fault_plan(Some(plan.clone()));
    let mut proto = Recorder {
        shared: RecShared { seed, send_rounds },
        nodes: (0..g.node_count())
            .map(|_| RecNode { log: Vec::new() })
            .collect(),
    };
    let stats = net.run_rounds_par("recorder", &mut proto, send_rounds + 5);
    (
        proto.nodes.into_iter().map(|nd| nd.log).collect(),
        stats,
        net.metrics().clone(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn broadcast_delivers_every_item_to_everyone(
        n in 4usize..60,
        per_node in 0usize..4,
        seed in 0u64..500,
    ) {
        let g = random_digraph(n, 2 * n, seed);
        let mut net = Network::new(&g);
        let (tree, _) = build_bfs_tree(&mut net, 0).unwrap();
        let items: Vec<Vec<u64>> = (0..n)
            .map(|v| (0..per_node).map(|j| (v * 10 + j) as u64).collect())
            .collect();
        let total: usize = items.iter().map(|i| i.len()).sum();
        let (out, stats) = broadcast(&mut net, &tree, items, |_| 16, "bc");
        for v in 0..n {
            prop_assert_eq!(out[v].len(), total);
            prop_assert_eq!(&out[v], &out[0], "node {} diverged", v);
        }
        let mut sorted = out[0].clone();
        sorted.sort_unstable();
        let mut expect: Vec<u64> = (0..n)
            .flat_map(|v| (0..per_node).map(move |j| (v * 10 + j) as u64))
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(sorted, expect);
        // Lemma 2.4's O(M + D) with an explicit constant.
        prop_assert!(stats.rounds <= 3 * (total as u64 + tree.height) + 8);
    }

    #[test]
    fn multi_bfs_equals_centralized_oracle(
        n in 4usize..50,
        k in 1usize..6,
        h in 1u64..30,
        seed in 0u64..500,
    ) {
        let g = random_digraph(n, 3 * n, seed);
        let sources: Vec<usize> = (0..k).map(|i| (i * 13 + 1) % n).collect();
        let cfg = MultiBfsConfig {
            sources: &sources,
            max_dist: h,
            reverse: false,
            delays: None,
        };
        let mut net = Network::new(&g);
        let (dist, stats) =
            multi_source_bfs(&mut net, &cfg, |_| true, "mbfs", default_budget(k, h))
                .expect("quiesces");
        for (i, &s) in sources.iter().enumerate() {
            let oracle = bfs_hop_bounded(&g, &[s], h as usize, |_| true);
            prop_assert_eq!(&dist[i], &oracle, "source {}", s);
        }
        // Lemma 5.5's O(k + h) with an explicit constant.
        prop_assert!(stats.rounds <= 2 * (k as u64 + h) + 16);
    }

    #[test]
    fn prefix_sweep_is_a_prefix_min(
        len in 2usize..20,
        jobs in 1usize..10,
        seed in 0u64..500,
    ) {
        let mut b = GraphBuilder::new(len);
        let links: Vec<usize> = (0..len - 1).map(|i| b.add_arc(i, i + 1)).collect();
        let g = b.build();
        let lane = Lane::forward((0..len).collect(), links);
        let val = |pos: usize, job: usize| {
            ((pos as u64 * 7919 + job as u64 * 104729 + seed) % 97) + 1
        };
        let mut net = Network::new(&g);
        let (out, stats) = prefix_sweep(
            &mut net,
            std::slice::from_ref(&lane),
            jobs,
            &|_, pos, job| Dist::new(val(pos, job)),
            "sweep",
        );
        for pos in 0..len {
            for job in 0..jobs {
                let expect = (0..=pos).map(|p| val(p, job)).min().unwrap();
                prop_assert_eq!(out[0][pos][job], Dist::new(expect));
            }
        }
        prop_assert_eq!(stats.rounds, jobs as u64 + len as u64);
    }

    #[test]
    fn diagonal_dp_matches_direct_recurrence(
        len in 2usize..16,
        rounds in 1u64..12,
        seed in 0u64..500,
    ) {
        let mut b = GraphBuilder::new(len);
        let links: Vec<usize> = (0..len - 1).map(|i| b.add_arc(i, i + 1)).collect();
        let g = b.build();
        let lane = Lane::forward((0..len).collect(), links);
        let f = |p: usize, r: u64| ((p as u64 * 31 + r * 17 + seed) % 89) + 1;
        let mut net = Network::new(&g);
        let (cur, _) = diagonal_dp(
            &mut net,
            &lane,
            |p| Dist::new(f(p, 0)),
            &|p, r| Dist::new(f(p, r)),
            rounds,
            "dp",
        );
        let mut reference: Vec<Dist> = (0..len).map(|p| Dist::new(f(p, 0))).collect();
        for r in 1..=rounds {
            let prev = reference.clone();
            for p in 0..len {
                let local = Dist::new(f(p, r));
                reference[p] = if p == 0 { local } else { prev[p - 1].min(local) };
            }
        }
        prop_assert_eq!(cur, reference);
    }

    #[test]
    fn aggregate_matches_local_fold(
        n in 2usize..60,
        seed in 0u64..500,
    ) {
        let g = random_digraph(n, 2 * n, seed);
        let values: Vec<Dist> = (0..n)
            .map(|v| Dist::new(((v as u64 * 37 + seed) % 1000) + 1))
            .collect();
        for (op, expect) in [
            (AggOp::Min, values.iter().copied().min().unwrap()),
            (AggOp::Max, values.iter().copied().max().unwrap()),
            (AggOp::Sum, values.iter().copied().sum()),
        ] {
            let mut net = Network::new(&g);
            let (tree, _) = build_bfs_tree(&mut net, seed as usize % n).unwrap();
            prop_assert_eq!(aggregate(&mut net, &tree, op, &values), expect);
        }
    }

    #[test]
    fn shard_geometry_never_changes_delivery(
        n in 8usize..48,
        density in 1usize..4,
        threads in 2usize..9,
        nsplits in 1usize..6,
        seed in 0u64..1000,
    ) {
        let g = random_digraph(n, density * n + n / 2, seed);
        let (ref_logs, ref_stats) =
            run_recorder(&g, seed, 6, |net| net.set_threads(1));
        // Random interior shard split points, derived deterministically
        // from the generated inputs.
        let mut splits: Vec<usize> = (0..nsplits)
            .map(|i| 1 + ((seed as usize)
                .wrapping_mul(31)
                .wrapping_add(i * 7 + threads) % (n - 1)))
            .collect();
        splits.sort_unstable();
        splits.dedup();
        let (par_logs, par_stats) = run_recorder(&g, seed, 6, |net| {
            net.set_threads(threads);
            net.set_parallel_threshold(0);
            net.set_shard_bounds(Some(splits.clone()));
        });
        prop_assert_eq!(par_stats, ref_stats, "splits {:?}", &splits);
        prop_assert_eq!(par_logs, ref_logs, "splits {:?}", &splits);
        // Even chunking (no explicit bounds) must agree too.
        let (even_logs, even_stats) = run_recorder(&g, seed, 6, |net| {
            net.set_threads(threads);
            net.set_parallel_threshold(0);
        });
        prop_assert_eq!(even_stats, ref_stats);
        prop_assert_eq!(even_logs, ref_logs);
    }

    #[test]
    fn fault_plans_never_break_shard_parity(
        n in 3usize..40,
        density in 1usize..4,
        threads in 2usize..9,
        seed in 0u64..500,
        fseed in 0u64..1000,
    ) {
        // Random fault plans mixing every failure mode (timed link
        // faults, crash/restart, probabilistic drop and delay) must be
        // invisible to shard geometry: per-message fates are pure
        // functions of (seed, round, link, direction), so sequential
        // and parallel runs agree on the delivery log, the RunStats,
        // and the FaultStats.
        let g = random_digraph(n, density * n, seed);
        prop_assert!(g.edge_count() > 0);
        let m = g.edge_count();
        let plan = FaultPlan::new(fseed)
            .fail_link((fseed as usize * 7 + 1) % m, fseed % 3, Some(fseed % 3 + 2))
            .crash_node((fseed as usize * 5 + 2) % n, 1 + fseed % 2, Some(4))
            .drop_messages((fseed % 4) as f64 * 0.08)
            .delay_messages((fseed % 5) as f64 * 0.07, 1 + fseed % 3);
        let (ref_logs, ref_stats, ref_metrics) =
            run_recorder_faulty(&g, seed, 6, &plan, |net| net.set_threads(1));
        let (par_logs, par_stats, par_metrics) =
            run_recorder_faulty(&g, seed, 6, &plan, |net| {
                net.set_threads(threads);
                net.set_parallel_threshold(0);
            });
        prop_assert_eq!(par_stats, ref_stats, "threads {}", threads);
        prop_assert_eq!(par_logs, ref_logs, "threads {}", threads);
        prop_assert_eq!(par_metrics, ref_metrics, "threads {}", threads);
    }

    #[test]
    fn degree_balanced_bounds_never_change_delivery(
        family in 0usize..3,
        n in 10usize..64,
        threads in 2usize..9,
        seed in 0u64..1000,
    ) {
        // The default (no explicit `set_shard_bounds`) geometry is now
        // degree-balanced: boundaries come from prefix sums of
        // `1 + deg(v)`, so they shift with the topology and the thread
        // count. On the most skewed families we have — star, two-hub,
        // power-law — that geometry must still be invisible: logs and
        // RunStats bit-identical to the sequential reference.
        let g = match family {
            0 => graphkit::gen::star(n),
            1 => graphkit::gen::two_hub(n),
            _ => graphkit::gen::power_law_digraph(n, seed),
        };
        let (ref_logs, ref_stats) =
            run_recorder(&g, seed, 6, |net| net.set_threads(1));
        let (par_logs, par_stats) = run_recorder(&g, seed, 6, |net| {
            net.set_threads(threads);
            net.set_parallel_threshold(0);
        });
        prop_assert_eq!(par_stats, ref_stats, "family {} threads {}", family, threads);
        prop_assert_eq!(par_logs, ref_logs, "family {} threads {}", family, threads);
    }

    #[test]
    fn until_quiet_parallel_agrees_on_quiescence_and_stats(
        n in 4usize..40,
        density in 1usize..4,
        threads in 2usize..9,
        seed in 0u64..500,
    ) {
        // `run_until_quiet` (threads = 1 is the sequential drive) and
        // `run_until_quiet_par` must agree on the quiescence round and
        // every RunStats field for the newly migrated quiescence-driven
        // protocols: BFS-tree construction and tree aggregation. Sparse
        // densities also cover the disconnected case, where both paths
        // must report the identical recoverable error.
        let g = random_digraph(n, density * n, seed);
        let root = seed as usize % n;
        let mut seq_net = Network::new(&g);
        seq_net.set_threads(1);
        let mut par_net = Network::new(&g);
        par_net.set_threads(threads);
        par_net.set_parallel_threshold(0);
        match (
            build_bfs_tree(&mut seq_net, root),
            build_bfs_tree(&mut par_net, root),
        ) {
            (Ok((ts, ss)), Ok((tp, sp))) => {
                prop_assert_eq!(ss, sp); // rounds = the quiescence round
                prop_assert_eq!(&ts.depth, &tp.depth);
                prop_assert_eq!(&ts.parent, &tp.parent);
                prop_assert_eq!(&ts.child_ports, &tp.child_ports);
                let values: Vec<Dist> = (0..n)
                    .map(|v| {
                        if (v + seed as usize).is_multiple_of(5) {
                            Dist::INF
                        } else {
                            Dist::new((v as u64 * 13 + seed) % 257)
                        }
                    })
                    .collect();
                for op in [AggOp::Min, AggOp::Max, AggOp::Sum] {
                    let rs = aggregate(&mut seq_net, &ts, op, &values);
                    let rp = aggregate(&mut par_net, &tp, op, &values);
                    prop_assert_eq!(rs, rp);
                }
                // The cumulative logs pin every phase's rounds/messages/
                // bits — quiescence rounds included.
                prop_assert_eq!(seq_net.metrics(), par_net.metrics());
            }
            (Err(es), Err(ep)) => prop_assert_eq!(es, ep),
            (seq, par) => {
                return Err(TestCaseError(format!(
                    "engines disagree on connectivity: seq ok = {}, par ok = {}",
                    seq.is_ok(),
                    par.is_ok()
                )));
            }
        }
    }

    #[test]
    fn migrated_pipelines_have_parallel_parity(
        len in 2usize..16,
        jobs in 1usize..6,
        threads in 2usize..9,
        seed in 0u64..500,
    ) {
        // The newly migrated pipeline protocols (prefix sweeps and the
        // systolic DP) must produce bit-identical outputs and stats on
        // the parallel path at any thread count.
        let mut b = GraphBuilder::new(len);
        let links: Vec<usize> = (0..len - 1).map(|i| b.add_arc(i, i + 1)).collect();
        let g = b.build();
        let lane = Lane::forward((0..len).collect(), links);
        let val = |pos: usize, job: usize| ((pos as u64 * 11 + job as u64 * 5 + seed) % 43) + 1;
        let run = |t: usize| {
            let mut net = Network::new(&g);
            net.set_threads(t);
            if t > 1 {
                net.set_parallel_threshold(0);
            }
            let sweep = prefix_sweep(
                &mut net,
                std::slice::from_ref(&lane),
                jobs,
                &|_, pos, job| Dist::new(val(pos, job)),
                "sweep",
            );
            let dp = diagonal_dp(
                &mut net,
                &lane,
                |p| Dist::new(val(p, 0)),
                &|p, r| Dist::new(val(p, r as usize)),
                jobs as u64,
                "dp",
            );
            (sweep, dp, net.metrics().clone())
        };
        prop_assert_eq!(run(1), run(threads));
    }

    #[test]
    fn graph_snapshot_round_trip_is_bit_identical(
        n in 1usize..80,
        density in 0usize..4,
        seed in 0u64..1000,
    ) {
        // The persistence codec is an exact bijection on encodable
        // graphs: decode(encode(g)) re-encodes to the same bytes, and
        // the decoded graph is structurally identical (CSRs included —
        // neighbor iteration order is part of determinism).
        let g = random_digraph(n, density * n, seed);
        let bytes = g.to_snapshot();
        let back = DiGraph::from_snapshot(&bytes).expect("round trip");
        prop_assert_eq!(back.to_snapshot(), bytes);
        prop_assert_eq!(back.node_count(), g.node_count());
        prop_assert_eq!(back.edge_count(), g.edge_count());
        for v in 0..n {
            let a: Vec<usize> = g.undirected_neighbors(v).collect();
            let b: Vec<usize> = back.undirected_neighbors(v).collect();
            prop_assert_eq!(a, b, "node {}", v);
        }
    }

    #[test]
    fn store_snapshot_round_trip_is_bit_identical(
        n in 1usize..50,
        seed in 0u64..1000,
        nart in 0usize..4,
    ) {
        // Full store files (header + sections + footer) re-encode to
        // identical bytes after a decode, for any graph and artifact
        // payload mix — the invariant checkpoint/resume rides on.
        let g = random_digraph(n, 2 * n, seed);
        let mut snap = rpaths_store::Snapshot::new(g);
        for i in 0..nart {
            let body: Vec<u8> = (0..(seed as usize + 7 * i) % 40)
                .map(|j| (j as u8).wrapping_mul(31).wrapping_add(seed as u8))
                .collect();
            snap.artifacts
                .push(rpaths_store::Artifact::blob(format!("blob/{i}"), body));
        }
        let bytes = snap.encode();
        let back = rpaths_store::Snapshot::decode(&bytes)
            .expect("decode")
            .expect_complete("round trip");
        prop_assert_eq!(back.encode(), bytes);
        prop_assert_eq!(back.artifacts.len(), nart);
    }

    #[test]
    fn grid_road_has_exact_counts_symmetric_arcs_and_bounded_degrees(
        rows in 2usize..12,
        cols in 2usize..12,
        chords in 0usize..20,
        seed in 0u64..1000,
    ) {
        // The documented contract of `gen::grid_road`: rows·cols nodes,
        // every street bidirectional (arcs come in reverse pairs, so the
        // graph is strongly connected), exactly
        // 2·(rows·(cols−1) + cols·(rows−1)) + 2·chords arcs, and street
        // degree ≤ 4 with each incident chord adding at most one
        // out-arc.
        let (g, s, t) = graphkit::gen::grid_road(rows, cols, chords, seed);
        let n = rows * cols;
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(s, 0);
        prop_assert_eq!(t, n - 1);
        prop_assert_eq!(
            g.edge_count(),
            2 * (rows * (cols - 1) + cols * (rows - 1)) + 2 * chords
        );
        let mut pairs = std::collections::HashMap::new();
        for (_, e) in g.edges() {
            *pairs.entry((e.from, e.to)).or_insert(0i64) += 1;
        }
        for (&(u, v), &c) in &pairs {
            prop_assert_eq!(
                c, pairs.get(&(v, u)).copied().unwrap_or(0),
                "arc {}->{} lacks its reverse twin", u, v
            );
        }
        let dist = bfs_hop_bounded(&g, &[s], n, |_| true);
        for v in 0..n {
            prop_assert!(dist[v].is_finite(), "node {} unreachable", v);
            prop_assert!(
                g.successors(v).count() <= 4 + chords,
                "node {} exceeds the street + chord degree bound", v
            );
        }
    }

    #[test]
    fn octopus_pods_has_exact_counts_head_skew_and_pod_redundancy(
        pods in 1usize..10,
        pod_size in 1usize..12,
        extra in 0usize..8,
        seed in 0u64..1000,
    ) {
        // The documented contract of `gen::octopus_pods`: pods·pod_size
        // nodes; per pod 2·(pod_size−1) spoke arcs plus a 2·pod_size
        // member ring when pod_size ≥ 3; a head ring spine plus
        // 2·extra_spine shortcuts; strongly connected; heads dominate
        // member degrees; and a crashed head leaves its pod connected.
        // A 1×1 octopus is rejected by the generator; test from 2 nodes.
        let pod_size = if pods * pod_size < 2 { 2 } else { pod_size };
        let g = graphkit::gen::octopus_pods(pods, pod_size, extra, seed);
        let n = pods * pod_size;
        prop_assert_eq!(g.node_count(), n);
        let mut m =
            pods * (2 * (pod_size - 1) + if pod_size >= 3 { 2 * pod_size } else { 0 });
        m += match pods {
            0 | 1 => 0,
            2 => 2,
            _ => 2 * pods,
        };
        if pods >= 2 {
            m += 2 * extra;
        }
        prop_assert_eq!(g.edge_count(), m);
        let dist = bfs_hop_bounded(&g, &[0], n, |_| true);
        for v in 0..n {
            prop_assert!(dist[v].is_finite(), "node {} unreachable", v);
        }
        // Degree skew: members touch only their spoke and ring; heads
        // carry the whole pod plus the spine.
        for p in 0..pods {
            let head = p * pod_size;
            prop_assert!(g.successors(head).count() >= pod_size - 1);
            for k in 1..pod_size {
                prop_assert!(
                    g.successors(head + k).count() <= 3,
                    "member {} of pod {} exceeds spoke + ring degree", k, p
                );
            }
        }
        // Head-crash redundancy: with a member ring, dropping pod 0's
        // head must leave its members mutually reachable.
        if pod_size >= 3 {
            let head = 0;
            let avoid_head = |e: usize| {
                let edge = g.edge(e);
                edge.from != head && edge.to != head
            };
            let d = bfs_hop_bounded(&g, &[1], n, avoid_head);
            for k in 1..pod_size {
                prop_assert!(
                    d[k].is_finite(),
                    "member {} stranded after head crash", k
                );
            }
        }
    }

    #[test]
    fn bfs_tree_depths_are_undirected_distances(
        n in 2usize..60,
        seed in 0u64..500,
    ) {
        let g = random_digraph(n, 2 * n, seed);
        let root = seed as usize % n;
        let mut net = Network::new(&g);
        let (tree, _) = build_bfs_tree(&mut net, root).unwrap();
        // Centralized undirected BFS.
        let mut dist = vec![usize::MAX; n];
        let mut q = std::collections::VecDeque::new();
        dist[root] = 0;
        q.push_back(root);
        while let Some(u) = q.pop_front() {
            for w in g.undirected_neighbors(u) {
                if dist[w] == usize::MAX {
                    dist[w] = dist[u] + 1;
                    q.push_back(w);
                }
            }
        }
        for v in 0..n {
            prop_assert_eq!(tree.depth[v] as usize, dist[v]);
        }
    }
}
