//! Property-based tests for the `congest` communication primitives:
//! whatever the topology, the primitives must deliver exactly the right
//! data within their claimed round bounds.

use congest::aggregate::{aggregate, AggOp};
use congest::bfs_tree::build_bfs_tree;
use congest::broadcast::broadcast;
use congest::multi_bfs::{default_budget, multi_source_bfs, MultiBfsConfig};
use congest::pipeline::{diagonal_dp, prefix_sweep, Lane};
use congest::Network;
use graphkit::alg::bfs_hop_bounded;
use graphkit::gen::random_digraph;
use graphkit::{Dist, GraphBuilder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn broadcast_delivers_every_item_to_everyone(
        n in 4usize..60,
        per_node in 0usize..4,
        seed in 0u64..500,
    ) {
        let g = random_digraph(n, 2 * n, seed);
        let mut net = Network::new(&g);
        let (tree, _) = build_bfs_tree(&mut net, 0);
        let items: Vec<Vec<u64>> = (0..n)
            .map(|v| (0..per_node).map(|j| (v * 10 + j) as u64).collect())
            .collect();
        let total: usize = items.iter().map(|i| i.len()).sum();
        let (out, stats) = broadcast(&mut net, &tree, items, |_| 16, "bc");
        for v in 0..n {
            prop_assert_eq!(out[v].len(), total);
            prop_assert_eq!(&out[v], &out[0], "node {} diverged", v);
        }
        let mut sorted = out[0].clone();
        sorted.sort_unstable();
        let mut expect: Vec<u64> = (0..n)
            .flat_map(|v| (0..per_node).map(move |j| (v * 10 + j) as u64))
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(sorted, expect);
        // Lemma 2.4's O(M + D) with an explicit constant.
        prop_assert!(stats.rounds <= 3 * (total as u64 + tree.height) + 8);
    }

    #[test]
    fn multi_bfs_equals_centralized_oracle(
        n in 4usize..50,
        k in 1usize..6,
        h in 1u64..30,
        seed in 0u64..500,
    ) {
        let g = random_digraph(n, 3 * n, seed);
        let sources: Vec<usize> = (0..k).map(|i| (i * 13 + 1) % n).collect();
        let cfg = MultiBfsConfig {
            sources: &sources,
            max_dist: h,
            reverse: false,
            delays: None,
        };
        let mut net = Network::new(&g);
        let (dist, stats) =
            multi_source_bfs(&mut net, &cfg, |_| true, "mbfs", default_budget(k, h))
                .expect("quiesces");
        for (i, &s) in sources.iter().enumerate() {
            let oracle = bfs_hop_bounded(&g, &[s], h as usize, |_| true);
            prop_assert_eq!(&dist[i], &oracle, "source {}", s);
        }
        // Lemma 5.5's O(k + h) with an explicit constant.
        prop_assert!(stats.rounds <= 2 * (k as u64 + h) + 16);
    }

    #[test]
    fn prefix_sweep_is_a_prefix_min(
        len in 2usize..20,
        jobs in 1usize..10,
        seed in 0u64..500,
    ) {
        let mut b = GraphBuilder::new(len);
        let links: Vec<usize> = (0..len - 1).map(|i| b.add_arc(i, i + 1)).collect();
        let g = b.build();
        let lane = Lane::forward((0..len).collect(), links);
        let val = |pos: usize, job: usize| {
            ((pos as u64 * 7919 + job as u64 * 104729 + seed) % 97) + 1
        };
        let mut net = Network::new(&g);
        let (out, stats) = prefix_sweep(
            &mut net,
            std::slice::from_ref(&lane),
            jobs,
            &|_, pos, job| Dist::new(val(pos, job)),
            "sweep",
        );
        for pos in 0..len {
            for job in 0..jobs {
                let expect = (0..=pos).map(|p| val(p, job)).min().unwrap();
                prop_assert_eq!(out[0][pos][job], Dist::new(expect));
            }
        }
        prop_assert_eq!(stats.rounds, jobs as u64 + len as u64);
    }

    #[test]
    fn diagonal_dp_matches_direct_recurrence(
        len in 2usize..16,
        rounds in 1u64..12,
        seed in 0u64..500,
    ) {
        let mut b = GraphBuilder::new(len);
        let links: Vec<usize> = (0..len - 1).map(|i| b.add_arc(i, i + 1)).collect();
        let g = b.build();
        let lane = Lane::forward((0..len).collect(), links);
        let f = |p: usize, r: u64| ((p as u64 * 31 + r * 17 + seed) % 89) + 1;
        let mut net = Network::new(&g);
        let (cur, _) = diagonal_dp(
            &mut net,
            &lane,
            |p| Dist::new(f(p, 0)),
            &|p, r| Dist::new(f(p, r)),
            rounds,
            "dp",
        );
        let mut reference: Vec<Dist> = (0..len).map(|p| Dist::new(f(p, 0))).collect();
        for r in 1..=rounds {
            let prev = reference.clone();
            for p in 0..len {
                let local = Dist::new(f(p, r));
                reference[p] = if p == 0 { local } else { prev[p - 1].min(local) };
            }
        }
        prop_assert_eq!(cur, reference);
    }

    #[test]
    fn aggregate_matches_local_fold(
        n in 2usize..60,
        seed in 0u64..500,
    ) {
        let g = random_digraph(n, 2 * n, seed);
        let values: Vec<Dist> = (0..n)
            .map(|v| Dist::new(((v as u64 * 37 + seed) % 1000) + 1))
            .collect();
        for (op, expect) in [
            (AggOp::Min, values.iter().copied().min().unwrap()),
            (AggOp::Max, values.iter().copied().max().unwrap()),
            (AggOp::Sum, values.iter().copied().sum()),
        ] {
            let mut net = Network::new(&g);
            let (tree, _) = build_bfs_tree(&mut net, seed as usize % n);
            prop_assert_eq!(aggregate(&mut net, &tree, op, &values), expect);
        }
    }

    #[test]
    fn bfs_tree_depths_are_undirected_distances(
        n in 2usize..60,
        seed in 0u64..500,
    ) {
        let g = random_digraph(n, 2 * n, seed);
        let root = seed as usize % n;
        let mut net = Network::new(&g);
        let (tree, _) = build_bfs_tree(&mut net, root);
        // Centralized undirected BFS.
        let mut dist = vec![usize::MAX; n];
        let mut q = std::collections::VecDeque::new();
        dist[root] = 0;
        q.push_back(root);
        while let Some(u) = q.pop_front() {
            for w in g.undirected_neighbors(u) {
                if dist[w] == usize::MAX {
                    dist[w] = dist[u] + 1;
                    q.push_back(w);
                }
            }
        }
        for v in 0..n {
            prop_assert_eq!(tree.depth[v] as usize, dist[v]);
        }
    }
}
