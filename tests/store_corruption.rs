//! Adversarial corruption suite for the snapshot store: no sequence of
//! bit flips or truncations may panic, hang, or hand back a silently
//! wrong graph.
//!
//! The contract under test (see `crates/store/src/lib.rs`):
//!
//! - Every single-byte flip is *detected* — CRC32 catches all of them —
//!   so a mutated file either fails with a structured [`StoreError`] or
//!   degrades to [`Loaded::Partial`] with the graph bit-identical to
//!   the original. `Ok(Complete)` on a flipped byte would mean silent
//!   corruption and fails the suite.
//! - Every truncation, at section boundaries and everywhere else, is a
//!   structured error or a partial load; never a panic.
//! - Unknown section tags are skipped (forward compatibility), and
//!   corruption in an *artifact* section never takes the graph with it.
//! - A graph reloaded from a snapshot drives the solver to the same
//!   answers and the same round/message accounting as the original —
//!   at any `CONGEST_THREADS` (CI runs this suite at 1 and 8).

use graphkit::gen::{metro_ring, random_digraph};
use graphkit::DiGraph;
use rpaths_core::artifacts::{cache_artifact, dists_artifact, tree_artifact};
use rpaths_core::{unweighted, ArtifactKind, CacheValue, Instance, Params};
use rpaths_store::{crc32, Artifact, Loaded, Snapshot, StoreError};
use std::sync::Arc;

/// A representative snapshot: a real graph plus tree, dists, blob, and
/// session-cache artifacts, so flips land in every section type the
/// format has ([`TAG_CACHE`] included).
fn sample() -> (Vec<u8>, Vec<u8>) {
    let g = random_digraph(24, 60, 9);
    let mut net = congest::Network::new(&g);
    let (tree, _) = congest::bfs_tree::build_bfs_tree(&mut net, 0).expect("spanning");
    let fp = g.fingerprint();
    let graph_bytes = g.to_snapshot();
    let mut snap = Snapshot::new(g);
    snap.artifacts.push(tree_artifact("bfs/0", &tree));
    snap.artifacts.push(dists_artifact(
        "dists",
        &[graphkit::Dist::new(5), graphkit::Dist::INF],
    ));
    snap.artifacts
        .push(Artifact::blob("notes", b"free-form payload".to_vec()));
    // Two persisted session-cache entries, as SolverSession::save writes
    // them: a cheap scalar and a full replacement-answers vector.
    snap.artifacts.push(cache_artifact(
        fp,
        &ArtifactKind::Diameter,
        &CacheValue::Diameter(7),
    ));
    snap.artifacts.push(cache_artifact(
        fp,
        &ArtifactKind::Replacement {
            source: 0,
            target: 5,
            solver: rpaths_core::SolverKind::Unweighted,
            params_fp: 0xfeed,
            path_fp: 0xbeef,
        },
        &CacheValue::Replacement(Arc::new(rpaths_core::weighted::ScaledAnswers {
            scaled: vec![graphkit::Dist::new(6), graphkit::Dist::INF],
            den: 1,
        })),
    ));
    (snap.encode(), graph_bytes)
}

/// The only acceptable outcomes for a mutated file: a structured error,
/// or a load whose graph is bit-identical to the original.
fn assert_detected(bytes: &[u8], graph_bytes: &[u8], what: &str) {
    match Snapshot::decode(bytes) {
        Err(_) => {}
        Ok(loaded) => {
            assert_eq!(
                loaded.snapshot().graph.to_snapshot(),
                graph_bytes,
                "{what}: graph silently corrupted"
            );
            assert!(
                loaded.is_partial()
                    || !loaded.dropped().is_empty()
                    || bytes_reencode(&loaded, bytes),
                "{what}: mutation accepted as a complete, unchanged load"
            );
        }
    }
}

/// Whether a load re-encodes to the input bytes (i.e. the mutation was
/// in a bit the format legitimately does not cover — there are none,
/// but the check keeps the assertion honest).
fn bytes_reencode(loaded: &Loaded, bytes: &[u8]) -> bool {
    loaded.snapshot().encode() == bytes
}

#[test]
fn every_single_byte_flip_is_detected() {
    let (bytes, graph_bytes) = sample();
    for pattern in [0xffu8, 0x01] {
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= pattern;
            assert_detected(
                &mutated,
                &graph_bytes,
                &format!("flip {i} ^ {pattern:#04x}"),
            );
        }
    }
}

#[test]
fn every_truncation_is_structured() {
    let (bytes, graph_bytes) = sample();
    for cut in 0..bytes.len() {
        let mutated = &bytes[..cut];
        match Snapshot::decode(mutated) {
            Err(_) => {}
            Ok(loaded) => {
                // A truncated file can never be complete: the footer is
                // gone.
                assert!(loaded.is_partial(), "cut {cut}: truncation loaded Complete");
                assert_eq!(
                    loaded.snapshot().graph.to_snapshot(),
                    graph_bytes,
                    "cut {cut}: graph corrupted by truncation"
                );
            }
        }
    }
}

#[test]
fn corrupting_each_artifact_drops_only_artifacts() {
    let (bytes, graph_bytes) = sample();
    // Walk the real section boundaries and flip one payload byte inside
    // each non-graph section.
    let mut pos = 12; // header
    let mut section = 0;
    while pos + 12 <= bytes.len() - 8 {
        let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()) as usize;
        let payload = pos + 12;
        if section > 0 && len > 0 {
            let mut mutated = bytes.clone();
            mutated[payload + len / 2] ^= 0xff;
            match Snapshot::decode(&mutated) {
                Ok(Loaded::Partial {
                    recovered, dropped, ..
                }) => {
                    assert_eq!(recovered.graph.to_snapshot(), graph_bytes);
                    assert!(
                        dropped.iter().any(|d| d.section == section),
                        "section {section} not reported dropped"
                    );
                }
                other => panic!("section {section}: expected Partial, got {other:?}"),
            }
        }
        pos = payload + len + 4;
        section += 1;
    }
    assert!(section >= 6, "expected graph + 5 artifact sections");
}

#[test]
fn corrupt_cache_sections_degrade_to_partial_cold_cache() {
    // The session-cache acceptance criterion at the store layer:
    // corrupting a persisted cache section must yield `Loaded::Partial`
    // with the graph bit-identical — a cold cache, never a failed load.
    let (bytes, graph_bytes) = sample();
    // Every cache artifact key starts with "cache/"; flipping a byte of
    // that marker breaks exactly that section's CRC.
    let positions: Vec<usize> = bytes
        .windows(6)
        .enumerate()
        .filter(|(_, w)| *w == b"cache/")
        .map(|(i, _)| i)
        .collect();
    assert_eq!(positions.len(), 2, "sample persists two cache sections");
    for pos in positions {
        let mut mutated = bytes.clone();
        mutated[pos] ^= 0xff;
        match Snapshot::decode(&mutated) {
            Ok(Loaded::Partial {
                recovered, dropped, ..
            }) => {
                assert_eq!(
                    recovered.graph.to_snapshot(),
                    graph_bytes,
                    "graph must survive cache corruption"
                );
                assert!(!dropped.is_empty(), "the bad cache section is reported");
            }
            other => panic!("cache flip at {pos}: expected Partial, got {other:?}"),
        }
    }
}

#[test]
fn unknown_sections_round_past_known_ones() {
    let (bytes, graph_bytes) = sample();
    // Splice an unknown section (tag 0x7001) between graph and the
    // first artifact, rebuilding the footer.
    let mut pos = 12;
    let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()) as usize;
    pos += 12 + len + 4; // end of graph section
    let mut spliced = bytes[..pos].to_vec();
    let tag: u32 = 0x7001;
    let body = b"opaque future payload";
    spliced.extend_from_slice(&tag.to_le_bytes());
    spliced.extend_from_slice(&(body.len() as u64).to_le_bytes());
    spliced.extend_from_slice(body);
    let mut framed = tag.to_le_bytes().to_vec();
    framed.extend_from_slice(&(body.len() as u64).to_le_bytes());
    framed.extend_from_slice(body);
    spliced.extend_from_slice(&crc32(&framed).to_le_bytes());
    spliced.extend_from_slice(&bytes[pos..bytes.len() - 8]);
    let crc = crc32(&spliced);
    spliced.extend_from_slice(b"RPFT");
    spliced.extend_from_slice(&crc.to_le_bytes());
    match Snapshot::decode(&spliced) {
        Ok(Loaded::Complete {
            snapshot,
            skipped_unknown,
        }) => {
            assert_eq!(skipped_unknown, vec![0x7001]);
            assert_eq!(snapshot.graph.to_snapshot(), graph_bytes);
            assert_eq!(snapshot.artifacts.len(), 5);
        }
        other => panic!("expected Complete with a skip, got {other:?}"),
    }
}

#[test]
fn empty_garbage_and_wrong_version_are_structured() {
    assert!(matches!(
        Snapshot::decode(&[]),
        Err(StoreError::Truncated { .. })
    ));
    assert!(matches!(
        Snapshot::decode(&[0xab; 64]),
        Err(StoreError::BadMagic)
    ));
    let mut v = b"RPATHSNP".to_vec();
    v.extend_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        Snapshot::decode(&v),
        Err(StoreError::VersionUnsupported { found: 99 })
    ));
}

#[test]
fn snapshot_graph_drives_identical_solves() {
    // The acceptance criterion: a solve on a graph loaded from a
    // snapshot is indistinguishable — answers *and* metrics — from a
    // solve on the original. Runs at whatever CONGEST_THREADS the
    // environment sets; CI pins 1 and 8.
    for (g, s, t) in [
        (metro_ring(10), 0usize, 5usize),
        (random_digraph(30, 90, 4), 0, 17),
    ] {
        let bytes = Snapshot::new(g.clone()).encode();
        let reloaded = Snapshot::decode(&bytes)
            .expect("decode")
            .expect_complete("parity")
            .graph;
        let solve = |g: &DiGraph| {
            let inst = Instance::from_endpoints(g, s, t).expect("connected");
            let params = Params::for_instance(&inst);
            unweighted::solve(&inst, &params).expect("solve")
        };
        let fresh = solve(&g);
        let warm = solve(&reloaded);
        assert_eq!(fresh.replacement, warm.replacement);
        assert_eq!(fresh.metrics, warm.metrics);
    }
}
