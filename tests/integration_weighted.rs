//! Cross-crate integration: Theorem 3's `(1+ε)` guarantee on weighted
//! directed graphs, checked in exact rational arithmetic against the
//! centralized oracle.

use graphkit::alg::{replacement_lengths, shortest_st_path};
use graphkit::gen::{parallel_lane, random_weighted_digraph};
use rpaths_core::{weighted, Instance, Params};

fn usable_instance(
    n: usize,
    m: usize,
    w: u64,
    seed: u64,
) -> Option<(graphkit::DiGraph, usize, usize)> {
    let g = random_weighted_digraph(n, m, w, seed);
    let (s, t) = graphkit::gen::random_reachable_pair(&g, seed ^ 0xaaaa)?;
    let p = shortest_st_path(&g, s, t)?;
    (p.hops() >= 3).then_some(()).map(|_| (g, s, t))
}

fn check(g: &graphkit::DiGraph, s: usize, t: usize, params: &Params) {
    let inst = Instance::from_endpoints(g, s, t).unwrap();
    let out = weighted::solve(&inst, params).unwrap();
    let oracle = replacement_lengths(g, &inst.path);
    out.check_guarantee(&oracle, params.eps_num, params.eps_den)
        .unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn guarantee_holds_across_seeds_and_weights() {
    let mut tested = 0;
    for seed in 0..20 {
        let w = 1 + (seed % 4) * 7; // weights 1, 8, 15, 22
        let Some((g, s, t)) = usable_instance(40, 130, w, seed) else {
            continue;
        };
        let mut params = Params::with_zeta(40, 6).with_seed(seed);
        params.landmark_prob = 1.0;
        check(&g, s, t, &params);
        tested += 1;
    }
    assert!(tested >= 10, "only {tested} usable instances");
}

#[test]
fn guarantee_holds_for_several_epsilons() {
    let Some((g, s, t)) = usable_instance(36, 110, 9, 101) else {
        panic!("seed 101 must produce an instance");
    };
    for (num, den) in [(1u64, 2u64), (1, 4), (1, 10), (9, 10)] {
        let mut params = Params::with_zeta(36, 5).with_eps(num, den).with_seed(3);
        params.landmark_prob = 1.0;
        check(&g, s, t, &params);
    }
}

#[test]
fn weighted_solver_is_exactly_right_on_unweighted_input() {
    // On an unweighted graph the exact answers are integers; the (1+ε)
    // bracket still applies and the lower side must be tight.
    let (g, s, t) = parallel_lane(16, 4, 2);
    let inst = Instance::from_endpoints(&g, s, t).unwrap();
    let mut params = Params::with_zeta(inst.n(), 5);
    params.landmark_prob = 1.0;
    let out = weighted::solve(&inst, &params).unwrap();
    let oracle = replacement_lengths(&g, &inst.path);
    out.check_guarantee(&oracle, params.eps_num, params.eps_den)
        .unwrap();
}

#[test]
fn heavy_single_edge_detours_are_found() {
    // A heavy bypass edge s -> t is a 1-hop detour spanning the whole
    // path — the exact situation the interval machinery exists for.
    let mut b = graphkit::GraphBuilder::new(8);
    for i in 0..7 {
        b.add_edge(i, i + 1, 2);
    }
    b.add_edge(0, 7, 100); // bypass
    let g = b.build();
    let inst = Instance::from_endpoints(&g, 0, 7).unwrap();
    assert_eq!(inst.hops(), 7);
    let mut params = Params::with_zeta(8, 2); // tiny ζ: many intervals
    params.landmark_prob = 1.0;
    let out = weighted::solve(&inst, &params).unwrap();
    let oracle = replacement_lengths(&g, &inst.path);
    assert!(oracle.iter().all(|d| d.finite() == Some(100)));
    out.check_guarantee(&oracle, params.eps_num, params.eps_den)
        .unwrap();
}

#[test]
fn default_parameters_on_midsize_weighted_instance() {
    let Some((g, s, t)) = usable_instance(150, 500, 20, 77) else {
        panic!("seed 77 must produce an instance");
    };
    let inst = Instance::from_endpoints(&g, s, t).unwrap();
    let params = Params::for_instance(&inst).with_seed(2);
    let out = weighted::solve(&inst, &params).unwrap();
    let oracle = replacement_lengths(&g, &inst.path);
    out.check_guarantee(&oracle, params.eps_num, params.eps_den)
        .unwrap();
}
