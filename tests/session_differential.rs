//! Differential tests for the solver-session layer: cached answers must
//! be *bit-identical* to one-shot solves — answers and, where phases
//! actually run, full `Metrics` equality (`total`/`phases`/`faults`) —
//! at every thread count, and the deterministic LRU cache must behave
//! exactly like its naive model.
//!
//! Acceptance criteria pinned here:
//! - a batch of Q same-graph failed-edge queries through
//!   `SolverSession::solve_batch` reports a nonzero cache hit rate and
//!   answers bit-identical to Q independent one-shot solves, at threads
//!   {1, 2, 8};
//! - a snapshot-persisted cache warm-boots with **zero** recomputed
//!   artifacts (no solver runs, no rounds) for repeated queries;
//! - corruption of persisted cache sections degrades to a cold cache,
//!   never a failed load or a wrong answer.

use std::path::PathBuf;

use graphkit::alg::replacement_lengths;
use graphkit::gen::{planted_path_digraph, random_weighted_digraph};
use graphkit::Dist;
use proptest::prelude::*;
use rpaths_core::{
    unweighted, weighted, ArtifactCache, CacheKey, Instance, Params, Query, SolverSession,
};

const THREADS: [usize; 3] = [1, 2, 8];

fn unweighted_case() -> (graphkit::DiGraph, usize, usize, Params) {
    let (g, s, t) = planted_path_digraph(40, 12, 100, 7);
    let mut params = Params::with_zeta(40, 5).with_seed(7);
    params.landmark_prob = 1.0;
    (g, s, t, params)
}

fn temp_snapshot(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rpaths-session-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn batch_is_bit_identical_to_one_shot_solves_across_threads() {
    let (g, s, t, params) = unweighted_case();
    let inst = Instance::from_endpoints(&g, s, t).unwrap();
    let reference = unweighted::solve(&inst, &params).unwrap();
    let oracle = replacement_lengths(&g, &inst.path);
    assert_eq!(reference.replacement, oracle);

    for threads in THREADS {
        let mut session = SolverSession::new(&g, params.clone());
        session.set_threads(threads);
        let mut queries: Vec<Query> = inst
            .path
            .edges()
            .iter()
            .map(|&e| Query::avoiding(s, t, e))
            .collect();
        queries.push(Query::intact(s, t));

        let answers = session.solve_batch(&queries).unwrap();
        for (i, a) in answers[..inst.hops()].iter().enumerate() {
            assert_eq!(
                a.scaled, reference.replacement[i],
                "threads {threads} edge {i}"
            );
            assert_eq!(a.den, 1);
        }
        assert_eq!(
            answers[inst.hops()].scaled,
            Dist::new(inst.hops() as u64),
            "intact query answers |P|"
        );

        // Full Metrics equality where phases ran: the batch executed
        // exactly one cold solve, and the one-shot reference is that
        // same cold solve. (`Metrics` equality covers total/phases/
        // faults; cache and dispatch telemetry are excluded by design.)
        let cold = session.take_metrics();
        assert_eq!(cold, reference.metrics, "threads {threads}");
        assert_eq!(session.stats().solver_runs, 1);

        // The warm repeat: bit-identical answers, zero new phases, and
        // a nonzero hit rate reported in CacheStats.
        let again = session.solve_batch(&queries).unwrap();
        assert_eq!(again, answers, "threads {threads} warm");
        let warm = session.take_metrics();
        assert_eq!(warm.rounds(), 0, "warm batch ran no rounds");
        assert!(warm.phases.is_empty(), "warm batch ran no phases");
        assert!(warm.cache.hits > 0, "warm batch must hit the cache");
        assert!(warm.cache.hit_rate() > 0.0);
        assert_eq!(session.stats().solver_runs, 1, "no recomputation");
    }
}

#[test]
fn weighted_batch_is_bit_identical_to_one_shot_solves() {
    let g = random_weighted_digraph(30, 110, 9, 3);
    let (s, t) = graphkit::gen::random_reachable_pair(&g, 5).unwrap();
    let inst = Instance::from_endpoints(&g, s, t).unwrap();
    assert!(inst.hops() >= 3, "instance too small to be interesting");
    let mut params = Params::with_zeta(30, 5).with_seed(3);
    params.landmark_prob = 1.0;
    let reference = weighted::solve(&inst, &params).unwrap();

    for threads in THREADS {
        let mut session = SolverSession::new(&g, params.clone());
        session.set_threads(threads);
        let queries: Vec<Query> = inst
            .path
            .edges()
            .iter()
            .map(|&e| Query::avoiding(s, t, e))
            .collect();
        let answers = session.solve_batch(&queries).unwrap();
        for (i, a) in answers.iter().enumerate() {
            assert_eq!(a.scaled, reference.scaled[i], "threads {threads} edge {i}");
            assert_eq!(a.den, reference.den, "threads {threads} edge {i}");
        }
        assert_eq!(
            session.take_metrics(),
            reference.metrics,
            "threads {threads}"
        );

        let again = session.solve_batch(&queries).unwrap();
        assert_eq!(again, answers);
        assert_eq!(session.metrics().rounds(), 0);
        assert!(session.stats().cache.hit_rate() > 0.0);
    }
}

#[test]
fn persisted_cache_warm_boots_with_zero_recomputed_artifacts() {
    let (g, s, t, params) = unweighted_case();
    let inst = Instance::from_endpoints(&g, s, t).unwrap();
    let queries: Vec<Query> = inst
        .path
        .edges()
        .iter()
        .map(|&e| Query::avoiding(s, t, e))
        .collect();

    let path = temp_snapshot("warm.snap");
    let mut warm_session = SolverSession::new(&g, params.clone());
    let answers = warm_session.solve_batch(&queries).unwrap();
    warm_session.save(&path).unwrap();
    assert!(!warm_session.cache().is_empty());

    // A fresh session warm-boots and answers the same batch with zero
    // recomputed artifacts: no solver runs, no rounds, pure cache hits.
    let mut cold_session = SolverSession::new(&g, params.clone());
    let imported = cold_session.warm_boot(&path).unwrap();
    assert_eq!(imported, warm_session.cache().len());
    let again = cold_session.solve_batch(&queries).unwrap();
    assert_eq!(again, answers);
    assert_eq!(cold_session.stats().solver_runs, 0, "nothing recomputed");
    assert_eq!(cold_session.metrics().rounds(), 0, "no phases ran");
    assert!(cold_session.stats().cache.hits > 0);

    // A snapshot of a *different* graph imports nothing (and is not an
    // error either).
    let (other, ..) = planted_path_digraph(41, 12, 100, 8);
    let mut mismatched = SolverSession::new(&other, params.clone());
    assert_eq!(mismatched.warm_boot(&path).unwrap(), 0);

    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupt_cache_sections_degrade_to_cold_never_fail() {
    let (g, s, t, params) = unweighted_case();
    let inst = Instance::from_endpoints(&g, s, t).unwrap();
    let queries: Vec<Query> = inst
        .path
        .edges()
        .iter()
        .map(|&e| Query::avoiding(s, t, e))
        .collect();

    let path = temp_snapshot("corrupt.snap");
    let mut session = SolverSession::new(&g, params.clone());
    let answers = session.solve_batch(&queries).unwrap();
    session.save(&path).unwrap();

    // Corrupt a byte inside a cache section: every persisted cache key
    // starts with "cache/", so flipping a byte of that string breaks
    // exactly one cache section's checksum, never the graph's.
    let mut bytes = std::fs::read(&path).unwrap();
    let pos = bytes
        .windows(6)
        .position(|w| w == b"cache/")
        .expect("snapshot holds cache sections");
    bytes[pos] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();

    let mut rebooted = SolverSession::new(&g, params.clone());
    let imported = rebooted.warm_boot(&path).unwrap();
    assert!(
        imported < session.cache().len(),
        "the corrupted section must not be imported"
    );
    // The colder session still answers correctly — it recomputes what
    // the corruption cost it.
    let again = rebooted.solve_batch(&queries).unwrap();
    assert_eq!(again, answers);

    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------
// Deterministic LRU proptests
// ---------------------------------------------------------------------

/// A cache op over a small key space. Generated as a raw `u64` (the
/// vendored proptest subset has no `prop_oneof`): even codes are gets,
/// odd codes are inserts, each over keys `0..24`.
#[derive(Clone, Debug)]
enum Op {
    Get(u64),
    Insert(u64),
}

fn decode_op(code: u64) -> Op {
    if code.is_multiple_of(2) {
        Op::Get(code / 2)
    } else {
        Op::Insert(code / 2)
    }
}

fn key_for(i: u64) -> CacheKey {
    CacheKey {
        fingerprint: 0xfeed_f00d,
        kind: rpaths_core::ArtifactKind::Tree { root: i as usize },
    }
}

fn apply(cache: &mut ArtifactCache, ops: &[Op]) -> Vec<CacheKey> {
    let mut trace = Vec::new();
    for op in ops {
        match op {
            Op::Get(i) => {
                let _ = cache.get(&key_for(*i));
            }
            Op::Insert(i) => {
                cache.insert(key_for(*i), rpaths_core::CacheValue::Diameter(*i as usize));
            }
        }
        trace.extend(cache.entries_by_recency().into_iter().map(|(k, _)| k));
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Two caches fed the same op sequence agree on *everything*:
    /// contents, recency order after every step, and all counters.
    /// (This is the determinism the persistence format and the
    /// engine-equivalence story rely on.)
    #[test]
    fn lru_is_deterministic(
        codes in proptest::collection::vec(0u64..48, 1..120),
        cap in 1usize..8,
    ) {
        let ops: Vec<Op> = codes.iter().map(|&c| decode_op(c)).collect();
        let mut a = ArtifactCache::new(cap);
        let mut b = ArtifactCache::new(cap);
        let trace_a = apply(&mut a, &ops);
        let trace_b = apply(&mut b, &ops);
        prop_assert_eq!(trace_a, trace_b);
        prop_assert_eq!(a.len(), b.len());
        let (sa, sb) = (a.stats(), b.stats());
        prop_assert_eq!(
            (sa.hits, sa.misses, sa.insertions, sa.evictions),
            (sb.hits, sb.misses, sb.insertions, sb.evictions)
        );
    }

    /// Capacity is a hard bound, and eviction follows the textbook LRU
    /// model: a naive Vec-based model and the BTreeMap implementation
    /// hold exactly the same keys at every step.
    #[test]
    fn lru_matches_naive_model_and_never_exceeds_capacity(
        codes in proptest::collection::vec(0u64..48, 1..160),
        cap in 1usize..6,
    ) {
        let ops: Vec<Op> = codes.iter().map(|&c| decode_op(c)).collect();
        let mut cache = ArtifactCache::new(cap);
        // The model: most-recent at the back.
        let mut model: Vec<u64> = Vec::new();
        for op in &ops {
            match op {
                Op::Get(i) => {
                    let hit = cache.get(&key_for(*i)).is_some();
                    let model_hit = model.contains(i);
                    prop_assert_eq!(hit, model_hit, "hit status diverged on {:?}", op);
                    if model_hit {
                        model.retain(|k| k != i);
                        model.push(*i);
                    }
                }
                Op::Insert(i) => {
                    cache.insert(key_for(*i), rpaths_core::CacheValue::Diameter(*i as usize));
                    model.retain(|k| k != i);
                    model.push(*i);
                    if model.len() > cap {
                        model.remove(0); // evict the least recently used
                    }
                }
            }
            prop_assert!(cache.len() <= cap, "capacity exceeded: {} > {cap}", cache.len());
            prop_assert_eq!(cache.len(), model.len());
            let keys: Vec<CacheKey> =
                cache.entries_by_recency().into_iter().map(|(k, _)| k).collect();
            let model_keys: Vec<CacheKey> = model.iter().map(|&i| key_for(i)).collect();
            prop_assert_eq!(keys, model_keys, "recency order diverged");
        }
    }
}
