//! Cross-crate integration: 2-SiSP and the Section 6 lower-bound
//! machinery working together — the reduction solved by the real
//! distributed algorithm.

use graphkit::alg::second_simple_shortest;
use graphkit::gen::planted_path_digraph;
use graphkit::Dist;
use rpaths_core::{sisp, Instance, Params};
use rpaths_lb::disjointness::run_reduction;
use rpaths_lb::hard::{build, random_inputs};
use rpaths_lb::lemma68::verify;

#[test]
fn distributed_sisp_matches_oracle_on_hard_graphs() {
    // The lower-bound construction is also a perfectly good input for
    // the upper-bound algorithm; the two sides of the paper meet here.
    for seed in 0..4 {
        let (m, x) = random_inputs(2, seed + 50);
        let hg = build(2, 2, 2, &m, &x);
        let inst = Instance::from_endpoints(&hg.graph, hg.s, hg.t).unwrap();
        let mut params = Params::for_instance(&inst).with_seed(seed);
        params.landmark_prob = 1.0;
        let out = sisp::solve(&inst, &params).unwrap();
        let oracle = second_simple_shortest(&hg.graph, &inst.path);
        assert_eq!(out.value, oracle, "seed {seed}");
    }
}

#[test]
fn lemma68_and_distributed_solver_agree() {
    for seed in 0..4 {
        let (m, x) = random_inputs(2, seed);
        let hg = build(2, 2, 3, &m, &x);
        let report = verify(&hg, &m, &x);
        assert!(report.all_ok());

        let inst = Instance::from_endpoints(&hg.graph, hg.s, hg.t).unwrap();
        let mut params = Params::for_instance(&inst).with_seed(seed);
        params.landmark_prob = 1.0;
        let out = sisp::solve(&inst, &params).unwrap();
        assert_eq!(out.value, report.sisp, "seed {seed}");
    }
}

#[test]
fn reduction_is_correct_over_many_inputs() {
    for seed in 0..8 {
        let (m, x) = random_inputs(2, seed * 7 + 3);
        let y: Vec<bool> = m.iter().flatten().copied().collect();
        let out = run_reduction(2, 2, 2, &x, &y, seed);
        assert_eq!(out.disjoint, out.expected_disjoint, "seed {seed}");
        assert!(out.cut_bits >= out.bob_bits, "seed {seed}");
    }
}

#[test]
fn sisp_equals_min_of_rpaths_output() {
    for seed in 0..3 {
        let (g, s, t) = planted_path_digraph(50, 14, 120, seed);
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        let mut params = Params::with_zeta(50, 6).with_seed(seed);
        params.landmark_prob = 1.0;
        let rp = rpaths_core::unweighted::solve(&inst, &params).unwrap();
        let si = sisp::solve(&inst, &params).unwrap();
        assert_eq!(si.value, rp.sisp(), "seed {seed}");
    }
}

#[test]
fn larger_construction_still_decodes() {
    let (m, x) = random_inputs(3, 999);
    let y: Vec<bool> = m.iter().flatten().copied().collect();
    let out = run_reduction(3, 2, 3, &x, &y, 1);
    assert_eq!(out.disjoint, out.expected_disjoint);
    // Sanity on the instance shape: n = 2k·dᵖ + 4k³ + 2k + k² + 1 + tree.
    assert_eq!(out.n, 2 * 3 * 8 + 4 * 27 + 2 * 3 + 9 + 1 + 15);
}

#[test]
fn sisp_infinite_when_no_second_path() {
    let (g, s, t) = planted_path_digraph(12, 11, 0, 0);
    let inst = Instance::from_endpoints(&g, s, t).unwrap();
    let params = Params::for_instance(&inst);
    let out = sisp::solve(&inst, &params).unwrap();
    assert_eq!(out.value, Dist::INF);
}
