//! Replays the fuzz regression corpus and exercises the
//! catch → minimize → fixture pipeline end to end.
//!
//! Every `tests/regressions/*.rpfix` fixture is a self-contained
//! divergence repro (graph snapshot + demand + params + oracle
//! answers): the suite re-derives the oracle answers from the embedded
//! graph (so a stale fixture fails loudly, not silently) and then holds
//! the present-day solvers to them. Honors `CONGEST_THREADS` like the
//! rest of the suite: when set, every fixture is replayed at exactly
//! that engine width; when unset, at the thread counts recorded in the
//! fixture.

use std::path::PathBuf;

use rpaths_core::fixture::{Fixture, FixtureError, FIXTURE_EXT};
use rpaths_core::testhooks;
use rpaths_fuzz::{run_sweep, FuzzConfig};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/regressions")
}

fn corpus_paths() -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/regressions must exist")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some(FIXTURE_EXT))
        .collect();
    paths.sort();
    paths
}

fn thread_override() -> Option<usize> {
    std::env::var("CONGEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
}

#[test]
fn corpus_covers_every_solver_surface() {
    let names: Vec<String> = corpus_paths()
        .iter()
        .map(|p| p.file_stem().unwrap().to_string_lossy().into_owned())
        .collect();
    assert!(
        names.len() >= 6,
        "seed corpus must have at least one fixture per solver, got {names:?}"
    );
    for solver in [
        "unweighted",
        "weighted",
        "sisp",
        "reachability",
        "naive",
        "mr24",
    ] {
        assert!(
            names.iter().any(|n| n.contains(solver)),
            "no corpus fixture covers the {solver} solver: {names:?}"
        );
    }
}

#[test]
fn corpus_replays_green() {
    let paths = corpus_paths();
    assert!(!paths.is_empty());
    for path in paths {
        let fix = Fixture::read(&path)
            .unwrap_or_else(|e| panic!("{}: unreadable fixture: {e:?}", path.display()));
        fix.verify_oracle()
            .unwrap_or_else(|e| panic!("{}: stale oracle: {e:?}", path.display()));
        if let Err(e) = fix.replay(thread_override()) {
            panic!("{}: corpus replay diverged: {e:?}", path.display());
        }
    }
}

/// The acceptance gate for the whole pipeline: a deliberately injected
/// solver defect (flipped short/long merge tie-break, behind the
/// test-only thread-local hook) must be caught by the sweep, minimized
/// to a fixture-sized repro, and the written fixture must replay red
/// while the bug is present and green once it is gone.
#[test]
fn injected_bug_is_caught_minimized_and_replays_red() {
    let out_dir = std::env::temp_dir().join(format!("rpaths-fuzz-inject-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out_dir);

    // Seed 16 case 0 is a parallel-lane reachability case the flipped
    // merge breaks; one case keeps the test debug-build fast.
    let cfg = FuzzConfig {
        seed: 16,
        cases: 1,
        max_n: 600,
        threads_pool: vec![1, 2, 8],
        inject_tiebreak: true,
        minimize: true,
        out_dir: out_dir.clone(),
    };
    let report = run_sweep(&cfg, &mut |_| {});
    assert_eq!(report.divergences, 1, "the injected bug must be caught");
    assert_eq!(
        report.fixtures.len(),
        1,
        "the divergence must mint a fixture"
    );

    let fix = Fixture::read(&report.fixtures[0]).expect("minted fixture must read back");
    assert!(
        fix.graph.node_count() <= 32,
        "minimized repro too large: {} nodes",
        fix.graph.node_count()
    );

    // Red while the bug is present...
    testhooks::set_flip_unweighted_merge(true);
    let red = fix.replay(Some(1));
    testhooks::set_flip_unweighted_merge(false);
    match red {
        Err(FixtureError::Diverged(_)) => {}
        other => panic!("fixture must replay red under the injected bug, got {other:?}"),
    }

    // ...green once it is fixed.
    fix.replay(thread_override())
        .expect("fixture must replay green on the healthy solver");

    let _ = std::fs::remove_dir_all(&out_dir);
}
