//! Adversarial edge cases aimed at specific code paths of the
//! distributed algorithms: ties, parallel edges, detours that revisit
//! path vertices, minimal instances, and boundary thresholds.

use graphkit::alg::replacement_lengths;
use graphkit::{Dist, GraphBuilder, StPath};
use rpaths_core::oracle::oracle_query;
use rpaths_core::{unweighted, weighted, Instance, Params, Query, SolverSession};

fn full_params(n: usize, zeta: usize) -> Params {
    let mut p = Params::with_zeta(n, zeta);
    p.landmark_prob = 1.0;
    p
}

fn assert_exact(g: &graphkit::DiGraph, inst: &Instance<'_>, zeta: usize) {
    let out = unweighted::solve(inst, &full_params(inst.n(), zeta)).unwrap();
    assert_eq!(out.replacement, replacement_lengths(g, &inst.path));
}

#[test]
fn minimal_instance_single_edge_path() {
    // h_st = 1 with a 2-hop alternative.
    let mut b = GraphBuilder::new(3);
    b.add_arc(0, 2);
    b.add_arc(0, 1);
    b.add_arc(1, 2);
    let g = b.build();
    let inst = Instance::from_endpoints(&g, 0, 2).unwrap();
    assert_eq!(inst.hops(), 1);
    for zeta in [1, 2, 3] {
        assert_exact(&g, &inst, zeta);
    }
}

#[test]
fn parallel_edge_duplicates_of_path_edges() {
    // Each path edge has a parallel copy: every replacement is trivial
    // (same length as P), exercising 1-hop detours that start and end at
    // adjacent path vertices.
    let h = 6;
    let mut b = GraphBuilder::new(h + 1);
    for i in 0..h {
        b.add_arc(i, i + 1);
        b.add_arc(i, i + 1); // parallel copy
    }
    let g = b.build();
    // The path must use specific edge ids; pick the even ones.
    let p = StPath::new(&g, (0..h).map(|i| 2 * i).collect()).unwrap();
    let inst = Instance::new(&g, p).unwrap();
    let out = unweighted::solve(&inst, &full_params(inst.n(), 2)).unwrap();
    assert_eq!(out.replacement, vec![Dist::new(h as u64); h]);
}

#[test]
fn detours_through_path_vertices_are_legal() {
    // A detour may *visit* path vertices as long as it avoids path
    // edges: 0 -> 1 -> 2 -> 3 with detour 0 -> 2' -> 1' -> 3 where the
    // detour passes through path vertex 2 (via non-path edges).
    let mut b = GraphBuilder::new(5);
    b.add_arc(0, 1);
    b.add_arc(1, 2);
    b.add_arc(2, 3);
    // Non-path edges that hop across path vertices.
    b.add_arc(0, 2); // skips v1 (non-path edge between path vertices!)
    b.add_arc(2, 4);
    b.add_arc(4, 3);
    let g = b.build();
    let p = StPath::from_nodes(&g, &[0, 1, 2, 3]).unwrap();
    // 0 -> 2 direct would make P non-shortest... check: dist(0,3) via
    // 0->2->3 is 2 < 3, so P = [0,1,2,3] is NOT shortest. Use
    // from_endpoints instead and accept whatever shortest path exists.
    assert!(p.validate_shortest(&g).is_err());
    let inst = Instance::from_endpoints(&g, 0, 3).unwrap();
    assert_exact(&g, &inst, g.node_count());
}

#[test]
fn ties_everywhere_grid_with_equal_routes() {
    let (g, s, t) = graphkit::gen::grid(4, 4);
    let inst = Instance::from_endpoints(&g, s, t).unwrap();
    for zeta in [1, 2, 4, 16] {
        assert_exact(&g, &inst, zeta);
    }
}

#[test]
fn long_cycle_detour_far_from_path() {
    // The replacement must leave immediately and ride a huge loop.
    let h = 5;
    let loop_len = 40;
    let mut b = GraphBuilder::new(h + 1 + loop_len);
    for i in 0..h {
        b.add_arc(i, i + 1);
    }
    let first_loop = h + 1;
    b.add_arc(0, first_loop);
    for i in 0..loop_len - 1 {
        b.add_arc(first_loop + i, first_loop + i + 1);
    }
    b.add_arc(first_loop + loop_len - 1, h);
    let g = b.build();
    let inst = Instance::from_endpoints(&g, 0, h).unwrap();
    let oracle = replacement_lengths(&g, &inst.path);
    assert!(oracle
        .iter()
        .all(|d| d.finite() == Some(loop_len as u64 + 1)));
    // ζ far below the detour length: pure long-detour territory.
    assert_exact(&g, &inst, 3);
}

#[test]
fn weighted_ties_and_heavy_parallel_edges() {
    let mut b = GraphBuilder::new(5);
    b.add_edge(0, 1, 2);
    b.add_edge(1, 2, 2);
    b.add_edge(2, 3, 2);
    b.add_edge(3, 4, 2);
    // Bypass lanes of exactly tying weight.
    b.add_edge(0, 2, 4);
    b.add_edge(2, 4, 4);
    // And a heavy full bypass.
    b.add_edge(0, 4, 50);
    let g = b.build();
    let inst = Instance::from_endpoints(&g, 0, 4).unwrap();
    let params = full_params(5, 2).with_eps(1, 10);
    let out = weighted::solve(&inst, &params).unwrap();
    let oracle = replacement_lengths(&g, &inst.path);
    out.check_guarantee(&oracle, 1, 10).unwrap();
}

#[test]
fn zeta_larger_than_n_is_safe() {
    let (g, s, t) = graphkit::gen::parallel_lane(8, 2, 1);
    let inst = Instance::from_endpoints(&g, s, t).unwrap();
    assert_exact(&g, &inst, 10 * inst.n());
}

#[test]
fn star_vertex_high_degree_hub() {
    // A hub adjacent to every path vertex: detours of exactly 2 hops
    // from anywhere to anywhere — maximal congestion pressure on the
    // trimmed BFS.
    let h = 10;
    let hub = h + 1;
    let mut b = GraphBuilder::new(h + 2);
    for i in 0..h {
        b.add_arc(i, i + 1);
    }
    for i in 0..=h {
        b.add_arc(i, hub);
        b.add_arc(hub, i);
    }
    let g = b.build();
    let inst = Instance::from_endpoints(&g, 0, h).unwrap();
    for zeta in [1, 2, 3] {
        assert_exact(&g, &inst, zeta);
    }
}

#[test]
fn source_and_target_adjacent_to_everything() {
    // Dense fan-in/fan-out; every edge has a short bypass.
    let n = 14;
    let mut b = GraphBuilder::new(n);
    for i in 0..5 {
        b.add_arc(i, i + 1);
    }
    for v in 6..n {
        b.add_arc(0, v);
        b.add_arc(v, 5);
        // lateral links
        if v + 1 < n {
            b.add_arc(v, v + 1);
        }
    }
    let g = b.build();
    let inst = Instance::from_endpoints(&g, 0, 5).unwrap();
    assert_exact(&g, &inst, 4);
}

#[test]
fn path_knowledge_protocol_on_extreme_shapes() {
    // Lemma 2.5 on a pure path (max gap) and on a dense graph (min D).
    use congest::bfs_tree::build_bfs_tree;
    use congest::Network;
    use rpaths_core::knowledge;

    let (g, s, t) = graphkit::gen::planted_path_digraph(64, 63, 0, 0);
    let inst = Instance::from_endpoints(&g, s, t).unwrap();
    let params = Params::for_instance(&inst).with_seed(9);
    let mut net = Network::new(inst.graph);
    let (tree, _) = build_bfs_tree(&mut net, inst.s()).unwrap();
    let know = knowledge::acquire(&mut net, &inst, &params, &tree);
    assert_eq!(know.index, (0..=63).collect::<Vec<_>>());
    assert_eq!(know.dist_s, inst.prefix);
    assert_eq!(know.dist_t, inst.suffix);
}

#[test]
fn runs_are_fully_deterministic() {
    // Same seed, same instance: identical answers AND identical metrics
    // (round counts are results in this repo; they must be stable).
    let (g, s, t) = graphkit::gen::planted_path_digraph(80, 20, 200, 5);
    let inst = Instance::from_endpoints(&g, s, t).unwrap();
    let params = Params::for_instance(&inst).with_seed(123);
    let a = unweighted::solve(&inst, &params).unwrap();
    let b = unweighted::solve(&inst, &params).unwrap();
    assert_eq!(a.replacement, b.replacement);
    assert_eq!(a.metrics.total, b.metrics.total);
    assert_eq!(a.metrics.phases.len(), b.metrics.phases.len());
}

/// Answers `queries` through a fresh [`SolverSession`] and checks every
/// answer against the centralized replacement oracle.
fn assert_session_matches_oracle(g: &graphkit::DiGraph, queries: &[Query]) {
    let mut session = SolverSession::new(g, full_params(g.node_count(), 4));
    let answers = session.solve_batch(queries).expect("batch must solve");
    for (q, a) in queries.iter().zip(&answers) {
        let want = oracle_query(g, q);
        assert_eq!(
            a.scaled, want,
            "session disagrees with oracle on {q:?}: got {:?}, want {want:?}",
            a.scaled
        );
        assert_eq!(a.den, 1, "unweighted answers must be exact");
    }
}

#[test]
fn zero_length_path_survives_any_avoided_edge() {
    // s = t: the shortest path has no edges, so no failure can touch it
    // and every query answers 0. This is not representable as an
    // `StPath` (paths need >= 1 edge), so both layers special-case it.
    let mut b = GraphBuilder::new(3);
    b.add_arc(0, 1);
    b.add_arc(1, 2);
    b.add_arc(2, 0);
    let g = b.build();
    assert!(graphkit::alg::shortest_st_path(&g, 1, 1).is_none());
    assert_session_matches_oracle(
        &g,
        &[
            Query::intact(1, 1),
            Query::avoiding(1, 1, 0),
            Query::avoiding(1, 1, 1),
            // Mixed into a batch with ordinary queries.
            Query::avoiding(0, 2, 1),
        ],
    );
}

#[test]
fn off_path_avoided_edge_leaves_the_path_intact() {
    // The failed edge is not on the chosen shortest path: the answer is
    // |P| itself, served from the path without running a solver.
    let mut b = GraphBuilder::new(4);
    b.add_arc(0, 1); // e0, on P
    b.add_arc(1, 3); // e1, on P
    b.add_arc(0, 2); // e2, off P
    b.add_arc(2, 3); // e3, off P
    let g = b.build();
    assert_session_matches_oracle(
        &g,
        &[
            Query::avoiding(0, 3, 2),
            Query::avoiding(0, 3, 3),
            Query::intact(0, 3),
            // Avoiding an edge of the *other* 2-hop route from a
            // different source still must not disturb anything.
            Query::avoiding(2, 3, 0),
        ],
    );
}

#[test]
fn parallel_s_t_edges_cover_for_each_other() {
    // Two parallel unit edges straight from s to t: whichever one the
    // path uses, avoiding it leaves the twin, so every replacement is
    // again length 1; avoiding the off-path twin changes nothing.
    let mut b = GraphBuilder::new(2);
    b.add_arc(0, 1); // e0
    b.add_arc(0, 1); // e1, parallel twin
    let g = b.build();
    let inst = Instance::from_endpoints(&g, 0, 1).unwrap();
    assert_eq!(inst.hops(), 1);
    assert_exact(&g, &inst, 2);
    assert_session_matches_oracle(
        &g,
        &[
            Query::avoiding(0, 1, 0),
            Query::avoiding(0, 1, 1),
            Query::intact(0, 1),
        ],
    );
}

#[test]
fn avoiding_a_bridge_disconnects_the_demand() {
    // Shortest path 0 -> 2 -> 3; edge (2,3) is the only way into t, so
    // avoiding it must answer ∞, while avoiding (0,2) reroutes over the
    // longer 0 -> 1 -> 2 -> 3. Exercises the ∞ plumbing end to end:
    // solver, session answers, and the oracle all agree.
    let mut b = GraphBuilder::new(4);
    b.add_arc(0, 1); // e0
    b.add_arc(1, 2); // e1
    b.add_arc(0, 2); // e2, on P
    b.add_arc(2, 3); // e3, on P, bridge into t
    let g = b.build();
    let inst = Instance::from_endpoints(&g, 0, 3).unwrap();
    assert_eq!(inst.path.nodes(), &[0, 2, 3]);
    let oracle = replacement_lengths(&g, &inst.path);
    assert_eq!(oracle, vec![Dist::new(3), Dist::INF]);
    assert_exact(&g, &inst, 3);

    let mut session = SolverSession::new(&g, full_params(4, 3));
    let answers = session
        .solve_batch(&[Query::avoiding(0, 3, 2), Query::avoiding(0, 3, 3)])
        .unwrap();
    assert_eq!(answers[0].exact(), Some(3));
    assert!(!answers[1].is_finite(), "bridge removal must answer ∞");
    assert_session_matches_oracle(&g, &[Query::avoiding(0, 3, 3)]);
}

#[test]
fn graphs_round_trip_through_serde() {
    let (g, _, _) = graphkit::gen::planted_path_digraph(30, 10, 60, 8);
    let json = serde_json::to_string(&g).expect("serialize");
    let g2: graphkit::DiGraph = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(g.node_count(), g2.node_count());
    assert_eq!(g.edge_count(), g2.edge_count());
    for (id, e) in g.edges() {
        assert_eq!(e, g2.edge(id));
    }
    for v in g.nodes() {
        assert_eq!(
            g.successors(v).collect::<Vec<_>>(),
            g2.successors(v).collect::<Vec<_>>()
        );
    }
}
