//! Workspace façade: re-exports the layered crates of the replacement-
//! paths reproduction so downstream users (and the root `tests/` and
//! `examples/`) can reach everything through one dependency.
//!
//! Layering, bottom to top:
//!
//! - [`graphkit`]: graphs, generators, centralized oracles.
//! - [`congest`]: the CONGEST round engine and communication primitives.
//! - [`rpaths_core`]: the paper's algorithms (Theorems 1 and 3, plus
//!   baselines).
//! - [`rpaths_lb`]: the Section 6 lower-bound constructions.

#![forbid(unsafe_code)]

pub use congest;
pub use graphkit;
pub use rpaths_core;
pub use rpaths_lb;
