//! The Ω(D) part of Theorem 2.
//!
//! Two parallel directed `s`-`t` paths of lengths `D` and `D+1`; the
//! 2-SiSP value is `D+1` when the long path is intact and ∞ when one of
//! its edges is reversed. Distinguishing the two cases requires
//! information to travel the length of the construction — `Ω(D)` rounds.
//! This module runs a real distributed solver on the family and records
//! the value and the rounds, exhibiting the linear-in-`D` growth.

use congest::Network;
use graphkit::gen::theorem2_family;
use graphkit::{Dist, StPath};
use rpaths_core::{sisp, Instance, Params};
use serde::{Deserialize, Serialize};

/// One data point of the Ω(D) experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DiameterPoint {
    /// The path-length parameter `d` (so `n = 2d + 1`).
    pub d: usize,
    /// Undirected diameter of the construction.
    pub diameter: usize,
    /// Whether an edge of the long path was reversed.
    pub reversed: bool,
    /// Measured 2-SiSP value (`u64::MAX` = ∞).
    pub sisp_raw: u64,
    /// Whether the measured value matches the family's ground truth.
    pub correct: bool,
    /// Rounds the distributed solver spent.
    pub rounds: u64,
}

/// Runs the distributed 2-SiSP solver on one member of the family.
pub fn run_family(d: usize, reversed_edge: Option<usize>, seed: u64) -> DiameterPoint {
    let fam = theorem2_family(d, reversed_edge);
    let path = StPath::from_nodes(&fam.graph, &fam.short_path).expect("short path valid");
    let inst = Instance::new(&fam.graph, path).expect("valid instance");
    let mut params = Params::for_instance(&inst).with_seed(seed);
    params.landmark_prob = 1.0;
    let mut net = Network::new(&fam.graph);
    let value = sisp::solve_on(&mut net, &inst, &params).expect("connected family");
    let expected = fam.expected_sisp.map(Dist::new).unwrap_or(Dist::INF);
    let diameter = graphkit::alg::undirected_diameter(&fam.graph).expect("connected");
    DiameterPoint {
        d,
        diameter,
        reversed: reversed_edge.is_some(),
        sisp_raw: value.raw(),
        correct: value == expected,
        rounds: net.metrics().rounds(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_values_are_distinguished() {
        let intact = run_family(10, None, 1);
        assert!(intact.correct);
        assert_eq!(intact.sisp_raw, 11);
        let broken = run_family(10, Some(5), 1);
        assert!(broken.correct);
        assert_eq!(broken.sisp_raw, u64::MAX);
    }

    #[test]
    fn rounds_grow_linearly_with_d() {
        let small = run_family(6, None, 2);
        let large = run_family(24, None, 2);
        assert!(large.diameter > small.diameter);
        assert!(
            large.rounds >= 2 * small.rounds,
            "rounds {} vs {}",
            small.rounds,
            large.rounds
        );
        // And the solver can never beat the diameter: the answer depends
        // on the far end of the construction.
        assert!(large.rounds as usize >= large.diameter);
    }
}
