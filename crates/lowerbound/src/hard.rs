//! The paper's lower-bound construction `G(k, d, p, φ)` and its directed
//! version `G(k, d, p, φ, M, x)` (Section 6.3, Figure 2).
//!
//! - An `s`-`t` path `P*` of `k²` edges (Alice's side).
//! - `k` "outbound" stretched paths `Q^ℓ` and `k` "return" paths `R^ℓ`,
//!   each of `2k²` edges, connecting `P*` to the far structure.
//! - The `G(2k, d, p)` base: `2k` horizontal paths of `dᵖ` vertices plus
//!   the depth-`p` tree that keeps the diameter at `2p + 2`.
//! - A complete bipartite graph on the far endpoints `{v^1..v^k} ×
//!   {w^1..w^k}` (Bob's side) whose *orientations* encode `k²` bits `M`.
//! - Edge `(s_{i−1}, q^{φ₁(i)}_{2(i−1)})` is present iff `x_i = 1`.
//!
//! The point (Lemma 6.8): the replacement path for the `i`-th edge of
//! `P*` has length exactly the "good length" (`3k² + 2dᵖ + 4` under our hop count; see `build`) iff `x_i = 1` **and**
//! `M_{φ(i)} = 1`, and is strictly longer otherwise — so 2-SiSP on this
//! graph computes set disjointness between `x` (on Alice's side) and `M`
//! (on Bob's side).

use congest::Side;
use graphkit::{DiGraph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The bijection `φ : [k²] → [k] × [k]`. We use the lexicographic map
/// (the paper allows any bijection); indices are 0-based here: edge `i`
/// of `P*` (0-based) maps to `(i / k, i % k)`.
#[derive(Clone, Copy, Debug)]
pub struct Phi {
    k: usize,
}

impl Phi {
    /// The lexicographic bijection for a given `k`.
    pub fn lexicographic(k: usize) -> Phi {
        Phi { k }
    }

    /// `φ(i) = (φ₁(i), φ₂(i))`, 0-based.
    #[inline]
    pub fn apply(&self, i: usize) -> (usize, usize) {
        debug_assert!(i < self.k * self.k);
        (i / self.k, i % self.k)
    }
}

/// The directed construction `G(k, d, p, φ, M, x)` with handles to all
/// named vertices.
#[derive(Clone, Debug)]
pub struct HardGraph {
    /// The constructed directed graph.
    pub graph: DiGraph,
    /// Parameter `k` (the bipartite graph is `k × k`).
    pub k: usize,
    /// Tree arity.
    pub d: usize,
    /// Tree depth.
    pub p: usize,
    /// `s = s_0`.
    pub s: NodeId,
    /// `t = s_{k²}`.
    pub t: NodeId,
    /// The path `P*`: `s_0, ..., s_{k²}`.
    pub star: Vec<NodeId>,
    /// `q[ℓ][j]` = `q^ℓ_j`, `j = 0..=2k²`.
    pub q: Vec<Vec<NodeId>>,
    /// `r[ℓ][j]` = `r^ℓ_j`.
    pub r: Vec<Vec<NodeId>>,
    /// `v_paths[ℓ][i]` = `v^ℓ_i` (`i = 0..dᵖ`); `v^ℓ = v_paths[ℓ][dᵖ−1]`.
    pub v_paths: Vec<Vec<NodeId>>,
    /// `w_paths[ℓ][i]` = `w^ℓ_i`; `w^ℓ = w_paths[ℓ][dᵖ−1]`.
    pub w_paths: Vec<Vec<NodeId>>,
    /// `tree[j][i]` = `u^j_i`.
    pub tree: Vec<Vec<NodeId>>,
    /// Alice's vertex `α = u^p_0`.
    pub alpha: NodeId,
    /// Bob's vertex `β = u^p_{dᵖ−1}`.
    pub beta: NodeId,
    /// The Lemma 6.8 "good" replacement length (see the note in
    /// [`build`]: `3k² + 2dᵖ + 4` under our hop count).
    pub good_length: u64,
}

/// Builds `G(k, d, p, φ, M, x)`.
///
/// `m[a][b]` orients the bipartite edge `v^{a+1} w^{b+1}` from `v` to `w`
/// when `true`; `x[i]` keeps the escape edge for `P*`'s `i`-th edge.
///
/// # Panics
///
/// Panics if `k < 2`, `d < 2`, `p < 1`, or the `m`/`x` dimensions are
/// wrong.
pub fn build(k: usize, d: usize, p: usize, m: &[Vec<bool>], x: &[bool]) -> HardGraph {
    assert!(k >= 2 && d >= 2 && p >= 1);
    assert_eq!(m.len(), k);
    assert!(m.iter().all(|row| row.len() == k));
    assert_eq!(x.len(), k * k);
    let dp = d.pow(p as u32);
    let phi = Phi::lexicographic(k);
    let kk = k * k;
    let mut b = GraphBuilder::new(0);

    // Horizontal paths of the base family. First k: v-paths (pointing to
    // larger index); last k: w-paths (pointing to smaller index).
    let v_paths: Vec<Vec<NodeId>> = (0..k)
        .map(|_| (0..dp).map(|_| b.add_node()).collect())
        .collect();
    let w_paths: Vec<Vec<NodeId>> = (0..k)
        .map(|_| (0..dp).map(|_| b.add_node()).collect())
        .collect();
    for row in &v_paths {
        for w in row.windows(2) {
            b.add_arc(w[0], w[1]);
        }
    }
    for row in &w_paths {
        for w in row.windows(2) {
            b.add_arc(w[1], w[0]);
        }
    }
    // The tree, oriented parent -> child; leaves point into the paths.
    let tree: Vec<Vec<NodeId>> = (0..=p)
        .map(|j| (0..d.pow(j as u32)).map(|_| b.add_node()).collect())
        .collect();
    for j in 1..=p {
        for i in 0..tree[j].len() {
            b.add_arc(tree[j - 1][i / d], tree[j][i]);
        }
    }
    for i in 0..dp {
        for row in v_paths.iter().chain(&w_paths) {
            b.add_arc(tree[p][i], row[i]);
        }
    }
    let alpha = tree[p][0];
    let beta = tree[p][dp - 1];

    // The bipartite graph on the far endpoints, oriented by M.
    for a in 0..k {
        for bb in 0..k {
            let v_end = v_paths[a][dp - 1];
            let w_end = w_paths[bb][dp - 1];
            if m[a][bb] {
                b.add_arc(v_end, w_end);
            } else {
                b.add_arc(w_end, v_end);
            }
        }
    }

    // P*, Q^ℓ, R^ℓ.
    let star: Vec<NodeId> = (0..=kk).map(|_| b.add_node()).collect();
    for w in star.windows(2) {
        b.add_arc(w[0], w[1]);
    }
    let q: Vec<Vec<NodeId>> = (0..k)
        .map(|_| (0..=2 * kk).map(|_| b.add_node()).collect())
        .collect();
    let r: Vec<Vec<NodeId>> = (0..k)
        .map(|_| (0..=2 * kk).map(|_| b.add_node()).collect())
        .collect();
    for row in q.iter().chain(&r) {
        for w in row.windows(2) {
            b.add_arc(w[0], w[1]);
        }
    }
    for l in 0..k {
        b.add_arc(q[l][2 * kk], v_paths[l][0]);
        b.add_arc(w_paths[l][0], r[l][0]);
    }
    // Escape and return edges for each P* edge.
    for i in 0..kk {
        let (p1, p2) = phi.apply(i);
        if x[i] {
            b.add_arc(star[i], q[p1][2 * i]);
        }
        b.add_arc(r[p2][2 * (i + 1)], star[i + 1]);
    }
    // α connects to everything on Alice's side (diameter control).
    for &v in star
        .iter()
        .chain(q.iter().flatten())
        .chain(r.iter().flatten())
    {
        b.add_arc(alpha, v);
    }

    // Lemma 6.8's "good" length. Counting hops along the canonical
    // detour (s..s_{i-1}, escape, Q-suffix, v-path, bipartite edge,
    // w-path, R-prefix, return, s_i..t) gives 3k² + 2dᵖ + (l−j) + 4,
    // minimized at l = j = i. The paper states the constant as +6; our
    // edge-by-edge count of the Section 6.3 construction yields +4 — a
    // constant-level difference that affects neither the iff
    // correspondence nor the asymptotic bound, and the oracle-verified
    // tests in `lemma68` pin our value exactly.
    let good_length = 3 * kk as u64 + 2 * dp as u64 + 4;
    HardGraph {
        graph: b.build(),
        k,
        d,
        p,
        s: star[0],
        t: star[kk],
        star,
        q,
        r,
        v_paths,
        w_paths,
        tree,
        alpha,
        beta,
        good_length,
    }
}

impl HardGraph {
    /// `φ` used by this construction.
    pub fn phi(&self) -> Phi {
        Phi::lexicographic(self.k)
    }

    /// `dᵖ`.
    pub fn dp(&self) -> usize {
        self.d.pow(self.p as u32)
    }

    /// Alice/Bob cut labels for the simulation-lemma measurement: every
    /// vertex gets the horizontal coordinate of its attachment point in
    /// the base family (position on its path, midpoint of its leaf range
    /// for tree vertices, `0` for everything hanging off `α`), and the
    /// cut splits at `dᵖ/2`. Any information that moves from the
    /// bipartite orientations (coordinate `dᵖ−1`) to `P*` (coordinate 0)
    /// crosses it, whether it travels the paths or the tree.
    pub fn cut_sides(&self) -> Vec<Side> {
        let dp = self.dp();
        let mid = dp / 2;
        let mut side = vec![Side::Alice; self.graph.node_count()];
        for row in self.v_paths.iter().chain(&self.w_paths) {
            for (i, &v) in row.iter().enumerate() {
                side[v] = if i < mid { Side::Alice } else { Side::Bob };
            }
        }
        for (j, level) in self.tree.iter().enumerate() {
            let span = dp / level.len().max(1);
            let _ = j;
            for (i, &u) in level.iter().enumerate() {
                let midpoint = i * span + span / 2;
                side[u] = if midpoint < mid {
                    Side::Alice
                } else {
                    Side::Bob
                };
            }
        }
        side
    }

    /// The number of bits Bob holds: `k²` orientations.
    pub fn bob_bits(&self) -> usize {
        self.k * self.k
    }
}

/// Samples a uniformly random instance `(M, x)` — used by tests and the
/// experiment harness.
pub fn random_inputs(k: usize, seed: u64) -> (Vec<Vec<bool>>, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = (0..k)
        .map(|_| (0..k).map(|_| rng.gen_bool(0.5)).collect())
        .collect();
    let x = (0..k * k).map(|_| rng.gen_bool(0.5)).collect();
    (m, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::alg::{shortest_st_path, undirected_diameter};
    use graphkit::Dist;

    #[test]
    fn observation_6_6_vertex_count_and_diameter() {
        for (k, d, p) in [(2, 2, 2), (3, 2, 3), (2, 3, 2)] {
            let (m, x) = random_inputs(k, 1);
            let g = build(k, d, p, &m, &x);
            let dp = d.pow(p as u32);
            let tree_size = (d.pow(p as u32 + 1) - 1) / (d - 1);
            let expected = 2 * k * dp + 2 * k * (2 * k * k + 1) + (k * k + 1) + tree_size;
            assert_eq!(g.graph.node_count(), expected, "k={k}, d={d}, p={p}");
            let diam = undirected_diameter(&g.graph).expect("connected");
            assert!(
                diam <= 2 * p + 2,
                "diameter {diam} > 2p+2 (k={k},d={d},p={p})"
            );
        }
    }

    #[test]
    fn p_star_is_the_shortest_path() {
        let (m, x) = random_inputs(3, 7);
        let g = build(3, 2, 3, &m, &x);
        let p = shortest_st_path(&g.graph, g.s, g.t).expect("t reachable");
        assert_eq!(p.hops(), 9);
        assert_eq!(p.nodes(), &g.star[..]);
    }

    #[test]
    fn good_edge_has_good_replacement_length() {
        // Force x_i = 1 and M_{φ(i)} = 1 for a specific i; check exactly.
        let k = 2;
        let i = 1; // φ(1) = (0, 1)
        let mut m = vec![vec![false; k]; k];
        m[0][1] = true;
        let mut x = vec![false; k * k];
        x[i] = true;
        let g = build(k, 2, 2, &m, &x);
        let p = shortest_st_path(&g.graph, g.s, g.t).unwrap();
        let repl = graphkit::alg::replacement_lengths(&g.graph, &p);
        assert_eq!(repl[i], Dist::new(g.good_length));
        for (j, &len) in repl.iter().enumerate() {
            if j != i {
                assert!(len > Dist::new(g.good_length), "edge {j} should be worse");
            }
        }
    }

    #[test]
    fn bad_orientation_blocks_the_good_detour() {
        let k = 2;
        let i = 1;
        let m = vec![vec![false; k]; k]; // all edges w -> v
        let mut x = vec![false; k * k];
        x[i] = true;
        let g = build(k, 2, 2, &m, &x);
        let p = shortest_st_path(&g.graph, g.s, g.t).unwrap();
        let repl = graphkit::alg::replacement_lengths(&g.graph, &p);
        assert!(repl[i] > Dist::new(g.good_length));
    }

    #[test]
    fn missing_x_edge_blocks_the_good_detour() {
        let k = 2;
        let i = 1;
        let mut m = vec![vec![false; k]; k];
        m[0][1] = true;
        let x = vec![false; k * k];
        let g = build(k, 2, 2, &m, &x);
        let p = shortest_st_path(&g.graph, g.s, g.t).unwrap();
        let repl = graphkit::alg::replacement_lengths(&g.graph, &p);
        assert!(repl[i] > Dist::new(g.good_length));
    }

    #[test]
    fn cut_separates_p_star_from_bipartite() {
        let (m, x) = random_inputs(2, 3);
        let g = build(2, 2, 3, &m, &x);
        let sides = g.cut_sides();
        assert_eq!(sides[g.s], Side::Alice);
        assert_eq!(sides[g.star[2]], Side::Alice);
        let dp = g.dp();
        assert_eq!(sides[g.v_paths[0][dp - 1]], Side::Bob);
        assert_eq!(sides[g.w_paths[1][dp - 1]], Side::Bob);
        assert_eq!(sides[g.alpha], Side::Alice);
        assert_eq!(sides[g.beta], Side::Bob);
    }

    #[test]
    fn tree_keeps_diameter_logarithmic_as_k_grows() {
        let (m2, x2) = random_inputs(2, 5);
        let g2 = build(2, 2, 2, &m2, &x2);
        let (m3, x3) = random_inputs(3, 5);
        let g3 = build(3, 2, 4, &m3, &x3);
        let d2 = undirected_diameter(&g2.graph).unwrap();
        let d3 = undirected_diameter(&g3.graph).unwrap();
        assert!(d2 <= 6);
        assert!(d3 <= 10);
    }
}
