//! Lemma 6.9 end-to-end: solving set disjointness through distributed
//! 2-SiSP, with the information-bottleneck measurement.
//!
//! Alice holds `x ∈ {0,1}^{k²}` (which escape edges exist), Bob holds
//! `y ∈ {0,1}^{k²}` (the bipartite orientations, viewed as the matrix
//! `M`). Any algorithm that solves 2-SiSP on `G(k, d, p, φ, M, x)` lets
//! them output `disj(x, y)` — so the `Ω(k² / (dp·B))` communication
//! bound on disjointness transfers to 2-SiSP round complexity.
//!
//! [`run_reduction`] executes the whole chain with a real distributed
//! solver on the simulator, with the Alice/Bob cut instrumented: the
//! measured `cut_bits` shows the algorithm really did move the
//! information the lower bound says it must.

use congest::Network;
use graphkit::Dist;
use rpaths_core::{sisp, Instance, Params};
use serde::{Deserialize, Serialize};

use crate::hard::{build, HardGraph};

/// The result of one reduction run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReductionOutcome {
    /// The decoded `disj(x, y)` (true = disjoint).
    pub disjoint: bool,
    /// Ground truth from the inputs.
    pub expected_disjoint: bool,
    /// The measured 2-SiSP value (raw; `u64::MAX` = ∞).
    pub sisp_raw: u64,
    /// The decision threshold (the construction's "good" length).
    pub good_length: u64,
    /// Rounds spent by the distributed solver.
    pub rounds: u64,
    /// Bits that crossed the Alice/Bob cut.
    pub cut_bits: u64,
    /// Number of vertices of the construction.
    pub n: usize,
    /// `k²`: the number of bits Bob encodes.
    pub bob_bits: u64,
}

/// Builds `G(k, d, p, φ, M, x)` from disjointness inputs and solves
/// 2-SiSP with the paper's distributed algorithm (Theorem 1 + `O(D)`
/// aggregation), measuring rounds and cut-crossing bits.
///
/// `y` is interpreted as the matrix `M` via the lexicographic map, so
/// `disj(x, y) = 0` iff some index `i` has `x_i = y_i = 1`.
pub fn run_reduction(
    k: usize,
    d: usize,
    p: usize,
    x: &[bool],
    y: &[bool],
    seed: u64,
) -> ReductionOutcome {
    assert_eq!(x.len(), k * k);
    assert_eq!(y.len(), k * k);
    let m: Vec<Vec<bool>> = (0..k)
        .map(|a| (0..k).map(|b| y[a * k + b]).collect())
        .collect();
    let g = build(k, d, p, &m, x);
    let outcome = solve_distributed(&g, seed);
    let expected_disjoint = !(0..k * k).any(|i| x[i] && y[i]);
    ReductionOutcome {
        expected_disjoint,
        ..outcome
    }
}

fn solve_distributed(g: &HardGraph, seed: u64) -> ReductionOutcome {
    let inst = Instance::from_endpoints(&g.graph, g.s, g.t).expect("valid instance");
    // Full landmark coverage keeps the w.h.p. guarantee airtight at the
    // small k these experiments use; rounds are measured, not asserted.
    let mut params = Params::for_instance(&inst).with_seed(seed);
    params.landmark_prob = 1.0;
    let mut net = Network::new(&g.graph);
    net.set_cut(g.cut_sides());
    let value = sisp::solve_on(&mut net, &inst, &params).expect("connected family");
    let disjoint = value != Dist::new(g.good_length);
    ReductionOutcome {
        disjoint,
        expected_disjoint: disjoint, // caller overwrites
        sisp_raw: value.raw(),
        good_length: g.good_length,
        rounds: net.metrics().rounds(),
        cut_bits: net.metrics().total.cut_bits,
        n: g.graph.node_count(),
        bob_bits: (g.k * g.k) as u64,
    }
}

/// The implied round lower bound of Lemmas 6.4–6.7, evaluated
/// numerically for reporting: either the algorithm runs at least
/// `(dᵖ−1)/2` rounds (dilation), or the two-party simulation transmits
/// `2·d·p·B` bits per round and must carry the `k²`-bit disjointness
/// input, so `R ≥ k²/(2·d·p·B)` (congestion).
pub fn implied_round_lower_bound(k: usize, d: usize, p: usize, bandwidth: u64) -> f64 {
    let dil = (d.pow(p as u32) as f64 - 1.0) / 2.0;
    let k2 = (k * k) as f64;
    let cong = k2 / (2.0 * d as f64 * p as f64 * bandwidth as f64);
    dil.min(cong)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hard::random_inputs;

    #[test]
    fn reduction_decodes_disjointness_correctly() {
        for seed in 0..6 {
            let (m, x) = random_inputs(2, seed);
            let y: Vec<bool> = m.iter().flatten().copied().collect();
            let out = run_reduction(2, 2, 2, &x, &y, seed);
            assert_eq!(
                out.disjoint, out.expected_disjoint,
                "seed {seed}: decoded {} but truth is {}",
                out.disjoint, out.expected_disjoint
            );
        }
    }

    #[test]
    fn intersecting_inputs_find_the_good_length() {
        let k = 2;
        let x = vec![true, false, false, false];
        let y = vec![true, false, false, false];
        let out = run_reduction(k, 2, 2, &x, &y, 1);
        assert!(!out.disjoint);
        assert_eq!(out.sisp_raw, out.good_length);
    }

    #[test]
    fn disjoint_inputs_avoid_the_good_length() {
        let k = 2;
        let x = vec![true, false, true, false];
        let y = vec![false, true, false, true];
        let out = run_reduction(k, 2, 2, &x, &y, 2);
        assert!(out.disjoint);
        assert!(out.sisp_raw > out.good_length);
    }

    #[test]
    fn information_crosses_the_cut() {
        // The solver must move a non-trivial number of bits across the
        // Alice/Bob cut — the bottleneck the lower bound formalizes.
        let (m, x) = random_inputs(2, 9);
        let y: Vec<bool> = m.iter().flatten().copied().collect();
        let out = run_reduction(2, 2, 2, &x, &y, 9);
        assert!(
            out.cut_bits >= out.bob_bits,
            "only {} bits crossed for {} input bits",
            out.cut_bits,
            out.bob_bits
        );
        assert!(out.rounds > 0);
    }

    #[test]
    fn implied_bound_grows_like_n_two_thirds() {
        // With the paper's balance k² = dᵖ and B = Θ(log n), the bound is
        // Θ(k²/(d·p·B)) = Θ(n^{2/3}/(B·log n)) since n = Θ(dᵖ^{3/2}).
        let b1 = implied_round_lower_bound(4, 2, 4, 16); // dᵖ=16, k²=16
        let b2 = implied_round_lower_bound(8, 2, 6, 16); // dᵖ=64, k²=64
        let b3 = implied_round_lower_bound(16, 2, 8, 16); // dᵖ=256
        assert!(b2 > b1);
        assert!(b3 > b2);
    }
}
