//! Lemma 6.8: the replacement-length / bit correspondence, verified
//! exhaustively against the centralized oracle.
//!
//! For every edge `(s_{i−1}, s_i)` of `P*`:
//!
//! ```text
//! |st ⋄ e_i| = GOOD      iff  x_i = 1  and  M_{φ(i)} = 1
//! |st ⋄ e_i| > GOOD      otherwise
//! ```
//!
//! where `GOOD = 3k² + 2dᵖ + 4` (our hop count of the construction; the
//! paper states `+6` — a constant-level difference, see
//! [`crate::hard::build`]). Consequently (Lemma 6.9) the 2-SiSP value
//! equals `GOOD` iff `⟨x, M⟩ ≠ 0`, i.e. iff `disj(x, M) = 0`.

use graphkit::alg::{replacement_lengths, second_simple_shortest, shortest_st_path};
use graphkit::Dist;

use crate::hard::{build, HardGraph};

/// The verdict of checking Lemma 6.8 on one instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lemma68Report {
    /// Per edge: whether the oracle length matched the lemma's
    /// prediction.
    pub per_edge_ok: Vec<bool>,
    /// Whether the 2-SiSP value decodes `disj` correctly.
    pub sisp_ok: bool,
    /// The measured 2-SiSP value.
    pub sisp: Dist,
    /// The target "good" length (`3k² + 2dᵖ + 4`).
    pub good_length: u64,
}

impl Lemma68Report {
    /// All checks passed.
    pub fn all_ok(&self) -> bool {
        self.sisp_ok && self.per_edge_ok.iter().all(|&b| b)
    }
}

/// Verifies Lemma 6.8 and the Lemma 6.9 decoding on a concrete
/// `(M, x)` instance using the centralized oracle.
pub fn verify(g: &HardGraph, m: &[Vec<bool>], x: &[bool]) -> Lemma68Report {
    let phi = g.phi();
    let p = shortest_st_path(&g.graph, g.s, g.t).expect("P* exists");
    assert_eq!(p.nodes(), &g.star[..], "P* must be the shortest path");
    let repl = replacement_lengths(&g.graph, &p);
    let good = Dist::new(g.good_length);
    let per_edge_ok = repl
        .iter()
        .enumerate()
        .map(|(i, &len)| {
            let (a, b) = phi.apply(i);
            if x[i] && m[a][b] {
                len == good
            } else {
                len > good
            }
        })
        .collect();
    let sisp = second_simple_shortest(&g.graph, &p);
    let intersects = (0..x.len()).any(|i| {
        let (a, b) = phi.apply(i);
        x[i] && m[a][b]
    });
    let sisp_ok = if intersects {
        sisp == good
    } else {
        sisp > good
    };
    Lemma68Report {
        per_edge_ok,
        sisp_ok,
        sisp,
        good_length: g.good_length,
    }
}

/// Convenience: build + verify for given parameters and inputs.
pub fn verify_instance(k: usize, d: usize, p: usize, m: &[Vec<bool>], x: &[bool]) -> Lemma68Report {
    let g = build(k, d, p, m, x);
    verify(&g, m, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hard::random_inputs;

    #[test]
    fn lemma_6_8_random_instances() {
        for seed in 0..12 {
            let (m, x) = random_inputs(2, seed);
            let report = verify_instance(2, 2, 2, &m, &x);
            assert!(report.all_ok(), "seed {seed}: {report:?}");
        }
    }

    #[test]
    fn lemma_6_8_larger_instance() {
        for seed in 0..4 {
            let (m, x) = random_inputs(3, seed + 100);
            let report = verify_instance(3, 2, 3, &m, &x);
            assert!(report.all_ok(), "seed {seed}: {report:?}");
        }
    }

    #[test]
    fn lemma_6_8_exhaustive_k2_single_bit() {
        // Every single (x_i, M_ab) bit pattern with exactly one bit set
        // in each: the good length appears iff the bits align.
        let k = 2;
        for i in 0..k * k {
            for a in 0..k {
                for b in 0..k {
                    let mut m = vec![vec![false; k]; k];
                    m[a][b] = true;
                    let mut x = vec![false; k * k];
                    x[i] = true;
                    let report = verify_instance(k, 2, 2, &m, &x);
                    assert!(report.all_ok(), "i={i}, M bit ({a},{b})");
                }
            }
        }
    }

    #[test]
    fn all_zero_inputs_give_no_good_replacement() {
        let k = 2;
        let m = vec![vec![false; k]; k];
        let x = vec![false; k * k];
        let report = verify_instance(k, 2, 2, &m, &x);
        assert!(report.all_ok());
        assert!(report.sisp > Dist::new(report.good_length));
    }

    #[test]
    fn all_one_inputs_give_good_everywhere() {
        let k = 2;
        let m = vec![vec![true; k]; k];
        let x = vec![true; k * k];
        let g = build(k, 2, 2, &m, &x);
        let report = verify(&g, &m, &x);
        assert!(report.all_ok());
        assert_eq!(report.sisp, Dist::new(g.good_length));
    }
}
