//! The base family `G(Γ, d, p)` of Das Sarma et al. [DHK+11] (Figure 1).
//!
//! `Γ` parallel paths of `dᵖ` vertices each, plus a `d`-ary tree of depth
//! `p` whose `dᵖ` leaves connect to the matching position on every path.
//! Alice sits at `α = u^p_0` (the leftmost leaf) and Bob at
//! `β = u^p_{dᵖ−1}` (the rightmost): any fast algorithm must squeeze its
//! communication through the tree, whose every edge sees `Θ(dp)`-fold
//! congestion in the simulation lemma.

use graphkit::{DiGraph, GraphBuilder, NodeId};

/// The constructed `G(Γ, d, p)` with handles to its named vertices.
#[derive(Clone, Debug)]
pub struct GammaGraph {
    /// The (undirected-ish: arcs carry no meaning here) graph.
    pub graph: DiGraph,
    /// `paths[ℓ][i]` = vertex `v^ℓ_i`.
    pub paths: Vec<Vec<NodeId>>,
    /// `tree[j][i]` = vertex `u^j_i` (depth `j`, index `i`).
    pub tree: Vec<Vec<NodeId>>,
    /// Alice's vertex `α = u^p_0`.
    pub alpha: NodeId,
    /// Bob's vertex `β = u^p_{dᵖ−1}`.
    pub beta: NodeId,
}

/// Path length `dᵖ` (number of vertices per path).
pub fn path_len(d: usize, p: usize) -> usize {
    d.pow(p as u32)
}

/// Builds `G(Γ, d, p)`. Edges are inserted bidirectionally (two arcs) —
/// the base family is undirected; the directed orientation only matters
/// in the modified construction of [`crate::hard`].
///
/// # Panics
///
/// Panics if `gamma == 0`, `d < 2`, or `p == 0`.
pub fn build(gamma: usize, d: usize, p: usize) -> GammaGraph {
    assert!(gamma >= 1 && d >= 2 && p >= 1);
    let dp = path_len(d, p);
    let mut b = GraphBuilder::new(0);
    let paths: Vec<Vec<NodeId>> = (0..gamma)
        .map(|_| (0..dp).map(|_| b.add_node()).collect())
        .collect();
    for row in &paths {
        for w in row.windows(2) {
            b.add_bidirectional(w[0], w[1]);
        }
    }
    let tree: Vec<Vec<NodeId>> = (0..=p)
        .map(|j| (0..d.pow(j as u32)).map(|_| b.add_node()).collect())
        .collect();
    for j in 1..=p {
        for i in 0..tree[j].len() {
            b.add_bidirectional(tree[j - 1][i / d], tree[j][i]);
        }
    }
    for i in 0..dp {
        for row in &paths {
            b.add_bidirectional(tree[p][i], row[i]);
        }
    }
    let alpha = tree[p][0];
    let beta = tree[p][dp - 1];
    GammaGraph {
        graph: b.build(),
        paths,
        tree,
        alpha,
        beta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::alg::undirected_diameter;

    /// Observation 6.3: Γ·dᵖ + (d^{p+1}−1)/(d−1) vertices, diameter 2p+2.
    #[test]
    fn observation_6_3_vertex_count() {
        for (gamma, d, p) in [(3, 2, 2), (4, 2, 3), (2, 3, 2), (6, 2, 4)] {
            let g = build(gamma, d, p);
            let dp = path_len(d, p);
            let tree_size = (d.pow(p as u32 + 1) - 1) / (d - 1);
            assert_eq!(
                g.graph.node_count(),
                gamma * dp + tree_size,
                "Γ={gamma}, d={d}, p={p}"
            );
        }
    }

    #[test]
    fn observation_6_3_diameter() {
        for (gamma, d, p) in [(3, 2, 2), (4, 2, 3), (2, 3, 2)] {
            let g = build(gamma, d, p);
            let diam = undirected_diameter(&g.graph).expect("connected");
            assert!(
                diam <= 2 * p + 2,
                "Γ={gamma}, d={d}, p={p}: diameter {diam} > 2p+2"
            );
            // And it is genuinely Θ(p): at least p (leaf to root).
            assert!(diam >= p, "diameter {diam} < p = {p}");
        }
    }

    #[test]
    fn alpha_and_beta_are_opposite_leaves() {
        let g = build(2, 2, 3);
        assert_eq!(g.alpha, g.tree[3][0]);
        assert_eq!(g.beta, g.tree[3][7]);
        assert_ne!(g.alpha, g.beta);
    }

    #[test]
    fn every_leaf_touches_every_path() {
        let g = build(3, 2, 2);
        let dp = path_len(2, 2);
        for i in 0..dp {
            let leaf = g.tree[2][i];
            for row in &g.paths {
                let target = row[i];
                assert!(
                    g.graph.successors(leaf).any(|v| v == target),
                    "leaf {i} misses path vertex"
                );
            }
        }
    }

    #[test]
    fn paths_have_dp_vertices() {
        let g = build(5, 2, 3);
        for row in &g.paths {
            assert_eq!(row.len(), 8);
        }
    }
}
