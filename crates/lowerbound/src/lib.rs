//! Section 6 of *Optimal Distributed Replacement Paths*: the
//! `eΩ(n^{2/3} + D)` lower bound for 2-SiSP and RPaths.
//!
//! The lower bound is combinatorial: a family of graphs on which solving
//! 2-SiSP forces `Θ(k²)` bits (the orientation of a complete bipartite
//! graph on Bob's side) across a narrow cut to Alice's side. This crate
//! builds every object in the proof and makes the argument *measurable*:
//!
//! - [`gamma`] — the base family `G(Γ, d, p)` of Das Sarma et al.
//!   (Figure 1) with its Observation 6.3 properties.
//! - [`hard`] — the paper's construction `G(k, d, p, φ)` and its directed
//!   version `G(k, d, p, φ, M, x)` (Figure 2), with Observation 6.6.
//! - [`lemma68`] — the replacement-path-length correspondence: for edge
//!   `(s_{i−1}, s_i)`, the replacement length is exactly
//!   the "good length" (`3k² + 2dᵖ + 4` under our hop count) iff
//!   `M_{φ(i)} = 1 ∧ x_i = 1`, else strictly larger.
//! - [`disjointness`] — the Lemma 6.9 reduction run end-to-end: encode
//!   `(x, y)`, solve 2-SiSP with a real distributed algorithm, decode
//!   `disj(x, y)`; with Alice/Bob cut-bit accounting that exhibits the
//!   information bottleneck.
//! - [`diameter_lb`] — the Ω(D) part of Theorem 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diameter_lb;
pub mod disjointness;
pub mod gamma;
pub mod hard;
pub mod lemma68;
