//! Fault campaigns: does the replacement-paths stack survive the
//! failures it is supposed to route around?
//!
//! Sweeps three scenario families over carrier-style topologies:
//!
//! - **k-failure**: `k ∈ {1, 2, 4}` spans (antiparallel arc pairs) fail
//!   simultaneously and permanently; the metro-ring `k = 1` suite
//!   enumerates *every* span — a ring minus one span stays connected,
//!   so each of those scenarios must come back
//!   `degraded-answered` (asserted, not just recorded).
//! - **flapping**: one span flaps down/up on a duty cycle while a
//!   distributed BFS-tree probe retries (each retry re-anchors the plan
//!   with `FaultPlan::shifted` to the rounds already consumed) until a
//!   spanning tree builds; the steady state is pristine, so the solve
//!   itself is full-fidelity.
//! - **rolling-partition**: a failure front marches span by span around
//!   the topology, the last failure permanent — transient churn the
//!   recovery wrapper must see through, plus one real degradation.
//!
//! Every scenario runs `rpaths_core::resilient::solve_with_recovery`
//! and a live detection probe; outcomes land in `CAMPAIGN_faults.json`
//! at the repository root. `--smoke` (or `CAMPAIGN_SMOKE=1`) shrinks
//! the sweep to seconds for CI while still writing the report.

use congest::bfs_tree::build_bfs_tree;
use congest::{FaultPlan, Network};
use graphkit::gen::{metro_ring, power_law_digraph, star};
use graphkit::{DiGraph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpaths_core::resilient::{solve_with_recovery, Recovery, RecoveryPolicy, Unweighted};
use rpaths_core::Params;
use serde::Serialize;

/// Where the report lands: the repository root, next to the other
/// reproduction artifacts.
const REPORT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../CAMPAIGN_faults.json");

/// A topology with its failure units: span `i` is the antiparallel arc
/// pair `(2i, 2i + 1)` between `endpoints[i]`.
struct Topology {
    name: String,
    graph: DiGraph,
    endpoints: Vec<(NodeId, NodeId)>,
    s: NodeId,
    t: NodeId,
}

/// Rebuilds any digraph as its bidirectionalized version: one span
/// (both arc directions) per undirected adjacency, spans in ascending
/// endpoint order. Carrier links are full-duplex; failing a span fails
/// both directions, which is the fault unit the campaigns sweep.
fn spanify(name: &str, g: &DiGraph, s: NodeId, t: NodeId) -> Topology {
    let mut pairs: Vec<(NodeId, NodeId)> = g
        .edges()
        .map(|(_, e)| (e.from.min(e.to), e.from.max(e.to)))
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    let mut b = GraphBuilder::new(g.node_count());
    for &(u, v) in &pairs {
        b.add_bidirectional(u, v);
    }
    Topology {
        name: name.to_string(),
        graph: b.build(),
        endpoints: pairs,
        s,
        t,
    }
}

/// A plan failing each listed span permanently from round 0.
fn fail_spans(seed: u64, spans: &[usize]) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    for &i in spans {
        plan = plan.fail_link(2 * i, 0, None).fail_link(2 * i + 1, 0, None);
    }
    plan
}

#[derive(Serialize)]
struct ScenarioRecord {
    topology: String,
    scenario: String,
    k: usize,
    /// The failed spans, as `u-v` endpoint pairs.
    spans: Vec<String>,
    /// `full`, `degraded-answered`, `partitioned`, `source-down`, or
    /// `error`.
    outcome: String,
    /// Solve attempts consumed by the recovery wrapper.
    attempts: u32,
    /// Nodes severed from the source (0 when connected).
    unreachable: usize,
    /// Detection probes until a spanning BFS tree built (live plan).
    probes: u32,
    /// Total rounds those probes consumed.
    probe_rounds: u64,
    /// Whether a probe eventually spanned the network.
    spanned: bool,
}

#[derive(Serialize)]
struct KSurvival {
    k: usize,
    scenarios: usize,
    answered: usize,
    partitioned: usize,
}

#[derive(Serialize)]
struct Summary {
    scenarios: usize,
    answered: usize,
    partitioned: usize,
    by_k: Vec<KSurvival>,
}

#[derive(Serialize)]
struct Report {
    smoke: bool,
    records: Vec<ScenarioRecord>,
    summary: Summary,
}

/// Retries a distributed BFS-tree build under the *live* plan until it
/// spans, re-anchoring the plan to the rounds already consumed before
/// each retry. Returns `(probes, rounds, spanned)`.
fn probe_until_spanning(
    g: &DiGraph,
    plan: &FaultPlan,
    s: NodeId,
    max_probes: u32,
) -> (u32, u64, bool) {
    let mut net = Network::new(g);
    net.set_fault_plan(Some(plan.clone()));
    let mut probes = 0;
    loop {
        probes += 1;
        if build_bfs_tree(&mut net, s).is_ok() {
            return (probes, net.metrics().rounds(), true);
        }
        if probes >= max_probes {
            return (probes, net.metrics().rounds(), false);
        }
        net.set_fault_plan(Some(plan.shifted(net.metrics().rounds())));
    }
}

fn run_scenario(
    topo: &Topology,
    scenario: &str,
    spans: &[usize],
    plan: &FaultPlan,
    records: &mut Vec<ScenarioRecord>,
) {
    let params = Params::for_n(topo.graph.node_count());
    let policy = RecoveryPolicy::default();
    let rec =
        solve_with_recovery::<Unweighted>(&topo.graph, topo.s, topo.t, plan, &params, &policy);
    let (outcome, attempts, unreachable) = match &rec {
        Ok(Recovery::Full { attempts, .. }) => ("full".to_string(), *attempts, 0),
        Ok(Recovery::Degraded(d)) => (
            if d.answered.is_some() {
                "degraded-answered".to_string()
            } else {
                "partitioned".to_string()
            },
            d.attempts,
            d.unreachable.len(),
        ),
        Err(rpaths_core::resilient::RecoveryError::SourceDown) => ("source-down".to_string(), 0, 0),
        Err(e) => (format!("error: {e}"), 0, 0),
    };
    let (probes, probe_rounds, spanned) = probe_until_spanning(&topo.graph, plan, topo.s, 8);
    println!(
        "  {:<16} {:<18} k={} spans=[{}] -> {} ({} attempts, {} probes / {} rounds)",
        topo.name,
        scenario,
        spans.len(),
        spans
            .iter()
            .map(|&i| format!("{}-{}", topo.endpoints[i].0, topo.endpoints[i].1))
            .collect::<Vec<_>>()
            .join(","),
        outcome,
        attempts,
        probes,
        probe_rounds,
    );
    records.push(ScenarioRecord {
        topology: topo.name.clone(),
        scenario: scenario.to_string(),
        k: spans.len(),
        spans: spans
            .iter()
            .map(|&i| format!("{}-{}", topo.endpoints[i].0, topo.endpoints[i].1))
            .collect(),
        outcome,
        attempts,
        unreachable,
        probes,
        probe_rounds,
        spanned,
    });
}

/// Draws a k-subset of `0..n` without replacement (partial
/// Fisher-Yates).
fn sample_spans(rng: &mut StdRng, n: usize, k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k.min(n) {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    let mut picked: Vec<usize> = idx[..k.min(n)].to_vec();
    picked.sort_unstable();
    picked
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("CAMPAIGN_SMOKE").is_ok_and(|v| v == "1");
    let (ring_pops, star_n, pl_n, samples) = if smoke {
        (8, 8, 12, 2)
    } else {
        (12, 16, 24, 6)
    };
    let mut rng = StdRng::seed_from_u64(0xfa17);
    let mut records: Vec<ScenarioRecord> = Vec::new();

    let ring = spanify(
        &format!("metro-ring-{ring_pops}"),
        &metro_ring(ring_pops),
        0,
        ring_pops / 2,
    );
    let hub = spanify(&format!("star-{star_n}"), &star(star_n), 1, 2);
    let pl = spanify(
        &format!("power-law-{pl_n}"),
        &power_law_digraph(pl_n, 77),
        0,
        pl_n - 1,
    );
    let topologies = [&ring, &hub, &pl];

    // --- k-failure sweeps ------------------------------------------------
    println!("== k-failure campaigns (k in {{1, 2, 4}}) ==");
    for topo in topologies {
        for k in [1usize, 2, 4] {
            let span_sets: Vec<Vec<usize>> = if k == 1 && std::ptr::eq(topo, &ring) {
                // The acceptance suite: every single span of the ring.
                (0..ring.endpoints.len()).map(|i| vec![i]).collect()
            } else {
                (0..samples)
                    .map(|_| sample_spans(&mut rng, topo.endpoints.len(), k))
                    .collect()
            };
            for spans in &span_sets {
                let plan = fail_spans(span_seed(spans), spans);
                run_scenario(topo, "k-failure", spans, &plan, &mut records);
            }
        }
    }
    // A ring minus one span is still connected: every metro-ring k=1
    // scenario must have answered in degraded mode, never errored.
    for r in records
        .iter()
        .filter(|r| r.topology == ring.name && r.scenario == "k-failure" && r.k == 1)
    {
        assert_eq!(
            r.outcome, "degraded-answered",
            "ring span {:?} did not survive",
            r.spans
        );
    }

    // --- flapping links --------------------------------------------------
    println!("== flapping-link campaigns ==");
    for topo in topologies {
        // Flap the span nearest the target: down 3, up 3, three cycles.
        let span = topo.endpoints.len() - 1;
        let mut plan = FaultPlan::new(0xf1a9).drop_messages(0.02);
        for cycle in 0..3u64 {
            let at = 6 * cycle;
            plan = plan.fail_link(2 * span, at, Some(at + 3)).fail_link(
                2 * span + 1,
                at,
                Some(at + 3),
            );
        }
        run_scenario(topo, "flapping", &[span], &plan, &mut records);
    }

    // --- rolling partition -----------------------------------------------
    println!("== rolling-partition campaigns ==");
    for topo in topologies {
        let m = topo.endpoints.len();
        let mut plan = FaultPlan::new(0x8011);
        let mut spans = Vec::new();
        for i in 0..m {
            let at = 3 * i as u64;
            // The front marches one span at a time; the last failure
            // never recovers.
            let up = if i + 1 == m { None } else { Some(at + 4) };
            plan = plan.fail_link(2 * i, at, up).fail_link(2 * i + 1, at, up);
            spans.push(i);
        }
        run_scenario(topo, "rolling-partition", &spans, &plan, &mut records);
    }

    // --- report ----------------------------------------------------------
    let by_k = [1usize, 2, 4]
        .iter()
        .map(|&k| {
            let of_k: Vec<_> = records
                .iter()
                .filter(|r| r.scenario == "k-failure" && r.k == k)
                .collect();
            KSurvival {
                k,
                scenarios: of_k.len(),
                answered: of_k
                    .iter()
                    .filter(|r| r.outcome == "full" || r.outcome == "degraded-answered")
                    .count(),
                partitioned: of_k.iter().filter(|r| r.outcome == "partitioned").count(),
            }
        })
        .collect();
    let summary = Summary {
        scenarios: records.len(),
        answered: records
            .iter()
            .filter(|r| r.outcome == "full" || r.outcome == "degraded-answered")
            .count(),
        partitioned: records
            .iter()
            .filter(|r| r.outcome == "partitioned")
            .count(),
        by_k,
    };
    println!(
        "\n{} scenarios: {} answered, {} partitioned",
        summary.scenarios, summary.answered, summary.partitioned
    );
    let report = Report {
        smoke,
        records,
        summary,
    };
    std::fs::write(
        REPORT_PATH,
        serde_json::to_string_pretty(&report).expect("serialize report"),
    )
    .expect("write CAMPAIGN_faults.json");
    println!("wrote {REPORT_PATH}");
}

/// A deterministic seed per failed-span set, so re-running a single
/// scenario reproduces it exactly.
fn span_seed(spans: &[usize]) -> u64 {
    spans.iter().fold(0x9e3779b97f4a7c15u64, |h, &s| {
        (h ^ s as u64).wrapping_mul(0xbf58476d1ce4e5b9)
    })
}
