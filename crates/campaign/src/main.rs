//! Fault campaigns: does the replacement-paths stack survive the
//! failures it is supposed to route around?
//!
//! Sweeps three scenario families over carrier-style topologies:
//!
//! - **k-failure**: `k ∈ {1, 2, 4}` spans (antiparallel arc pairs) fail
//!   simultaneously and permanently; the metro-ring `k = 1` suite
//!   enumerates *every* span — a ring minus one span stays connected,
//!   so each of those scenarios must come back `degraded-answered`.
//!   A violation is an **invariant failure**: it is recorded in the
//!   report *and* fails the process (non-zero exit), so CI cannot
//!   silently archive a broken run.
//! - **flapping**: one span flaps down/up on a duty cycle while a
//!   distributed BFS-tree probe retries (each retry re-anchors the plan
//!   with `FaultPlan::shifted` to the rounds already consumed) until a
//!   spanning tree builds; the steady state is pristine, so the solve
//!   itself is full-fidelity.
//! - **rolling-partition**: a failure front marches span by span around
//!   the topology, the last failure permanent — transient churn the
//!   recovery wrapper must see through, plus one real degradation.
//!
//! Every scenario runs `rpaths_core::resilient::solve_with_recovery`
//! and a live detection probe; outcomes land in `CAMPAIGN_faults.json`
//! at the repository root (written via the store's temp-file +
//! atomic-rename helper, so a crash mid-write never leaves a torn
//! report). `--smoke` (or `CAMPAIGN_SMOKE=1`) shrinks the sweep to
//! seconds for CI while still writing the report.
//!
//! # Checkpoint/resume (`--snapshot <path>`)
//!
//! With `--snapshot`, the runner checkpoints after every completed
//! scenario into an `rpaths-store` snapshot file: the campaign's anchor
//! topology (the metro ring) plus a `campaign/progress` blob holding
//! the completed records as JSON. Because the full scenario list is
//! generated *upfront* from a fixed seed — no RNG draws interleave with
//! execution — a killed run restarted with the same flags resumes at
//! the first unfinished scenario and produces a byte-identical final
//! report. A checkpoint that fails to load (corrupt, truncated, or
//! from a different configuration) degrades to a fresh start with a
//! warning; it never panics and never poisons the run.
//!
//! `CAMPAIGN_ABORT_AFTER=<k>` (test hook) SIGKILLs the process after
//! the `k`-th checkpoint write of this run, giving CI a deterministic
//! mid-campaign crash to resume from.

use congest::bfs_tree::build_bfs_tree;
use congest::{FaultPlan, Network};
use graphkit::gen::{metro_ring, power_law_digraph, star};
use graphkit::Dist;
use graphkit::{DiGraph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpaths_core::resilient::{solve_with_recovery, Recovery, RecoveryPolicy, Unweighted};
use rpaths_core::{Params, Query, SolverSession};
use rpaths_store::{atomic_write, Artifact, Loaded, Snapshot};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Where the report lands: the repository root, next to the other
/// reproduction artifacts.
const REPORT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../CAMPAIGN_faults.json");

/// Artifact key of the progress blob inside a checkpoint snapshot.
const PROGRESS_KEY: &str = "campaign/progress";

/// A topology with its failure units: span `i` is the antiparallel arc
/// pair `(2i, 2i + 1)` between `endpoints[i]`.
struct Topology {
    name: String,
    graph: DiGraph,
    endpoints: Vec<(NodeId, NodeId)>,
    s: NodeId,
    t: NodeId,
}

/// Rebuilds any digraph as its bidirectionalized version: one span
/// (both arc directions) per undirected adjacency, spans in ascending
/// endpoint order. Carrier links are full-duplex; failing a span fails
/// both directions, which is the fault unit the campaigns sweep.
fn spanify(name: &str, g: &DiGraph, s: NodeId, t: NodeId) -> Topology {
    let mut pairs: Vec<(NodeId, NodeId)> = g
        .edges()
        .map(|(_, e)| (e.from.min(e.to), e.from.max(e.to)))
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    let mut b = GraphBuilder::new(g.node_count());
    for &(u, v) in &pairs {
        b.add_bidirectional(u, v);
    }
    Topology {
        name: name.to_string(),
        graph: b.build(),
        endpoints: pairs,
        s,
        t,
    }
}

/// A plan failing each listed span permanently from round 0.
fn fail_spans(seed: u64, spans: &[usize]) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    for &i in spans {
        plan = plan.fail_link(2 * i, 0, None).fail_link(2 * i + 1, 0, None);
    }
    plan
}

#[derive(Clone, Serialize, Deserialize)]
struct ScenarioRecord {
    topology: String,
    scenario: String,
    k: usize,
    /// The failed spans, as `u-v` endpoint pairs.
    spans: Vec<String>,
    /// `full`, `degraded-answered`, `partitioned`, `source-down`, or
    /// `error`.
    outcome: String,
    /// Solve attempts consumed by the recovery wrapper.
    attempts: u32,
    /// Nodes severed from the source (0 when connected).
    unreachable: usize,
    /// Detection probes until a spanning BFS tree built (live plan).
    probes: u32,
    /// Total rounds those probes consumed.
    probe_rounds: u64,
    /// Whether a probe eventually spanned the network.
    spanned: bool,
}

/// The resumable state: everything a killed run needs to pick up at the
/// first unfinished scenario. Serialized as JSON into the checkpoint
/// snapshot's `campaign/progress` blob.
#[derive(Serialize, Deserialize)]
struct Checkpoint {
    /// Which sweep size produced these records; a mismatch on resume
    /// (e.g. smoke checkpoint, full rerun) forces a fresh start.
    smoke: bool,
    /// The scenario count of the generating run, as a cheap schedule
    /// fingerprint.
    total: usize,
    records: Vec<ScenarioRecord>,
}

#[derive(Serialize)]
struct KSurvival {
    k: usize,
    scenarios: usize,
    answered: usize,
    partitioned: usize,
}

#[derive(Serialize)]
struct Summary {
    scenarios: usize,
    answered: usize,
    partitioned: usize,
    by_k: Vec<KSurvival>,
}

#[derive(Serialize)]
struct Report {
    smoke: bool,
    /// Human-readable descriptions of violated scenario invariants
    /// (empty on a healthy run). Non-empty ⇒ the process exits 1.
    invariant_failures: Vec<String>,
    records: Vec<ScenarioRecord>,
    summary: Summary,
}

/// One entry of the upfront-generated schedule. Plans are regenerated,
/// not persisted: the schedule is a pure function of the seed, so a
/// resumed run rebuilds the identical list and skips the finished
/// prefix.
struct Scenario {
    /// Index into the topology array.
    topo: usize,
    kind: &'static str,
    spans: Vec<usize>,
    plan: FaultPlan,
}

/// Retries a distributed BFS-tree build under the *live* plan until it
/// spans, re-anchoring the plan to the rounds already consumed before
/// each retry. Returns `(probes, rounds, spanned)`.
fn probe_until_spanning(
    g: &DiGraph,
    plan: &FaultPlan,
    s: NodeId,
    max_probes: u32,
) -> (u32, u64, bool) {
    let mut net = Network::new(g);
    net.set_fault_plan(Some(plan.clone()));
    let mut probes = 0;
    loop {
        probes += 1;
        if build_bfs_tree(&mut net, s).is_ok() {
            return (probes, net.metrics().rounds(), true);
        }
        if probes >= max_probes {
            return (probes, net.metrics().rounds(), false);
        }
        net.set_fault_plan(Some(plan.shifted(net.metrics().rounds())));
    }
}

/// Cross-checks a full-fidelity recovery against the topology's warm
/// solver session: the session's cached per-edge answers for the
/// pristine instance must agree bit-for-bit with what the recovery
/// wrapper produced. One session per topology persists across every
/// scenario of that topology, so after the first scenario this check is
/// answered entirely from the artifact cache.
fn verify_pristine(
    session: &mut SolverSession<'_>,
    topo: &Topology,
    output: &[Dist],
) -> Result<(), String> {
    let Some(path) = session.shortest_path(topo.s, topo.t) else {
        return Err(format!(
            "pristine check: {} unreachable from {}",
            topo.t, topo.s
        ));
    };
    let queries: Vec<Query> = path
        .edges()
        .iter()
        .map(|&e| Query::avoiding(topo.s, topo.t, e))
        .collect();
    let answers = session
        .solve_batch(&queries)
        .map_err(|e| format!("pristine check failed: {e}"))?;
    if answers.len() != output.len() {
        return Err(format!(
            "pristine check: session answered {} edges, recovery {}",
            answers.len(),
            output.len()
        ));
    }
    for (i, (a, &d)) in answers.iter().zip(output).enumerate() {
        if a.den != 1 || a.scaled != d {
            return Err(format!(
                "pristine mismatch at path edge {i}: session {:?}/{}, recovery {:?}",
                a.scaled, a.den, d
            ));
        }
    }
    Ok(())
}

fn run_scenario(topo: &Topology, sc: &Scenario, session: &mut SolverSession<'_>) -> ScenarioRecord {
    let params = Params::for_n(topo.graph.node_count());
    let policy = RecoveryPolicy::default();
    let rec =
        solve_with_recovery::<Unweighted>(&topo.graph, topo.s, topo.t, &sc.plan, &params, &policy);
    let (outcome, attempts, unreachable) = match &rec {
        Ok(Recovery::Full { output, attempts }) => match verify_pristine(session, topo, output) {
            Ok(()) => ("full".to_string(), *attempts, 0),
            Err(e) => (format!("error: {e}"), *attempts, 0),
        },
        Ok(Recovery::Degraded(d)) => (
            if d.answered.is_some() {
                "degraded-answered".to_string()
            } else {
                "partitioned".to_string()
            },
            d.attempts,
            d.unreachable.len(),
        ),
        Err(rpaths_core::resilient::RecoveryError::SourceDown) => ("source-down".to_string(), 0, 0),
        Err(e) => (format!("error: {e}"), 0, 0),
    };
    let (probes, probe_rounds, spanned) = probe_until_spanning(&topo.graph, &sc.plan, topo.s, 8);
    println!(
        "  {:<16} {:<18} k={} spans=[{}] -> {} ({} attempts, {} probes / {} rounds)",
        topo.name,
        sc.kind,
        sc.spans.len(),
        sc.spans
            .iter()
            .map(|&i| format!("{}-{}", topo.endpoints[i].0, topo.endpoints[i].1))
            .collect::<Vec<_>>()
            .join(","),
        outcome,
        attempts,
        probes,
        probe_rounds,
    );
    ScenarioRecord {
        topology: topo.name.clone(),
        scenario: sc.kind.to_string(),
        k: sc.spans.len(),
        spans: sc
            .spans
            .iter()
            .map(|&i| format!("{}-{}", topo.endpoints[i].0, topo.endpoints[i].1))
            .collect(),
        outcome,
        attempts,
        unreachable,
        probes,
        probe_rounds,
        spanned,
    }
}

/// Draws a k-subset of `0..n` without replacement (partial
/// Fisher-Yates).
fn sample_spans(rng: &mut StdRng, n: usize, k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k.min(n) {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    let mut picked: Vec<usize> = idx[..k.min(n)].to_vec();
    picked.sort_unstable();
    picked
}

/// Index of the metro-ring anchor topology (carries the k=1 acceptance
/// invariant and anchors checkpoint snapshots).
const RING: usize = 0;

/// Generates the complete campaign schedule upfront. Every RNG draw
/// happens here, before any scenario executes, so the schedule — and
/// hence the meaning of "scenario `i`" — is identical whether the run
/// is fresh or resumed from a checkpoint.
fn generate_scenarios(topologies: &[Topology], samples: usize, rng: &mut StdRng) -> Vec<Scenario> {
    let mut scenarios = Vec::new();

    // --- k-failure sweeps ---
    for (ti, topo) in topologies.iter().enumerate() {
        for k in [1usize, 2, 4] {
            let span_sets: Vec<Vec<usize>> = if k == 1 && ti == RING {
                // The acceptance suite: every single span of the ring.
                (0..topo.endpoints.len()).map(|i| vec![i]).collect()
            } else {
                (0..samples)
                    .map(|_| sample_spans(rng, topo.endpoints.len(), k))
                    .collect()
            };
            for spans in span_sets {
                let plan = fail_spans(span_seed(&spans), &spans);
                scenarios.push(Scenario {
                    topo: ti,
                    kind: "k-failure",
                    spans,
                    plan,
                });
            }
        }
    }

    // --- flapping links ---
    for (ti, topo) in topologies.iter().enumerate() {
        // Flap the span nearest the target: down 3, up 3, three cycles.
        let span = topo.endpoints.len() - 1;
        let mut plan = FaultPlan::new(0xf1a9).drop_messages(0.02);
        for cycle in 0..3u64 {
            let at = 6 * cycle;
            plan = plan.fail_link(2 * span, at, Some(at + 3)).fail_link(
                2 * span + 1,
                at,
                Some(at + 3),
            );
        }
        scenarios.push(Scenario {
            topo: ti,
            kind: "flapping",
            spans: vec![span],
            plan,
        });
    }

    // --- rolling partition ---
    for (ti, topo) in topologies.iter().enumerate() {
        let m = topo.endpoints.len();
        let mut plan = FaultPlan::new(0x8011);
        let mut spans = Vec::new();
        for i in 0..m {
            let at = 3 * i as u64;
            // The front marches one span at a time; the last failure
            // never recovers.
            let up = if i + 1 == m { None } else { Some(at + 4) };
            plan = plan.fail_link(2 * i, at, up).fail_link(2 * i + 1, at, up);
            spans.push(i);
        }
        scenarios.push(Scenario {
            topo: ti,
            kind: "rolling-partition",
            spans,
            plan,
        });
    }

    scenarios
}

/// Writes a checkpoint: the anchor topology's graph (a real graph
/// round-tripping through the store, not a stub) plus the progress
/// blob. Atomic via the store's temp-file + rename path.
fn write_checkpoint(path: &std::path::Path, anchor: &DiGraph, cp: &Checkpoint) {
    let json = serde_json::to_string(cp).expect("serialize checkpoint");
    let mut snap = Snapshot::new(anchor.clone());
    snap.artifacts
        .push(Artifact::blob(PROGRESS_KEY, json.into_bytes()));
    if let Err(e) = snap.write(path) {
        // A failed checkpoint write must not kill a healthy campaign:
        // resume just restarts further back.
        eprintln!("warning: checkpoint write failed: {e}");
    }
}

/// Loads the completed-record prefix from a checkpoint, or explains why
/// the run starts fresh. Corruption is *expected* input here (the file
/// is only ever read after a crash): every failure path degrades to
/// `None`, never a panic.
fn load_checkpoint(
    path: &std::path::Path,
    anchor: &DiGraph,
    smoke: bool,
    total: usize,
) -> Option<Vec<ScenarioRecord>> {
    if !path.exists() {
        return None;
    }
    let loaded = match Snapshot::read(path) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("warning: checkpoint unreadable ({e}); starting fresh");
            return None;
        }
    };
    if let Loaded::Partial { ref dropped, .. } = loaded {
        for d in dropped {
            eprintln!(
                "warning: checkpoint section {} (tag {}) corrupt: {}",
                d.section, d.tag, d.error
            );
        }
    }
    let snap = loaded.snapshot();
    if snap.graph.to_snapshot() != anchor.to_snapshot() {
        eprintln!("warning: checkpoint is for a different topology; starting fresh");
        return None;
    }
    let Some(blob) = snap.artifacts.iter().find(|a| a.key == PROGRESS_KEY) else {
        eprintln!("warning: checkpoint has no progress blob (dropped as corrupt?); starting fresh");
        return None;
    };
    let text = match std::str::from_utf8(&blob.body) {
        Ok(t) => t,
        Err(_) => {
            eprintln!("warning: checkpoint progress blob is not UTF-8; starting fresh");
            return None;
        }
    };
    let cp: Checkpoint = match serde_json::from_str(text) {
        Ok(cp) => cp,
        Err(e) => {
            eprintln!("warning: checkpoint progress blob unparsable ({e}); starting fresh");
            return None;
        }
    };
    if cp.smoke != smoke || cp.total != total || cp.records.len() > total {
        eprintln!("warning: checkpoint is from a different configuration; starting fresh");
        return None;
    }
    Some(cp.records)
}

/// Test hook: SIGKILL ourselves after the `n`-th checkpoint write, so
/// CI can provoke a deterministic mid-campaign crash. SIGKILL (not
/// exit) because the point is to prove resume needs no orderly
/// shutdown.
fn maybe_abort(checkpoints_written: u32) {
    let Ok(val) = std::env::var("CAMPAIGN_ABORT_AFTER") else {
        return;
    };
    let Ok(after) = val.parse::<u32>() else {
        return;
    };
    if checkpoints_written >= after {
        let pid = std::process::id().to_string();
        let _ = std::process::Command::new("kill")
            .args(["-KILL", &pid])
            .status();
        // If there is no `kill` binary, die abruptly anyway.
        std::process::abort();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var("CAMPAIGN_SMOKE").is_ok_and(|v| v == "1");
    let snapshot_path: Option<PathBuf> = args.iter().position(|a| a == "--snapshot").map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("--snapshot requires a path argument");
                std::process::exit(2);
            })
            .into()
    });
    let (ring_pops, star_n, pl_n, samples) = if smoke {
        (8, 8, 12, 2)
    } else {
        (12, 16, 24, 6)
    };
    let mut rng = StdRng::seed_from_u64(0xfa17);

    let topologies = [
        spanify(
            &format!("metro-ring-{ring_pops}"),
            &metro_ring(ring_pops),
            0,
            ring_pops / 2,
        ),
        spanify(&format!("star-{star_n}"), &star(star_n), 1, 2),
        spanify(
            &format!("power-law-{pl_n}"),
            &power_law_digraph(pl_n, 77),
            0,
            pl_n - 1,
        ),
    ];
    let scenarios = generate_scenarios(&topologies, samples, &mut rng);
    let total = scenarios.len();
    let anchor = &topologies[RING].graph;

    // One solver session per topology, reused across every scenario on
    // it: the pristine cross-check in `run_scenario` costs one solver
    // run per topology for the whole campaign, everything after that is
    // cache hits. Session telemetry stays out of the report — a resumed
    // run skips scenarios, and the report must be byte-identical.
    let mut sessions: Vec<SolverSession<'_>> = topologies
        .iter()
        .map(|t| SolverSession::new(&t.graph, Params::for_n(t.graph.node_count())))
        .collect();

    let mut records: Vec<ScenarioRecord> = snapshot_path
        .as_deref()
        .and_then(|p| load_checkpoint(p, anchor, smoke, total))
        .unwrap_or_default();
    if !records.is_empty() {
        println!(
            "resuming from checkpoint ({}/{} scenarios done)",
            records.len(),
            total
        );
    }

    let mut checkpoints_written = 0u32;
    let mut last_kind = records.len().checked_sub(1).map(|i| scenarios[i].kind);
    for sc in scenarios.iter().skip(records.len()) {
        if last_kind != Some(sc.kind) {
            println!("== {} campaigns ==", sc.kind);
            last_kind = Some(sc.kind);
        }
        records.push(run_scenario(
            &topologies[sc.topo],
            sc,
            &mut sessions[sc.topo],
        ));
        if let Some(path) = snapshot_path.as_deref() {
            write_checkpoint(
                path,
                anchor,
                &Checkpoint {
                    smoke,
                    total,
                    records: records.clone(),
                },
            );
            checkpoints_written += 1;
            maybe_abort(checkpoints_written);
        }
    }

    // --- invariants ------------------------------------------------------
    // A ring minus one span is still connected: every metro-ring k=1
    // scenario must have answered in degraded mode, never errored.
    let mut invariant_failures: Vec<String> = Vec::new();
    for r in records
        .iter()
        .filter(|r| r.topology == topologies[RING].name && r.scenario == "k-failure" && r.k == 1)
    {
        if r.outcome != "degraded-answered" {
            invariant_failures.push(format!(
                "metro-ring k=1 span {:?} must answer degraded, got `{}`",
                r.spans, r.outcome
            ));
        }
    }

    // --- report ----------------------------------------------------------
    let by_k = [1usize, 2, 4]
        .iter()
        .map(|&k| {
            let of_k: Vec<_> = records
                .iter()
                .filter(|r| r.scenario == "k-failure" && r.k == k)
                .collect();
            KSurvival {
                k,
                scenarios: of_k.len(),
                answered: of_k
                    .iter()
                    .filter(|r| r.outcome == "full" || r.outcome == "degraded-answered")
                    .count(),
                partitioned: of_k.iter().filter(|r| r.outcome == "partitioned").count(),
            }
        })
        .collect();
    let summary = Summary {
        scenarios: records.len(),
        answered: records
            .iter()
            .filter(|r| r.outcome == "full" || r.outcome == "degraded-answered")
            .count(),
        partitioned: records
            .iter()
            .filter(|r| r.outcome == "partitioned")
            .count(),
        by_k,
    };
    println!(
        "\n{} scenarios: {} answered, {} partitioned",
        summary.scenarios, summary.answered, summary.partitioned
    );
    // Stdout-only telemetry (resumed runs skip scenarios, so these
    // counters are not deterministic enough for the report).
    for (topo, session) in topologies.iter().zip(&sessions) {
        let st = session.stats();
        println!(
            "  session {:<16} {} queries / {} batches, {} solver runs, cache hit rate {:.0}%",
            topo.name,
            st.queries,
            st.batches,
            st.solver_runs,
            100.0 * st.cache.hit_rate(),
        );
    }
    let report = Report {
        smoke,
        invariant_failures: invariant_failures.clone(),
        records,
        summary,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    atomic_write(std::path::Path::new(REPORT_PATH), json.as_bytes())
        .expect("write CAMPAIGN_faults.json");
    println!("wrote {REPORT_PATH}");

    // The campaign finished; the checkpoint has served its purpose.
    if let Some(path) = snapshot_path.as_deref() {
        let _ = std::fs::remove_file(path);
    }

    if !invariant_failures.is_empty() {
        for f in &invariant_failures {
            eprintln!("INVARIANT FAILED: {f}");
        }
        std::process::exit(1);
    }
}

/// A deterministic seed per failed-span set, so re-running a single
/// scenario reproduces it exactly.
fn span_seed(spans: &[usize]) -> u64 {
    spans.iter().fold(0x9e3779b97f4a7c15u64, |h, &s| {
        (h ^ s as u64).wrapping_mul(0xbf58476d1ce4e5b9)
    })
}
