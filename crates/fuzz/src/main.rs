//! `rpaths-fuzz` — seeded ground-truth differential fuzzing CLI.
//!
//! ```text
//! cargo run --release -p rpaths-fuzz -- --seed 1 --cases 200
//! cargo run --release -p rpaths-fuzz -- --smoke
//! cargo run --release -p rpaths-fuzz -- --write-seed-corpus
//! ```
//!
//! Exit codes: 0 = clean sweep, 1 = divergences found (fixtures written
//! to `--out-dir`), 2 = usage error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use rpaths_fuzz::{run_sweep, write_seed_corpus, FuzzConfig};

const USAGE: &str = "\
rpaths-fuzz: seeded ground-truth differential fuzzing

USAGE:
    rpaths-fuzz [OPTIONS]

OPTIONS:
    --seed N               Master seed (default 1); the sweep is a pure
                           function of it
    --cases N              Cases to run (default 200; smoke profile: 40)
    --smoke                CI smoke profile: n <= 4096, threads {1,2},
                           40 cases, seconds-scale
    --max-n N              Cap the largest graph (default 100000)
    --out-dir PATH         Fixture output directory
                           (default tests/regressions)
    --no-minimize          Write divergent repros unminimized
    --inject-tiebreak-bug  Flip the unweighted merge tie-break (test
                           hook) to validate the catch -> minimize ->
                           fixture pipeline; also via
                           RPATHS_INJECT_TIEBREAK=1
    --write-seed-corpus    Write the hand-curated per-solver seed
                           fixtures to --out-dir and exit
    --quiet                Only print the final report
    -h, --help             This message
";

struct Cli {
    cfg: FuzzConfig,
    write_corpus: bool,
    quiet: bool,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut seed = 1u64;
    let mut cases: Option<usize> = None;
    let mut smoke = false;
    let mut max_n: Option<usize> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut minimize = true;
    let mut inject = std::env::var("RPATHS_INJECT_TIEBREAK").is_ok_and(|v| v == "1");
    let mut write_corpus = false;
    let mut quiet = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--cases" => {
                cases = Some(
                    value("--cases")?
                        .parse()
                        .map_err(|e| format!("--cases: {e}"))?,
                )
            }
            "--smoke" => smoke = true,
            "--max-n" => {
                max_n = Some(
                    value("--max-n")?
                        .parse()
                        .map_err(|e| format!("--max-n: {e}"))?,
                )
            }
            "--out-dir" => out_dir = Some(PathBuf::from(value("--out-dir")?)),
            "--no-minimize" => minimize = false,
            "--inject-tiebreak-bug" => inject = true,
            "--write-seed-corpus" => write_corpus = true,
            "--quiet" => quiet = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }

    let mut cfg = if smoke {
        FuzzConfig::smoke(seed)
    } else {
        FuzzConfig::full(seed, cases.unwrap_or(200))
    };
    if smoke {
        if let Some(c) = cases {
            cfg.cases = c;
        }
    }
    if let Some(m) = max_n {
        cfg.max_n = m;
    }
    if let Some(d) = out_dir {
        cfg.out_dir = d;
    }
    cfg.minimize = minimize;
    cfg.inject_tiebreak = inject;
    Ok(Cli {
        cfg,
        write_corpus,
        quiet,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if cli.write_corpus {
        return match write_seed_corpus(&cli.cfg.out_dir) {
            Ok(paths) => {
                for p in &paths {
                    println!("wrote {}", p.display());
                }
                println!("seed corpus: {} fixtures", paths.len());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: seed corpus: {e}");
                ExitCode::from(2)
            }
        };
    }

    println!(
        "rpaths-fuzz: seed={} cases={} max_n={} threads={:?}{}{}",
        cli.cfg.seed,
        cli.cfg.cases,
        cli.cfg.max_n,
        cli.cfg.threads_pool,
        if cli.cfg.inject_tiebreak {
            " [INJECTED TIE-BREAK BUG]"
        } else {
            ""
        },
        if cli.cfg.minimize {
            ""
        } else {
            " [no minimize]"
        },
    );
    let quiet = cli.quiet;
    let report = run_sweep(&cli.cfg, &mut |line| {
        if !quiet {
            println!("{line}");
        }
    });
    println!(
        "sweep: {} passed, {} skipped, {} diverged; max n exercised = {}",
        report.passed, report.skipped, report.divergences, report.max_n_exercised
    );
    for p in &report.fixtures {
        println!("fixture: {}", p.display());
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
