//! Greedy delta-debugging of divergent cases.
//!
//! Given a `(graph, s, t, params, solver)` tuple whose differential
//! check fails, [`minimize_instance`] shrinks it while *preserving the
//! failure*: first whole chunks of nodes (induced subgraph, ids
//! remapped ascending), then chunks of edges, with the classic ddmin
//! halving schedule — try dropping a chunk, keep the smaller repro when
//! the check still diverges, halve the chunk size when no chunk is
//! droppable. The demand endpoints are always retained; candidates
//! whose graph disconnects or loses the `s → t` demand simply fail the
//! "still diverges" test and are rejected, so no separate validity pass
//! is needed.
//!
//! The result is the small, human-readable repro that gets minted into
//! a `tests/regressions/` fixture — divergences found on a
//! 10³-node random graph routinely shrink to a couple dozen nodes.

use graphkit::{DiGraph, GraphBuilder, NodeId};
use rpaths_core::oracle::{check_instance, FuzzSolver};
use rpaths_core::{Instance, Params};

/// Cap on differential checks one minimization may spend (each check on
/// a shrinking graph is milliseconds; the cap bounds pathological
/// plateaus).
const CHECK_BUDGET: usize = 600;

/// Does the case still fail? (Unposeable candidates count as "no".)
fn still_fails(
    graph: &DiGraph,
    s: NodeId,
    t: NodeId,
    params: &Params,
    solver: FuzzSolver,
    threads: usize,
) -> bool {
    match Instance::from_endpoints(graph, s, t) {
        Ok(inst) => inst.hops() >= 1 && check_instance(&inst, params, solver, threads).is_err(),
        Err(_) => false,
    }
}

/// Induced subgraph on the kept nodes, ids remapped ascending. Returns
/// `None` when `s` or `t` was dropped.
fn induced(
    graph: &DiGraph,
    keep: &[bool],
    s: NodeId,
    t: NodeId,
) -> Option<(DiGraph, NodeId, NodeId)> {
    if !keep[s] || !keep[t] {
        return None;
    }
    let mut new_id = vec![usize::MAX; graph.node_count()];
    let mut count = 0;
    for (v, &k) in keep.iter().enumerate() {
        if k {
            new_id[v] = count;
            count += 1;
        }
    }
    let mut b = GraphBuilder::new(count);
    for (_, e) in graph.edges() {
        if keep[e.from] && keep[e.to] {
            b.add_edge(new_id[e.from], new_id[e.to], e.weight);
        }
    }
    Some((b.build(), new_id[s], new_id[t]))
}

/// The graph with a subset of edges dropped (same node set).
fn without_edges(graph: &DiGraph, keep_edge: &[bool]) -> DiGraph {
    let mut b = GraphBuilder::new(graph.node_count());
    for (id, e) in graph.edges() {
        if keep_edge[id] {
            b.add_edge(e.from, e.to, e.weight);
        }
    }
    b.build()
}

/// Greedily minimizes a failing instance-mode case. The returned
/// `(graph, s, t)` still fails the same differential check (or, if the
/// budget ran out mid-plateau, is the smallest failing repro found).
pub fn minimize_instance(
    graph: DiGraph,
    s: NodeId,
    t: NodeId,
    params: &Params,
    solver: FuzzSolver,
    threads: usize,
) -> (DiGraph, NodeId, NodeId) {
    let mut cur = (graph, s, t);
    let mut checks = 0usize;

    // Phase 1: drop node chunks.
    let mut chunk = (cur.0.node_count() / 2).max(1);
    while chunk >= 1 && checks < CHECK_BUDGET {
        let n = cur.0.node_count();
        let mut progressed = false;
        let mut start = 0;
        while start < n && checks < CHECK_BUDGET {
            let mut keep = vec![true; n];
            for (v, k) in keep.iter_mut().enumerate() {
                *k = !(v >= start && v < (start + chunk).min(n)) || v == cur.1 || v == cur.2;
            }
            if let Some((g2, s2, t2)) = induced(&cur.0, &keep, cur.1, cur.2) {
                if g2.node_count() < cur.0.node_count() {
                    checks += 1;
                    if still_fails(&g2, s2, t2, params, solver, threads) {
                        cur = (g2, s2, t2);
                        progressed = true;
                        // Restart the scan on the shrunken graph.
                        break;
                    }
                }
            }
            start += chunk;
        }
        if !progressed {
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        } else {
            chunk = chunk.min((cur.0.node_count() / 2).max(1));
        }
    }

    // Phase 2: drop edge chunks (node set is now minimal-ish).
    let mut chunk = (cur.0.edge_count() / 2).max(1);
    while chunk >= 1 && checks < CHECK_BUDGET {
        let m = cur.0.edge_count();
        let mut progressed = false;
        let mut start = 0;
        while start < m && checks < CHECK_BUDGET {
            let mut keep = vec![true; m];
            for e in start..(start + chunk).min(m) {
                keep[e] = false;
            }
            let g2 = without_edges(&cur.0, &keep);
            if g2.edge_count() < m {
                checks += 1;
                if still_fails(&g2, cur.1, cur.2, params, solver, threads) {
                    cur = (g2, cur.1, cur.2);
                    progressed = true;
                    break;
                }
            }
            start += chunk;
        }
        if !progressed {
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        } else {
            chunk = chunk.min((cur.0.edge_count() / 2).max(1));
        }
    }

    // Phase 3: drop now-isolated nodes (edge removal can strand them;
    // an isolated node disconnects the graph, so `still_fails` would
    // reject it — strip them in one induced pass instead).
    let mut has_edge = vec![false; cur.0.node_count()];
    for (_, e) in cur.0.edges() {
        has_edge[e.from] = true;
        has_edge[e.to] = true;
    }
    has_edge[cur.1] = true;
    has_edge[cur.2] = true;
    if has_edge.iter().any(|&k| !k) {
        if let Some((g2, s2, t2)) = induced(&cur.0, &has_edge, cur.1, cur.2) {
            if still_fails(&g2, s2, t2, params, solver, threads) {
                cur = (g2, s2, t2);
            }
        }
    }

    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::gen::planted_path_digraph;
    use rpaths_core::testhooks;

    #[test]
    fn minimizes_injected_bug_below_32_nodes() {
        // A medium random instance that the flipped merge breaks; the
        // minimizer must shrink it to a tiny fixture-sized repro.
        testhooks::set_flip_unweighted_merge(true);
        let mut found = None;
        for seed in 0..20 {
            let (g, s, t) = planted_path_digraph(60, 12, 150, seed);
            let mut params = Params::with_zeta(60, 4).with_seed(seed);
            params.landmark_prob = 1.0;
            if still_fails(&g, s, t, &params, FuzzSolver::Unweighted, 1) {
                found = Some((g, s, t, params));
                break;
            }
        }
        let (g, s, t, params) = found.expect("some seed must trip the injected bug");
        let before = g.node_count();
        let (g2, s2, t2) = minimize_instance(g, s, t, &params, FuzzSolver::Unweighted, 1);
        let still = still_fails(&g2, s2, t2, &params, FuzzSolver::Unweighted, 1);
        testhooks::set_flip_unweighted_merge(false);
        assert!(still, "minimized repro must still fail");
        assert!(
            g2.node_count() <= 32,
            "expected ≤ 32 nodes, got {} (from {before})",
            g2.node_count()
        );
    }

    #[test]
    fn healthy_case_is_not_failing() {
        let (g, s, t) = planted_path_digraph(30, 8, 60, 1);
        let mut params = Params::with_zeta(30, 4);
        params.landmark_prob = 1.0;
        assert!(!still_fails(&g, s, t, &params, FuzzSolver::Unweighted, 1));
    }
}
