//! `rpaths-fuzz`: seeded ground-truth differential fuzzing.
//!
//! The harness sweeps a randomized but fully seeded matrix —
//!
//! **topology family** (planted path, parallel lane, road grid, Octopus
//! pods, layered DAG, metro ring, power law, weighted random) ×
//! **solver** (every [`FuzzSolver`] surface, one-shot and
//! `SolverSession::solve_batch`) × **fault plan** (none / transient /
//! permanent) × **engine threads** ({1, 2, 8}) —
//!
//! and holds every answer to the centralized `graphkit::alg` oracles
//! through the [`rpaths_core::oracle`] adapters, plus bit-identity
//! cross-checks (parallel vs sequential, warm vs cold batches).
//!
//! Case costs are tiered so a single sweep spans five decades of `n`:
//! the full distributed-solver differential runs at `n` up to ~10³
//! (the engine is `Θ(rounds·m)` work on one host), while the scale tier
//! pushes `n` to 10⁵ through the checks that stay near-linear —
//! generator invariants, session path answers vs Dijkstra (which skip
//! the `O(n·m)` diameter by construction), snapshot round-trips, and
//! the distributed BFS tree vs a centralized BFS at mid scale.
//!
//! On a divergence the harness greedily minimizes the repro
//! ([`minimize`]) and writes it as a self-contained
//! [`rpaths_core::fixture::Fixture`] under `tests/regressions/`, where
//! `tests/fuzz_regressions.rs` replays it on every tier-1 run. See
//! `FUZZING.md` for the workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod minimize;

use std::path::{Path, PathBuf};

use congest::bfs_tree::build_bfs_tree;
use congest::{FaultPlan, Network};
use graphkit::alg::shortest_st_path;
use graphkit::{gen, DiGraph, Dist, EdgeId, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpaths_core::fixture::{Fixture, FIXTURE_EXT};
use rpaths_core::oracle::{self, Divergence, FuzzSolver};
use rpaths_core::resilient::{self, Recovery, RecoveryPolicy};
use rpaths_core::{Instance, Params, Query};

/// Sweep configuration (every knob the CLI exposes).
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Master seed; the whole sweep is a pure function of it.
    pub seed: u64,
    /// Number of cases to plan.
    pub cases: usize,
    /// Largest graph any case may use.
    pub max_n: usize,
    /// Engine thread counts to cross-check (each case picks two).
    pub threads_pool: Vec<usize>,
    /// Enable the deliberate solver defect
    /// ([`rpaths_core::testhooks::set_flip_unweighted_merge`]) for this
    /// sweep, to validate the catch → minimize → fixture pipeline.
    pub inject_tiebreak: bool,
    /// Minimize divergent cases before writing fixtures.
    pub minimize: bool,
    /// Where divergence fixtures are written.
    pub out_dir: PathBuf,
}

impl FuzzConfig {
    /// The full-scale profile: `n` up to 10⁵, threads {1, 2, 8}.
    pub fn full(seed: u64, cases: usize) -> FuzzConfig {
        FuzzConfig {
            seed,
            cases,
            max_n: 100_000,
            threads_pool: vec![1, 2, 8],
            inject_tiebreak: false,
            minimize: true,
            out_dir: PathBuf::from("tests/regressions"),
        }
    }

    /// The CI smoke profile: seconds-scale, `n ≤ 4096`, threads {1, 2}.
    pub fn smoke(seed: u64) -> FuzzConfig {
        FuzzConfig {
            seed,
            cases: 40,
            max_n: 4096,
            threads_pool: vec![1, 2],
            inject_tiebreak: false,
            minimize: true,
            out_dir: PathBuf::from("tests/regressions"),
        }
    }
}

/// The topology families the planner samples.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// `gen::planted_path_digraph`: random with a planted shortest path.
    Planted,
    /// `gen::parallel_lane`: path + stretched switch lane.
    Lane,
    /// `gen::grid_road`: bidirectional road grid with diagonal chords.
    GridRoad,
    /// `gen::octopus_pods`: sparse-spine memory pods.
    Octopus,
    /// `gen::layered_dag`: uniform-length layered routes.
    LayeredDag,
    /// `gen::metro_ring`: the 2-edge-connected carrier ring.
    MetroRing,
    /// `gen::power_law_digraph`: preferential attachment.
    PowerLaw,
    /// `gen::random_weighted_digraph`: weighted unstructured.
    WeightedRandom,
}

impl Family {
    /// Stable name for logs and fixture provenance.
    pub fn name(self) -> &'static str {
        match self {
            Family::Planted => "planted",
            Family::Lane => "lane",
            Family::GridRoad => "grid-road",
            Family::Octopus => "octopus",
            Family::LayeredDag => "layered-dag",
            Family::MetroRing => "metro-ring",
            Family::PowerLaw => "power-law",
            Family::WeightedRandom => "weighted-random",
        }
    }

    /// Generates a graph of roughly `n_hint` nodes, plus the family's
    /// natural demand endpoints when it has them.
    pub fn generate(self, n_hint: usize, rng: &mut StdRng) -> (DiGraph, Option<(NodeId, NodeId)>) {
        let n = n_hint.max(8);
        let seed = rng.gen_range(0..u64::MAX / 2);
        match self {
            Family::Planted => {
                let h = rng.gen_range(3..=(n / 3).max(4));
                let extra = rng.gen_range(n..=3 * n);
                let (g, s, t) = gen::planted_path_digraph(n, h, extra, seed);
                (g, Some((s, t)))
            }
            Family::Lane => {
                let stretch = rng.gen_range(1..=3);
                let switch = rng.gen_range(1..=4);
                let h = (n / (1 + stretch)).max(4);
                let (g, s, t) = gen::parallel_lane(h, switch, stretch);
                (g, Some((s, t)))
            }
            Family::GridRoad => {
                let rows = ((n as f64).sqrt() as usize).max(2);
                let cols = (n / rows).max(2);
                let chords = rng.gen_range(0..=(rows * cols) / 8);
                let (g, s, t) = gen::grid_road(rows, cols, chords, seed);
                (g, Some((s, t)))
            }
            Family::Octopus => {
                let pods = ((n as f64 / 4.0).sqrt() as usize).max(2);
                let pod_size = (n / pods).max(1);
                let extra = rng.gen_range(0..=pods / 2 + 1);
                (gen::octopus_pods(pods, pod_size, extra, seed), None)
            }
            Family::LayeredDag => {
                let layers = rng.gen_range(3..=8);
                let width = (n / (layers + 2)).max(2);
                let extra = rng.gen_range(n..=2 * n);
                let (g, s, t) = gen::layered_dag(layers, width, extra, seed);
                (g, Some((s, t)))
            }
            Family::MetroRing => {
                let pops = n.max(4);
                (gen::metro_ring(pops), Some((0, pops / 2)))
            }
            Family::PowerLaw => (gen::power_law_digraph(n, seed), None),
            Family::WeightedRandom => {
                let extra = rng.gen_range(2 * n..=4 * n);
                let w = rng.gen_range(2..=12);
                (gen::random_weighted_digraph(n, extra, w, seed), None)
            }
        }
    }
}

/// The cost tier a case runs in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CaseKind {
    /// Full distributed-solver differential vs the oracle (small `n`).
    InstanceDiff,
    /// `SolverSession::solve_batch` differential with warm/cold and
    /// cross-thread bit-identity (medium `n`).
    BatchDiff,
    /// Fault injection through `resilient::solve_with_recovery`, with
    /// an independently reconstructed survivor-graph oracle.
    FaultTier,
    /// Near-linear checks at `n` up to the configured maximum.
    ScaleTier,
}

impl CaseKind {
    fn name(self) -> &'static str {
        match self {
            CaseKind::InstanceDiff => "instance",
            CaseKind::BatchDiff => "batch",
            CaseKind::FaultTier => "fault",
            CaseKind::ScaleTier => "scale",
        }
    }
}

/// One planned case (a pure function of `(config.seed, index)`).
#[derive(Clone, Debug)]
pub struct CasePlan {
    /// Position in the sweep.
    pub index: usize,
    /// Cost tier.
    pub kind: CaseKind,
    /// Topology family.
    pub family: Family,
    /// Target node count.
    pub n: usize,
    /// Solver under test (instance/fault tiers).
    pub solver: FuzzSolver,
    /// The two engine thread counts to cross-check.
    pub threads: (usize, usize),
    /// Per-case RNG seed.
    pub case_seed: u64,
}

impl CasePlan {
    /// One-line description for logs and fixture provenance.
    pub fn describe(&self) -> String {
        format!(
            "case {:>3} [{}] family={} n={} solver={} threads={}/{}",
            self.index,
            self.kind.name(),
            self.family.name(),
            self.n,
            self.solver,
            self.threads.0,
            self.threads.1,
        )
    }
}

/// What happened to one case.
#[derive(Clone, Debug)]
pub enum CaseOutcome {
    /// All checks held.
    Pass,
    /// The case could not be posed (e.g. too-short demand path); the
    /// reason is logged, the case is not counted as coverage.
    Skip(String),
    /// A check failed; when the case can be replayed as an
    /// instance-mode fixture, the minimized repro rides along.
    Diverged {
        /// What disagreed.
        divergence: Divergence,
        /// The minimized repro, ready to write to the corpus.
        fixture: Option<Box<Fixture>>,
    },
}

/// Aggregate result of a sweep.
#[derive(Clone, Debug, Default)]
pub struct SweepReport {
    /// Cases that ran and passed.
    pub passed: usize,
    /// Cases skipped (unposeable demand).
    pub skipped: usize,
    /// Cases that diverged.
    pub divergences: usize,
    /// Fixtures written for divergent cases.
    pub fixtures: Vec<PathBuf>,
    /// The largest `n` any executed case actually used.
    pub max_n_exercised: usize,
}

impl SweepReport {
    /// `true` when no case diverged.
    pub fn clean(&self) -> bool {
        self.divergences == 0
    }
}

/// Uniform draw from `[0, 1)` (the vendored `rand` has no float
/// `gen_range`).
fn unit_f64(rng: &mut StdRng) -> f64 {
    rng.gen_range(0..(1u64 << 53)) as f64 / (1u64 << 53) as f64
}

fn case_rng(master: u64, index: usize) -> StdRng {
    // SplitMix-style decorrelation so case i+1 is not a shifted replay
    // of case i.
    StdRng::seed_from_u64(
        master
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((index as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9)),
    )
}

/// Plans case `index` of a sweep (deterministic).
pub fn plan_case(cfg: &FuzzConfig, index: usize) -> CasePlan {
    let mut rng = case_rng(cfg.seed, index);
    // Deterministic tier rotation: half the sweep is the full solver
    // differential, and every tenth case climbs the size ladder.
    let kind = match index % 10 {
        0..=4 => CaseKind::InstanceDiff,
        5 | 6 => CaseKind::BatchDiff,
        7 => CaseKind::ScaleTier,
        8 => CaseKind::FaultTier,
        _ => CaseKind::InstanceDiff,
    };
    let family = match kind {
        CaseKind::FaultTier => {
            // Redundant topologies, so single failures degrade rather
            // than amputate.
            [Family::MetroRing, Family::GridRoad, Family::Octopus][rng.gen_range(0..3)]
        }
        _ => [
            Family::Planted,
            Family::Lane,
            Family::GridRoad,
            Family::Octopus,
            Family::LayeredDag,
            Family::MetroRing,
            Family::PowerLaw,
            Family::WeightedRandom,
        ][rng.gen_range(0..8)],
    };
    let n = match kind {
        CaseKind::InstanceDiff => rng.gen_range(16..=220.min(cfg.max_n)),
        CaseKind::BatchDiff => {
            // On-path avoids cost a full solver run each; scale the
            // graph with the profile so smoke stays seconds-scale, and
            // halve it again for the weighted solver (it sweeps
            // O(log(nW)) distance scales per run).
            let mut cap = 1024.min(cfg.max_n / 16).max(64);
            if family == Family::WeightedRandom {
                cap = (cap / 2).max(64);
            }
            rng.gen_range(64.min(cap)..=cap)
        }
        CaseKind::FaultTier => rng.gen_range(16..=160.min(cfg.max_n)),
        CaseKind::ScaleTier => {
            // Every third scale case pins the configured maximum so the
            // sweep provably reaches it; the rest ramp log-uniformly.
            if (index / 10).is_multiple_of(3) {
                cfg.max_n
            } else {
                let lo = (cfg.max_n / 64).max(256) as f64;
                let hi = cfg.max_n as f64;
                (lo * (hi / lo).powf(unit_f64(&mut rng))) as usize
            }
        }
    };
    let solver = {
        let pool: &[FuzzSolver] = if family == Family::WeightedRandom {
            &[FuzzSolver::Weighted, FuzzSolver::Reachability]
        } else if n > 300 {
            // The baselines are h·T_BFS; keep them off medium graphs.
            &[
                FuzzSolver::Unweighted,
                FuzzSolver::Weighted,
                FuzzSolver::Sisp,
                FuzzSolver::Reachability,
            ]
        } else {
            &FuzzSolver::ALL
        };
        pool[rng.gen_range(0..pool.len())]
    };
    let pool = &cfg.threads_pool;
    let t0 = pool[rng.gen_range(0..pool.len())];
    let mut t1 = pool[rng.gen_range(0..pool.len())];
    if t0 == t1 && pool.len() > 1 {
        // Always cross-check two *different* thread counts when the
        // pool allows it.
        t1 = pool[(pool.iter().position(|&p| p == t0).unwrap() + 1) % pool.len()];
    }
    CasePlan {
        index,
        kind,
        family,
        n,
        solver,
        threads: (t0.min(t1), t0.max(t1)),
        case_seed: rng.gen_range(0..u64::MAX / 2),
    }
}

fn params_for(n: usize, rng: &mut StdRng) -> Params {
    // ζ sweeps the short/long regime split; landmark_prob stays 1.0 so
    // the w.h.p. guarantees are certainties and every divergence is a
    // bug, not sampling bad luck.
    let zeta_cap = ((n as f64).powf(2.0 / 3.0).ceil() as usize).max(3);
    let mut p = Params::with_zeta(n, rng.gen_range(2..=zeta_cap));
    p.landmark_prob = 1.0;
    p.seed = rng.gen_range(0..u64::MAX / 2);
    p
}

/// Picks demand endpoints for a generated graph, preferring the
/// family's natural pair.
fn endpoints(
    graph: &DiGraph,
    natural: Option<(NodeId, NodeId)>,
    rng: &mut StdRng,
) -> Option<(NodeId, NodeId)> {
    natural.or_else(|| gen::random_reachable_pair(graph, rng.gen_range(0..u64::MAX / 2)))
}

/// Undirected connectivity in `O(n + m)` (the diameter oracle is
/// `O(n·m)` and unusable at scale-tier sizes).
pub fn undirected_connected(graph: &DiGraph) -> bool {
    let n = graph.node_count();
    if n == 0 {
        return true;
    }
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for (_, e) in graph.edges() {
        adj[e.from].push(e.to);
        adj[e.to].push(e.from);
    }
    let mut seen = vec![false; n];
    let mut stack = vec![0];
    seen[0] = true;
    let mut count = 1;
    while let Some(v) = stack.pop() {
        for &w in &adj[v] {
            if !seen[w] {
                seen[w] = true;
                count += 1;
                stack.push(w);
            }
        }
    }
    count == n
}

/// Undirected hop distances from `root` in `O(n + m)` — the centralized
/// mirror of the engine's BFS-tree depths.
pub fn undirected_bfs_depths(graph: &DiGraph, root: NodeId) -> Vec<Option<u64>> {
    let n = graph.node_count();
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for (_, e) in graph.edges() {
        adj[e.from].push(e.to);
        adj[e.to].push(e.from);
    }
    let mut depth = vec![None; n];
    depth[root] = Some(0);
    let mut frontier = std::collections::VecDeque::from([root]);
    while let Some(v) = frontier.pop_front() {
        let d = depth[v].unwrap();
        for &w in &adj[v] {
            if depth[w].is_none() {
                depth[w] = Some(d + 1);
                frontier.push_back(w);
            }
        }
    }
    depth
}

fn diverge(
    check: impl Into<String>,
    got: impl Into<String>,
    want: impl Into<String>,
) -> Divergence {
    Divergence {
        check: check.into(),
        index: None,
        got: got.into(),
        want: want.into(),
    }
}

// ---------------------------------------------------------------------
// Case execution
// ---------------------------------------------------------------------

struct CaseRun {
    outcome: Result<(), Divergence>,
    skip: Option<String>,
    /// Repro parts for the minimizer, when the case can be replayed as
    /// an instance-mode fixture.
    repro: Option<(DiGraph, NodeId, NodeId, Params)>,
}

impl CaseRun {
    fn pass() -> CaseRun {
        CaseRun {
            outcome: Ok(()),
            skip: None,
            repro: None,
        }
    }

    fn skip(reason: impl Into<String>) -> CaseRun {
        CaseRun {
            outcome: Ok(()),
            skip: Some(reason.into()),
            repro: None,
        }
    }
}

fn run_instance_diff(plan: &CasePlan) -> CaseRun {
    let mut rng = StdRng::seed_from_u64(plan.case_seed);
    let (graph, natural) = plan.family.generate(plan.n, &mut rng);
    let Some((s, t)) = endpoints(&graph, natural, &mut rng) else {
        return CaseRun::skip("no reachable demand pair");
    };
    if plan.solver.needs_unweighted() && !graph.is_unweighted() {
        return CaseRun::skip("weighted graph, unweighted-only solver");
    }
    let params = params_for(graph.node_count(), &mut rng);
    let inst = match Instance::from_endpoints(&graph, s, t) {
        Ok(i) => i,
        Err(e) => return CaseRun::skip(format!("instance: {e}")),
    };
    if inst.hops() < 2 {
        return CaseRun::skip("demand path under 2 hops");
    }
    for threads in [plan.threads.0, plan.threads.1] {
        if let Err(d) = oracle::check_instance(&inst, &params, plan.solver, threads) {
            drop(inst);
            return CaseRun {
                outcome: Err(d),
                skip: None,
                repro: Some((graph, s, t, params)),
            };
        }
    }
    CaseRun::pass()
}

fn run_batch_diff(plan: &CasePlan) -> CaseRun {
    let mut rng = StdRng::seed_from_u64(plan.case_seed);
    let (graph, natural) = plan.family.generate(plan.n, &mut rng);
    let Some((s, t)) = endpoints(&graph, natural, &mut rng) else {
        return CaseRun::skip("no reachable demand pair");
    };
    let Some(path) = shortest_st_path(&graph, s, t) else {
        return CaseRun::skip("no demand path");
    };
    let params = params_for(graph.node_count(), &mut rng);
    // Mixed batch: intact, on-path avoids (which force a solver run
    // when the graph is small enough for the diameter oracle), and
    // off-path avoids (answered from the path alone at any size).
    let mut queries = vec![Query::intact(s, t)];
    // Each on-path avoid is a full solver run (times two thread counts
    // plus the warm/cold session); ramp the budget down with n.
    let on_path_budget = match graph.node_count() {
        0..=256 => 3,
        257..=640 => 2,
        641..=1024 => 1,
        _ => 0,
    };
    for _ in 0..on_path_budget.min(path.hops()) {
        let i = rng.gen_range(0..path.hops());
        queries.push(Query::avoiding(s, t, path.edge(i)));
    }
    let m = graph.edge_count();
    for _ in 0..6 {
        let e = rng.gen_range(0..m);
        if !path.contains_edge(e) {
            queries.push(Query::avoiding(s, t, e));
        }
    }
    let a0 = match oracle::check_batch(&graph, &params, &queries, plan.threads.0) {
        Ok(a) => a,
        Err(d) => {
            return CaseRun {
                outcome: Err(d),
                skip: None,
                repro: None,
            }
        }
    };
    let a1 = match oracle::check_batch(&graph, &params, &queries, plan.threads.1) {
        Ok(a) => a,
        Err(d) => {
            return CaseRun {
                outcome: Err(d),
                skip: None,
                repro: None,
            }
        }
    };
    if a0 != a1 {
        return CaseRun {
            outcome: Err(diverge(
                format!(
                    "batch bit-identity {} vs {} threads",
                    plan.threads.0, plan.threads.1
                ),
                format!("{a1:?}"),
                format!("{a0:?}"),
            )),
            skip: None,
            repro: None,
        };
    }
    // Warm vs cold: a second identical batch in one session must come
    // back bit-identical from the cache.
    let mut session = rpaths_core::SolverSession::new(&graph, params.clone());
    session.set_threads(plan.threads.0);
    let cold = session.solve_batch(&queries);
    let warm = session.solve_batch(&queries);
    match (cold, warm) {
        (Ok(c), Ok(w)) if c == w => CaseRun::pass(),
        (Ok(c), Ok(w)) => CaseRun {
            outcome: Err(diverge(
                "warm batch differs from cold batch",
                format!("{w:?}"),
                format!("{c:?}"),
            )),
            skip: None,
            repro: None,
        },
        (e, _) => CaseRun {
            outcome: Err(diverge("session batch failed", format!("{e:?}"), "answers")),
            skip: None,
            repro: None,
        },
    }
}

fn run_fault_tier(plan: &CasePlan) -> CaseRun {
    let mut rng = StdRng::seed_from_u64(plan.case_seed);
    let (graph, natural) = plan.family.generate(plan.n, &mut rng);
    if !graph.is_unweighted() {
        return CaseRun::skip("fault tier drives the unweighted solver");
    }
    let Some((s, t)) = endpoints(&graph, natural, &mut rng) else {
        return CaseRun::skip("no reachable demand pair");
    };
    let params = params_for(graph.node_count(), &mut rng);
    let policy = RecoveryPolicy::default();
    let plan_seed = rng.gen_range(0..u64::MAX / 2);
    let transient = rng.gen_bool(0.5);
    let fault_plan = if transient {
        FaultPlan::new(plan_seed)
            .drop_messages(unit_f64(&mut rng) * 0.04)
            .delay_messages(unit_f64(&mut rng) * 0.06, rng.gen_range(1..=2))
    } else {
        let mut p = FaultPlan::new(plan_seed);
        for _ in 0..rng.gen_range(1..=2) {
            p = p.fail_link(rng.gen_range(0..graph.edge_count()), 0, None);
        }
        if graph.node_count() > 4 && rng.gen_bool(0.4) {
            let mut v = rng.gen_range(0..graph.node_count());
            while v == s || v == t {
                v = rng.gen_range(0..graph.node_count());
            }
            p = p.crash_node(v, 0, None);
        }
        p
    };
    let recovery = resilient::solve_with_recovery::<resilient::Unweighted>(
        &graph,
        s,
        t,
        &fault_plan,
        &params,
        &policy,
    );
    match recovery {
        Ok(Recovery::Full { output, .. }) => {
            if !transient {
                return CaseRun {
                    outcome: Err(diverge(
                        "permanent faults reported Full recovery",
                        "Full",
                        "Degraded",
                    )),
                    skip: None,
                    repro: None,
                };
            }
            // Transient faults leave the steady graph intact: answers
            // must match the healthy oracle exactly.
            let inst = match Instance::from_endpoints(&graph, s, t) {
                Ok(i) => i,
                Err(e) => return CaseRun::skip(format!("instance: {e}")),
            };
            let want = oracle::oracle_replacements(&inst);
            if output != want {
                return CaseRun {
                    outcome: Err(diverge(
                        "recovered transient answers vs oracle",
                        format!("{output:?}"),
                        format!("{want:?}"),
                    )),
                    skip: None,
                    repro: None,
                };
            }
            CaseRun::pass()
        }
        Ok(Recovery::Degraded(d)) => match check_degraded(&graph, s, t, &fault_plan, &d) {
            Ok(()) => CaseRun::pass(),
            Err(div) => CaseRun {
                outcome: Err(div),
                skip: None,
                repro: None,
            },
        },
        Err(resilient::RecoveryError::Exhausted { .. }) if transient => {
            // Heavy message loss can legitimately outlast the retry
            // budget; that is a campaign finding, not a correctness bug.
            CaseRun::skip("transient faults exhausted the retry budget")
        }
        Err(e) => CaseRun {
            outcome: Err(diverge("recovery failed", e.to_string(), "an answer")),
            skip: None,
            repro: None,
        },
    }
}

/// Independently rebuilds the survivor graph (crashed nodes and downed
/// links removed, source component, ascending remap — the documented
/// re-posing rule of `rpaths_core::resilient`) and holds the degraded
/// answer to the replica's oracle.
fn check_degraded(
    graph: &DiGraph,
    s: NodeId,
    t: NodeId,
    plan: &FaultPlan,
    d: &resilient::Degraded<Vec<Dist>>,
) -> Result<(), Divergence> {
    let horizon = plan.horizon();
    let downed: Vec<EdgeId> = plan.links_down_at(horizon);
    let crashed: Vec<NodeId> = plan.nodes_down_at(horizon);
    let n = graph.node_count();
    let mut dead = vec![false; n];
    for &v in &crashed {
        dead[v] = true;
    }
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for (id, e) in graph.edges() {
        if downed.binary_search(&id).is_ok() || dead[e.from] || dead[e.to] {
            continue;
        }
        adj[e.from].push(e.to);
        adj[e.to].push(e.from);
    }
    let mut in_comp = vec![false; n];
    in_comp[s] = true;
    let mut stack = vec![s];
    while let Some(v) = stack.pop() {
        for &w in &adj[v] {
            if !in_comp[w] {
                in_comp[w] = true;
                stack.push(w);
            }
        }
    }
    let expect_unreachable: Vec<NodeId> = (0..n).filter(|&v| !in_comp[v]).collect();
    if d.unreachable != expect_unreachable {
        return Err(diverge(
            "degraded unreachable set vs local component",
            format!("{:?}", d.unreachable),
            format!("{expect_unreachable:?}"),
        ));
    }
    if !in_comp[t] {
        return match &d.answered {
            None => Ok(()),
            Some(a) => Err(diverge(
                "answered a severed target",
                format!("{a:?}"),
                "no answer",
            )),
        };
    }
    // Replica of the re-posed instance: same ascending remap, same edge
    // order, so the extracted path — and with it the oracle — is the
    // one the recovery wrapper solved against.
    let component: Vec<NodeId> = (0..n).filter(|&v| in_comp[v]).collect();
    let mut new_id = vec![usize::MAX; n];
    for (i, &v) in component.iter().enumerate() {
        new_id[v] = i;
    }
    let mut b = graphkit::GraphBuilder::new(component.len());
    for (id, e) in graph.edges() {
        if downed.binary_search(&id).is_ok() || !in_comp[e.from] || !in_comp[e.to] {
            continue;
        }
        b.add_edge(new_id[e.from], new_id[e.to], e.weight);
    }
    let sub = b.build();
    match Instance::from_endpoints(&sub, new_id[s], new_id[t]) {
        Ok(inst) => {
            let want = oracle::oracle_replacements(&inst);
            match &d.answered {
                Some(got) if *got == want => Ok(()),
                Some(got) => Err(diverge(
                    "degraded answers vs survivor-graph oracle",
                    format!("{got:?}"),
                    format!("{want:?}"),
                )),
                None => Err(diverge(
                    "no answer despite a surviving route",
                    "None",
                    format!("{want:?}"),
                )),
            }
        }
        Err(_) => match &d.answered {
            None => Ok(()),
            Some(a) => Err(diverge(
                "answered without a surviving directed route",
                format!("{a:?}"),
                "no answer",
            )),
        },
    }
}

fn run_scale_tier(plan: &CasePlan) -> CaseRun {
    let mut rng = StdRng::seed_from_u64(plan.case_seed);
    let (graph, natural) = plan.family.generate(plan.n, &mut rng);
    // Generator invariant: every family contract promises an
    // undirected-connected graph.
    if !undirected_connected(&graph) {
        return CaseRun {
            outcome: Err(diverge(
                format!("{} generator connectivity", plan.family.name()),
                "disconnected graph",
                "connected graph",
            )),
            skip: None,
            repro: None,
        };
    }
    let Some((s, t)) = endpoints(&graph, natural, &mut rng) else {
        return CaseRun::skip("no reachable demand pair");
    };
    let Some(path) = shortest_st_path(&graph, s, t) else {
        return CaseRun::skip("no demand path");
    };
    let params = params_for(graph.node_count(), &mut rng);
    // Session answers vs Dijkstra at full scale: intact and off-path
    // avoids never touch the engine or the O(n·m) diameter oracle.
    let mut queries = vec![Query::intact(s, t)];
    let m = graph.edge_count();
    for _ in 0..5 {
        let e = rng.gen_range(0..m);
        if !path.contains_edge(e) {
            queries.push(Query::avoiding(s, t, e));
        }
    }
    if let Err(d) = oracle::check_batch(&graph, &params, &queries, plan.threads.0) {
        return CaseRun {
            outcome: Err(d),
            skip: None,
            repro: None,
        };
    }
    // Snapshot round-trip: the store must reproduce the graph bit for
    // bit at any size.
    let snap = rpaths_store::Snapshot::new(graph.clone());
    let bytes = snap.encode();
    match rpaths_store::Snapshot::decode(&bytes) {
        Ok(loaded) => {
            let back = loaded.into_snapshot();
            if back.graph.fingerprint() != graph.fingerprint() {
                return CaseRun {
                    outcome: Err(diverge(
                        "snapshot round-trip fingerprint",
                        format!("{:#x}", back.graph.fingerprint()),
                        format!("{:#x}", graph.fingerprint()),
                    )),
                    skip: None,
                    repro: None,
                };
            }
        }
        Err(e) => {
            return CaseRun {
                outcome: Err(diverge("snapshot decode", e.to_string(), "a snapshot")),
                skip: None,
                repro: None,
            }
        }
    }
    // Distributed BFS tree vs centralized BFS, where the engine is
    // still affordable on one host.
    if graph.node_count() <= 4096 {
        let mut net = Network::new(&graph);
        net.set_threads(plan.threads.1.max(1));
        match build_bfs_tree(&mut net, s) {
            Ok((tree, _)) => {
                let want = undirected_bfs_depths(&graph, s);
                for v in 0..graph.node_count() {
                    if Some(tree.depth[v]) != want[v] {
                        return CaseRun {
                            outcome: Err(diverge(
                                "distributed BFS depth vs centralized BFS",
                                format!("node {v}: {}", tree.depth[v]),
                                format!("{:?}", want[v]),
                            )),
                            skip: None,
                            repro: None,
                        };
                    }
                }
            }
            Err(e) => {
                return CaseRun {
                    outcome: Err(diverge(
                        "distributed BFS on a connected graph",
                        format!("{e:?}"),
                        "a spanning tree",
                    )),
                    skip: None,
                    repro: None,
                }
            }
        }
    }
    CaseRun::pass()
}

/// Runs one planned case; `minimize` controls whether divergent repros
/// are ddmin-shrunk before being minted as fixtures.
pub fn run_case(plan: &CasePlan, minimize: bool) -> (CaseOutcome, usize) {
    let run = match plan.kind {
        CaseKind::InstanceDiff => run_instance_diff(plan),
        CaseKind::BatchDiff => run_batch_diff(plan),
        CaseKind::FaultTier => run_fault_tier(plan),
        CaseKind::ScaleTier => run_scale_tier(plan),
    };
    let n = plan.n;
    match (run.outcome, run.skip) {
        (Ok(()), None) => (CaseOutcome::Pass, n),
        (Ok(()), Some(reason)) => (CaseOutcome::Skip(reason), 0),
        (Err(divergence), _) => {
            let fixture = run.repro.map(|(graph, s, t, params)| {
                Box::new(build_fixture(
                    plan,
                    graph,
                    s,
                    t,
                    params,
                    &divergence,
                    minimize,
                ))
            });
            (
                CaseOutcome::Diverged {
                    divergence,
                    fixture,
                },
                n,
            )
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn build_fixture(
    plan: &CasePlan,
    graph: DiGraph,
    s: NodeId,
    t: NodeId,
    params: Params,
    divergence: &Divergence,
    minimize: bool,
) -> Fixture {
    let before = graph.node_count();
    let (graph, s, t) = if minimize {
        minimize::minimize_instance(graph, s, t, &params, plan.solver, plan.threads.0)
    } else {
        (graph, s, t)
    };
    let origin = format!(
        "minimized from {} ({} → {} nodes); {}",
        plan.describe(),
        before,
        graph.node_count(),
        divergence,
    );
    Fixture::instance_mode(
        format!("{}-s{}-c{}", plan.solver.name(), plan.case_seed, plan.index),
        origin,
        graph,
        s,
        t,
        params,
        plan.solver,
        vec![plan.threads.0, plan.threads.1],
    )
}

/// Runs the whole sweep, writing fixtures for divergent cases and
/// logging one line per case through `log`.
pub fn run_sweep(cfg: &FuzzConfig, log: &mut dyn FnMut(&str)) -> SweepReport {
    if cfg.inject_tiebreak {
        rpaths_core::testhooks::set_flip_unweighted_merge(true);
    }
    let mut report = SweepReport::default();
    for index in 0..cfg.cases {
        let plan = plan_case(cfg, index);
        let (outcome, n_used) = run_case(&plan, cfg.minimize);
        report.max_n_exercised = report.max_n_exercised.max(n_used);
        match outcome {
            CaseOutcome::Pass => {
                report.passed += 1;
                log(&format!("{}: ok", plan.describe()));
            }
            CaseOutcome::Skip(reason) => {
                report.skipped += 1;
                log(&format!("{}: skip ({reason})", plan.describe()));
            }
            CaseOutcome::Diverged {
                divergence,
                fixture,
            } => {
                report.divergences += 1;
                log(&format!("{}: DIVERGED: {divergence}", plan.describe()));
                if let Some(fix) = fixture {
                    let path = cfg.out_dir.join(format!("{}.{FIXTURE_EXT}", fix.name));
                    if std::fs::create_dir_all(&cfg.out_dir).is_ok() && fix.write(&path).is_ok() {
                        log(&format!(
                            "  minimized to {} nodes; fixture: {}",
                            fix.graph.node_count(),
                            path.display()
                        ));
                        report.fixtures.push(path);
                    } else {
                        log("  FAILED to write fixture");
                    }
                }
            }
        }
    }
    if cfg.inject_tiebreak {
        rpaths_core::testhooks::set_flip_unweighted_merge(false);
    }
    report
}

/// Writes the hand-curated seed corpus: one minimal green fixture per
/// solver surface, proving the corpus replay path end to end. Returns
/// the written paths.
///
/// # Errors
///
/// [`rpaths_store::StoreError`] when a fixture cannot be written.
pub fn write_seed_corpus(out_dir: &Path) -> Result<Vec<PathBuf>, rpaths_store::StoreError> {
    std::fs::create_dir_all(out_dir).map_err(|e| rpaths_store::StoreError::Io {
        kind: e.kind(),
        message: e.to_string(),
    })?;
    let mut written = Vec::new();
    let mut put = |fix: Fixture| -> Result<(), rpaths_store::StoreError> {
        let path = out_dir.join(format!("{}.{FIXTURE_EXT}", fix.name));
        fix.write(&path)?;
        written.push(path);
        Ok(())
    };
    let origin = "seed corpus (hand-written minimal instance)";
    let exact_params = |n: usize, zeta: usize| {
        let mut p = Params::with_zeta(n, zeta);
        p.landmark_prob = 1.0;
        p
    };

    // unweighted: a lane whose detours straddle the ζ regime split.
    let (g, s, t) = gen::parallel_lane(8, 2, 2);
    let p = exact_params(g.node_count(), 4);
    put(Fixture::instance_mode(
        "seed-unweighted-lane",
        origin,
        g,
        s,
        t,
        p,
        FuzzSolver::Unweighted,
        vec![1, 2],
    ))?;

    // weighted: small weighted random graph under the (1+ε) envelope.
    let g = gen::random_weighted_digraph(20, 60, 7, 11);
    let (s, t) = gen::random_reachable_pair(&g, 3).expect("seeded pair");
    let p = exact_params(20, 5);
    put(Fixture::instance_mode(
        "seed-weighted-random",
        origin,
        g,
        s,
        t,
        p,
        FuzzSolver::Weighted,
        vec![1, 2],
    ))?;

    // sisp: the Theorem 2 family, whose 2-SiSP value is d + 1.
    let t2 = gen::theorem2_family(5, None);
    let p = exact_params(t2.graph.node_count(), t2.graph.node_count());
    put(Fixture::instance_mode(
        "seed-sisp-theorem2",
        origin,
        t2.graph,
        t2.s,
        t2.t,
        p,
        FuzzSolver::Sisp,
        vec![1, 2],
    ))?;

    // reachability: a planted path with unprotected tail edges.
    let (g, s, t) = gen::planted_path_digraph(24, 7, 30, 5);
    let p = exact_params(24, 4);
    put(Fixture::instance_mode(
        "seed-reachability-planted",
        origin,
        g,
        s,
        t,
        p,
        FuzzSolver::Reachability,
        vec![1, 2],
    ))?;

    // naive baseline: the new road grid.
    let (g, s, t) = gen::grid_road(4, 5, 3, 7);
    let p = exact_params(20, 4);
    put(Fixture::instance_mode(
        "seed-naive-grid-road",
        origin,
        g,
        s,
        t,
        p,
        FuzzSolver::Naive,
        vec![1, 2],
    ))?;

    // mr24 baseline: the new octopus pods.
    let g = gen::octopus_pods(4, 5, 1, 9);
    let (s, t) = gen::random_reachable_pair(&g, 1).expect("seeded pair");
    let p = exact_params(20, 4);
    put(Fixture::instance_mode(
        "seed-mr24-octopus",
        origin,
        g,
        s,
        t,
        p,
        FuzzSolver::Mr24,
        vec![1, 2],
    ))?;

    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planner_is_deterministic() {
        let cfg = FuzzConfig::full(1, 200);
        for i in 0..50 {
            let a = plan_case(&cfg, i);
            let b = plan_case(&cfg, i);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    // Triage harness: replay exactly one planned case from a sweep, by
    // index, without running its neighbors. See FUZZING.md ("Triaging a
    // divergence"). Usage:
    //
    //   RPATHS_FUZZ_CASE=106 cargo test --release -p rpaths-fuzz \
    //       replay_single_case -- --ignored --nocapture
    //
    // RPATHS_FUZZ_SEED overrides the master seed (default 1).
    #[test]
    #[ignore = "manual triage harness; select a case with RPATHS_FUZZ_CASE"]
    fn replay_single_case() {
        let index: usize = std::env::var("RPATHS_FUZZ_CASE")
            .expect("set RPATHS_FUZZ_CASE to the case index to replay")
            .parse()
            .unwrap();
        let seed: u64 = std::env::var("RPATHS_FUZZ_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);
        let cfg = FuzzConfig::full(seed, index + 1);
        let plan = plan_case(&cfg, index);
        println!("{}", plan.describe());
        let (outcome, n_used) = run_case(&plan, false);
        println!("n exercised = {n_used}");
        println!("{outcome:?}");
    }
}
