//! Crash-safe single-file snapshot store: a versioned, checksummed
//! binary format holding a graph, its precomputed CSR indexes, and
//! solver artifacts, written atomically and loaded defensively.
//!
//! # Byte layout
//!
//! All integers are little-endian. The file is a fixed header, a run of
//! length-prefixed sections, and a whole-file footer:
//!
//! ```text
//! header   magic      8 bytes   b"RPATHSNP"
//!          version    u32       currently 1
//! section  tag        u32       section type (see below)
//!          len        u64       payload length in bytes
//!          payload    len bytes
//!          crc        u32       CRC32 (IEEE) of tag ‖ len ‖ payload
//! footer   magic      4 bytes   b"RPFT"
//!          crc        u32       CRC32 of every preceding file byte
//! ```
//!
//! Section tags: [`TAG_GRAPH`] (payload is
//! `graphkit::DiGraph::to_snapshot`), [`TAG_DISTS`], [`TAG_TREE`],
//! [`TAG_BLOB`], and [`TAG_CACHE`] (artifact sections: a
//! length-prefixed UTF-8 key, then a kind-specific body — the typed
//! codecs live in `rpaths_core::artifacts`). Exactly one graph section
//! is required; artifact sections are optional and ordered.
//!
//! # Durability contract
//!
//! [`Snapshot::write`] (and the reusable [`atomic_write`]) goes through
//! a temp file in the destination directory, `fsync`s it, atomically
//! renames it over the destination, and `fsync`s the directory: a crash
//! at any point leaves either the old snapshot or the new one on disk,
//! never a torn file.
//!
//! # Degraded loads
//!
//! [`Snapshot::decode`] never panics on untrusted bytes. Corruption
//! *before* the graph is recovered — bad magic, unsupported version, a
//! graph section that fails its checksum, truncation inside the header
//! or graph — is a fatal [`StoreError`]. Corruption *after* the graph
//! is recovered degrades: the damaged artifact sections are dropped
//! (with their [`StoreError`] attached) and the caller gets
//! [`Loaded::Partial`] so it can recompute only what was lost,
//! mirroring the `Recovery::Degraded` contract of the fault-recovery
//! layer. Unknown section tags are skipped and reported for forward
//! compatibility.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs::{self, File};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

use graphkit::DiGraph;

/// File magic: the first 8 bytes of every snapshot.
pub const MAGIC: [u8; 8] = *b"RPATHSNP";
/// Current format version.
pub const VERSION: u32 = 1;
/// Footer magic: the 4 bytes introducing the whole-file checksum.
pub const FOOTER_MAGIC: [u8; 4] = *b"RPFT";

/// Section tag: the graph payload (`DiGraph::to_snapshot` bytes).
pub const TAG_GRAPH: u32 = 1;
/// Section tag: a keyed distance-array artifact.
pub const TAG_DISTS: u32 = 2;
/// Section tag: a keyed BFS-tree artifact.
pub const TAG_TREE: u32 = 3;
/// Section tag: a keyed opaque-blob artifact (forward-compatible).
pub const TAG_BLOB: u32 = 4;
/// Section tag: one solver-session cache entry (see
/// `rpaths_core::artifacts::cache_artifact`). The body opens with the
/// graph fingerprint the entry was computed for; readers drop entries
/// whose fingerprint does not match the graph in hand, and any
/// corruption here degrades the load to [`Loaded::Partial`] (a cold
/// cache), never a failed graph load.
pub const TAG_CACHE: u32 = 5;

const HEADER_LEN: usize = 12;
const SECTION_HDR_LEN: usize = 12;
const FOOTER_LEN: usize = 8;

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3), vendored: no external checksum dependency.
// ---------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC32 (IEEE polynomial, reflected) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Why a snapshot could not be read or written.
///
/// Every decode path returns one of these — loads never panic on bad
/// input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// Filesystem failure (open/read/write/rename); the kind and
    /// rendered message of the underlying `io::Error`.
    Io {
        /// `io::ErrorKind` of the failure.
        kind: io::ErrorKind,
        /// Rendered message.
        message: String,
    },
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The header's format version is not one this build reads.
    VersionUnsupported {
        /// The version found in the header.
        found: u32,
    },
    /// A section's stored CRC32 does not match its bytes.
    SectionChecksum {
        /// Zero-based index of the failing section.
        section: usize,
    },
    /// The footer's whole-file CRC32 does not match the file bytes.
    FooterChecksum,
    /// The file ends before the structure it promised.
    Truncated {
        /// Byte offset the decoder needed the file to reach.
        expected: usize,
        /// Actual file length.
        got: usize,
    },
    /// Well-formed footer followed by unexpected extra bytes.
    TrailingBytes {
        /// Offset of the first byte past the footer.
        after: usize,
    },
    /// No graph section was present.
    MissingGraph,
    /// A section's payload passed its checksum but failed structural
    /// validation (writer bug or handcrafted file).
    Malformed {
        /// Zero-based index of the failing section.
        section: usize,
        /// Human-readable cause.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { kind, message } => {
                write!(f, "snapshot I/O error ({kind:?}): {message}")
            }
            StoreError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            StoreError::VersionUnsupported { found } => {
                write!(
                    f,
                    "unsupported snapshot format version {found} (this build reads {VERSION})"
                )
            }
            StoreError::SectionChecksum { section } => {
                write!(f, "section {section} failed its checksum")
            }
            StoreError::FooterChecksum => write!(f, "whole-file footer checksum mismatch"),
            StoreError::Truncated { expected, got } => {
                write!(
                    f,
                    "snapshot truncated: needed {expected} bytes, file has {got}"
                )
            }
            StoreError::TrailingBytes { after } => {
                write!(f, "trailing bytes after the footer (offset {after})")
            }
            StoreError::MissingGraph => write!(f, "snapshot has no graph section"),
            StoreError::Malformed { section, detail } => {
                write!(f, "section {section} is malformed: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io {
            kind: e.kind(),
            message: e.to_string(),
        }
    }
}

// ---------------------------------------------------------------------
// Data model
// ---------------------------------------------------------------------

/// A keyed, typed artifact riding in the snapshot next to the graph.
///
/// The store frames and checksums artifacts but treats their bodies as
/// opaque; the typed encode/decode for distance arrays and BFS trees
/// lives in `rpaths_core::artifacts`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Artifact {
    /// Section tag this artifact is written under ([`TAG_DISTS`],
    /// [`TAG_TREE`], [`TAG_BLOB`], or [`TAG_CACHE`]).
    pub kind: u32,
    /// Caller-chosen identity, e.g. `"unweighted/replacement"`.
    pub key: String,
    /// Kind-specific body bytes.
    pub body: Vec<u8>,
}

impl Artifact {
    /// An opaque-blob artifact.
    pub fn blob(key: impl Into<String>, body: Vec<u8>) -> Artifact {
        Artifact {
            kind: TAG_BLOB,
            key: key.into(),
            body,
        }
    }
}

/// Everything a snapshot file holds: the graph and its artifacts.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// The graph, with its precomputed CSR indexes.
    pub graph: DiGraph,
    /// Artifacts, in file order.
    pub artifacts: Vec<Artifact>,
}

/// A section the loader had to give up on during a degraded load.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dropped {
    /// Zero-based index of the section in the file.
    pub section: usize,
    /// The section's tag (0 when the frame was too damaged to read it).
    pub tag: u32,
    /// What was wrong with it.
    pub error: StoreError,
}

/// The result of a successful-enough load.
#[derive(Clone, Debug)]
pub enum Loaded {
    /// Every section decoded; the snapshot is exactly what was written.
    Complete {
        /// The decoded snapshot.
        snapshot: Snapshot,
        /// Tags of unknown sections that were skipped (forward
        /// compatibility); empty for files this build wrote.
        skipped_unknown: Vec<u32>,
    },
    /// The graph decoded but some artifact sections did not: callers
    /// keep the graph and recompute only what `dropped` lost.
    Partial {
        /// The graph plus every artifact that survived.
        recovered: Snapshot,
        /// The sections that were lost, with their structured errors.
        dropped: Vec<Dropped>,
        /// Tags of unknown sections that were skipped.
        skipped_unknown: Vec<u32>,
    },
}

impl Loaded {
    /// The recovered snapshot, complete or partial.
    pub fn snapshot(&self) -> &Snapshot {
        match self {
            Loaded::Complete { snapshot, .. } => snapshot,
            Loaded::Partial { recovered, .. } => recovered,
        }
    }

    /// Consumes the load, keeping the recovered snapshot.
    pub fn into_snapshot(self) -> Snapshot {
        match self {
            Loaded::Complete { snapshot, .. } => snapshot,
            Loaded::Partial { recovered, .. } => recovered,
        }
    }

    /// `true` when sections were dropped.
    pub fn is_partial(&self) -> bool {
        matches!(self, Loaded::Partial { .. })
    }

    /// The dropped sections (empty for [`Loaded::Complete`]).
    pub fn dropped(&self) -> &[Dropped] {
        match self {
            Loaded::Complete { .. } => &[],
            Loaded::Partial { dropped, .. } => dropped,
        }
    }

    /// Unwraps a [`Loaded::Complete`] load.
    ///
    /// # Panics
    ///
    /// Panics with the dropped-section list if the load was partial.
    pub fn expect_complete(self, context: &str) -> Snapshot {
        match self {
            Loaded::Complete { snapshot, .. } => snapshot,
            Loaded::Partial { dropped, .. } => {
                panic!("{context}: load was partial, dropped {dropped:?}")
            }
        }
    }
}

// ---------------------------------------------------------------------
// Encode
// ---------------------------------------------------------------------

fn push_section(out: &mut Vec<u8>, tag: u32, payload: &[u8]) {
    let start = out.len();
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

fn artifact_payload(a: &Artifact) -> Vec<u8> {
    let mut p = Vec::with_capacity(4 + a.key.len() + a.body.len());
    p.extend_from_slice(&(a.key.len() as u32).to_le_bytes());
    p.extend_from_slice(a.key.as_bytes());
    p.extend_from_slice(&a.body);
    p
}

impl Snapshot {
    /// A snapshot of `graph` with no artifacts (yet).
    pub fn new(graph: DiGraph) -> Snapshot {
        Snapshot {
            graph,
            artifacts: Vec::new(),
        }
    }

    /// Encodes the snapshot into the documented byte format.
    ///
    /// Deterministic: the same snapshot always yields the same bytes,
    /// and `decode ∘ encode` round-trips bit-identically.
    pub fn encode(&self) -> Vec<u8> {
        let graph_payload = self.graph.to_snapshot();
        let mut out = Vec::with_capacity(HEADER_LEN + graph_payload.len() + 64);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        push_section(&mut out, TAG_GRAPH, &graph_payload);
        for a in &self.artifacts {
            push_section(&mut out, a.kind, &artifact_payload(a));
        }
        let crc = crc32(&out);
        out.extend_from_slice(&FOOTER_MAGIC);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes snapshot bytes, degrading on artifact corruption.
    ///
    /// # Errors
    ///
    /// Fatal [`StoreError`]s are reserved for damage that loses the
    /// graph: bad magic/version, truncation at or before the graph
    /// section, a graph checksum or validation failure, a missing graph
    /// section, or trailing bytes after a valid footer. Damage confined
    /// to artifact sections (or a missing/invalid footer once the graph
    /// is out) returns `Ok(Loaded::Partial { .. })` instead.
    pub fn decode(bytes: &[u8]) -> Result<Loaded, StoreError> {
        if bytes.len() < HEADER_LEN {
            return Err(StoreError::Truncated {
                expected: HEADER_LEN,
                got: bytes.len(),
            });
        }
        if bytes[..8] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(StoreError::VersionUnsupported { found: version });
        }

        let mut pos = HEADER_LEN;
        let mut graph: Option<DiGraph> = None;
        let mut artifacts: Vec<Artifact> = Vec::new();
        let mut dropped: Vec<Dropped> = Vec::new();
        let mut skipped_unknown: Vec<u32> = Vec::new();
        let mut section = 0usize;
        let mut saw_footer = false;

        // One closure-shaped policy, written out because the borrowchecker
        // wants it that way: an error is fatal until the graph is
        // recovered, and a dropped section afterwards.
        macro_rules! fail_or_drop {
            ($tag:expr, $err:expr) => {{
                let err = $err;
                if graph.is_none() {
                    return Err(err);
                }
                dropped.push(Dropped {
                    section,
                    tag: $tag,
                    error: err,
                });
            }};
        }

        while pos < bytes.len() {
            if bytes.len() - pos >= 4 && bytes[pos..pos + 4] == FOOTER_MAGIC {
                // Footer. Verify the whole-file checksum and stop.
                if bytes.len() - pos < FOOTER_LEN {
                    fail_or_drop!(
                        0,
                        StoreError::Truncated {
                            expected: pos + FOOTER_LEN,
                            got: bytes.len(),
                        }
                    );
                    pos = bytes.len();
                    break;
                }
                let stored = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
                if stored != crc32(&bytes[..pos]) {
                    fail_or_drop!(0, StoreError::FooterChecksum);
                }
                pos += FOOTER_LEN;
                saw_footer = true;
                break;
            }
            if bytes.len() - pos < SECTION_HDR_LEN {
                fail_or_drop!(
                    0,
                    StoreError::Truncated {
                        expected: pos + SECTION_HDR_LEN,
                        got: bytes.len(),
                    }
                );
                pos = bytes.len();
                break;
            }
            let tag = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
            let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
            let frame_end = (pos + SECTION_HDR_LEN)
                .checked_add(usize::try_from(len).unwrap_or(usize::MAX))
                .and_then(|e| e.checked_add(4));
            let Some(frame_end) = frame_end.filter(|&e| e <= bytes.len()) else {
                // A corrupt length field destroys the framing of
                // everything downstream; stop walking.
                fail_or_drop!(
                    tag,
                    StoreError::Truncated {
                        expected: frame_end.unwrap_or(usize::MAX),
                        got: bytes.len(),
                    }
                );
                pos = bytes.len();
                break;
            };
            let body_end = frame_end - 4;
            let stored = u32::from_le_bytes(bytes[body_end..frame_end].try_into().unwrap());
            if stored != crc32(&bytes[pos..body_end]) {
                // The payload is untrustworthy, but the frame parsed:
                // skip this section and keep walking.
                fail_or_drop!(tag, StoreError::SectionChecksum { section });
                pos = frame_end;
                section += 1;
                continue;
            }
            let payload = &bytes[pos + SECTION_HDR_LEN..body_end];
            match tag {
                TAG_GRAPH => {
                    if graph.is_some() {
                        fail_or_drop!(
                            tag,
                            StoreError::Malformed {
                                section,
                                detail: "duplicate graph section".into(),
                            }
                        );
                    } else {
                        match DiGraph::from_snapshot(payload) {
                            Ok(g) => graph = Some(g),
                            Err(e) => {
                                return Err(StoreError::Malformed {
                                    section,
                                    detail: e.to_string(),
                                })
                            }
                        }
                    }
                }
                TAG_DISTS | TAG_TREE | TAG_BLOB | TAG_CACHE => {
                    match decode_artifact(tag, payload) {
                        Ok(a) => artifacts.push(a),
                        Err(detail) => {
                            fail_or_drop!(tag, StoreError::Malformed { section, detail })
                        }
                    }
                }
                unknown => skipped_unknown.push(unknown),
            }
            pos = frame_end;
            section += 1;
        }

        let Some(graph) = graph else {
            return Err(StoreError::MissingGraph);
        };
        if saw_footer && pos != bytes.len() {
            return Err(StoreError::TrailingBytes { after: pos });
        }
        if !saw_footer && dropped.is_empty() {
            // Clean parse but the footer never appeared: torn tail.
            dropped.push(Dropped {
                section,
                tag: 0,
                error: StoreError::Truncated {
                    expected: bytes.len() + FOOTER_LEN,
                    got: bytes.len(),
                },
            });
        }
        let snapshot = Snapshot { graph, artifacts };
        if dropped.is_empty() {
            Ok(Loaded::Complete {
                snapshot,
                skipped_unknown,
            })
        } else {
            Ok(Loaded::Partial {
                recovered: snapshot,
                dropped,
                skipped_unknown,
            })
        }
    }

    /// Atomically writes the snapshot to `path` (see [`atomic_write`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on any filesystem failure.
    pub fn write(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        atomic_write(path.as_ref(), &self.encode())?;
        Ok(())
    }

    /// Reads and decodes the snapshot at `path`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the file cannot be read, otherwise
    /// whatever [`Snapshot::decode`] reports.
    pub fn read(path: impl AsRef<Path>) -> Result<Loaded, StoreError> {
        let mut bytes = Vec::new();
        File::open(path.as_ref())?.read_to_end(&mut bytes)?;
        Snapshot::decode(&bytes)
    }
}

fn decode_artifact(kind: u32, payload: &[u8]) -> Result<Artifact, String> {
    if payload.len() < 4 {
        return Err(format!(
            "artifact payload too short ({} bytes)",
            payload.len()
        ));
    }
    let key_len = u32::from_le_bytes(payload[..4].try_into().unwrap()) as usize;
    let Some(key_bytes) = payload.get(4..4 + key_len) else {
        return Err(format!(
            "artifact key length {key_len} exceeds payload ({} bytes)",
            payload.len()
        ));
    };
    let key = std::str::from_utf8(key_bytes)
        .map_err(|e| format!("artifact key is not UTF-8: {e}"))?
        .to_string();
    Ok(Artifact {
        kind,
        key,
        body: payload[4 + key_len..].to_vec(),
    })
}

// ---------------------------------------------------------------------
// Atomic writes
// ---------------------------------------------------------------------

/// Writes `bytes` to `path` crash-safely: temp file in the same
/// directory, `fsync`, atomic rename over the destination, directory
/// `fsync`. A crash at any point leaves either the old file or the new
/// one, never a torn mix.
///
/// # Errors
///
/// Any `io::Error` from create/write/sync/rename; the temp file is
/// removed on failure (best effort).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir: PathBuf = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = dir.join(format!(
        ".{}.tmp.{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
        return result;
    }
    // Make the rename itself durable. Opening a directory read-only for
    // fsync works on unix; elsewhere this is best-effort.
    if let Ok(d) = File::open(&dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::gen::metro_ring;

    fn sample() -> Snapshot {
        let mut s = Snapshot::new(metro_ring(6));
        s.artifacts.push(Artifact::blob("alpha", vec![1, 2, 3]));
        s.artifacts.push(Artifact {
            kind: TAG_DISTS,
            key: "beta".into(),
            body: vec![9; 24],
        });
        s
    }

    #[test]
    fn crc32_reference_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_round_trips() {
        let snap = sample();
        let bytes = snap.encode();
        let loaded = Snapshot::decode(&bytes).unwrap();
        let back = loaded.expect_complete("round trip");
        assert_eq!(back.artifacts, snap.artifacts);
        assert_eq!(back.graph.to_snapshot(), snap.graph.to_snapshot());
        // Determinism: re-encoding reproduces the bytes exactly.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn empty_and_tiny_inputs_are_structured_errors() {
        assert_eq!(
            Snapshot::decode(&[]).err(),
            Some(StoreError::Truncated {
                expected: HEADER_LEN,
                got: 0
            })
        );
        assert_eq!(
            Snapshot::decode(&[0u8; 32]).err(),
            Some(StoreError::BadMagic)
        );
        let mut v = MAGIC.to_vec();
        v.extend_from_slice(&7u32.to_le_bytes());
        assert_eq!(
            Snapshot::decode(&v).err(),
            Some(StoreError::VersionUnsupported { found: 7 })
        );
    }

    #[test]
    fn unknown_sections_are_skipped() {
        let snap = sample();
        let mut bytes = snap.encode();
        // Rebuild with an extra unknown section before the footer.
        bytes.truncate(bytes.len() - FOOTER_LEN);
        push_section(&mut bytes, 0xbeef, b"from the future");
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&FOOTER_MAGIC);
        bytes.extend_from_slice(&crc.to_le_bytes());
        match Snapshot::decode(&bytes).unwrap() {
            Loaded::Complete {
                snapshot,
                skipped_unknown,
            } => {
                assert_eq!(skipped_unknown, vec![0xbeef]);
                assert_eq!(snapshot.artifacts.len(), 2);
            }
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_artifact_degrades_but_keeps_graph() {
        let snap = sample();
        let graph_bytes = snap.graph.to_snapshot();
        let mut bytes = snap.encode();
        // Flip a byte near the end: inside the last artifact's payload.
        let idx = bytes.len() - FOOTER_LEN - 10;
        bytes[idx] ^= 0xff;
        match Snapshot::decode(&bytes).unwrap() {
            Loaded::Partial {
                recovered, dropped, ..
            } => {
                assert_eq!(recovered.graph.to_snapshot(), graph_bytes);
                assert!(dropped
                    .iter()
                    .any(|d| matches!(d.error, StoreError::SectionChecksum { .. })
                        || matches!(d.error, StoreError::FooterChecksum)));
            }
            other => panic!("expected Partial, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_graph_is_fatal() {
        let mut bytes = sample().encode();
        // Flip a byte inside the graph payload (the first section).
        bytes[HEADER_LEN + SECTION_HDR_LEN + 8] ^= 0x40;
        match Snapshot::decode(&bytes) {
            Err(StoreError::SectionChecksum { section: 0 }) => {}
            other => panic!("expected graph checksum failure, got {other:?}"),
        }
    }

    #[test]
    fn missing_graph_is_fatal() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&FOOTER_MAGIC);
        bytes.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(
            Snapshot::decode(&bytes).err(),
            Some(StoreError::MissingGraph)
        );
    }

    #[test]
    fn trailing_bytes_are_fatal() {
        let mut bytes = sample().encode();
        bytes.extend_from_slice(b"junk");
        assert_eq!(
            Snapshot::decode(&bytes).err(),
            Some(StoreError::TrailingBytes {
                after: bytes.len() - 4
            })
        );
    }

    #[test]
    fn atomic_write_replaces_and_survives() {
        let dir = std::env::temp_dir().join(format!("rpaths-store-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.bin");
        atomic_write(&path, b"old").unwrap();
        atomic_write(&path, b"new contents").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"new contents");
        // No temp litter left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("rpaths-store-file-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.bin");
        let snap = sample();
        snap.write(&path).unwrap();
        let back = Snapshot::read(&path).unwrap().expect_complete("file");
        assert_eq!(back.encode(), snap.encode());
        let _ = fs::remove_dir_all(&dir);
    }
}
