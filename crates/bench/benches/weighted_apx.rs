//! Table 1, weighted row: Theorem 3's `(1+ε)`-Apx-RPaths solve, with the
//! guarantee asserted on every iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpaths_bench::measure_weighted;

fn bench_weighted(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_weighted_apx");
    group.sample_size(10);
    for &n in &[64usize, 128, 192] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut seed = 1;
                let row = loop {
                    if let Some(r) = measure_weighted(n, 16, seed) {
                        break r;
                    }
                    seed += 1;
                };
                assert!(row.correct, "(1+ε) guarantee violated");
                row.rounds
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_weighted);
criterion_main!(benches);
