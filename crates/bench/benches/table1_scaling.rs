//! Table 1, rows 1–2 (wall-clock form): full Theorem 1 vs MR24 solves at
//! increasing `n`. The authoritative round-count sweep is the `table1`
//! binary; this bench tracks the simulation cost so regressions in the
//! engine or the algorithms show up in CI-style runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpaths_bench::{bench_params, measure_mr24, measure_ours, random_case};

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_rpaths");
    group.sample_size(10);
    for &n in &[128usize, 256, 512] {
        let case = random_case(n, n / 4, 21 + n as u64);
        let params = bench_params(n, 3);
        group.bench_with_input(BenchmarkId::new("theorem1", n), &n, |b, _| {
            b.iter(|| {
                let row = measure_ours(&case, &params);
                assert!(row.correct);
                row.rounds
            });
        });
        group.bench_with_input(BenchmarkId::new("mr24", n), &n, |b, _| {
            b.iter(|| {
                let row = measure_mr24(&case, &params);
                assert!(row.correct);
                row.rounds
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
