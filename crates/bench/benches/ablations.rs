//! X1/X2 ablations in bench form: the trimmed ζ-hop BFS of Lemma 4.2
//! against the untrimmed multi-source BFS it replaces.

use congest::multi_bfs::{default_budget, multi_source_bfs, MultiBfsConfig};
use congest::Network;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpaths_bench::lane_case;
use rpaths_core::short::hop_bfs::{hop_constrained_bfs, HopBfsConfig, Objective};
use rpaths_core::Instance;

fn bench_trimming(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_trimming");
    group.sample_size(10);
    for &h in &[64usize, 128, 256] {
        let case = lane_case(h, 4, 2);
        let inst = Instance::from_endpoints(&case.graph, case.s, case.t).expect("valid");
        let zeta = 32usize;
        let aux: Vec<u64> = (0..=inst.hops())
            .map(|j| inst.suffix[j].finite().unwrap())
            .collect();
        group.bench_with_input(BenchmarkId::new("trimmed", h), &h, |b, _| {
            b.iter(|| {
                let cfg = HopBfsConfig {
                    zeta,
                    objective: Objective::MaxIndex,
                    delays: None,
                    aux: &aux,
                };
                let mut net = Network::new(&case.graph);
                let f = hop_constrained_bfs(&mut net, &inst, &cfg, "trim");
                assert!(net.metrics().rounds() <= zeta as u64 + 2);
                f.table.len()
            });
        });
        group.bench_with_input(BenchmarkId::new("untrimmed", h), &h, |b, _| {
            b.iter(|| {
                let cfg = MultiBfsConfig {
                    sources: inst.path.nodes(),
                    max_dist: zeta as u64,
                    reverse: true,
                    delays: None,
                };
                let mut net = Network::new(&case.graph);
                let (d, _) = multi_source_bfs(
                    &mut net,
                    &cfg,
                    |e| inst.in_g_minus_p(e),
                    "plain",
                    default_budget(inst.hops() + 1, zeta as u64) * 2,
                )
                .expect("quiesces");
                d.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trimming);
criterion_main!(benches);
