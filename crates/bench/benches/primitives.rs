//! X3/X4: the communication primitives — Lemma 2.4 broadcast and
//! Lemma 5.5 k-source h-hop BFS — benchmarked for simulation wall-clock,
//! with their round counts checked against the paper bounds on the fly.

use congest::bfs_tree::build_bfs_tree;
use congest::broadcast::broadcast;
use congest::multi_bfs::{default_budget, multi_source_bfs, MultiBfsConfig};
use congest::Network;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphkit::gen::random_digraph;

fn bench_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemma2.4_broadcast");
    group.sample_size(10);
    for &(n, m_items) in &[(256usize, 200usize), (512, 400), (1024, 800)] {
        let g = random_digraph(n, 3 * n, 7);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_M{m_items}")),
            &(n, m_items),
            |b, &(n, m_items)| {
                b.iter(|| {
                    let mut net = Network::new(&g);
                    let (tree, _) = build_bfs_tree(&mut net, 0).expect("connected");
                    let items: Vec<Vec<u64>> = (0..n)
                        .map(|v| if v < m_items { vec![v as u64] } else { vec![] })
                        .collect();
                    let (out, stats) = broadcast(&mut net, &tree, items, |_| 16, "bc");
                    // Lemma 2.4: O(M + D) rounds.
                    assert!(stats.rounds <= 3 * (m_items as u64 + tree.height) + 8);
                    out[0].len()
                });
            },
        );
    }
    group.finish();
}

fn bench_multi_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemma5.5_multi_bfs");
    group.sample_size(10);
    for &(n, k, h) in &[(256usize, 8usize, 40u64), (512, 16, 60), (1024, 32, 80)] {
        let g = random_digraph(n, 4 * n, 9);
        let sources: Vec<usize> = (0..k).map(|i| (i * 31) % n).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{k}_h{h}")),
            &h,
            |b, &h| {
                b.iter(|| {
                    let cfg = MultiBfsConfig {
                        sources: &sources,
                        max_dist: h,
                        reverse: false,
                        delays: None,
                    };
                    let mut net = Network::new(&g);
                    let (dist, stats) =
                        multi_source_bfs(&mut net, &cfg, |_| true, "mbfs", default_budget(k, h))
                            .expect("quiesces");
                    // Lemma 5.5: O(k + h) rounds.
                    assert!(stats.rounds <= 2 * (k as u64 + h) + 16);
                    dist.len()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_broadcast, bench_multi_bfs);
criterion_main!(benches);
