//! Engine-level wall-clock benchmark: active-set scheduling vs. the
//! full-sweep reference schedule, and sequential vs. sharded-parallel
//! execution, on the two extremes of the traffic spectrum.
//!
//! - **Idle-heavy sparse lane**: single-source BFS along an `n`-node
//!   line. The frontier is O(1) nodes per round over Θ(n) rounds, so a
//!   full sweep does Θ(n²) `on_round` calls while the active set does
//!   Θ(n) — this is the `Õ(n^{2/3} + D)`-protocol regime the paper's
//!   Table 1 lives in, where almost every node is idle almost always.
//!   Parallelism must *not* engage here (the work-per-round fallback),
//!   so the multi-thread numbers must stay within noise of sequential.
//! - **Dense broadcast / dense multi-BFS**: Lemma 2.4 with `M = n`
//!   items and Lemma 5.5 with 64 sources on random graphs, where most
//!   nodes stay busy most rounds. Active-set scheduling can at best
//!   match the sweep here; the sharded step phase is what buys
//!   wall-clock, scaling with threads at n ≥ 4096.
//!
//! Besides the Criterion timings, the bench writes `BENCH_engine.json`
//! at the repo root with rounds-per-second for both schedules and for
//! thread counts {1, 2, 4, 8} so the perf trajectory is tracked across
//! PRs; each section carries the measuring host's CPU count. A
//! `work_balance` section sweeps degree-skewed topologies (star,
//! power-law) where degree-balanced shard boundaries earn their keep.
//! Set `BENCH_ENGINE_SMOKE=1` for a seconds-scale CI smoke run that
//! exercises every measurement path but skips the JSON write. Since every protocol now runs on the sharded engine, the report
//! also carries **end-to-end solver rows** (Theorem 1, 2-SiSP, and the
//! MR24 baseline on Table 1-style planted-path workloads) — the perf
//! trajectory measures what the paper measures, not just one kernel.
//! All configurations are *bit-exact* in simulated rounds/messages (see
//! `tests/engine_equivalence.rs`); only wall-clock differs.

use std::time::Instant;

use congest::bfs_tree::build_bfs_tree;
use congest::broadcast::broadcast;
use congest::multi_bfs::{default_budget, multi_source_bfs, MultiBfsConfig};
use congest::Network;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphkit::gen::random_digraph;
use graphkit::{DiGraph, GraphBuilder};
use rpaths_bench::{bench_params, random_case};
use rpaths_core::{baseline, sisp, unweighted, Instance, Params, Query, SolverSession};
use serde::Serialize;

fn line(n: usize) -> DiGraph {
    let mut b = GraphBuilder::new(n);
    for i in 0..n - 1 {
        b.add_arc(i, i + 1);
    }
    b.build()
}

/// One BFS sweep down the line; returns simulated rounds.
fn run_line_bfs(g: &DiGraph, full_sweep: bool) -> u64 {
    let n = g.node_count();
    let cfg = MultiBfsConfig {
        sources: &[0],
        max_dist: n as u64,
        reverse: false,
        delays: None,
    };
    let mut net = Network::new(g);
    net.set_full_sweep(full_sweep);
    net.set_threads(1);
    let (_, stats) = multi_source_bfs(&mut net, &cfg, |_| true, "bfs", default_budget(1, n as u64))
        .expect("quiesces");
    stats.rounds
}

/// One M = n broadcast on a dense-ish random graph; returns rounds.
fn run_dense_broadcast(g: &DiGraph, full_sweep: bool) -> u64 {
    let n = g.node_count();
    let mut net = Network::new(g);
    net.set_full_sweep(full_sweep);
    net.set_threads(1);
    let (tree, _) = build_bfs_tree(&mut net, 0).expect("connected");
    let items: Vec<Vec<u64>> = (0..n).map(|v| vec![v as u64]).collect();
    let (_, stats) = broadcast(&mut net, &tree, items, |_| 16, "bc");
    stats.rounds
}

/// One M = n broadcast with `threads` workers (active-set schedule).
fn run_broadcast_threads(g: &DiGraph, threads: usize) -> u64 {
    let n = g.node_count();
    let mut net = Network::new(g);
    net.set_threads(threads);
    let (tree, _) = build_bfs_tree(&mut net, 0).expect("connected");
    let items: Vec<Vec<u64>> = (0..n).map(|v| vec![v as u64]).collect();
    let (_, stats) = broadcast(&mut net, &tree, items, |_| 16, "bc");
    stats.rounds
}

/// One 64-source hop-bounded BFS with `threads` workers.
fn run_multi_bfs_threads(g: &DiGraph, threads: usize) -> u64 {
    let n = g.node_count();
    let sources: Vec<usize> = (0..64).map(|i| (i * 61 + 1) % n).collect();
    let cfg = MultiBfsConfig {
        sources: &sources,
        max_dist: 256,
        reverse: false,
        delays: None,
    };
    let mut net = Network::new(g);
    net.set_threads(threads);
    let (_, stats) = multi_source_bfs(&mut net, &cfg, |_| true, "mbfs", default_budget(64, 256))
        .expect("quiesces");
    stats.rounds
}

/// Sparse line BFS with `threads` workers: the auto-fallback must keep
/// this within noise of the sequential active-set engine.
fn run_line_bfs_threads(g: &DiGraph, threads: usize) -> u64 {
    let n = g.node_count();
    let cfg = MultiBfsConfig {
        sources: &[0],
        max_dist: n as u64,
        reverse: false,
        delays: None,
    };
    let mut net = Network::new(g);
    net.set_threads(threads);
    let (_, stats) = multi_source_bfs(&mut net, &cfg, |_| true, "bfs", default_budget(1, n as u64))
        .expect("quiesces");
    stats.rounds
}

#[derive(Clone, Debug, Serialize)]
struct WorkloadReport {
    name: String,
    n: usize,
    simulated_rounds: u64,
    full_sweep_rounds_per_sec: f64,
    active_set_rounds_per_sec: f64,
    speedup: f64,
}

#[derive(Clone, Debug, Serialize)]
struct ParallelReport {
    name: String,
    n: usize,
    threads: usize,
    simulated_rounds: u64,
    rounds_per_sec: f64,
    /// Speedup versus the sequential (1-thread) engine on the same
    /// workload; the schedule (active set + dense-round sweeps) is
    /// identical, only the thread count differs.
    speedup_vs_sequential: f64,
}

/// A group of schedule-comparison rows, stamped with the CPUs that were
/// available when *this section* was measured (sections can in
/// principle be re-recorded on different hosts, so each carries its
/// own).
#[derive(Debug, Serialize)]
struct WorkloadSection {
    host_cpus: usize,
    rows: Vec<WorkloadReport>,
}

/// One cold-vs-warm session row: the same batch of `q` failed-edge
/// queries answered by a fresh session (every artifact recomputed) and
/// by a warm one (pure cache hits).
#[derive(Clone, Debug, Serialize)]
struct BatchQueryReport {
    name: String,
    n: usize,
    q: usize,
    cold_queries_per_sec: f64,
    warm_queries_per_sec: f64,
    warm_speedup: f64,
    /// Hit rate the warm session reports in its `CacheStats` (the
    /// acceptance criterion: nonzero, and 100% on pure repeats).
    warm_cache_hit_rate: f64,
}

/// A group of batch-query rows, stamped with the measuring host's CPUs.
#[derive(Debug, Serialize)]
struct BatchSection {
    host_cpus: usize,
    rows: Vec<BatchQueryReport>,
}

/// A group of thread-sweep rows, stamped with the measuring host's CPU
/// count. Parallel speedups are bounded by it: on a 1-CPU host every
/// thread count time-slices one core, so `speedup_vs_sequential` can
/// only show the fan-out overhead, not the scaling.
#[derive(Debug, Serialize)]
struct ParallelSection {
    host_cpus: usize,
    rows: Vec<ParallelReport>,
}

#[derive(Debug, Serialize)]
struct EngineReport {
    bench: String,
    /// CPUs on the host that wrote the report (sections repeat this so
    /// they stay meaningful if re-recorded independently).
    host_cpus: usize,
    workloads: WorkloadSection,
    parallel: ParallelSection,
    /// Degree-skewed topologies (star, power-law): the workloads where
    /// degree-balanced shard boundaries matter most — a node-count
    /// split would strand nearly all traffic in one shard.
    work_balance: ParallelSection,
    /// End-to-end solver runs (all phases on the sharded engine): the
    /// Table 1 quantities, per thread count.
    end_to_end: ParallelSection,
    /// Plan/execute sessions: cold vs. warm `solve_batch` over Q
    /// same-graph failed-edge queries — the amortization the session
    /// layer exists to buy.
    batch_queries: BatchSection,
}

/// CPUs available to this process.
fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// `BENCH_ENGINE_SMOKE=1` shrinks every workload to seconds-scale sizes
/// and skips the `BENCH_engine.json` write — a CI-friendly check that
/// the measurement paths (including the parallel fan-out) actually run.
fn smoke() -> bool {
    std::env::var("BENCH_ENGINE_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// One full Theorem 1 solve; returns simulated rounds.
fn run_unweighted_solve(inst: &Instance<'_>, params: &Params, threads: usize) -> u64 {
    let mut net = congest::Network::new(inst.graph);
    net.set_threads(threads);
    let _ = unweighted::solve_on(&mut net, inst, params).expect("connected");
    net.metrics().rounds()
}

/// One full 2-SiSP solve (Theorem 1 + O(D) aggregation).
fn run_sisp_solve(inst: &Instance<'_>, params: &Params, threads: usize) -> u64 {
    let mut net = congest::Network::new(inst.graph);
    net.set_threads(threads);
    let _ = sisp::solve_on(&mut net, inst, params).expect("connected");
    net.metrics().rounds()
}

/// One full MR24 baseline solve.
fn run_mr24_solve(inst: &Instance<'_>, params: &Params, threads: usize) -> u64 {
    let mut net = congest::Network::new(inst.graph);
    net.set_threads(threads);
    let _ = baseline::mr24::solve_on(&mut net, inst, params).expect("connected");
    net.metrics().rounds()
}

/// Measures a batch-answering closure and returns queries answered per
/// second. `f` returns the number of answers it produced.
fn queries_per_sec(mut f: impl FnMut() -> usize, reps: usize) -> f64 {
    f(); // warm-up
    let start = Instant::now();
    let mut answered = 0usize;
    for _ in 0..reps {
        answered += f();
    }
    answered as f64 / start.elapsed().as_secs_f64()
}

/// Measures `f` (already bound to a schedule) and returns rounds/sec.
fn rounds_per_sec(mut f: impl FnMut() -> u64, reps: usize) -> f64 {
    f(); // warm-up
    let start = Instant::now();
    let mut rounds = 0u64;
    for _ in 0..reps {
        rounds += f();
    }
    rounds as f64 / start.elapsed().as_secs_f64()
}

fn measure(name: &str, n: usize, reps: usize, run: impl Fn(bool) -> u64) -> WorkloadReport {
    let simulated_rounds = run(true);
    let sweep = rounds_per_sec(|| run(true), reps);
    let active = rounds_per_sec(|| run(false), reps);
    let report = WorkloadReport {
        name: name.to_string(),
        n,
        simulated_rounds,
        full_sweep_rounds_per_sec: sweep,
        active_set_rounds_per_sec: active,
        speedup: active / sweep,
    };
    println!(
        "{name} (n={n}): full-sweep {sweep:.0} rounds/s, active-set {active:.0} rounds/s, \
         speedup {:.2}x",
        report.speedup
    );
    report
}

/// Measures `run` across thread counts {1, 2, 4, 8}, reporting each
/// configuration's rounds/sec and speedup over the 1-thread baseline.
fn measure_parallel(
    name: &str,
    n: usize,
    reps: usize,
    run: impl Fn(usize) -> u64,
) -> Vec<ParallelReport> {
    let simulated_rounds = run(1);
    let base = rounds_per_sec(|| run(1), reps);
    [1usize, 2, 4, 8]
        .iter()
        .map(|&threads| {
            let rps = if threads == 1 {
                base
            } else {
                rounds_per_sec(|| run(threads), reps)
            };
            let report = ParallelReport {
                name: name.to_string(),
                n,
                threads,
                simulated_rounds,
                rounds_per_sec: rps,
                speedup_vs_sequential: rps / base,
            };
            println!(
                "{name} (n={n}, threads={threads}): {rps:.0} rounds/s, \
                 {:.2}x vs sequential",
                report.speedup_vs_sequential
            );
            report
        })
        .collect()
}

fn bench_engine(c: &mut Criterion) {
    let smoke = smoke();
    let mut reports = Vec::new();

    let mut group = c.benchmark_group("engine_sparse_line_bfs");
    group.sample_size(10);
    let line_sizes: &[usize] = if smoke { &[256] } else { &[1024, 4096, 8192] };
    for &n in line_sizes {
        let g = line(n);
        group.bench_with_input(BenchmarkId::new("full_sweep", n), &n, |b, _| {
            b.iter(|| run_line_bfs(&g, true));
        });
        group.bench_with_input(BenchmarkId::new("active_set", n), &n, |b, _| {
            b.iter(|| run_line_bfs(&g, false));
        });
        reports.push(measure("sparse_line_bfs", n, 3, |sweep| {
            run_line_bfs(&g, sweep)
        }));
    }
    group.finish();

    let mut group = c.benchmark_group("engine_dense_broadcast");
    group.sample_size(10);
    let bc_sizes: &[usize] = if smoke { &[128] } else { &[512, 1024] };
    for &n in bc_sizes {
        let g = random_digraph(n, 4 * n, 7);
        group.bench_with_input(BenchmarkId::new("full_sweep", n), &n, |b, _| {
            b.iter(|| run_dense_broadcast(&g, true));
        });
        group.bench_with_input(BenchmarkId::new("active_set", n), &n, |b, _| {
            b.iter(|| run_dense_broadcast(&g, false));
        });
        reports.push(measure("dense_broadcast", n, 3, |sweep| {
            run_dense_broadcast(&g, sweep)
        }));
    }
    group.finish();

    // Sharded-parallel speedups (all bit-exact with sequential runs).
    let mut parallel = Vec::new();
    let par_sizes: &[usize] = if smoke { &[256] } else { &[1024, 4096, 8192] };
    let mut group = c.benchmark_group("engine_parallel_dense_broadcast");
    group.sample_size(2);
    for &n in par_sizes {
        let g = random_digraph(n, 4 * n, 7);
        if n == 4096 {
            for &threads in &[1usize, 4] {
                group.bench_with_input(
                    BenchmarkId::new(format!("threads_{threads}"), n),
                    &n,
                    |b, _| {
                        b.iter(|| run_broadcast_threads(&g, threads));
                    },
                );
            }
        }
        let reps = if n >= 8192 { 1 } else { 2 };
        parallel.extend(measure_parallel("dense_broadcast", n, reps, |t| {
            run_broadcast_threads(&g, t)
        }));
    }
    group.finish();

    let mut group = c.benchmark_group("engine_parallel_dense_multi_bfs");
    group.sample_size(2);
    for &n in par_sizes {
        let g = random_digraph(n, 6 * n, 9);
        if n == 4096 {
            for &threads in &[1usize, 4] {
                group.bench_with_input(
                    BenchmarkId::new(format!("threads_{threads}"), n),
                    &n,
                    |b, _| {
                        b.iter(|| run_multi_bfs_threads(&g, threads));
                    },
                );
            }
        }
        parallel.extend(measure_parallel("dense_multi_bfs", n, 2, |t| {
            run_multi_bfs_threads(&g, t)
        }));
    }
    group.finish();

    // Sparse workloads with the auto-fallback: thread count must not
    // regress the active-set engine.
    let fb_sizes: &[usize] = if smoke { &[512] } else { &[4096, 8192] };
    for &n in fb_sizes {
        let g = line(n);
        parallel.extend(measure_parallel("sparse_line_bfs_fallback", n, 3, |t| {
            run_line_bfs_threads(&g, t)
        }));
    }

    // Degree-skewed topologies: how well degree-balanced shard
    // boundaries spread hub-heavy work across workers. On the star,
    // every message touches node 0; on preferential attachment, a few
    // early nodes carry most of the degree.
    let mut work_balance = Vec::new();
    let wb_n = if smoke { 256 } else { 4096 };
    {
        let g = graphkit::gen::star(wb_n);
        work_balance.extend(measure_parallel("work_balance_star_mbfs", wb_n, 2, |t| {
            run_multi_bfs_threads(&g, t)
        }));
        let g = graphkit::gen::power_law_digraph(wb_n, 11);
        work_balance.extend(measure_parallel(
            "work_balance_power_law_mbfs",
            wb_n,
            2,
            |t| run_multi_bfs_threads(&g, t),
        ));
    }

    // End-to-end solver rows on Table 1-style workloads: every phase of
    // every solve now rides the sharded engine, so the thread sweep
    // measures the composed pipeline, not one kernel.
    let mut end_to_end = Vec::new();
    let mut group = c.benchmark_group("engine_e2e_solvers");
    group.sample_size(2);
    let e2e_sizes: &[usize] = if smoke { &[64] } else { &[128, 256, 512] };
    for &n in e2e_sizes {
        let case = random_case(n, n / 8, 5);
        let inst = Instance::from_endpoints(&case.graph, case.s, case.t).expect("valid");
        let params = bench_params(n, 5);
        if n == 256 {
            for &threads in &[1usize, 4] {
                group.bench_with_input(
                    BenchmarkId::new(format!("unweighted_threads_{threads}"), n),
                    &n,
                    |b, _| {
                        b.iter(|| run_unweighted_solve(&inst, &params, threads));
                    },
                );
            }
        }
        end_to_end.extend(measure_parallel("e2e_unweighted_solve", n, 1, |t| {
            run_unweighted_solve(&inst, &params, t)
        }));
        end_to_end.extend(measure_parallel("e2e_sisp_solve", n, 1, |t| {
            run_sisp_solve(&inst, &params, t)
        }));
        if n == 256 {
            // The baseline comparison row (MR24 is the algorithm the
            // paper improves on) at one representative size, on the
            // exact same instance as the e2e rows above.
            end_to_end.extend(measure_parallel("e2e_mr24_solve", n, 1, |t| {
                run_mr24_solve(&inst, &params, t)
            }));
        }
    }
    group.finish();

    // Plan/execute sessions: Q failed-edge queries against one graph,
    // cold (a fresh session recomputes every artifact) vs. warm (the
    // artifact cache answers everything). Q beyond the path length
    // cycles over its edges — exactly the repeated-query workload the
    // cache is keyed for.
    let mut batch_rows = Vec::new();
    let mut group = c.benchmark_group("engine_batch_queries");
    group.sample_size(10);
    let bq_n = if smoke { 64 } else { 256 };
    let bq_qs: &[usize] = if smoke { &[16] } else { &[16, 256] };
    {
        let case = random_case(bq_n, bq_n / 8, 5);
        let params = bench_params(bq_n, 5);
        let inst = Instance::from_endpoints(&case.graph, case.s, case.t).expect("valid");
        let edges = inst.path.edges().to_vec();
        for &q in bq_qs {
            let queries: Vec<Query> = (0..q)
                .map(|i| Query::avoiding(case.s, case.t, edges[i % edges.len()]))
                .collect();
            group.bench_with_input(BenchmarkId::new("cold", q), &q, |b, _| {
                b.iter(|| {
                    let mut session = SolverSession::new(&case.graph, params.clone());
                    session.solve_batch(&queries).expect("connected").len()
                });
            });
            let mut warm = SolverSession::new(&case.graph, params.clone());
            warm.solve_batch(&queries).expect("connected");
            group.bench_with_input(BenchmarkId::new("warm", q), &q, |b, _| {
                b.iter(|| warm.solve_batch(&queries).expect("connected").len());
            });

            let cold_qps = queries_per_sec(
                || {
                    let mut session = SolverSession::new(&case.graph, params.clone());
                    session.solve_batch(&queries).expect("connected").len()
                },
                3,
            );
            let warm_qps =
                queries_per_sec(|| warm.solve_batch(&queries).expect("connected").len(), 3);
            let row = BatchQueryReport {
                name: "session_failed_edge_batch".to_string(),
                n: bq_n,
                q,
                cold_queries_per_sec: cold_qps,
                warm_queries_per_sec: warm_qps,
                warm_speedup: warm_qps / cold_qps,
                warm_cache_hit_rate: warm.stats().cache.hit_rate(),
            };
            println!(
                "batch_queries (n={bq_n}, q={q}): cold {cold_qps:.0} q/s, warm {warm_qps:.0} q/s, \
                 {:.0}x, warm hit rate {:.0}%",
                row.warm_speedup,
                100.0 * row.warm_cache_hit_rate
            );
            batch_rows.push(row);
        }
    }
    group.finish();

    let cpus = host_cpus();
    let report = EngineReport {
        bench: "engine".to_string(),
        host_cpus: cpus,
        workloads: WorkloadSection {
            host_cpus: cpus,
            rows: reports,
        },
        parallel: ParallelSection {
            host_cpus: cpus,
            rows: parallel,
        },
        work_balance: ParallelSection {
            host_cpus: cpus,
            rows: work_balance,
        },
        end_to_end: ParallelSection {
            host_cpus: cpus,
            rows: end_to_end,
        },
        batch_queries: BatchSection {
            host_cpus: cpus,
            rows: batch_rows,
        },
    };
    if smoke {
        println!("smoke mode: skipping BENCH_engine.json write");
        return;
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize");
    std::fs::write(path, json).expect("write BENCH_engine.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
