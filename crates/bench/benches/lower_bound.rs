//! Table 1, lower-bound row in bench form: the Lemma 6.9 reduction run
//! end-to-end (construction + distributed 2-SiSP + decode), asserting
//! correct decoding and the cut-bit floor every iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpaths_lb::disjointness::run_reduction;
use rpaths_lb::hard::random_inputs;

fn bench_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("lower_bound_reduction");
    group.sample_size(10);
    for &(k, d, p) in &[(2usize, 2usize, 2usize), (3, 2, 3)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k{k}_d{d}_p{p}")),
            &(k, d, p),
            |b, &(k, d, p)| {
                b.iter(|| {
                    let (m, x) = random_inputs(k, 17);
                    let y: Vec<bool> = m.iter().flatten().copied().collect();
                    let out = run_reduction(k, d, p, &x, &y, 17);
                    assert_eq!(out.disjoint, out.expected_disjoint);
                    assert!(out.cut_bits >= out.bob_bits);
                    out.rounds
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_reduction);
criterion_main!(benches);
