//! Shared harness for the paper-reproduction experiments.
//!
//! The paper's measured quantity is the *round complexity* in the CONGEST
//! model, which the simulator reports deterministically — so the
//! table/figure binaries run each configuration once and print the round
//! counts (no statistical repetition needed), while the Criterion benches
//! measure the wall-clock cost of the simulation components themselves.
//!
//! Binaries (run with `cargo run --release -p rpaths-bench --bin <name>`):
//!
//! - `table1` — the Table 1 reproduction: measured rounds of Theorem 1,
//!   MR24, and the naive baseline across `n` and `h_st`, plus the
//!   weighted Theorem 3, with growth-exponent fits.
//! - `figures` — Figures 1 and 2: constructs `G(Γ,d,p)` and
//!   `G(k,d,p,φ,M,x)`, verifies Observations 6.3/6.6 and Lemma 6.8.
//! - `lower_bound` — the Section 6 experiments: the disjointness
//!   reduction end-to-end with cut-bit accounting, and the Ω(D) family.
//! - `ablations` — the design-choice ablations called out in DESIGN.md
//!   (furthest-origin trimming; landmark-only broadcast).

#![forbid(unsafe_code)]

use congest::Network;
use graphkit::alg::{replacement_lengths, undirected_diameter};
use graphkit::gen::{parallel_lane, planted_path_digraph, random_weighted_digraph};
use graphkit::{DiGraph, NodeId};
use rpaths_core::{baseline, unweighted, weighted, Instance, Params};
use serde::Serialize;

/// One measured configuration.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Algorithm label.
    pub algo: String,
    /// Instance family label.
    pub family: String,
    /// Vertex count.
    pub n: usize,
    /// Path hop count `h_st`.
    pub h: usize,
    /// Undirected diameter `D`.
    pub diameter: usize,
    /// Threshold ζ used.
    pub zeta: usize,
    /// Measured rounds.
    pub rounds: u64,
    /// Messages sent.
    pub messages: u64,
    /// Total bits sent.
    pub bits: u64,
    /// Whether the output matched the oracle (exactly for exact
    /// algorithms, within `(1+ε)` for approximate ones).
    pub correct: bool,
}

impl Row {
    /// Prints the table header.
    pub fn header() {
        println!(
            "{:<14} {:<16} {:>6} {:>6} {:>4} {:>6} {:>10} {:>12} {:>7}",
            "algo", "family", "n", "h_st", "D", "zeta", "rounds", "messages", "ok"
        );
    }

    /// Prints one formatted row.
    pub fn print(&self) {
        println!(
            "{:<14} {:<16} {:>6} {:>6} {:>4} {:>6} {:>10} {:>12} {:>7}",
            self.algo,
            self.family,
            self.n,
            self.h,
            self.diameter,
            self.zeta,
            self.rounds,
            self.messages,
            if self.correct { "yes" } else { "NO" }
        );
    }
}

/// A ready-to-measure unweighted instance.
pub struct Case {
    /// Family label for reporting.
    pub family: String,
    /// The graph (owned).
    pub graph: DiGraph,
    /// Source.
    pub s: NodeId,
    /// Target.
    pub t: NodeId,
}

/// Random digraph with a planted `h`-hop shortest path; `m ≈ 4n` extra
/// edges.
pub fn random_case(n: usize, h: usize, seed: u64) -> Case {
    let (graph, s, t) = planted_path_digraph(n, h, 4 * n, seed);
    Case {
        family: format!("random(h={h})"),
        graph,
        s,
        t,
    }
}

/// Path-plus-lane instance whose detours all have `2 + c·stretch` hops.
pub fn lane_case(h: usize, switch_every: usize, stretch: usize) -> Case {
    let (graph, s, t) = parallel_lane(h, switch_every, stretch);
    Case {
        family: format!("lane(c={switch_every},x{stretch})"),
        graph,
        s,
        t,
    }
}

/// Benchmark parameters: the paper's ζ = n^{2/3}, with a lighter landmark
/// constant than the test default (`c = 1`), since at laptop-scale `n`
/// the `c⁴` constants otherwise swamp the asymptotics being exhibited.
pub fn bench_params(n: usize, seed: u64) -> Params {
    let mut p = Params::for_n(n).with_seed(seed);
    p.landmark_prob = ((n.max(2) as f64).ln() / p.zeta as f64).min(1.0);
    p
}

/// Measures Theorem 1 on a case.
pub fn measure_ours(case: &Case, params: &Params) -> Row {
    let inst = Instance::from_endpoints(&case.graph, case.s, case.t).expect("valid");
    let out = unweighted::solve(&inst, params).expect("connected benchmark graph");
    let oracle = replacement_lengths(&case.graph, &inst.path);
    finish_row(
        "theorem1",
        case,
        &inst,
        params,
        out.metrics,
        out.replacement == oracle,
    )
}

/// Measures the MR24 baseline on a case.
pub fn measure_mr24(case: &Case, params: &Params) -> Row {
    let inst = Instance::from_endpoints(&case.graph, case.s, case.t).expect("valid");
    let out = baseline::mr24::solve(&inst, params).expect("connected benchmark graph");
    let oracle = replacement_lengths(&case.graph, &inst.path);
    finish_row(
        "mr24",
        case,
        &inst,
        params,
        out.metrics,
        out.replacement == oracle,
    )
}

/// Measures the naive `h_st`-BFS baseline on a case.
pub fn measure_naive(case: &Case, params: &Params) -> Row {
    let inst = Instance::from_endpoints(&case.graph, case.s, case.t).expect("valid");
    let out = baseline::naive::solve(&inst, params).expect("connected benchmark graph");
    let oracle = replacement_lengths(&case.graph, &inst.path);
    finish_row(
        "naive",
        case,
        &inst,
        params,
        out.metrics,
        out.replacement == oracle,
    )
}

/// Measures Theorem 3 on a weighted random instance; correctness is the
/// `(1+ε)` bracket against the exact oracle.
pub fn measure_weighted(n: usize, max_w: u64, seed: u64) -> Option<Row> {
    let graph = random_weighted_digraph(n, 4 * n, max_w, seed);
    let (s, t) = graphkit::gen::random_reachable_pair(&graph, seed ^ 0xbeef)?;
    let inst = Instance::from_endpoints(&graph, s, t).ok()?;
    if inst.hops() < 3 {
        return None;
    }
    let params = bench_params(n, seed);
    let out = weighted::solve(&inst, &params).expect("connected benchmark graph");
    let oracle = replacement_lengths(&graph, &inst.path);
    let correct = out
        .check_guarantee(&oracle, params.eps_num, params.eps_den)
        .is_ok();
    let diameter = undirected_diameter(&graph).unwrap_or(0);
    Some(Row {
        algo: "theorem3".into(),
        family: format!("weighted(W={max_w})"),
        n,
        h: inst.hops(),
        diameter,
        zeta: params.zeta,
        rounds: out.metrics.rounds(),
        messages: out.metrics.total.messages,
        bits: out.metrics.total.bits,
        correct,
    })
}

fn finish_row(
    algo: &str,
    case: &Case,
    inst: &Instance<'_>,
    params: &Params,
    metrics: congest::Metrics,
    correct: bool,
) -> Row {
    Row {
        algo: algo.into(),
        family: case.family.clone(),
        n: case.graph.node_count(),
        h: inst.hops(),
        diameter: inst.diameter,
        zeta: params.zeta,
        rounds: metrics.rounds(),
        messages: metrics.total.messages,
        bits: metrics.total.bits,
        correct,
    }
}

/// Least-squares slope of `log(rounds)` against `log(n)` — the measured
/// growth exponent.
pub fn growth_exponent(points: &[(usize, u64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(_, r)| r > 0)
        .map(|&(n, r)| ((n as f64).ln(), (r as f64).ln()))
        .collect();
    let n = pts.len() as f64;
    if n < 2.0 {
        return f64::NAN;
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Convenience: a bare network + instance for component benches.
pub fn instance_for<'g>(graph: &'g DiGraph, s: NodeId, t: NodeId) -> (Instance<'g>, Network<'g>) {
    let inst = Instance::from_endpoints(graph, s, t).expect("valid");
    let net = Network::new(graph);
    (inst, net)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_exponent_of_power_law() {
        let pts: Vec<(usize, u64)> = (1..=6)
            .map(|i| {
                let n = 100 * i;
                (n, ((n as f64).powf(0.66)) as u64)
            })
            .collect();
        let e = growth_exponent(&pts);
        assert!((e - 0.66).abs() < 0.05, "exponent {e}");
    }

    #[test]
    fn rows_measure_and_agree() {
        let case = random_case(120, 24, 3);
        let params = bench_params(120, 3);
        let ours = measure_ours(&case, &params);
        assert!(ours.correct, "theorem1 disagreed with oracle");
        let mr = measure_mr24(&case, &params);
        assert!(mr.correct, "mr24 disagreed with oracle");
        assert!(ours.rounds > 0 && mr.rounds > 0);
    }

    #[test]
    fn weighted_row_within_guarantee() {
        let row = measure_weighted(80, 16, 5).expect("usable instance");
        assert!(row.correct);
    }
}
