//! Ablations for the two design choices the paper's Section 3.1
//! highlights as the source of the improvement over MR24:
//!
//! - **X2 / furthest-origin trimming (Section 4):** the ζ-hop BFS from all
//!   path vertices propagates only the strongest origin per node per
//!   round, making its cost `O(ζ)` independent of `h_st`; the untrimmed
//!   multi-source BFS (MR24's short-detour stage) costs `O(h_st + ζ)`.
//! - **X1 / landmark-only broadcast (Section 5):** our long-detour stage
//!   broadcasts `O(|L|² + ℓ·|L|)` messages (ℓ = number of segments);
//!   MR24 additionally broadcasts every path vertex's landmark distances,
//!   `O(|L|·h_st)` more messages — the `√(n·h_st)` term's origin.

use congest::multi_bfs::{default_budget, multi_source_bfs, MultiBfsConfig};
use congest::Network;
use rpaths_bench::{bench_params, lane_case, random_case};
use rpaths_core::short::hop_bfs::{hop_constrained_bfs, HopBfsConfig, Objective};
use rpaths_core::{baseline, unweighted, Instance};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let hs: &[usize] = if quick {
        &[64, 128]
    } else {
        &[64, 128, 256, 512]
    };

    println!("== X2: furthest-origin trimming vs untrimmed multi-source BFS ==");
    println!(
        "{:>6} {:>6} {:>6} | {:>14} {:>14} | {:>14} {:>14}",
        "h_st", "n", "zeta", "trim rounds", "trim msgs", "plain rounds", "plain msgs"
    );
    for &h in hs {
        // Dense random instances: many BFS waves overlap, so the
        // congestion profile of the untrimmed variant is visible.
        let case = random_case(4 * h, h, 7 + h as u64);
        let n = case.graph.node_count();
        let inst = Instance::from_endpoints(&case.graph, case.s, case.t).expect("valid");
        let zeta = 32usize;
        // Trimmed (the paper's Lemma 4.2).
        let aux: Vec<u64> = (0..=inst.hops())
            .map(|j| inst.suffix[j].finite().unwrap())
            .collect();
        let cfg = HopBfsConfig {
            zeta,
            objective: Objective::MaxIndex,
            delays: None,
            aux: &aux,
        };
        let mut net = Network::new(&case.graph);
        let _ = hop_constrained_bfs(&mut net, &inst, &cfg, "trim");
        let trim = net.metrics().total;
        // Untrimmed: per-source announcements (MR24's congestion profile).
        let mut net = Network::new(&case.graph);
        let bcfg = MultiBfsConfig {
            sources: inst.path.nodes(),
            max_dist: zeta as u64,
            reverse: true,
            delays: None,
        };
        let _ = multi_source_bfs(
            &mut net,
            &bcfg,
            |e| inst.in_g_minus_p(e),
            "plain",
            default_budget(inst.hops() + 1, zeta as u64) * 2,
        )
        .expect("quiesces");
        let plain = net.metrics().total;
        println!(
            "{:>6} {:>6} {:>6} | {:>14} {:>14} | {:>14} {:>14}",
            h, n, zeta, trim.rounds, trim.messages, plain.rounds, plain.messages
        );
        assert!(trim.rounds <= zeta as u64 + 2, "trimmed BFS must cost O(ζ)");
    }

    println!();
    println!("== X1: broadcast volume, landmark-only (ours) vs fat (MR24) ==");
    println!(
        "{:>6} {:>6} | {:>16} {:>16} | {:>16} {:>16}",
        "h_st", "n", "ours bc rounds", "ours bc msgs", "mr24 bc rounds", "mr24 bc msgs"
    );
    for &h in hs {
        let case = lane_case(h, 8, 3);
        let n = case.graph.node_count();
        let inst = Instance::from_endpoints(&case.graph, case.s, case.t).expect("valid");
        let params = bench_params(n, 13);
        let ours = unweighted::solve(&inst, &params)
            .expect("connected")
            .metrics;
        let mr = baseline::mr24::solve(&inst, &params)
            .expect("connected")
            .metrics;
        let ours_bc = {
            let mut s = ours.phase_total("broadcast");
            s.absorb(&ours.phase_total("lemma2.5/broadcast"));
            s
        };
        let mr_bc = mr.phase_total("fat-broadcast");
        println!(
            "{:>6} {:>6} | {:>16} {:>16} | {:>16} {:>16}",
            h, n, ours_bc.rounds, ours_bc.messages, mr_bc.rounds, mr_bc.messages
        );
    }
    println!("\nablation checks passed");
}
