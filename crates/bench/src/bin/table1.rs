//! Table 1 reproduction: measured round complexities.
//!
//! Paper's Table 1 (unweighted directed RPaths):
//!
//! | | upper bounds | lower bounds |
//! |---|---|---|
//! | prior (MR24) | eO(n^{2/3} + √(n·h_st) + D) | eΩ(√n + D) |
//! | this paper | eO(n^{2/3} + D) | eΩ(n^{2/3} + D) |
//! | weighted Apx | eO(n^{2/3} + D) | — |
//!
//! This binary measures the *upper-bound rows*: the round counts of
//! Theorem 1 vs. MR24 vs. the naive baseline, on instances sweeping `n`
//! (at proportional `h_st = n/4`) and sweeping `h_st` at fixed `n`, plus
//! Theorem 3 on weighted instances. The lower-bound row is exercised by
//! the `lower_bound` binary. Expected shapes:
//!
//! - Theorem 1 rounds grow ≈ n^{2/3} (polylog factors inflate the fit at
//!   these sizes) and are *flat in h_st*;
//! - MR24 rounds grow faster with h_st (the √(n·h_st) + |L|·h_st terms);
//! - naive rounds grow ≈ linearly in h_st with a large constant.

use rpaths_bench::{
    bench_params, growth_exponent, lane_case, measure_mr24, measure_naive, measure_ours,
    measure_weighted, random_case, Row,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut all: Vec<Row> = Vec::new();

    println!("== Table 1 / sweep over n (h_st = n/4, random planted instances) ==");
    Row::header();
    let ns: &[usize] = if quick {
        &[128, 256, 512]
    } else {
        &[128, 256, 512, 1024, 2048]
    };
    let mut ours_pts = Vec::new();
    let mut mr_pts = Vec::new();
    for &n in ns {
        let case = random_case(n, n / 4, 42 + n as u64);
        let params = bench_params(n, 7);
        let r = measure_ours(&case, &params);
        r.print();
        ours_pts.push((n, r.rounds));
        all.push(r);
        let r = measure_mr24(&case, &params);
        r.print();
        mr_pts.push((n, r.rounds));
        all.push(r);
        if n <= 512 {
            let r = measure_naive(&case, &params);
            r.print();
            all.push(r);
        }
    }
    println!(
        "growth exponent (rounds ~ n^e):  theorem1 e = {:.2},  mr24 e = {:.2}",
        growth_exponent(&ours_pts),
        growth_exponent(&mr_pts)
    );

    println!();
    println!("== Table 1 / sweep over h_st at FIXED n (random planted instances) ==");
    println!("   (the h_st-dependence is the term Theorem 1 eliminates)");
    Row::header();
    let n_fixed: usize = if quick { 512 } else { 1024 };
    let hs: &[usize] = if quick {
        &[16, 64, 256]
    } else {
        &[16, 64, 256, 512]
    };
    let mut ours_h = Vec::new();
    let mut mr_h = Vec::new();
    for &h in hs {
        let case = random_case(n_fixed, h, 77 + h as u64);
        let params = bench_params(n_fixed, 11);
        let r = measure_ours(&case, &params);
        r.print();
        ours_h.push((h, r.rounds));
        all.push(r);
        let r = measure_mr24(&case, &params);
        r.print();
        mr_h.push((h, r.rounds));
        all.push(r);
        if h <= 64 {
            let r = measure_naive(&case, &params);
            r.print();
            all.push(r);
        }
    }
    println!(
        "growth exponent (rounds ~ h^e at fixed n):  theorem1 e = {:.2},  mr24 e = {:.2}",
        growth_exponent(&ours_h),
        growth_exponent(&mr_h)
    );

    println!();
    println!("== Table 1 / long-detour stress (lane instances) ==");
    Row::header();
    let lane_hs: &[usize] = if quick { &[64] } else { &[64, 160] };
    for &h in lane_hs {
        // Long-detour regime: switches every 8, stretch 3 => 26-hop detours.
        let case = lane_case(h, 8, 3);
        let n = case.graph.node_count();
        let params = bench_params(n, 11);
        let r = measure_ours(&case, &params);
        r.print();
        all.push(r);
        let r = measure_mr24(&case, &params);
        r.print();
        all.push(r);
    }

    println!();
    println!("== Table 1 / weighted (1+ε)-Apx-RPaths (Theorem 3) ==");
    Row::header();
    let wns: &[usize] = if quick {
        &[64, 128]
    } else {
        &[64, 128, 256, 512]
    };
    for &n in wns {
        let mut seed = 1;
        let row = loop {
            if let Some(r) = measure_weighted(n, 32, seed) {
                break r;
            }
            seed += 1;
        };
        row.print();
        all.push(row);
    }

    let path = std::env::args()
        .skip_while(|a| a != "--json")
        .nth(1)
        .unwrap_or_else(|| "table1.json".into());
    if std::env::args().any(|a| a == "--json") {
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&all).expect("serialize"),
        )
        .expect("write json");
        println!("\nwrote {path}");
    }
    assert!(
        all.iter().all(|r| r.correct),
        "some measurement disagreed with its oracle"
    );
}
