//! Section 6 experiments: Table 1's lower-bound row, made measurable.
//!
//! 1. The set-disjointness reduction (Lemma 6.9) run end-to-end with the
//!    real distributed 2-SiSP solver: the decoded answer always matches
//!    ground truth, and the Alice/Bob cut accounting shows at least `k²`
//!    bits crossing — the information bottleneck behind eΩ(n^{2/3}).
//! 2. The implied numeric round lower bound `min((dᵖ−1)/2, k²/(2dpB))`
//!    across the family (with the paper's balance `k² = dᵖ`), growing
//!    like `n^{2/3}/(B·log n)`.
//! 3. The Ω(D) family of Theorem 2: intact vs. reversed long path, with
//!    solver rounds growing linearly in `D`.

use rpaths_lb::diameter_lb::run_family;
use rpaths_lb::disjointness::{implied_round_lower_bound, run_reduction};
use rpaths_lb::hard::random_inputs;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    println!("== Lemma 6.9: disjointness via distributed 2-SiSP ==");
    println!(
        "{:>3} {:>3} {:>3} {:>7} {:>9} {:>9} {:>10} {:>10} {:>8} {:>8}",
        "k", "d", "p", "n", "k^2 bits", "rounds", "cut bits", "sisp", "decoded", "truth"
    );
    let configs: &[(usize, usize, usize)] = if quick {
        &[(2, 2, 2), (2, 2, 3)]
    } else {
        &[(2, 2, 2), (2, 2, 3), (3, 2, 3), (4, 2, 4)]
    };
    for &(k, d, p) in configs {
        for seed in 0..3u64 {
            let (m, x) = random_inputs(k, seed * 31 + 1);
            let y: Vec<bool> = m.iter().flatten().copied().collect();
            let out = run_reduction(k, d, p, &x, &y, seed);
            println!(
                "{:>3} {:>3} {:>3} {:>7} {:>9} {:>9} {:>10} {:>10} {:>8} {:>8}",
                k,
                d,
                p,
                out.n,
                out.bob_bits,
                out.rounds,
                out.cut_bits,
                if out.sisp_raw == u64::MAX {
                    "inf".to_string()
                } else {
                    out.sisp_raw.to_string()
                },
                out.disjoint,
                out.expected_disjoint
            );
            assert_eq!(
                out.disjoint, out.expected_disjoint,
                "reduction decoded wrongly"
            );
            assert!(
                out.cut_bits >= out.bob_bits,
                "fewer bits crossed the cut than Bob encodes"
            );
        }
    }

    println!();
    println!("== Implied round lower bound, k² = dᵖ balance (B = 32 bits) ==");
    println!(
        "{:>3} {:>3} {:>3} {:>10} {:>14} {:>12}",
        "k", "d", "p", "n≈(dᵖ)^1.5", "LB rounds", "n^(2/3)"
    );
    for &(k, d, p) in &[(4usize, 2usize, 4usize), (8, 2, 6), (16, 2, 8), (32, 2, 10)] {
        let dp = d.pow(p as u32);
        let n_approx = ((dp as f64).powf(1.5)) as u64;
        let lb = implied_round_lower_bound(k, d, p, 32);
        println!(
            "{:>3} {:>3} {:>3} {:>10} {:>14.2} {:>12.1}",
            k,
            d,
            p,
            n_approx,
            lb,
            (n_approx as f64).powf(2.0 / 3.0)
        );
    }

    println!();
    println!("== Theorem 2, Ω(D) family ==");
    println!(
        "{:>5} {:>9} {:>9} {:>10} {:>9} {:>8}",
        "d", "diameter", "reversed", "sisp", "rounds", "correct"
    );
    let ds: &[usize] = if quick {
        &[8, 16]
    } else {
        &[8, 16, 32, 64, 128]
    };
    for &d in ds {
        for rev in [None, Some(d / 2)] {
            let pt = run_family(d, rev, 5);
            println!(
                "{:>5} {:>9} {:>9} {:>10} {:>9} {:>8}",
                pt.d,
                pt.diameter,
                pt.reversed,
                if pt.sisp_raw == u64::MAX {
                    "inf".to_string()
                } else {
                    pt.sisp_raw.to_string()
                },
                pt.rounds,
                pt.correct
            );
            assert!(pt.correct);
        }
    }
    println!("\nall lower-bound checks passed");
}
