//! Figures 1 and 2 reproduction: the lower-bound constructions, built and
//! verified.
//!
//! - Figure 1 is `G(Γ, d, p)`: Γ paths of `dᵖ` vertices over a depth-`p`
//!   tree. We build it for several parameter settings and check
//!   Observation 6.3 (vertex count `Θ(Γ·dᵖ)`, diameter `≤ 2p + 2`).
//! - Figure 2 is `G(k, d, p, φ)` with the highlighted replacement path.
//!   We build its directed version for random `(M, x)`, check
//!   Observation 6.6, and verify Lemma 6.8 edge by edge against the
//!   centralized oracle — including reproducing the green highlighted
//!   detour route for a planted good bit.

use rpaths_lb::gamma;
use rpaths_lb::hard::{build, random_inputs};
use rpaths_lb::lemma68::verify;

fn main() {
    println!("== Figure 1: G(Gamma, d, p) (Observation 6.3) ==");
    println!(
        "{:>6} {:>3} {:>3} {:>8} {:>10} {:>9} {:>7}",
        "Gamma", "d", "p", "n", "expected", "diameter", "2p+2"
    );
    for (gamma_count, d, p) in [
        (4usize, 2usize, 2usize),
        (4, 2, 3),
        (8, 2, 4),
        (3, 3, 2),
        (6, 2, 5),
    ] {
        let g = gamma::build(gamma_count, d, p);
        let dp = gamma::path_len(d, p);
        let tree = (d.pow(p as u32 + 1) - 1) / (d - 1);
        let expected = gamma_count * dp + tree;
        let diam = graphkit::alg::undirected_diameter(&g.graph).expect("connected");
        println!(
            "{:>6} {:>3} {:>3} {:>8} {:>10} {:>9} {:>7}",
            gamma_count,
            d,
            p,
            g.graph.node_count(),
            expected,
            diam,
            2 * p + 2
        );
        assert_eq!(g.graph.node_count(), expected);
        assert!(diam <= 2 * p + 2);
    }

    println!();
    println!("== Figure 2: G(k, d, p, phi, M, x) (Observation 6.6 + Lemma 6.8) ==");
    println!(
        "{:>3} {:>3} {:>3} {:>8} {:>9} {:>11} {:>10} {:>8}",
        "k", "d", "p", "n", "diameter", "good_len", "sisp", "lemma6.8"
    );
    for (k, d, p, seed) in [
        (2usize, 2usize, 2usize, 1u64),
        (3, 2, 3, 2),
        (4, 2, 4, 3),
        (3, 3, 2, 4),
    ] {
        let (m, x) = random_inputs(k, seed);
        let g = build(k, d, p, &m, &x);
        let report = verify(&g, &m, &x);
        let diam = graphkit::alg::undirected_diameter(&g.graph).expect("connected");
        println!(
            "{:>3} {:>3} {:>3} {:>8} {:>9} {:>11} {:>10} {:>8}",
            k,
            d,
            p,
            g.graph.node_count(),
            diam,
            g.good_length,
            format!("{}", report.sisp),
            if report.all_ok() { "ok" } else { "FAIL" }
        );
        assert!(report.all_ok(), "Lemma 6.8 violated at k={k}, d={d}, p={p}");
        assert!(diam <= 2 * p + 2);
    }

    // The "green path" of Figure 2: plant exactly one good bit and trace
    // the canonical detour.
    println!();
    println!("== Figure 2, highlighted replacement path (planted good bit) ==");
    let k = 3;
    let i = 4; // phi(4) = (1, 1)
    let mut m = vec![vec![false; k]; k];
    m[1][1] = true;
    let mut x = vec![false; k * k];
    x[i] = true;
    let g = build(k, 2, 3, &m, &x);
    let p = graphkit::alg::shortest_st_path(&g.graph, g.s, g.t).expect("P* exists");
    let repl = graphkit::alg::replacement_lengths(&g.graph, &p);
    println!("replacement lengths along P*: {repl:?}");
    println!(
        "edge {i} has the good length {} (detour: P*[0..{i}] -> Q^2 -> v-path -> bipartite -> w-path -> R^2 -> P*[{}..])",
        g.good_length,
        i + 1
    );
    assert_eq!(repl[i].finite(), Some(g.good_length));
    println!("\nall figure checks passed");
}
