//! Offline drop-in subset of `serde`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a miniature serde: [`Serialize`] and [`Deserialize`] are
//! defined against an in-memory JSON-like data model ([`value::Value`])
//! instead of serde's visitor protocol. The `#[derive(Serialize,
//! Deserialize)]` macros (from the companion `serde_derive` crate) cover
//! plain structs with named fields and newtype structs, which is all the
//! workspace derives. `serde_json` renders and parses the data model.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// The in-memory data model.
pub mod value {
    use super::Error;

    /// A JSON-shaped value tree.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// JSON `null`.
        Null,
        /// JSON boolean.
        Bool(bool),
        /// Non-negative integer.
        UInt(u64),
        /// Negative integer.
        Int(i64),
        /// Floating-point number.
        Float(f64),
        /// String.
        Str(String),
        /// Array.
        Seq(Vec<Value>),
        /// Object, in insertion order.
        Map(Vec<(String, Value)>),
    }

    impl Value {
        /// The object entries, if this is a map.
        pub fn as_map(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Map(m) => Some(m),
                _ => None,
            }
        }

        /// The array elements, if this is a sequence.
        pub fn as_seq(&self) -> Option<&[Value]> {
            match self {
                Value::Seq(s) => Some(s),
                _ => None,
            }
        }
    }

    /// Looks up `key` in an object's entries (derive-generated code).
    pub fn get<'a>(map: &'a [(String, Value)], key: &str) -> Result<&'a Value, Error> {
        map.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::custom(format!("missing field `{key}`")))
    }
}

use value::Value;

/// Serialization/deserialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    /// Builds an error from any message.
    pub fn custom(msg: impl std::fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the data model.
pub trait Serialize {
    /// Renders `self` as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let raw = match *v {
                    Value::UInt(u) => u,
                    Value::Int(i) if i >= 0 => i as u64,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(raw).map_err(Error::custom)
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::UInt(x as u64) } else { Value::Int(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let raw: i64 = match *v {
                    Value::Int(i) => i,
                    Value::UInt(u) => i64::try_from(u).map_err(Error::custom)?,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(raw).map_err(Error::custom)
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::UInt(u) => Ok(u as $t),
                    Value::Int(i) => Ok(i as $t),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<(A, B), Error> {
        let s = v.as_seq().ok_or_else(|| Error::custom("expected pair"))?;
        if s.len() != 2 {
            return Err(Error::custom("expected 2-element array"));
        }
        Ok((A::from_value(&s[0])?, B::from_value(&s[1])?))
    }
}
