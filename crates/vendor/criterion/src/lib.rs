//! Offline drop-in subset of the Criterion benchmarking API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `criterion 0.5` it uses: `Criterion`,
//! `benchmark_group`, `sample_size`, `bench_with_input`/`bench_function`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a simple
//! mean of wall-clock samples — enough to track relative performance
//! trends in `BENCH_*.json` files, without Criterion's statistics.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
///
/// Forwards to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean wall-clock duration of one iteration, filled by `iter`.
    mean: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly (one warm-up, then the sample count configured
    /// on the group) and records the mean duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, also primes caches/allocations
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark, passing `input` through to the closure.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.samples,
            mean: Duration::ZERO,
        };
        f(&mut bencher, input);
        report(&self.name, &id.label, bencher.mean);
        self
    }

    /// Runs one benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.samples,
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        report(&self.name, &id.into(), bencher.mean);
        self
    }

    /// Ends the group (report-flush point in real Criterion; a no-op
    /// here, kept for API compatibility).
    pub fn finish(&mut self) {}
}

fn report(group: &str, label: &str, mean: Duration) {
    println!("{group}/{label}: mean {mean:?} per iteration");
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: 10,
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        report("bench", &id.into(), bencher.mean);
        self
    }
}

/// Declares a function that runs the listed benchmarks in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` to run the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
