//! Offline drop-in subset of `proptest`.
//!
//! Supports the workspace's usage: the `proptest!` macro with a
//! `proptest_config(ProptestConfig::with_cases(N))` header, range
//! strategies (`lo..hi`), `any::<bool>()`, `proptest::collection::vec`,
//! and the `prop_assert!`/`prop_assert_eq!` macros. Cases are generated
//! deterministically from the test name, so failures are reproducible;
//! there is no shrinking — the failing inputs are printed instead.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs each property `cases` times.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property with its rendered message.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-test, per-case generator.
pub fn test_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Generates values of type `Self::Value` from an RNG.
    pub trait Strategy {
        /// The generated type.
        type Value: std::fmt::Debug;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy for "any value of `T`" (see [`super::any`]).
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// `any::<T>()` strategy constructor.
pub fn any<T>() -> strategy::Any<T>
where
    strategy::Any<T>: strategy::Strategy,
{
    strategy::Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;

    /// Strategy producing `Vec`s of a fixed or ranged length.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Lengths accepted by [`vec`]: a fixed `usize` or a `Range`.
    pub trait IntoSizeRange {
        /// Lower and upper (inclusive) length bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end.saturating_sub(1))
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut rand::rngs::StdRng) -> Vec<S::Value> {
            let len = if self.min == self.max {
                self.min
            } else {
                rand::Rng::gen_range(rng, self.min..=self.max)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a `proptest!` test needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, TestCaseError};
}

/// Asserts a condition inside a property, failing the case (not
/// panicking directly) with an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}: {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Declares deterministic property tests.
///
/// Each listed function becomes one `#[test]` that samples its arguments
/// `cases` times from the given strategies and runs the body; `return
/// Ok(())` exits one case early, and `prop_assert!`-style failures
/// report the generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::test_rng(stringify!($name), __case);
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, "),+),
                        $(&$arg),+
                    );
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = __result {
                        panic!(
                            "property {} failed at case {}/{} with inputs: {}\n{}",
                            stringify!($name), __case, config.cases, __inputs, e
                        );
                    }
                }
            }
        )*
    };
}
