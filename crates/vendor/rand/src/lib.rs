//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand 0.8` API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256** seeded through SplitMix64 — deterministic across
//! platforms, which is all the simulator's seeded experiments need.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`; `low < high`.
    fn sample_exclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Samples uniformly from `[low, high]`; `low <= high`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                low.wrapping_add(uniform_u64(span, rng) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low <= high, "gen_range: empty inclusive range");
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_u64(span + 1, rng) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw from `[0, span)` by rejection (unbiased).
fn uniform_u64<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// High-level sampling methods, blanket-implemented for every core
/// generator (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`a..b` or `a..=b`).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        // 53 high-quality mantissa bits, as rand does.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    ///
    /// Not the upstream ChaCha-based `StdRng` — this vendored build only
    /// promises determinism for seeded simulations, not cryptographic
    /// strength.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // SplitMix64 expansion, the standard seeding procedure.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (mirrors `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions: shuffling and random choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` when empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(1..=9);
            assert!((1..=9).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_800..3_300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
