//! A minimal scoped shard pool for deterministic data-parallel rounds.
//!
//! Offline stand-in for the usual rayon-style scoped pools, built only on
//! [`std::thread::scope`]. The model is intentionally narrow: a caller
//! owns a list of disjoint *work items* (one per shard) and a `Fn` that
//! processes one item; [`Pool::run`] executes every item concurrently and
//! returns when all are done. Because each worker gets exclusive `&mut`
//! access to exactly one item and only shared access to everything else,
//! the result of a run is a pure function of the inputs — parallelism
//! cannot introduce nondeterminism, which is what the CONGEST engine's
//! bit-exactness invariant relies on.
//!
//! The pool object is persistent configuration (thread count, resolved
//! once — e.g. from the `CONGEST_THREADS` environment variable); the OS
//! threads themselves are spawned per [`Pool::run`] call, because reusing
//! parked workers for non-`'static` borrows requires lifetime-erasing
//! `unsafe` (as in rayon/crossbeam) and this workspace forbids unsafe
//! code. Callers amortize the spawn cost by batching a whole shard of
//! work into each item and by falling back to [`Pool::run_sequential`]
//! below a work threshold.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;

/// Upper bound on auto-detected parallelism: CONGEST rounds are
/// memory-bound barrier workloads, where very wide fan-out only adds
/// spawn/join latency. Explicit settings may exceed this.
pub const AUTO_THREAD_CAP: usize = 8;

/// A handle carrying the degree of parallelism for scoped shard runs.
///
/// # Examples
///
/// ```
/// let pool = shardpool::Pool::new(4);
/// let mut sums = vec![0u64; 4];
/// pool.run(&mut sums, |i, s| *s = (i as u64) * 10);
/// assert_eq!(sums, vec![0, 10, 20, 30]);
/// ```
#[derive(Clone, Debug)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool that runs `threads` items concurrently (`0` and `1` both
    /// mean sequential execution on the caller's thread).
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
        }
    }

    /// Resolves the thread count from the environment variable `var`
    /// (unset, empty, or `0` means auto-detect: available parallelism
    /// capped at [`AUTO_THREAD_CAP`]; unparsable values fall back to
    /// sequential).
    pub fn from_env(var: &str) -> Pool {
        let configured = std::env::var(var)
            .ok()
            .filter(|s| !s.is_empty())
            .map(|s| s.parse::<usize>().map_err(|_| s));
        match configured {
            Some(Ok(t)) if t > 0 => Pool::new(t),
            None | Some(Ok(_)) => Pool::new(
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
                    .min(AUTO_THREAD_CAP),
            ),
            Some(Err(_)) => Pool::new(1),
        }
    }

    /// The configured degree of parallelism.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Reconfigures the degree of parallelism in place.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Processes every item, concurrently when the pool has more than
    /// one thread and there is more than one item.
    ///
    /// `f` is called exactly once per item with the item's index; item 0
    /// runs on the calling thread, so a single-item run never spawns.
    /// Items beyond the pool's thread count still all run (the caller
    /// chose the fan-out by choosing the item count); the pool width is
    /// advisory sizing for that choice via [`Pool::threads`].
    pub fn run<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        if self.threads <= 1 || items.len() <= 1 {
            self.run_sequential(items, f);
            return;
        }
        std::thread::scope(|scope| {
            let mut iter = items.iter_mut().enumerate();
            let (first_idx, first) = iter.next().expect("len > 1");
            for (i, item) in iter {
                let f = &f;
                scope.spawn(move || f(i, item));
            }
            f(first_idx, first);
        });
    }

    /// Processes every item on the calling thread, in index order — the
    /// reference execution that [`Pool::run`] must be indistinguishable
    /// from.
    pub fn run_sequential<T, F>(&self, items: &mut [T], f: F)
    where
        F: Fn(usize, &mut T),
    {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
    }
}

/// Splits `0..len` into at most `parts` contiguous, ascending,
/// near-equal, non-empty ranges (fewer when `len < parts`).
///
/// # Examples
///
/// ```
/// assert_eq!(shardpool::even_chunks(10, 3), vec![(0, 4), (4, 8), (8, 10)]);
/// assert_eq!(shardpool::even_chunks(2, 8).len(), 2);
/// assert!(shardpool::even_chunks(0, 4).is_empty());
/// ```
pub fn even_chunks(len: usize, parts: usize) -> Vec<(usize, usize)> {
    if len == 0 || parts == 0 {
        return Vec::new();
    }
    let size = len.div_ceil(parts);
    let mut out = Vec::with_capacity(parts);
    let mut lo = 0;
    while lo < len {
        let hi = (lo + size).min(len);
        out.push((lo, hi));
        lo = hi;
    }
    out
}

/// Splits `0..len` (where `len = prefix.len() - 1`) into at most `parts`
/// contiguous, ascending, non-empty ranges whose *weights* are balanced.
///
/// `prefix` is an inclusive prefix-sum array: `prefix[i]` is the total
/// weight of items `0..i` (so `prefix[0] == 0` and `prefix` is
/// non-decreasing). Range `k` ends at the first index whose cumulative
/// weight reaches `total * k / parts`, so a single heavy item (a hub node
/// whose degree dominates the graph) gets a range of its own instead of
/// dragging its whole even-chunk behind it.
///
/// # Examples
///
/// ```
/// // Item 0 carries almost all the weight: it becomes its own chunk.
/// let prefix = [0u64, 97, 98, 99, 100];
/// assert_eq!(
///     shardpool::weighted_chunks(&prefix, 4),
///     vec![(0, 1), (1, 2), (2, 3), (3, 4)]
/// );
/// // Uniform weights degenerate to (nearly) even chunks.
/// let prefix: Vec<u64> = (0..=8).map(|i| i as u64).collect();
/// assert_eq!(
///     shardpool::weighted_chunks(&prefix, 2),
///     vec![(0, 4), (4, 8)]
/// );
/// ```
///
/// # Panics
///
/// Panics if `prefix` is empty or not non-decreasing.
pub fn weighted_chunks(prefix: &[u64], parts: usize) -> Vec<(usize, usize)> {
    assert!(!prefix.is_empty(), "prefix-sum array needs a leading 0");
    debug_assert!(prefix.windows(2).all(|w| w[0] <= w[1]));
    let len = prefix.len() - 1;
    if len == 0 || parts == 0 {
        return Vec::new();
    }
    if prefix[len] == prefix[0] {
        return even_chunks(len, parts);
    }
    let mut out = Vec::with_capacity(parts);
    let mut lo = 0usize;
    let mut parts_left = parts;
    while parts_left > 1 && lo < len {
        // Re-aim at the *remaining* weight each time, so a heavy head
        // that swallows several ideal targets doesn't starve the tail
        // chunks down to one item each.
        let remaining = prefix[len] - prefix[lo];
        let target = prefix[lo] + (remaining / parts_left as u64).max(1);
        // Smallest cut point whose cumulative weight reaches the target,
        // clamped so every emitted range is non-empty.
        let hi = prefix.partition_point(|&p| p < target).clamp(lo + 1, len);
        if hi >= len {
            break;
        }
        out.push((lo, hi));
        lo = hi;
        parts_left -= 1;
    }
    out.push((lo, len));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_item_exactly_once() {
        let pool = Pool::new(4);
        let mut hits = vec![0u32; 13];
        pool.run(&mut hits, |i, h| *h += i as u32 + 1);
        assert_eq!(hits, (1..=13).collect::<Vec<u32>>());
    }

    #[test]
    fn sequential_pool_never_spawns_but_matches() {
        let mut par = vec![0u64; 7];
        let mut seq = vec![0u64; 7];
        Pool::new(8).run(&mut par, |i, x| *x = (i as u64).pow(3));
        Pool::new(1).run(&mut seq, |i, x| *x = (i as u64).pow(3));
        assert_eq!(par, seq);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Pool::new(0).threads(), 1);
        let mut p = Pool::new(4);
        p.set_threads(0);
        assert_eq!(p.threads(), 1);
    }

    #[test]
    fn from_env_parses_and_falls_back() {
        // Unset variable: auto-detected, at least 1, at most the cap.
        let auto = Pool::from_env("SHARDPOOL_TEST_UNSET_VAR");
        assert!((1..=AUTO_THREAD_CAP).contains(&auto.threads()));

        std::env::set_var("SHARDPOOL_TEST_VAR", "3");
        assert_eq!(Pool::from_env("SHARDPOOL_TEST_VAR").threads(), 3);
        std::env::set_var("SHARDPOOL_TEST_VAR", "not-a-number");
        assert_eq!(Pool::from_env("SHARDPOOL_TEST_VAR").threads(), 1);
        std::env::set_var("SHARDPOOL_TEST_VAR", "0");
        let t = Pool::from_env("SHARDPOOL_TEST_VAR").threads();
        assert!((1..=AUTO_THREAD_CAP).contains(&t));
        std::env::remove_var("SHARDPOOL_TEST_VAR");
    }

    #[test]
    fn weighted_chunks_cover_everything_in_order() {
        for weights in [
            vec![1u64; 17],
            vec![100, 1, 1, 1, 1, 1, 1, 1],
            vec![1, 1, 1, 1, 1, 1, 1, 100],
            vec![0, 0, 5, 0, 0, 9, 0],
            vec![7],
        ] {
            let mut prefix = vec![0u64];
            for &w in &weights {
                prefix.push(prefix.last().unwrap() + w);
            }
            for parts in [1usize, 2, 3, 8, 50] {
                let chunks = weighted_chunks(&prefix, parts);
                assert!(chunks.len() <= parts, "{weights:?} parts {parts}");
                let mut expect = 0;
                for &(lo, hi) in &chunks {
                    assert_eq!(lo, expect, "{weights:?} parts {parts}");
                    assert!(hi > lo);
                    expect = hi;
                }
                assert_eq!(expect, weights.len());
            }
        }
    }

    #[test]
    fn weighted_chunks_isolate_a_heavy_head() {
        // A star-graph degree profile: the hub dominates, so it must get
        // a chunk of its own while the spokes spread over the rest.
        let mut prefix = vec![0u64, 1000];
        for i in 0..30u64 {
            prefix.push(1000 + 2 * (i + 1));
        }
        let chunks = weighted_chunks(&prefix, 4);
        assert_eq!(chunks[0], (0, 1), "hub isolated: {chunks:?}");
        assert_eq!(chunks.last().unwrap().1, 31);
    }

    #[test]
    fn weighted_chunks_zero_total_falls_back_to_even() {
        assert_eq!(weighted_chunks(&[0, 0, 0, 0], 3), even_chunks(3, 3));
        assert!(weighted_chunks(&[0], 4).is_empty());
    }

    #[test]
    fn even_chunks_cover_everything_in_order() {
        for len in [0usize, 1, 2, 7, 64, 100] {
            for parts in [1usize, 2, 3, 8, 200] {
                let chunks = even_chunks(len, parts);
                assert!(chunks.len() <= parts.max(1));
                let mut expect = 0;
                for &(lo, hi) in &chunks {
                    assert_eq!(lo, expect, "len {len} parts {parts}");
                    assert!(hi > lo);
                    expect = hi;
                }
                assert_eq!(expect, len);
            }
        }
    }
}
