//! `#[derive(Serialize, Deserialize)]` for the vendored mini-serde.
//!
//! Hand-rolled token parsing (no `syn`/`quote` available offline). Two
//! struct shapes are supported — named fields and newtype/tuple — which
//! covers every derive in the workspace. Enums and generic structs are
//! rejected with a compile error rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Shape {
    /// `struct Name { a: T, b: U }` — field names in declaration order.
    Named(Vec<String>),
    /// `struct Name(T, U);` — field count.
    Tuple(usize),
}

struct Input {
    name: String,
    shape: Shape,
}

fn parse(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes (#[...]) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => i += 1,
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
            return Err("mini-serde derive does not support enums".into())
        }
        _ => return Err("expected `struct`".into()),
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected struct name".into()),
    };
    i += 1;
    match tokens.get(i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            Err("mini-serde derive does not support generic structs".into())
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input {
            name,
            shape: Shape::Named(named_fields(g.stream())),
        }),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Input {
            name,
            shape: Shape::Tuple(tuple_arity(g.stream())),
        }),
        _ => Err("expected struct body".into()),
    }
}

/// Field names of a named-field struct body, in order.
fn named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut angle_depth = 0i32;
    let mut at_field_start = true;
    let mut pending_ident: Option<String> = None;
    let mut iter = body.into_iter().peekable();
    while let Some(tok) = iter.next() {
        match tok {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                '#' => {
                    // Skip the attribute group that follows.
                    iter.next();
                }
                ':' if angle_depth == 0 => {
                    if let Some(name) = pending_ident.take() {
                        fields.push(name);
                    }
                    at_field_start = false;
                }
                ',' if angle_depth == 0 => {
                    at_field_start = true;
                    pending_ident = None;
                }
                _ => {}
            },
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if at_field_start && s != "pub" {
                    pending_ident = Some(s);
                }
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                // pub(crate) — ignore.
                let _ = g;
            }
            _ => {}
        }
    }
    fields
}

/// Number of fields in a tuple-struct body.
fn tuple_arity(body: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    let mut trailing_comma = false;
    for tok in body {
        match tok {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    commas += 1;
                    trailing_comma = true;
                }
                _ => trailing_comma = false,
            },
            _ => {
                any = true;
                trailing_comma = false;
            }
        }
    }
    if !any {
        0
    } else if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derives `serde::Serialize` (mini-serde data-model flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::value::Value::Map(vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::value::Value::Seq(vec![{}])", items.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

/// Derives `serde::Deserialize` (mini-serde data-model flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::value::get(__map, {f:?})?)?"
                    )
                })
                .collect();
            format!(
                "let __map = __v.as_map().ok_or_else(|| ::serde::Error::custom(\"expected object\"))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                .collect();
            format!(
                "let __seq = __v.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected array\"))?;\n\
                 if __seq.len() != {n} {{ return Err(::serde::Error::custom(\"wrong tuple arity\")); }}\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
