//! Offline drop-in subset of `serde_json`: renders and parses the
//! vendored mini-serde data model ([`serde::value::Value`]) as JSON.
//!
//! Supports exactly what the workspace uses: [`to_string`],
//! [`to_string_pretty`], and [`from_str`].

#![forbid(unsafe_code)]

use serde::value::Value;
use serde::{Deserialize, Serialize};

pub use serde::Error;

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Keep a fractional marker so the value re-parses as float.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_sequence(out, items.iter(), items.len(), indent, depth, false),
        Value::Map(entries) => {
            write_sequence(out, entries.iter(), entries.len(), indent, depth, true)
        }
    }
}

/// Shared array/object writer; `entries` selects `{}` + keys over `[]`.
fn write_sequence<'a, I, T>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    entries: bool,
) where
    I: Iterator<Item = &'a T>,
    T: WriteItem + 'a,
{
    let (open, close) = if entries { ('{', '}') } else { ('[', ']') };
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item.write(out, indent, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

trait WriteItem {
    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize);
}

impl WriteItem for Value {
    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        write_value(out, self, indent, depth);
    }
}

impl WriteItem for (String, Value) {
    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        write_string(out, &self.0);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_value(out, &self.1, indent, depth);
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::custom("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::custom("expected `,` or `}`")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::custom(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(Error::custom)?,
                                16,
                            )
                            .map_err(Error::custom)?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(Error::custom("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(Error::custom)?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::custom)?;
        if float {
            text.parse::<f64>().map(Value::Float).map_err(Error::custom)
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::Int).map_err(Error::custom)
        } else {
            text.parse::<u64>().map(Value::UInt).map_err(Error::custom)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_vec() {
        let v = vec![1u64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        let back: Vec<u64> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_objects_are_indented() {
        let v = Value::Map(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Seq(vec![Value::Bool(true)])),
        ]);
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let pretty = to_string_pretty(&Raw(v)).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "a\"b\\c\nd".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn negative_and_float_numbers() {
        let x: i64 = from_str("-42").unwrap();
        assert_eq!(x, -42);
        let f: f64 = from_str("2.5e3").unwrap();
        assert_eq!(f, 2500.0);
    }
}
