//! Persisted solver artifacts: typed codecs over the `rpaths-store`
//! snapshot format.
//!
//! The store (`rpaths_store`) frames, checksums, and atomically writes
//! sections but treats artifact bodies as opaque bytes; this module owns
//! the *typed* encodings the solvers actually produce and consume:
//!
//! - **Distance arrays** ([`dists_artifact`] / [`dists_from`]): the
//!   per-path-edge replacement lengths of an [`RPathsOutput`], or any
//!   other `Vec<Dist>` (landmark tables, per-source BFS rows). Encoded
//!   as a count plus raw little-endian `u64`s (`u64::MAX` = ∞, via
//!   [`Dist::raw`]).
//! - **BFS trees** ([`tree_artifact`] / [`tree_from`]): the full
//!   [`BfsTree`] — parents, parent ports, depths, child ports — so a
//!   warm start can run tree broadcasts/aggregations without re-flooding
//!   the network.
//! - **Session cache entries** ([`cache_artifact`] / [`cache_entry_from`]):
//!   one entry of a [`crate::session::SolverSession`]'s artifact cache —
//!   diameter, shortest path, BFS tree, or whole replacement answers —
//!   prefixed with the graph fingerprint so a warm boot never imports
//!   artifacts of a different graph.
//!
//! Decoders validate structure (lengths, id ranges, the
//! `depth[child] = depth[parent] + 1` invariant) and return
//! [`ArtifactError`], never panic: a snapshot section that passed its
//! checksum can still have been written by a buggy or hostile producer.
//!
//! [`save`] / [`load`] are the convenience entry points: graph plus
//! artifacts in, crash-safe single file out, and back. A corrupt
//! artifact section surfaces as `Loaded::Partial` from the store —
//! callers keep the graph and recompute only the artifacts named in
//! `dropped`, mirroring the degraded-answer contract of
//! [`crate::resilient`].

use std::fmt;
use std::path::Path;
use std::sync::Arc;

use congest::bfs_tree::BfsTree;
use graphkit::alg::shortest_st_path;
use graphkit::{DiGraph, Dist, EdgeId, NodeId, StPath};
use rpaths_store::{Artifact, Loaded, Snapshot, StoreError, TAG_CACHE, TAG_DISTS, TAG_TREE};

use crate::cache::{ArtifactKind, CacheValue, SolverKind};
use crate::weighted::ScaledAnswers;
use crate::RPathsOutput;

/// Why a typed artifact body could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArtifactError {
    /// The artifact's section tag is not the kind the decoder reads.
    WrongKind {
        /// The tag the decoder expected.
        expected: u32,
        /// The tag the artifact carries.
        found: u32,
    },
    /// The body ended before the structure it promised.
    Truncated {
        /// Bytes the decoder needed.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The body parsed but violates a structural invariant.
    Malformed(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::WrongKind { expected, found } => {
                write!(
                    f,
                    "artifact kind mismatch: expected tag {expected}, found {found}"
                )
            }
            ArtifactError::Truncated { expected, got } => {
                write!(
                    f,
                    "artifact body truncated: needed {expected} bytes, got {got}"
                )
            }
            ArtifactError::Malformed(detail) => write!(f, "malformed artifact body: {detail}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], ArtifactError> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(ArtifactError::Truncated {
                expected: self.pos.saturating_add(len),
                got: self.bytes.len(),
            })?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn finish(&self) -> Result<(), ArtifactError> {
        if self.pos != self.bytes.len() {
            Err(ArtifactError::Malformed(format!(
                "trailing bytes after offset {}",
                self.pos
            )))
        } else {
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------
// Distance arrays
// ---------------------------------------------------------------------

/// Encodes a distance array as a keyed [`TAG_DISTS`] artifact.
pub fn dists_artifact(key: impl Into<String>, dists: &[Dist]) -> Artifact {
    let mut body = Vec::with_capacity(8 + 8 * dists.len());
    body.extend_from_slice(&(dists.len() as u64).to_le_bytes());
    for d in dists {
        body.extend_from_slice(&d.raw().to_le_bytes());
    }
    Artifact {
        kind: TAG_DISTS,
        key: key.into(),
        body,
    }
}

/// Encodes a solver output's replacement lengths under `key`.
///
/// Only the answers persist; [`congest::Metrics`] describe the run that
/// produced them, not the instance, so they are recomputed per run.
pub fn output_artifact(key: impl Into<String>, out: &RPathsOutput) -> Artifact {
    dists_artifact(key, &out.replacement)
}

/// Decodes a [`TAG_DISTS`] artifact body.
///
/// # Errors
///
/// [`ArtifactError::WrongKind`] for a non-dists artifact, otherwise any
/// truncation/shape violation.
pub fn dists_from(a: &Artifact) -> Result<Vec<Dist>, ArtifactError> {
    if a.kind != TAG_DISTS {
        return Err(ArtifactError::WrongKind {
            expected: TAG_DISTS,
            found: a.kind,
        });
    }
    let mut c = Cursor {
        bytes: &a.body,
        pos: 0,
    };
    let count = c.u64()?;
    if count > (a.body.len() as u64) / 8 {
        return Err(ArtifactError::Malformed(format!(
            "count {count} cannot fit in a {}-byte body",
            a.body.len()
        )));
    }
    let mut dists = Vec::with_capacity(count as usize);
    for _ in 0..count {
        dists.push(Dist::from_raw(c.u64()?));
    }
    c.finish()?;
    Ok(dists)
}

// ---------------------------------------------------------------------
// BFS trees
// ---------------------------------------------------------------------

/// Encodes a [`BfsTree`] as a keyed [`TAG_TREE`] artifact.
///
/// The full structure round-trips — parents, parent ports, depths,
/// child ports — so warm starts can run tree primitives immediately.
pub fn tree_artifact(key: impl Into<String>, tree: &BfsTree) -> Artifact {
    let n = tree.parent.len();
    let total_children: usize = tree.child_ports.iter().map(|c| c.len()).sum();
    let mut body = Vec::with_capacity(16 + 20 * n + 4 * total_children);
    body.extend_from_slice(&(tree.root as u64).to_le_bytes());
    body.extend_from_slice(&(n as u64).to_le_bytes());
    for v in 0..n {
        body.extend_from_slice(&tree.parent[v].map_or(u64::MAX, |p| p as u64).to_le_bytes());
    }
    for v in 0..n {
        body.extend_from_slice(&tree.parent_port[v].unwrap_or(u32::MAX).to_le_bytes());
    }
    for v in 0..n {
        body.extend_from_slice(&tree.depth[v].to_le_bytes());
    }
    for v in 0..n {
        body.extend_from_slice(&(tree.child_ports[v].len() as u32).to_le_bytes());
        for &p in &tree.child_ports[v] {
            body.extend_from_slice(&p.to_le_bytes());
        }
    }
    Artifact {
        kind: TAG_TREE,
        key: key.into(),
        body,
    }
}

/// Decodes a [`TAG_TREE`] artifact body, re-validating the tree
/// invariants (root has no parent and depth 0, every other node's depth
/// is its parent's plus one).
///
/// # Errors
///
/// [`ArtifactError::WrongKind`] for a non-tree artifact, otherwise any
/// truncation/shape/invariant violation.
pub fn tree_from(a: &Artifact) -> Result<BfsTree, ArtifactError> {
    if a.kind != TAG_TREE {
        return Err(ArtifactError::WrongKind {
            expected: TAG_TREE,
            found: a.kind,
        });
    }
    let mut c = Cursor {
        bytes: &a.body,
        pos: 0,
    };
    let root = c.u64()?;
    let n64 = c.u64()?;
    if n64 > (a.body.len() as u64) / 20 {
        return Err(ArtifactError::Malformed(format!(
            "node count {n64} cannot fit in a {}-byte body",
            a.body.len()
        )));
    }
    let n = n64 as usize;
    if root >= n64 && n > 0 {
        return Err(ArtifactError::Malformed(format!(
            "root {root} out of range (n = {n})"
        )));
    }
    let root = root as NodeId;
    let mut parent = Vec::with_capacity(n);
    for v in 0..n {
        let raw = c.u64()?;
        if raw == u64::MAX {
            parent.push(None);
        } else if raw < n64 {
            parent.push(Some(raw as NodeId));
        } else {
            return Err(ArtifactError::Malformed(format!(
                "node {v} has parent {raw} out of range (n = {n})"
            )));
        }
    }
    let mut parent_port = Vec::with_capacity(n);
    for _ in 0..n {
        let raw = c.u32()?;
        parent_port.push(if raw == u32::MAX { None } else { Some(raw) });
    }
    let mut depth = Vec::with_capacity(n);
    for _ in 0..n {
        depth.push(c.u64()?);
    }
    let mut child_ports = Vec::with_capacity(n);
    for _ in 0..n {
        let count = c.u32()? as usize;
        let mut ports = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            ports.push(c.u32()?);
        }
        child_ports.push(ports);
    }
    c.finish()?;
    // Tree invariants: the checksum said these bytes are what the writer
    // wrote; this says the writer wrote a tree.
    if n > 0 {
        if parent[root].is_some() || parent_port[root].is_some() {
            return Err(ArtifactError::Malformed("root has a parent".into()));
        }
        if depth[root] != 0 {
            return Err(ArtifactError::Malformed(format!(
                "root depth is {} (must be 0)",
                depth[root]
            )));
        }
    }
    for v in 0..n {
        match parent[v] {
            Some(p) => {
                if depth[v] != depth[p] + 1 {
                    return Err(ArtifactError::Malformed(format!(
                        "node {v} at depth {} under parent {p} at depth {}",
                        depth[v], depth[p]
                    )));
                }
                if parent_port[v].is_none() {
                    return Err(ArtifactError::Malformed(format!(
                        "node {v} has a parent but no parent port"
                    )));
                }
            }
            None if v != root => {
                return Err(ArtifactError::Malformed(format!(
                    "non-root node {v} has no parent"
                )))
            }
            None => {}
        }
    }
    let height = depth.iter().copied().max().unwrap_or(0);
    Ok(BfsTree {
        root,
        parent_port,
        parent,
        child_ports,
        depth,
        height,
    })
}

// ---------------------------------------------------------------------
// Session cache entries
// ---------------------------------------------------------------------

/// A decoded [`TAG_CACHE`] section: one entry of a
/// [`crate::cache::ArtifactCache`], ready to re-insert.
#[derive(Clone, Debug)]
pub struct CacheEntry {
    /// Fingerprint of the graph the entry was computed on. The session
    /// rejects entries whose fingerprint differs from its own graph's.
    pub fingerprint: u64,
    /// The entry's typed identity.
    pub kind: ArtifactKind,
    /// The entry's value.
    pub value: CacheValue,
}

const CACHE_DIAMETER: u8 = 0;
const CACHE_PATH: u8 = 1;
const CACHE_TREE: u8 = 2;
const CACHE_REPLACEMENT: u8 = 3;

/// Encodes one artifact-cache entry as a keyed [`TAG_CACHE`] artifact.
///
/// The body opens with the graph fingerprint, then a one-byte entry
/// code, then kind-specific parameters and payload. The key is
/// human-readable and purely informational — decoding trusts only the
/// body.
pub fn cache_artifact(fingerprint: u64, kind: &ArtifactKind, value: &CacheValue) -> Artifact {
    let mut body = Vec::new();
    body.extend_from_slice(&fingerprint.to_le_bytes());
    let key = match (kind, value) {
        (ArtifactKind::Diameter, CacheValue::Diameter(d)) => {
            body.push(CACHE_DIAMETER);
            body.extend_from_slice(&(*d as u64).to_le_bytes());
            format!("cache/{fingerprint:016x}/diameter")
        }
        (ArtifactKind::Path { source, target }, CacheValue::Path(path)) => {
            body.push(CACHE_PATH);
            body.extend_from_slice(&(*source as u32).to_le_bytes());
            body.extend_from_slice(&(*target as u32).to_le_bytes());
            match path {
                Some(p) => {
                    body.push(1);
                    body.extend_from_slice(&(p.edges().len() as u64).to_le_bytes());
                    for &e in p.edges() {
                        body.extend_from_slice(&(e as u32).to_le_bytes());
                    }
                }
                None => body.push(0),
            }
            format!("cache/{fingerprint:016x}/path/{source}-{target}")
        }
        (ArtifactKind::Tree { root }, CacheValue::Tree(tree)) => {
            body.push(CACHE_TREE);
            body.extend_from_slice(&(*root as u32).to_le_bytes());
            let inner = tree_artifact("", tree).body;
            body.extend_from_slice(&(inner.len() as u64).to_le_bytes());
            body.extend_from_slice(&inner);
            format!("cache/{fingerprint:016x}/tree/{root}")
        }
        (
            ArtifactKind::Replacement {
                source,
                target,
                solver,
                params_fp,
                path_fp,
            },
            CacheValue::Replacement(answers),
        ) => {
            body.push(CACHE_REPLACEMENT);
            body.extend_from_slice(&(*source as u32).to_le_bytes());
            body.extend_from_slice(&(*target as u32).to_le_bytes());
            body.push(solver.code());
            body.extend_from_slice(&params_fp.to_le_bytes());
            body.extend_from_slice(&path_fp.to_le_bytes());
            body.extend_from_slice(&answers.den.to_le_bytes());
            body.extend_from_slice(&(answers.scaled.len() as u64).to_le_bytes());
            for d in &answers.scaled {
                body.extend_from_slice(&d.raw().to_le_bytes());
            }
            format!(
                "cache/{fingerprint:016x}/repl/{source}-{target}/{}/{params_fp:016x}",
                solver.name()
            )
        }
        // The cache never pairs a key kind with a foreign value kind;
        // encoding such a pair would be a bug in the session.
        (kind, value) => unreachable!("mismatched cache entry: {kind:?} vs {value:?}"),
    };
    Artifact {
        kind: TAG_CACHE,
        key,
        body,
    }
}

/// Decodes a [`TAG_CACHE`] artifact back into a cache entry, validating
/// everything against `graph`: ids in range, paths re-proved shortest
/// (including the *absence* of a path for negative entries), trees
/// re-checked for the BFS invariants. A checksum-valid but lying body is
/// an [`ArtifactError`], never a panic and never a wrong answer.
///
/// # Errors
///
/// [`ArtifactError::WrongKind`] for a non-cache artifact, otherwise any
/// truncation/shape/invariant violation.
pub fn cache_entry_from(a: &Artifact, graph: &DiGraph) -> Result<CacheEntry, ArtifactError> {
    if a.kind != TAG_CACHE {
        return Err(ArtifactError::WrongKind {
            expected: TAG_CACHE,
            found: a.kind,
        });
    }
    let mut c = Cursor {
        bytes: &a.body,
        pos: 0,
    };
    let fingerprint = c.u64()?;
    let code = c.take(1)?[0];
    let n = graph.node_count();
    let node = |raw: u32| -> Result<NodeId, ArtifactError> {
        if (raw as usize) < n {
            Ok(raw as NodeId)
        } else {
            Err(ArtifactError::Malformed(format!(
                "node {raw} out of range (n = {n})"
            )))
        }
    };
    let (kind, value) = match code {
        CACHE_DIAMETER => {
            let d = c.u64()? as usize;
            (ArtifactKind::Diameter, CacheValue::Diameter(d))
        }
        CACHE_PATH => {
            let source = node(c.u32()?)?;
            let target = node(c.u32()?)?;
            let present = c.take(1)?[0];
            let path = match present {
                0 => {
                    if shortest_st_path(graph, source, target).is_some() {
                        return Err(ArtifactError::Malformed(format!(
                            "entry claims {target} unreachable from {source}, but a path exists"
                        )));
                    }
                    None
                }
                1 => {
                    let count = c.u64()?;
                    if count > (a.body.len() as u64) / 4 {
                        return Err(ArtifactError::Malformed(format!(
                            "edge count {count} cannot fit in a {}-byte body",
                            a.body.len()
                        )));
                    }
                    let m = graph.edge_count();
                    let mut edges = Vec::with_capacity(count as usize);
                    for _ in 0..count {
                        let e = c.u32()? as usize;
                        if e >= m {
                            return Err(ArtifactError::Malformed(format!(
                                "edge {e} out of range (m = {m})"
                            )));
                        }
                        edges.push(e as EdgeId);
                    }
                    let path = StPath::new(graph, edges)
                        .map_err(|e| ArtifactError::Malformed(format!("invalid path: {e}")))?;
                    if path.source() != source || path.target() != target {
                        return Err(ArtifactError::Malformed(format!(
                            "path runs {} → {}, entry claims {source} → {target}",
                            path.source(),
                            path.target()
                        )));
                    }
                    path.validate_shortest(graph)
                        .map_err(|e| ArtifactError::Malformed(format!("not shortest: {e}")))?;
                    Some(path)
                }
                other => {
                    return Err(ArtifactError::Malformed(format!(
                        "bad path presence flag {other}"
                    )))
                }
            };
            (
                ArtifactKind::Path { source, target },
                CacheValue::Path(path),
            )
        }
        CACHE_TREE => {
            let root = node(c.u32()?)?;
            let len = c.u64()? as usize;
            let inner = Artifact {
                kind: TAG_TREE,
                key: String::new(),
                body: c.take(len)?.to_vec(),
            };
            let tree = tree_from(&inner)?;
            if tree.parent.len() != n {
                return Err(ArtifactError::Malformed(format!(
                    "tree spans {} nodes, graph has {n}",
                    tree.parent.len()
                )));
            }
            if tree.root != root {
                return Err(ArtifactError::Malformed(format!(
                    "tree rooted at {}, entry claims {root}",
                    tree.root
                )));
            }
            (
                ArtifactKind::Tree { root },
                CacheValue::Tree(Arc::new(tree)),
            )
        }
        CACHE_REPLACEMENT => {
            let source = node(c.u32()?)?;
            let target = node(c.u32()?)?;
            let solver_code = c.take(1)?[0];
            let solver = SolverKind::from_code(solver_code).ok_or_else(|| {
                ArtifactError::Malformed(format!("unknown solver code {solver_code}"))
            })?;
            let params_fp = c.u64()?;
            let path_fp = c.u64()?;
            let den = c.u64()?;
            if den == 0 {
                return Err(ArtifactError::Malformed("zero denominator".into()));
            }
            let count = c.u64()?;
            if count > (a.body.len() as u64) / 8 {
                return Err(ArtifactError::Malformed(format!(
                    "count {count} cannot fit in a {}-byte body",
                    a.body.len()
                )));
            }
            let mut scaled = Vec::with_capacity(count as usize);
            for _ in 0..count {
                scaled.push(Dist::from_raw(c.u64()?));
            }
            (
                ArtifactKind::Replacement {
                    source,
                    target,
                    solver,
                    params_fp,
                    path_fp,
                },
                CacheValue::Replacement(Arc::new(ScaledAnswers { scaled, den })),
            )
        }
        other => {
            return Err(ArtifactError::Malformed(format!(
                "unknown cache entry code {other}"
            )))
        }
    };
    c.finish()?;
    Ok(CacheEntry {
        fingerprint,
        kind,
        value,
    })
}

// ---------------------------------------------------------------------
// File-level convenience
// ---------------------------------------------------------------------

/// Atomically writes `graph` plus `artifacts` as one snapshot file.
///
/// # Errors
///
/// [`StoreError::Io`] on filesystem failure.
pub fn save(
    path: impl AsRef<Path>,
    graph: &DiGraph,
    artifacts: Vec<Artifact>,
) -> Result<(), StoreError> {
    let snapshot = Snapshot {
        graph: graph.clone(),
        artifacts,
    };
    snapshot.write(path)
}

/// Loads a snapshot file, degrading on artifact corruption.
///
/// # Errors
///
/// Whatever [`Snapshot::read`] reports; `Loaded::Partial` means the
/// graph survived and only the `dropped` artifacts need recomputing.
pub fn load(path: impl AsRef<Path>) -> Result<Loaded, StoreError> {
    Snapshot::read(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::bfs_tree::build_bfs_tree;
    use congest::Network;
    use graphkit::gen::{metro_ring, random_digraph};

    #[test]
    fn dists_round_trip_including_infinity() {
        let dists = vec![Dist::ZERO, Dist::new(42), Dist::INF, Dist::new(7)];
        let a = dists_artifact("test/dists", &dists);
        assert_eq!(dists_from(&a).unwrap(), dists);
        assert_eq!(a.key, "test/dists");
    }

    #[test]
    fn tree_round_trips_exactly() {
        let g = random_digraph(40, 90, 11);
        let mut net = Network::new(&g);
        let (tree, _) = build_bfs_tree(&mut net, 3).unwrap();
        let back = tree_from(&tree_artifact("t", &tree)).unwrap();
        assert_eq!(back.root, tree.root);
        assert_eq!(back.parent, tree.parent);
        assert_eq!(back.parent_port, tree.parent_port);
        assert_eq!(back.child_ports, tree.child_ports);
        assert_eq!(back.depth, tree.depth);
        assert_eq!(back.height, tree.height);
    }

    #[test]
    fn wrong_kind_is_reported() {
        let a = dists_artifact("d", &[Dist::ZERO]);
        assert_eq!(
            tree_from(&a).err(),
            Some(ArtifactError::WrongKind {
                expected: TAG_TREE,
                found: TAG_DISTS
            })
        );
    }

    #[test]
    fn corrupt_tree_bodies_are_structured_errors() {
        let g = metro_ring(6);
        let mut net = Network::new(&g);
        let (tree, _) = build_bfs_tree(&mut net, 0).unwrap();
        let good = tree_artifact("t", &tree);
        // Truncations at every prefix parse to an error, never panic.
        for cut in 0..good.body.len() {
            let mut a = good.clone();
            a.body.truncate(cut);
            assert!(tree_from(&a).is_err(), "cut {cut}");
        }
        // Break the depth invariant: depth[root] starts at byte
        // 16 + 12n.
        let n = g.node_count();
        let mut a = good.clone();
        a.body[16 + 12 * n] = 9;
        assert!(matches!(tree_from(&a), Err(ArtifactError::Malformed(_))));
    }

    #[test]
    fn cache_entries_round_trip_every_kind() {
        let g = metro_ring(8);
        let fp = g.fingerprint();
        let mut net = Network::new(&g);
        let (tree, _) = build_bfs_tree(&mut net, 2).unwrap();
        let path = graphkit::alg::shortest_st_path(&g, 0, 3).unwrap();
        let entries = vec![
            (ArtifactKind::Diameter, CacheValue::Diameter(4)),
            (
                ArtifactKind::Path {
                    source: 0,
                    target: 3,
                },
                CacheValue::Path(Some(path.clone())),
            ),
            (
                ArtifactKind::Tree { root: 2 },
                CacheValue::Tree(Arc::new(tree.clone())),
            ),
            (
                ArtifactKind::Replacement {
                    source: 0,
                    target: 3,
                    solver: SolverKind::Unweighted,
                    params_fp: 0xabc,
                    path_fp: 0xdef,
                },
                CacheValue::Replacement(Arc::new(ScaledAnswers {
                    scaled: vec![Dist::new(5), Dist::INF, Dist::new(4)],
                    den: 1,
                })),
            ),
        ];
        for (kind, value) in entries {
            let a = cache_artifact(fp, &kind, &value);
            assert_eq!(a.kind, TAG_CACHE);
            let back = cache_entry_from(&a, &g).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert_eq!(back.fingerprint, fp);
            assert_eq!(back.kind, kind);
            match (&back.value, &value) {
                (CacheValue::Diameter(a), CacheValue::Diameter(b)) => assert_eq!(a, b),
                (CacheValue::Path(a), CacheValue::Path(b)) => {
                    assert_eq!(
                        a.as_ref().map(|p| p.edges().to_vec()),
                        b.as_ref().map(|p| p.edges().to_vec())
                    );
                }
                (CacheValue::Tree(a), CacheValue::Tree(b)) => {
                    assert_eq!(a.parent, b.parent);
                    assert_eq!(a.depth, b.depth);
                }
                (CacheValue::Replacement(a), CacheValue::Replacement(b)) => {
                    assert_eq!(a.scaled, b.scaled);
                    assert_eq!(a.den, b.den);
                }
                other => panic!("kind changed shape: {other:?}"),
            }
        }
    }

    #[test]
    fn corrupt_cache_bodies_are_structured_errors() {
        let g = metro_ring(6);
        let fp = g.fingerprint();
        let path = graphkit::alg::shortest_st_path(&g, 0, 2).unwrap();
        let good = cache_artifact(
            fp,
            &ArtifactKind::Path {
                source: 0,
                target: 2,
            },
            &CacheValue::Path(Some(path)),
        );
        // Truncations never panic.
        for cut in 0..good.body.len() {
            let mut a = good.clone();
            a.body.truncate(cut);
            assert!(cache_entry_from(&a, &g).is_err(), "cut {cut}");
        }
        // A lying "unreachable" entry is rejected: the pair is reachable.
        let lie = cache_artifact(
            fp,
            &ArtifactKind::Path {
                source: 0,
                target: 2,
            },
            &CacheValue::Path(None),
        );
        assert!(matches!(
            cache_entry_from(&lie, &g),
            Err(ArtifactError::Malformed(_))
        ));
        // Unknown entry codes are structured errors.
        let mut a = good.clone();
        a.body[8] = 200;
        assert!(matches!(
            cache_entry_from(&a, &g),
            Err(ArtifactError::Malformed(_))
        ));
        // Wrong section tag is WrongKind.
        let mut a = good.clone();
        a.kind = TAG_DISTS;
        assert!(matches!(
            cache_entry_from(&a, &g),
            Err(ArtifactError::WrongKind { .. })
        ));
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("rpaths-artifacts-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("solve.snap");
        let g = metro_ring(8);
        let mut net = Network::new(&g);
        let (tree, _) = build_bfs_tree(&mut net, 0).unwrap();
        let dists = vec![Dist::new(3), Dist::INF];
        save(
            &path,
            &g,
            vec![tree_artifact("bfs/0", &tree), dists_artifact("ans", &dists)],
        )
        .unwrap();
        let snap = load(&path).unwrap().expect_complete("artifacts");
        assert_eq!(snap.graph.to_snapshot(), g.to_snapshot());
        assert_eq!(snap.artifacts.len(), 2);
        assert_eq!(tree_from(&snap.artifacts[0]).unwrap().depth, tree.depth);
        assert_eq!(dists_from(&snap.artifacts[1]).unwrap(), dists);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
