//! Problem instances: a graph plus a validated shortest path `P`.

use std::fmt;

use graphkit::alg::{shortest_st_path, undirected_diameter};
use graphkit::{DiGraph, Dist, EdgeId, NodeId, PathError, StPath};

/// Errors raised when building an [`Instance`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InstanceError {
    /// `t` is unreachable from `s`, so no path `P` exists.
    Unreachable {
        /// Requested source.
        s: NodeId,
        /// Requested target.
        t: NodeId,
    },
    /// The supplied path is invalid or not shortest.
    BadPath(PathError),
    /// The communication graph is disconnected; the CONGEST model (and
    /// the paper's `D`) requires connectivity.
    Disconnected,
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::Unreachable { s, t } => {
                write!(f, "target {t} is unreachable from source {s}")
            }
            InstanceError::BadPath(e) => write!(f, "invalid input path: {e}"),
            InstanceError::Disconnected => {
                write!(f, "underlying undirected graph must be connected")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

impl From<PathError> for InstanceError {
    fn from(e: PathError) -> InstanceError {
        InstanceError::BadPath(e)
    }
}

/// A replacement-paths problem instance: the graph `G`, the source `s`,
/// the target `t`, and the given shortest path `P` (Section 2 of the
/// paper).
///
/// The constructor validates everything the problem definition requires:
/// `P` is a shortest `s`-`t` path and the communication graph is
/// connected. Derived quantities that the algorithms repeatedly need
/// (path index of each vertex, prefix/suffix distances, the undirected
/// diameter `D`) are precomputed here; the *distributed acquisition* of
/// the per-vertex knowledge is [`crate::knowledge`] (Lemma 2.5).
#[derive(Clone, Debug)]
pub struct Instance<'g> {
    /// The input graph.
    pub graph: &'g DiGraph,
    /// The given shortest path `P`.
    pub path: StPath,
    /// `path_index[v] = Some(i)` iff `v = v_i` on `P`.
    pub path_index: Vec<Option<usize>>,
    /// `is_path_edge[e]` iff edge `e` is one of `P`'s edges.
    pub is_path_edge: Vec<bool>,
    /// `prefix[i] = |P[s, v_i]|` (equals `i` in unweighted graphs).
    pub prefix: Vec<Dist>,
    /// `suffix[i] = |P[v_i, t]|`.
    pub suffix: Vec<Dist>,
    /// Undirected diameter of the communication graph.
    pub diameter: usize,
}

impl<'g> Instance<'g> {
    /// Builds an instance from an explicit path.
    pub fn new(graph: &'g DiGraph, path: StPath) -> Result<Instance<'g>, InstanceError> {
        let diameter = undirected_diameter(graph).ok_or(InstanceError::Disconnected)?;
        Instance::with_parts(graph, path, diameter)
    }

    /// Builds an instance from parts a solver session already holds: the
    /// path is still re-validated as shortest, but the (expensive)
    /// undirected diameter is injected from the session's artifact cache
    /// instead of being recomputed per instance.
    pub(crate) fn with_parts(
        graph: &'g DiGraph,
        path: StPath,
        diameter: usize,
    ) -> Result<Instance<'g>, InstanceError> {
        path.validate_shortest(graph)?;
        debug_assert_eq!(undirected_diameter(graph), Some(diameter));
        let mut path_index = vec![None; graph.node_count()];
        for (i, &v) in path.nodes().iter().enumerate() {
            path_index[v] = Some(i);
        }
        let mut is_path_edge = vec![false; graph.edge_count()];
        for &e in path.edges() {
            is_path_edge[e] = true;
        }
        let h = path.hops();
        let prefix: Vec<Dist> = (0..=h).map(|i| path.prefix_length(graph, i)).collect();
        let suffix: Vec<Dist> = (0..=h).map(|i| path.suffix_length(graph, i)).collect();
        Ok(Instance {
            graph,
            path,
            path_index,
            is_path_edge,
            prefix,
            suffix,
            diameter,
        })
    }

    /// Builds an instance by extracting a shortest `s`-`t` path.
    pub fn from_endpoints(
        graph: &'g DiGraph,
        s: NodeId,
        t: NodeId,
    ) -> Result<Instance<'g>, InstanceError> {
        let path = shortest_st_path(graph, s, t).ok_or(InstanceError::Unreachable { s, t })?;
        Instance::new(graph, path)
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of path hops `h_st`.
    #[inline]
    pub fn hops(&self) -> usize {
        self.path.hops()
    }

    /// The source `s`.
    #[inline]
    pub fn s(&self) -> NodeId {
        self.path.source()
    }

    /// The target `t`.
    #[inline]
    pub fn t(&self) -> NodeId {
        self.path.target()
    }

    /// Returns `true` when `e` may be used by detours (i.e. `e ∉ P`).
    #[inline]
    pub fn in_g_minus_p(&self, e: EdgeId) -> bool {
        !self.is_path_edge[e]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::gen::{parallel_lane, planted_path_digraph};
    use graphkit::GraphBuilder;

    #[test]
    fn from_endpoints_builds_valid_instance() {
        let (g, s, t) = parallel_lane(10, 2, 2);
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        assert_eq!(inst.hops(), 10);
        assert_eq!(inst.s(), s);
        assert_eq!(inst.t(), t);
        assert_eq!(inst.path_index[s], Some(0));
        assert_eq!(inst.path_index[t], Some(10));
        assert_eq!(inst.prefix[4], Dist::new(4));
        assert_eq!(inst.suffix[4], Dist::new(6));
    }

    #[test]
    fn path_edge_classification() {
        let (g, s, t) = planted_path_digraph(30, 8, 40, 1);
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        let on_path: usize = inst.is_path_edge.iter().filter(|&&b| b).count();
        assert_eq!(on_path, 8);
        for &e in inst.path.edges() {
            assert!(!inst.in_g_minus_p(e));
        }
    }

    #[test]
    fn unreachable_target_rejected() {
        let mut b = GraphBuilder::new(3);
        b.add_arc(0, 1);
        b.add_arc(2, 1);
        let g = b.build();
        assert!(matches!(
            Instance::from_endpoints(&g, 0, 2),
            Err(InstanceError::Unreachable { .. })
        ));
    }

    #[test]
    fn non_shortest_path_rejected() {
        let mut b = GraphBuilder::new(3);
        b.add_arc(0, 1);
        b.add_arc(1, 2);
        b.add_arc(0, 2);
        let g = b.build();
        let p = StPath::from_nodes(&g, &[0, 1, 2]).unwrap();
        assert!(matches!(
            Instance::new(&g, p),
            Err(InstanceError::BadPath(PathError::NotShortest { .. }))
        ));
    }

    #[test]
    fn disconnected_graph_rejected() {
        let mut b = GraphBuilder::new(4);
        b.add_arc(0, 1);
        b.add_arc(2, 3);
        let g = b.build();
        let p = StPath::from_nodes(&g, &[0, 1]).unwrap();
        assert!(matches!(
            Instance::new(&g, p),
            Err(InstanceError::Disconnected)
        ));
    }
}
