//! Lemma 2.5: acquiring the per-vertex knowledge of `(P, s, t)`.
//!
//! The problem's *initial knowledge* is minimal (Section 2): each path
//! vertex knows only its incident path edges, `s` knows it is the source,
//! `t` knows it is the target. This module implements the paper's
//! `eO(√n + D)`-round algorithm that lets every `v_i ∈ P` learn its index
//! `i`, `|P[s, v_i]|`, and `|P[v_i, t]|`:
//!
//! 1. Sample each path vertex with probability `1/√n` (forcing `s` and
//!    `t`).
//! 2. Run *waves* along `P` from every sampled vertex in both directions;
//!    a wave accumulates hops and weight and is absorbed by the next
//!    sampled vertex. Takes `O(max gap)` rounds, which is `O(√n log n)`
//!    w.h.p. by a Chernoff bound.
//! 3. Every sampled vertex broadcasts its chain link (predecessor id, gap
//!    hops, gap weight); `s` and `t` announce themselves. `O(√n + D)`
//!    rounds by Lemma 2.4.
//! 4. Each path vertex locally reconstructs the sampled chain and splices
//!    in its own wave offsets.

use congest::bfs_tree::BfsTree;
use congest::broadcast::broadcast;
use congest::{word_bits, Network, NodeCtx, Scheduling, ShardedProtocol};
use graphkit::{Dist, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Instance, Params};

/// What every path vertex knows after Lemma 2.5.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathKnowledge {
    /// `index[i] = i` for each path position (trivially, but produced by
    /// the distributed computation and cross-checked in tests).
    pub index: Vec<usize>,
    /// `dist_s[i] = |P[s, v_i]|`.
    pub dist_s: Vec<Dist>,
    /// `dist_t[i] = |P[v_i, t]|`.
    pub dist_t: Vec<Dist>,
}

#[derive(Clone, Copy, Debug)]
struct Wave {
    origin: NodeId,
    hops: u64,
    weight: u64,
}

/// Wave state at one path vertex.
#[derive(Clone, Copy, Debug, Default)]
struct WaveState {
    from_left: Option<Wave>,
    from_right: Option<Wave>,
    /// Waves to forward in the next round.
    forward_right: Option<Wave>,
    forward_left: Option<Wave>,
}

/// Read-only state every node consults: the instance and the sampled
/// positions.
struct WaveShared<'i> {
    inst: &'i Instance<'i>,
    sampled: Vec<bool>,
}

struct WaveProtocol<'i> {
    shared: WaveShared<'i>,
    /// One [`WaveState`] per *node* (meaningful only at path vertices);
    /// sharded: the engine steps disjoint slices from worker threads.
    nodes: Vec<WaveState>,
}

impl<'i> ShardedProtocol for WaveProtocol<'i> {
    type Msg = Wave;
    type Node = WaveState;
    type Shared = WaveShared<'i>;

    fn msg_bits(_: &Self::Shared, m: &Wave) -> u64 {
        word_bits(m.origin as u64) + word_bits(m.hops) + word_bits(m.weight)
    }

    fn shared(&self) -> &Self::Shared {
        &self.shared
    }

    fn split(&mut self) -> (&Self::Shared, &mut [Self::Node]) {
        (&self.shared, &mut self.nodes)
    }

    fn step_node(shared: &Self::Shared, node: &mut WaveState, ctx: &mut NodeCtx<'_, Wave>) {
        let v = ctx.node;
        let inst = shared.inst;
        let Some(pos) = inst.path_index[v] else {
            return;
        };
        let h = inst.hops();
        // Identify this vertex's path ports by matching link ids.
        let left_link = (pos > 0).then(|| inst.path.edge(pos - 1));
        let right_link = (pos < h).then(|| inst.path.edge(pos));
        let port_for = |ctx: &NodeCtx<'_, Wave>, link: usize| -> u32 {
            ctx.ports()
                .iter()
                .position(|p| p.link == link)
                .expect("path edge must be incident") as u32
        };
        // Receive waves.
        for &(port, wave) in ctx.inbox() {
            let link = ctx.ports()[port as usize].link;
            let w_edge = ctx.ports()[port as usize].weight;
            let arrived = Wave {
                origin: wave.origin,
                hops: wave.hops + 1,
                weight: wave.weight + w_edge,
            };
            if Some(link) == left_link {
                node.from_left = Some(arrived);
                if !shared.sampled[pos] {
                    node.forward_right = Some(arrived);
                }
            } else if Some(link) == right_link {
                node.from_right = Some(arrived);
                if !shared.sampled[pos] {
                    node.forward_left = Some(arrived);
                }
            }
        }
        // Kick off waves from sampled vertices.
        if ctx.round == 0 && shared.sampled[pos] {
            let seed = Wave {
                origin: v,
                hops: 0,
                weight: 0,
            };
            node.forward_right = Some(seed);
            node.forward_left = Some(seed);
        }
        // Forward pending waves.
        if let Some(wave) = node.forward_right.take() {
            if let Some(link) = right_link {
                ctx.send(port_for(ctx, link), wave);
            }
        }
        if let Some(wave) = node.forward_left.take() {
            if let Some(link) = left_link {
                ctx.send(port_for(ctx, link), wave);
            }
        }
    }

    // Waves are seeded in round 0 and then advance strictly on receipt
    // (forwarded the same round they arrive), so receipt-driven stepping
    // is exact.
    fn scheduling(&self) -> Scheduling {
        Scheduling::ActiveSet
    }
}

/// A broadcast item describing the sampled chain.
#[derive(Clone, Copy, Debug)]
enum ChainItem {
    /// "`s` is this node."
    Source(NodeId),
    /// "`t` is this node."
    Target(NodeId),
    /// "the previous sampled vertex is `from`, I am `to`, separated by
    /// `hops` hops of total weight `weight`."
    Link {
        from: NodeId,
        to: NodeId,
        hops: u64,
        weight: u64,
    },
}

fn chain_item_bits(item: &ChainItem) -> u64 {
    match item {
        ChainItem::Source(v) | ChainItem::Target(v) => 2 + word_bits(*v as u64),
        ChainItem::Link {
            from,
            to,
            hops,
            weight,
        } => {
            2 + word_bits(*from as u64)
                + word_bits(*to as u64)
                + word_bits(*hops)
                + word_bits(*weight)
        }
    }
}

/// Runs Lemma 2.5 and returns what every path vertex learned.
///
/// The result is produced *by the distributed protocol*; callers (and
/// tests) can compare it against [`Instance::prefix`] / suffix to confirm
/// the protocol is right. Rounds are charged to `net`.
pub fn acquire(
    net: &mut Network<'_>,
    inst: &Instance<'_>,
    params: &Params,
    tree: &BfsTree,
) -> PathKnowledge {
    let n = inst.n();
    let h = inst.hops();
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x00fe_ed25);
    let p_sample = 1.0 / (n as f64).sqrt();
    let mut sampled = vec![false; h + 1];
    sampled[0] = true;
    sampled[h] = true;
    for s in sampled.iter_mut().take(h).skip(1) {
        *s = rng.gen_bool(p_sample);
    }
    // Phase 1: waves along P (on the sharded-parallel engine path).
    let mut proto = WaveProtocol {
        shared: WaveShared {
            inst,
            sampled: sampled.clone(),
        },
        nodes: vec![WaveState::default(); n],
    };
    let budget = 4 * (h as u64 + 4) * params.budget_factor;
    net.run_until_quiet_par("lemma2.5/waves", &mut proto, budget)
        .expect("waves terminate within the path length");
    // Per path position: the wave state of the vertex at that position.
    let state: Vec<WaveState> = (0..=h)
        .map(|pos| proto.nodes[inst.path.node(pos)])
        .collect();

    // Phase 2: sampled vertices publish their chain links.
    let mut items: Vec<Vec<ChainItem>> = vec![Vec::new(); n];
    for pos in 0..=h {
        if !sampled[pos] {
            continue;
        }
        let v = inst.path.node(pos);
        if pos == 0 {
            items[v].push(ChainItem::Source(v));
        }
        if pos == h {
            items[v].push(ChainItem::Target(v));
        }
        if pos > 0 {
            let wave = state[pos]
                .from_left
                .expect("sampled vertex absorbed the left wave");
            items[v].push(ChainItem::Link {
                from: wave.origin,
                to: v,
                hops: wave.hops,
                weight: wave.weight,
            });
        }
    }
    let (delivered, _) = broadcast(net, tree, items, chain_item_bits, "lemma2.5/broadcast");

    // Phase 3: local reconstruction at each path vertex. All vertices
    // received the same stream; reconstruct once and read off per-vertex
    // values (each step uses only information local to that vertex).
    let stream = &delivered[inst.s()];
    let mut source = None;
    let mut next_link = std::collections::HashMap::new();
    for item in stream {
        match *item {
            ChainItem::Source(v) => source = Some(v),
            ChainItem::Target(_) => {}
            ChainItem::Link {
                from,
                to,
                hops,
                weight,
            } => {
                next_link.insert(from, (to, hops, weight));
            }
        }
    }
    let source = source.expect("source announced itself");
    // Walk the chain, assigning cumulative index/weight to sampled nodes.
    let mut chain_pos = std::collections::HashMap::new();
    let mut cur = source;
    let (mut ch, mut cw) = (0u64, 0u64);
    chain_pos.insert(cur, (ch, cw));
    while let Some(&(to, hops, weight)) = next_link.get(&cur) {
        ch += hops;
        cw += weight;
        chain_pos.insert(to, (ch, cw));
        cur = to;
    }
    let total_hops = ch;
    let total_weight = cw;
    assert_eq!(total_hops as usize, h, "chain must span the whole path");

    let mut index = vec![0usize; h + 1];
    let mut dist_s = vec![Dist::ZERO; h + 1];
    let mut dist_t = vec![Dist::ZERO; h + 1];
    for pos in 0..=h {
        let v = inst.path.node(pos);
        let (i, w) = if sampled[pos] {
            *chain_pos.get(&v).expect("sampled vertex on chain")
        } else {
            let wave = state[pos]
                .from_left
                .expect("every path vertex is reached by a left wave");
            let &(oi, ow) = chain_pos
                .get(&wave.origin)
                .expect("wave origin is a sampled chain vertex");
            (oi + wave.hops, ow + wave.weight)
        };
        index[pos] = i as usize;
        dist_s[pos] = Dist::new(w);
        dist_t[pos] = Dist::new(total_weight - w);
    }
    PathKnowledge {
        index,
        dist_s,
        dist_t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::bfs_tree::build_bfs_tree;
    use graphkit::alg::shortest_st_path;
    use graphkit::gen::{parallel_lane, planted_path_digraph, random_weighted_digraph};

    fn check(inst: &Instance<'_>, params: &Params) {
        let mut net = Network::new(inst.graph);
        let (tree, _) = build_bfs_tree(&mut net, inst.s()).unwrap();
        let know = acquire(&mut net, inst, params, &tree);
        let h = inst.hops();
        assert_eq!(know.index, (0..=h).collect::<Vec<_>>());
        assert_eq!(know.dist_s, inst.prefix);
        assert_eq!(know.dist_t, inst.suffix);
    }

    #[test]
    fn unweighted_knowledge_matches_instance() {
        let (g, s, t) = planted_path_digraph(80, 25, 150, 7);
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        check(&inst, &Params::for_instance(&inst));
    }

    #[test]
    fn weighted_knowledge_matches_instance() {
        let g = random_weighted_digraph(60, 150, 20, 3);
        let (s, t) = graphkit::gen::random_reachable_pair(&g, 5).unwrap();
        let p = shortest_st_path(&g, s, t).unwrap();
        if p.hops() < 2 {
            return; // trivial path; nothing to exercise
        }
        let inst = Instance::new(&g, p).unwrap();
        check(&inst, &Params::for_instance(&inst));
    }

    #[test]
    fn long_path_with_sparse_sampling() {
        let (g, s, t) = parallel_lane(60, 10, 1);
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        check(&inst, &Params::for_instance(&inst).with_seed(99));
    }

    #[test]
    fn rounds_scale_with_gap_plus_broadcast() {
        let (g, s, t) = parallel_lane(40, 5, 1);
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        let params = Params::for_instance(&inst);
        let mut net = Network::new(inst.graph);
        let (tree, _) = build_bfs_tree(&mut net, inst.s()).unwrap();
        let _ = acquire(&mut net, &inst, &params, &tree);
        let rounds = net.metrics().rounds();
        // Wave phase <= h, broadcast <= O(#sampled + D); very loose cap.
        assert!(rounds <= 4 * (40 + 40 + inst.diameter as u64) + 64);
    }
}
