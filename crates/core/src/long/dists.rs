//! Lemmas 5.4 and 5.6: distances between landmarks and from/to every
//! vertex, in `G \ P`.
//!
//! ζ-hop BFS from every landmark (both directions), one broadcast of the
//! `|L|²` hop-bounded pairwise distances, and a local min-plus closure.
//! Because w.h.p. every shortest path in `G \ P` has a landmark in each
//! ζ-vertex stretch (Lemma 5.3), composing hop-bounded pieces through the
//! closure recovers the *exact* unbounded distances.

use congest::bfs_tree::BfsTree;
use congest::broadcast::broadcast;
use congest::multi_bfs::{default_budget, multi_source_bfs, MultiBfsConfig};
use congest::{word_bits, Network};
use graphkit::{Dist, NodeId};

use crate::{Instance, Params};

/// Everything Lemmas 5.4 + 5.6 deliver.
#[derive(Clone, Debug)]
pub struct LandmarkDistances {
    /// The landmark vertices, in index order.
    pub landmarks: Vec<NodeId>,
    /// `from_landmark[j][v]` = `|l_j v|` in `G \ P` (exact w.h.p.). Known
    /// locally at `v`.
    pub from_landmark: Vec<Vec<Dist>>,
    /// `to_landmark[j][v]` = `|v l_j|` in `G \ P` (exact w.h.p.). Known
    /// locally at `v`.
    pub to_landmark: Vec<Vec<Dist>>,
    /// `closure[j][k]` = `|l_j l_k|` in `G \ P` (exact w.h.p.). Known
    /// globally after the broadcast.
    pub closure: Vec<Vec<Dist>>,
}

/// Min-plus (Floyd–Warshall) closure of a landmark distance matrix.
pub fn min_plus_closure(mut mat: Vec<Vec<Dist>>) -> Vec<Vec<Dist>> {
    let k_n = mat.len();
    for via in 0..k_n {
        for a in 0..k_n {
            if !mat[a][via].is_finite() {
                continue;
            }
            for b in 0..k_n {
                let cand = mat[a][via] + mat[via][b];
                if cand < mat[a][b] {
                    mat[a][b] = cand;
                }
            }
        }
    }
    mat
}

/// Runs Lemmas 5.4 and 5.6 and returns the composed distance tables.
pub fn landmark_distances(
    net: &mut Network<'_>,
    inst: &Instance<'_>,
    params: &Params,
    landmarks: &[NodeId],
    tree: &BfsTree,
) -> LandmarkDistances {
    let k = landmarks.len();
    let zeta = params.zeta as u64;
    let budget = default_budget(k, zeta).max(8 * net.node_count() as u64) * params.budget_factor;

    // ζ-hop BFS from all landmarks, forwards and backwards, in G \ P.
    let fwd_cfg = MultiBfsConfig {
        sources: landmarks,
        max_dist: zeta,
        reverse: false,
        delays: None,
    };
    let (fwd_hb, _) = multi_source_bfs(
        net,
        &fwd_cfg,
        |e| inst.in_g_minus_p(e),
        "long/bfs-from-landmarks",
        budget,
    )
    .expect("landmark BFS quiesces");
    let bwd_cfg = MultiBfsConfig {
        sources: landmarks,
        max_dist: zeta,
        reverse: true,
        delays: None,
    };
    let (bwd_hb, _) = multi_source_bfs(
        net,
        &bwd_cfg,
        |e| inst.in_g_minus_p(e),
        "long/bfs-to-landmarks",
        budget,
    )
    .expect("landmark BFS quiesces");
    compose_from_tables(net, inst, landmarks, fwd_hb, bwd_hb, tree)
}

/// The broadcast + closure + composition steps of Lemmas 5.4 / 5.6, given
/// precomputed hop-bounded distance tables.
///
/// Factored out so the weighted algorithm (Proposition 7.11) can feed in
/// *approximate scaled* tables from the rounding BFS and reuse the rest
/// verbatim.
pub fn compose_from_tables(
    net: &mut Network<'_>,
    inst: &Instance<'_>,
    landmarks: &[NodeId],
    fwd_hb: Vec<Vec<Dist>>,
    bwd_hb: Vec<Vec<Dist>>,
    tree: &BfsTree,
) -> LandmarkDistances {
    let k = landmarks.len();
    // Lemma 5.4: broadcast the |L|² hop-bounded pairwise distances (each
    // value originates at the landmark that *observed* it).
    let mut items: Vec<Vec<(u32, u32, u64)>> = vec![Vec::new(); inst.n()];
    for (j, row) in fwd_hb.iter().enumerate() {
        for (kk, &lk) in landmarks.iter().enumerate() {
            if let Some(d) = row[lk].finite() {
                items[lk].push((j as u32, kk as u32, d));
            }
        }
    }
    broadcast(
        net,
        tree,
        items,
        |&(j, kk, d)| word_bits(j as u64) + word_bits(kk as u64) + word_bits(d),
        "long/broadcast-landmark-pairs",
    );
    // All nodes now hold the same stream; build the closure once.
    let mut pairs = vec![vec![Dist::INF; k]; k];
    for (j, row) in fwd_hb.iter().enumerate() {
        pairs[j][j] = Dist::ZERO;
        for (kk, &lk) in landmarks.iter().enumerate() {
            pairs[j][kk] = pairs[j][kk].min(row[lk]);
        }
    }
    let closure = min_plus_closure(pairs);

    // Lemma 5.6 composition, locally at every vertex: stitch the
    // hop-bounded first leg to the closure.
    let n = inst.n();
    let mut from_landmark = fwd_hb;
    let mut to_landmark = bwd_hb;
    for v in 0..n {
        for j in 0..k {
            let mut best_from = from_landmark[j][v];
            let mut best_to = to_landmark[j][v];
            for mid in 0..k {
                best_from = best_from.min(closure[j][mid] + from_landmark[mid][v]);
                best_to = best_to.min(to_landmark[mid][v] + closure[mid][j]);
            }
            from_landmark[j][v] = best_from;
            to_landmark[j][v] = best_to;
        }
    }
    // One more pass is unnecessary: closure already chains landmarks.
    LandmarkDistances {
        landmarks: landmarks.to_vec(),
        from_landmark,
        to_landmark,
        closure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::bfs_tree::build_bfs_tree;
    use graphkit::alg::{bfs, bfs_reverse};
    use graphkit::gen::{parallel_lane, planted_path_digraph};

    fn exact_tables(inst: &Instance<'_>, landmarks: &[NodeId]) -> (Vec<Vec<Dist>>, Vec<Vec<Dist>>) {
        let fwd = landmarks
            .iter()
            .map(|&l| bfs(inst.graph, l, |e| inst.in_g_minus_p(e)))
            .collect();
        let bwd = landmarks
            .iter()
            .map(|&l| bfs_reverse(inst.graph, l, |e| inst.in_g_minus_p(e)))
            .collect();
        (fwd, bwd)
    }

    #[test]
    fn full_landmarks_give_exact_unbounded_distances() {
        // With every vertex a landmark and ζ >= 1, the closure must
        // recover exact distances in G \ P regardless of path length.
        let (g, s, t) = parallel_lane(12, 3, 2);
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        let mut params = Params::with_zeta(inst.n(), 2);
        params.landmark_prob = 1.0;
        let landmarks: Vec<NodeId> = inst.graph.nodes().collect();
        let mut net = Network::new(inst.graph);
        let (tree, _) = build_bfs_tree(&mut net, inst.s()).unwrap();
        let ld = landmark_distances(&mut net, &inst, &params, &landmarks, &tree);
        let (fwd, bwd) = exact_tables(&inst, &landmarks);
        assert_eq!(ld.from_landmark, fwd);
        assert_eq!(ld.to_landmark, bwd);
    }

    #[test]
    fn sparse_landmarks_with_large_zeta_are_exact() {
        // ζ >= n: the hop bound never binds, so hop-bounded BFS is exact
        // even before composition.
        for seed in 0..4 {
            let (g, s, t) = planted_path_digraph(36, 10, 80, seed);
            let inst = Instance::from_endpoints(&g, s, t).unwrap();
            let mut params = Params::with_zeta(inst.n(), inst.n());
            params.landmark_prob = 0.3;
            params.seed = seed;
            let landmarks = crate::long::landmarks::sample(&inst, &params);
            if landmarks.is_empty() {
                continue;
            }
            let mut net = Network::new(inst.graph);
            let (tree, _) = build_bfs_tree(&mut net, inst.s()).unwrap();
            let ld = landmark_distances(&mut net, &inst, &params, &landmarks, &tree);
            let (fwd, bwd) = exact_tables(&inst, &landmarks);
            assert_eq!(ld.from_landmark, fwd, "seed {seed}");
            assert_eq!(ld.to_landmark, bwd, "seed {seed}");
        }
    }

    #[test]
    fn closure_is_min_plus() {
        let inf = Dist::INF;
        let d = |x| Dist::new(x);
        let mat = vec![
            vec![d(0), d(5), inf],
            vec![inf, d(0), d(2)],
            vec![d(1), inf, d(0)],
        ];
        let c = min_plus_closure(mat);
        assert_eq!(c[0][2], d(7));
        assert_eq!(c[2][1], d(6)); // 2 -> 0 -> 1
        assert_eq!(c[1][0], d(3)); // 1 -> 2 -> 0
    }

    #[test]
    fn closure_distances_never_underestimate() {
        // Composed values are always realizable path lengths: compare
        // against the exact oracle from every landmark.
        let (g, s, t) = parallel_lane(20, 5, 2);
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        let mut params = Params::with_zeta(inst.n(), 4);
        params.landmark_prob = 0.5;
        let landmarks = crate::long::landmarks::sample(&inst, &params);
        let mut net = Network::new(inst.graph);
        let (tree, _) = build_bfs_tree(&mut net, inst.s()).unwrap();
        let ld = landmark_distances(&mut net, &inst, &params, &landmarks, &tree);
        let (fwd, bwd) = exact_tables(&inst, &landmarks);
        for j in 0..landmarks.len() {
            for v in inst.graph.nodes() {
                assert!(ld.from_landmark[j][v] >= fwd[j][v]);
                assert!(ld.to_landmark[j][v] >= bwd[j][v]);
            }
        }
    }
}
