//! Lemmas 5.7–5.9: checkpoints, in-segment pipelining, and the broadcast
//! combine.
//!
//! The path is cut at checkpoints every ζ hops. Within each segment a
//! staggered prefix sweep (Lemma 5.7) computes the localized values
//! `Mᵢ[l_j, v]`; the per-segment summaries are broadcast (Lemma 5.8,
//! `O(ℓ·|L|) = eO(n^{2/3})` messages) and every vertex combines the two.
//! The mirrored computation towards `t` (Lemma 5.9) runs on backward
//! lanes and finishes with an `O(|L|)`-round shift so that `v_i` (rather
//! than `v_{i+1}`) holds the landmark-to-`t` values.

use congest::bfs_tree::BfsTree;
use congest::broadcast::broadcast;
use congest::pipeline::{prefix_sweep, Lane};
use congest::{word_bits, Network};
use graphkit::Dist;

use crate::long::dists::LandmarkDistances;
use crate::{Instance, Params};

/// Checkpoint positions: `0, ζ, 2ζ, ..., h` (Section 5). Always includes
/// both endpoints; consecutive checkpoints are at most ζ apart.
pub fn checkpoints(h: usize, spacing: usize) -> Vec<usize> {
    assert!(spacing >= 1);
    let mut cps: Vec<usize> = (0..h).step_by(spacing).collect();
    cps.push(h);
    cps
}

fn forward_lanes(inst: &Instance<'_>, cps: &[usize]) -> Vec<Lane> {
    cps.windows(2)
        .map(|w| {
            let (a, b) = (w[0], w[1]);
            Lane::forward(
                inst.path.nodes()[a..=b].to_vec(),
                inst.path.edges()[a..b].to_vec(),
            )
        })
        .collect()
}

fn backward_lanes(inst: &Instance<'_>, cps: &[usize]) -> Vec<Lane> {
    cps.windows(2)
        .map(|w| {
            let (a, b) = (w[0], w[1]);
            let mut nodes = inst.path.nodes()[a..=b].to_vec();
            let mut links = inst.path.edges()[a..b].to_vec();
            nodes.reverse();
            links.reverse();
            Lane::backward(nodes, links)
        })
        .collect()
}

fn bits_of_summary(&(seg, j, d): &(u32, u32, u64)) -> u64 {
    word_bits(seg as u64) + word_bits(j as u64) + word_bits(d)
}

/// Lemma 5.8 (Part 1): returns `out[i][j] = |s·l_j ⋄ P[v_i, t]|` for
/// every edge index `i` and landmark `j`, i.e.
/// `min over u ≤ v_i of (|s·u| + |u·l_j|_{G\P})`.
pub fn distances_from_s(
    net: &mut Network<'_>,
    inst: &Instance<'_>,
    params: &Params,
    ld: &LandmarkDistances,
    tree: &BfsTree,
    prefix: &[Dist],
) -> Vec<Vec<Dist>> {
    let h = inst.hops();
    let k = ld.landmarks.len();
    let cps = checkpoints(h, params.zeta);
    let lanes = forward_lanes(inst, &cps);
    // Lemma 5.7: in-segment prefix sweeps, one job per landmark.
    let input = |lane: usize, pos: usize, j: usize| -> Dist {
        let global = cps[lane] + pos;
        let v = inst.path.node(global);
        prefix[global] + ld.to_landmark[j][v]
    };
    let (m_seg, _) = prefix_sweep(net, &lanes, k, &input, "long/sweep-from-s");
    // Lemma 5.8: broadcast each segment's value at its right checkpoint.
    let mut items: Vec<Vec<(u32, u32, u64)>> = vec![Vec::new(); inst.n()];
    for (li, lane) in lanes.iter().enumerate() {
        let last = lane.nodes.len() - 1;
        let origin = lane.nodes[last];
        for j in 0..k {
            if let Some(d) = m_seg[li][last][j].finite() {
                items[origin].push((li as u32, j as u32, d));
            }
        }
    }
    let (streams, _) = broadcast(net, tree, items, bits_of_summary, "long/broadcast-from-s");
    let stream = &streams[inst.s()];
    // best_before[x][j] = min over segments < x of the broadcast summary.
    let ell = lanes.len();
    let mut summary = vec![vec![Dist::INF; k]; ell];
    for &(seg, j, d) in stream {
        let cell = &mut summary[seg as usize][j as usize];
        *cell = (*cell).min(Dist::new(d));
    }
    let mut best_before = vec![vec![Dist::INF; k]; ell + 1];
    for x in 0..ell {
        for j in 0..k {
            best_before[x + 1][j] = best_before[x][j].min(summary[x][j]);
        }
    }
    // Local combine at each v_i.
    (0..h)
        .map(|i| {
            let lane = (i / params.zeta).min(ell - 1);
            let pos = i - cps[lane];
            (0..k)
                .map(|j| m_seg[lane][pos][j].min(best_before[lane][j]))
                .collect()
        })
        .collect()
}

/// Lemma 5.9 (Part 2): returns `out[i][j] = |l_j·t ⋄ P[s, v_{i+1}]|`,
/// *already shifted* so that index `i` holds the value `v_i` needs, i.e.
/// `min over u ≥ v_{i+1} of (|l_j·u|_{G\P} + |u·t|)`.
pub fn distances_to_t(
    net: &mut Network<'_>,
    inst: &Instance<'_>,
    params: &Params,
    ld: &LandmarkDistances,
    tree: &BfsTree,
    suffix: &[Dist],
) -> Vec<Vec<Dist>> {
    let h = inst.hops();
    let k = ld.landmarks.len();
    let cps = checkpoints(h, params.zeta);
    let lanes = backward_lanes(inst, &cps);
    let ell = lanes.len();
    // Mirrored Lemma 5.7: suffix sweeps within each segment.
    let input = |lane: usize, pos: usize, j: usize| -> Dist {
        let global = cps[lane + 1] - pos;
        let v = inst.path.node(global);
        ld.from_landmark[j][v] + suffix[global]
    };
    let (m_seg, _) = prefix_sweep(net, &lanes, k, &input, "long/sweep-to-t");
    // Broadcast each segment's value at its *left* checkpoint (the lane's
    // last position).
    let mut items: Vec<Vec<(u32, u32, u64)>> = vec![Vec::new(); inst.n()];
    for (li, lane) in lanes.iter().enumerate() {
        let last = lane.nodes.len() - 1;
        let origin = lane.nodes[last];
        for j in 0..k {
            if let Some(d) = m_seg[li][last][j].finite() {
                items[origin].push((li as u32, j as u32, d));
            }
        }
    }
    let (streams, _) = broadcast(net, tree, items, bits_of_summary, "long/broadcast-to-t");
    let stream = &streams[inst.s()];
    let mut summary = vec![vec![Dist::INF; k]; ell];
    for &(seg, j, d) in stream {
        let cell = &mut summary[seg as usize][j as usize];
        *cell = (*cell).min(Dist::new(d));
    }
    // best_after[x][j] = min over segments > x.
    let mut best_after = vec![vec![Dist::INF; k]; ell + 1];
    for x in (0..ell).rev() {
        for j in 0..k {
            best_after[x][j] = best_after[x + 1][j].min(summary[x][j]);
        }
    }
    // N[p][j] for path positions p (what v_p knows).
    let n_at: Vec<Vec<Dist>> = (0..=h)
        .map(|p| {
            let lane = (p / params.zeta).min(ell - 1);
            let pos = cps[lane + 1] - p;
            (0..k)
                .map(|j| m_seg[lane][pos][j].min(best_after[lane + 1][j]))
                .collect()
        })
        .collect();
    // The O(|L|)-round shift: v_{i+1} hands its N row to v_i across the
    // path edge (one value per round, all edges in parallel).
    let shift_lanes: Vec<Lane> = (0..h)
        .map(|i| {
            Lane::backward(
                vec![inst.path.node(i + 1), inst.path.node(i)],
                vec![inst.path.edge(i)],
            )
        })
        .collect();
    let shift_input = |lane: usize, pos: usize, j: usize| -> Dist {
        if pos == 0 {
            n_at[lane + 1][j]
        } else {
            Dist::INF
        }
    };
    let (shifted, _) = prefix_sweep(net, &shift_lanes, k, &shift_input, "long/shift");
    (0..h).map(|i| shifted[i][1].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::long::landmarks;
    use congest::bfs_tree::build_bfs_tree;
    use graphkit::alg::{bfs, bfs_reverse};
    use graphkit::gen::{parallel_lane, planted_path_digraph};
    use graphkit::NodeId;

    #[test]
    fn checkpoint_layout() {
        assert_eq!(checkpoints(10, 3), vec![0, 3, 6, 9, 10]);
        assert_eq!(checkpoints(6, 3), vec![0, 3, 6]);
        assert_eq!(checkpoints(2, 5), vec![0, 2]);
        assert_eq!(checkpoints(1, 1), vec![0, 1]);
    }

    /// Oracle for |s·l_j ⋄ P[v_i, t]| by direct minimization over exact
    /// distances in G \ P.
    fn oracle_m(inst: &Instance<'_>, lms: &[NodeId]) -> Vec<Vec<Dist>> {
        let exact: Vec<Vec<Dist>> = lms
            .iter()
            .map(|&l| bfs_reverse(inst.graph, l, |e| inst.in_g_minus_p(e)))
            .collect();
        (0..inst.hops())
            .map(|i| {
                lms.iter()
                    .enumerate()
                    .map(|(j, _)| {
                        (0..=i)
                            .map(|u| inst.prefix[u] + exact[j][inst.path.node(u)])
                            .min()
                            .unwrap_or(Dist::INF)
                    })
                    .collect()
            })
            .collect()
    }

    fn oracle_n(inst: &Instance<'_>, lms: &[NodeId]) -> Vec<Vec<Dist>> {
        let exact: Vec<Vec<Dist>> = lms
            .iter()
            .map(|&l| bfs(inst.graph, l, |e| inst.in_g_minus_p(e)))
            .collect();
        let h = inst.hops();
        (0..h)
            .map(|i| {
                lms.iter()
                    .enumerate()
                    .map(|(j, _)| {
                        (i + 1..=h)
                            .map(|u| exact[j][inst.path.node(u)] + inst.suffix[u])
                            .min()
                            .unwrap_or(Dist::INF)
                    })
                    .collect()
            })
            .collect()
    }

    fn setup(h: usize, zeta: usize, seed: u64) -> (graphkit::DiGraph, usize, usize, Params) {
        let (g, s, t) = planted_path_digraph(3 * h + 10, h, 6 * h, seed);
        let params = Params::with_zeta(3 * h + 10, zeta);
        (g, s, t, params)
    }

    #[test]
    fn part1_matches_oracle_with_full_landmarks() {
        for seed in 0..4 {
            let (g, s, t, mut params) = setup(12, 4, seed);
            params.landmark_prob = 1.0;
            let inst = Instance::from_endpoints(&g, s, t).unwrap();
            let lms = landmarks::sample(&inst, &params);
            let mut net = Network::new(inst.graph);
            let (tree, _) = build_bfs_tree(&mut net, inst.s()).unwrap();
            let ld = crate::long::dists::landmark_distances(&mut net, &inst, &params, &lms, &tree);
            let got = distances_from_s(&mut net, &inst, &params, &ld, &tree, &inst.prefix);
            assert_eq!(got, oracle_m(&inst, &lms), "seed {seed}");
        }
    }

    #[test]
    fn part2_matches_oracle_with_full_landmarks() {
        for seed in 0..4 {
            let (g, s, t, mut params) = setup(12, 4, seed + 10);
            params.landmark_prob = 1.0;
            let inst = Instance::from_endpoints(&g, s, t).unwrap();
            let lms = landmarks::sample(&inst, &params);
            let mut net = Network::new(inst.graph);
            let (tree, _) = build_bfs_tree(&mut net, inst.s()).unwrap();
            let ld = crate::long::dists::landmark_distances(&mut net, &inst, &params, &lms, &tree);
            let got = distances_to_t(&mut net, &inst, &params, &ld, &tree, &inst.suffix);
            assert_eq!(got, oracle_n(&inst, &lms), "seed {seed}");
        }
    }

    #[test]
    fn segment_boundaries_are_covered() {
        // ζ = 1: every vertex is a checkpoint; stresses lane boundaries.
        let (g, s, t) = parallel_lane(6, 2, 1);
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        let mut params = Params::with_zeta(inst.n(), 1);
        params.landmark_prob = 1.0;
        let lms = landmarks::sample(&inst, &params);
        let mut net = Network::new(inst.graph);
        let (tree, _) = build_bfs_tree(&mut net, inst.s()).unwrap();
        let ld = crate::long::dists::landmark_distances(&mut net, &inst, &params, &lms, &tree);
        let got_m = distances_from_s(&mut net, &inst, &params, &ld, &tree, &inst.prefix);
        let got_n = distances_to_t(&mut net, &inst, &params, &ld, &tree, &inst.suffix);
        // ζ = 1 hop-bounds the landmark BFS to single edges; with every
        // vertex a landmark the closure still recovers exact distances.
        assert_eq!(got_m, oracle_m(&inst, &lms));
        assert_eq!(got_n, oracle_n(&inst, &lms));
    }
}
