//! Section 5: long-detour replacement paths (Proposition 5.1).
//!
//! Detours longer than ζ hops contain a landmark vertex w.h.p.
//! (Lemma 5.3), so the replacement length for edge `e = (v_i, v_{i+1})`
//! can be reconstructed as
//!
//! ```text
//! min over landmarks l of  |s·l ⋄ P[v_i, t]|  +  |l·t ⋄ P[s, v_{i+1}]|
//! ```
//!
//! The pipeline, per the paper:
//!
//! 1. [`landmarks`] — Definition 5.2 sampling.
//! 2. [`dists`] — Lemma 5.4 + 5.6: ζ-hop BFS from all landmarks in both
//!    directions of `G \ P`, a broadcast of the `|L|²` pairwise
//!    hop-bounded distances, and a local min-plus closure; afterwards
//!    every vertex knows its exact (w.h.p.) distance to and from every
//!    landmark in `G \ P`.
//! 3. [`segments`] — Lemmas 5.7–5.9: the path is cut into `O(n^{1/3})`
//!    segments at checkpoints; pipelined in-segment sweeps compute the
//!    "localized" prefix minima, segment summaries are broadcast
//!    (`O(n^{2/3})` messages), and a final `O(|L|)`-round shift moves the
//!    landmark-to-`t` values one hop left.
//!
//! The result is an upper bound on `|st ⋄ e|` that is exact (w.h.p.)
//! whenever some shortest replacement path for `e` has a long detour.

pub mod dists;
pub mod landmarks;
pub mod segments;

use congest::bfs_tree::BfsTree;
use congest::Network;
use graphkit::Dist;

use crate::{Instance, Params};

/// Proposition 5.1: per-edge upper bounds on `|st ⋄ e|`, exact (w.h.p.)
/// for edges whose best replacement uses a long detour.
///
/// Charges `eO(n^{2/3} + D)` rounds to `net` (with the paper's ζ).
pub fn solve_long(
    net: &mut Network<'_>,
    inst: &Instance<'_>,
    params: &Params,
    tree: &BfsTree,
) -> Vec<Dist> {
    let lm = landmarks::sample(inst, params);
    if lm.is_empty() {
        // No landmarks (possible only on tiny instances): no long-detour
        // candidates can be produced.
        return vec![Dist::INF; inst.hops()];
    }
    let ld = dists::landmark_distances(net, inst, params, &lm, tree);
    let m_table = segments::distances_from_s(net, inst, params, &ld, tree, &inst.prefix);
    let n_table = segments::distances_to_t(net, inst, params, &ld, tree, &inst.suffix);
    // Final local combine at each v_i (the n_table is already shifted so
    // that entry i holds the values of v_{i+1}).
    (0..inst.hops())
        .map(|i| {
            (0..lm.len())
                .map(|j| m_table[i][j] + n_table[i][j])
                .min()
                .unwrap_or(Dist::INF)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::bfs_tree::build_bfs_tree;
    use graphkit::alg::replacement_lengths;
    use graphkit::gen::{parallel_lane, planted_path_digraph};

    fn run_long(inst: &Instance<'_>, params: &Params) -> Vec<Dist> {
        let mut net = Network::new(inst.graph);
        let (tree, _) = build_bfs_tree(&mut net, inst.s()).unwrap();
        solve_long(&mut net, inst, params, &tree)
    }

    #[test]
    fn long_detours_found_on_lane() {
        // Lane detours have 2 + 4·3 = 14 hops; ζ = 4 makes them "long".
        let (g, s, t) = parallel_lane(16, 4, 3);
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        // Dense landmarks so the w.h.p. guarantee holds at this tiny n.
        let mut params = Params::with_zeta(inst.n(), 4);
        params.landmark_prob = 1.0;
        let got = run_long(&inst, &params);
        let want = replacement_lengths(&g, &inst.path);
        assert_eq!(got, want);
    }

    #[test]
    fn upper_bound_even_when_detours_are_short() {
        for seed in 0..5 {
            let (g, s, t) = planted_path_digraph(40, 12, 100, seed);
            let inst = Instance::from_endpoints(&g, s, t).unwrap();
            let mut params = Params::with_zeta(inst.n(), 6);
            params.landmark_prob = 1.0;
            let got = run_long(&inst, &params);
            let want = replacement_lengths(&g, &inst.path);
            for (i, (&g_i, &w_i)) in got.iter().zip(want.iter()).enumerate() {
                assert!(g_i >= w_i, "seed {seed} edge {i}: {g_i} < oracle {w_i}");
            }
        }
    }
}
