//! Definition 5.2: landmark sampling, and the Lemma 5.3 coverage
//! predicate used by tests.

use graphkit::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Instance, Params};

/// Samples the landmark set `L`: every vertex of `G` independently with
/// probability [`Params::landmark_prob`] (Definition 5.2). Deterministic
/// given the seed.
pub fn sample(inst: &Instance<'_>, params: &Params) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x1a4d_3a9c);
    inst.graph
        .nodes()
        .filter(|_| rng.gen_bool(params.landmark_prob))
        .collect()
}

/// Lemma 5.3's event, checkable: does every window of `window` consecutive
/// vertices of `walk` contain a landmark?
///
/// The paper's algorithms are correct whenever this holds for the
/// relevant shortest paths; tests use it to distinguish "algorithm bug"
/// from "sampling was unlucky" on tiny instances.
pub fn covers(walk: &[NodeId], landmarks: &[NodeId], window: usize) -> bool {
    if walk.len() < window {
        return true;
    }
    let is_lm: std::collections::HashSet<_> = landmarks.iter().copied().collect();
    walk.windows(window)
        .all(|w| w.iter().any(|v| is_lm.contains(v)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::gen::planted_path_digraph;

    #[test]
    fn sampling_is_deterministic() {
        let (g, s, t) = planted_path_digraph(50, 10, 100, 1);
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        let params = Params::for_instance(&inst);
        assert_eq!(sample(&inst, &params), sample(&inst, &params));
    }

    #[test]
    fn probability_one_samples_everyone() {
        let (g, s, t) = planted_path_digraph(30, 8, 50, 2);
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        let mut params = Params::for_instance(&inst);
        params.landmark_prob = 1.0;
        assert_eq!(sample(&inst, &params).len(), 30);
    }

    #[test]
    fn expected_size_tracks_probability() {
        let (g, s, t) = planted_path_digraph(400, 20, 800, 3);
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        let mut params = Params::for_instance(&inst);
        params.landmark_prob = 0.25;
        let l = sample(&inst, &params).len();
        assert!((50..=150).contains(&l), "|L| = {l} far from 100");
    }

    #[test]
    fn coverage_predicate() {
        let walk = vec![0, 1, 2, 3, 4, 5];
        assert!(covers(&walk, &[2, 5], 3));
        assert!(!covers(&walk, &[5], 3));
        assert!(covers(&walk, &[], 7)); // window longer than walk
    }
}
