//! Solver sessions: the plan/execute layer over the one-shot solvers.
//!
//! A [`SolverSession`] binds one immutable graph and answers failed-edge
//! queries against it. Each [`Query`] `{ source, target, avoid }` is
//! *planned* into the artifacts it needs — the shortest `s`-`t` path,
//! the undirected diameter, and (only when the avoided edge actually
//! lies on that path) a full per-path-edge replacement solve — and the
//! artifacts are satisfied through the deterministic LRU
//! [`ArtifactCache`]. A batch of Q queries over the same endpoint pair
//! therefore costs **one** solver run (whose `multi_bfs`/knowledge
//! phases are shared by construction) instead of Q, and repeated
//! batches cost zero runs.
//!
//! **Determinism contract.** A cache hit returns the same
//! [`ScaledAnswers`] the cold run produced, and a cold run inside a
//! session is executed exactly like the one-shot entry points (a fresh
//! [`Network`] per solve), so answers — and full
//! [`Metrics`] equality (`total`/`phases`/`faults`) where phases run —
//! are bit-identical between `solve_batch` and Q independent one-shot
//! solves, at any `CONGEST_THREADS` setting. The differential suite in
//! `tests/session_differential.rs` asserts this at threads {1, 2, 8}.
//!
//! **Persistence.** [`SolverSession::save`] writes the cache as typed
//! `TAG_CACHE` sections of an `rpaths-store` snapshot;
//! [`SolverSession::warm_boot`] reloads them, skipping (never failing
//! on) entries that are corrupt, mis-fingerprinted, or shaped wrong —
//! a damaged cache degrades to a cold one, mirroring the
//! `Loaded::Partial` contract of the store itself.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

use congest::bfs_tree::{build_bfs_tree, BfsTree};
use congest::{Metrics, Network};
use graphkit::alg::{shortest_st_path, undirected_diameter};
use graphkit::{DiGraph, Dist, EdgeId, NodeId, StPath};
use rpaths_store::StoreError;

use crate::artifacts::{cache_artifact, cache_entry_from};
use crate::cache::{ArtifactCache, ArtifactKind, CacheKey, CacheValue, SolverKind};
use crate::weighted::ScaledAnswers;
use crate::{baseline, unweighted, weighted, Instance, InstanceError, Params, SolveError};

pub use congest::CacheStats;

/// One failed-edge query: the length of a shortest `source → target`
/// path in `G \ avoid` (or in `G` itself when `avoid` is `None`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Query {
    /// Path source.
    pub source: NodeId,
    /// Path target.
    pub target: NodeId,
    /// The failed edge, if any.
    pub avoid: Option<EdgeId>,
}

impl Query {
    /// A query with no failed edge (plain shortest-path length).
    pub fn intact(source: NodeId, target: NodeId) -> Query {
        Query {
            source,
            target,
            avoid: None,
        }
    }

    /// A query avoiding `edge`.
    pub fn avoiding(source: NodeId, target: NodeId, edge: EdgeId) -> Query {
        Query {
            source,
            target,
            avoid: Some(edge),
        }
    }
}

/// One query's answer, as an exact scaled rational `scaled / den`
/// (`den = 1` for exact solvers; the weighted solver's `(1+ε)` scaling
/// otherwise — see [`crate::weighted`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Answer {
    /// Scaled numerator (`Dist::INF` when no replacement path exists).
    pub scaled: Dist,
    /// Denominator.
    pub den: u64,
}

impl Answer {
    /// The "no path" answer.
    pub fn unreachable() -> Answer {
        Answer {
            scaled: Dist::INF,
            den: 1,
        }
    }

    /// `true` when a path exists.
    pub fn is_finite(&self) -> bool {
        self.scaled.is_finite()
    }

    /// The exact integral length, when the answer is exact (`den = 1`)
    /// and finite.
    pub fn exact(&self) -> Option<u64> {
        if self.den == 1 {
            self.scaled.finite()
        } else {
            None
        }
    }

    /// The answer as a float (∞ for unreachable).
    pub fn value(&self) -> f64 {
        match self.scaled.finite() {
            Some(v) => v as f64 / self.den as f64,
            None => f64::INFINITY,
        }
    }
}

/// Why a session could not answer a batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// Building the problem instance failed (disconnected communication
    /// graph, invalid path).
    Instance(InstanceError),
    /// The underlying solver failed.
    Solve(SolveError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Instance(e) => write!(f, "cannot build instance: {e}"),
            SessionError::Solve(e) => write!(f, "solver failed: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<InstanceError> for SessionError {
    fn from(e: InstanceError) -> SessionError {
        SessionError::Instance(e)
    }
}

impl From<SolveError> for SessionError {
    fn from(e: SolveError) -> SessionError {
        SessionError::Solve(e)
    }
}

/// Session-level telemetry.
#[derive(Clone, Copy, Debug, Default)]
pub struct SessionStats {
    /// Queries answered (across all batches).
    pub queries: u64,
    /// Batches answered.
    pub batches: u64,
    /// Cold solver runs actually executed (each covers every path edge
    /// of its instance, so this is the count the cache saves on).
    pub solver_runs: u64,
    /// The cache's cumulative counters.
    pub cache: CacheStats,
}

/// Default artifact-cache capacity for [`SolverSession::new`].
pub const DEFAULT_CACHE_CAPACITY: usize = 128;

/// A solver session: one graph, one artifact cache, many queries.
///
/// See the [module docs](self) for the plan/execute model and the
/// determinism/persistence contracts.
pub struct SolverSession<'g> {
    graph: &'g DiGraph,
    fingerprint: u64,
    params: Params,
    solver: SolverKind,
    threads: Option<usize>,
    cache: ArtifactCache,
    stats: SessionStats,
    metrics: Metrics,
}

impl<'g> SolverSession<'g> {
    /// Creates a session over `graph` with the default cache capacity.
    ///
    /// The solver defaults to Theorem 1 on unweighted graphs and
    /// Theorem 3 on weighted ones; override with
    /// [`SolverSession::set_solver`].
    pub fn new(graph: &'g DiGraph, params: Params) -> SolverSession<'g> {
        SolverSession::with_capacity(graph, params, DEFAULT_CACHE_CAPACITY)
    }

    /// Creates a session with an explicit cache capacity.
    pub fn with_capacity(graph: &'g DiGraph, params: Params, capacity: usize) -> SolverSession<'g> {
        let solver = if graph.is_unweighted() {
            SolverKind::Unweighted
        } else {
            SolverKind::Weighted
        };
        SolverSession {
            graph,
            fingerprint: graph.fingerprint(),
            params,
            solver,
            threads: None,
            cache: ArtifactCache::new(capacity),
            stats: SessionStats::default(),
            metrics: Metrics::default(),
        }
    }

    /// The bound graph.
    pub fn graph(&self) -> &'g DiGraph {
        self.graph
    }

    /// The bound graph's stable fingerprint (the cache key prefix).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Pins the engine thread count for every network the session
    /// creates (otherwise `CONGEST_THREADS` applies).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = Some(threads);
    }

    /// Replaces the solver used for replacement answers.
    pub fn set_solver(&mut self, solver: SolverKind) {
        self.solver = solver;
    }

    /// Session telemetry (including the cache's counters).
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            cache: self.cache.stats(),
            ..self.stats
        }
    }

    /// Read access to the artifact cache.
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// Accumulated engine metrics of every cold phase the session ran.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Takes (and resets) the accumulated metrics.
    pub fn take_metrics(&mut self) -> Metrics {
        std::mem::take(&mut self.metrics)
    }

    fn fresh_network(&self) -> Network<'g> {
        let mut net = Network::new(self.graph);
        if let Some(t) = self.threads {
            net.set_threads(t);
        }
        net
    }

    fn key(&self, kind: ArtifactKind) -> CacheKey {
        CacheKey {
            fingerprint: self.fingerprint,
            kind,
        }
    }

    /// The undirected diameter of the communication graph, cached.
    ///
    /// # Errors
    ///
    /// [`SessionError::Instance`] with [`InstanceError::Disconnected`]
    /// when the graph is disconnected.
    pub fn diameter(&mut self) -> Result<usize, SessionError> {
        let key = self.key(ArtifactKind::Diameter);
        if let Some(CacheValue::Diameter(d)) = self.cache.get(&key) {
            return Ok(d);
        }
        let d = undirected_diameter(self.graph).ok_or(InstanceError::Disconnected)?;
        self.cache.insert(key, CacheValue::Diameter(d));
        Ok(d)
    }

    /// A shortest `source → target` path, cached (including the
    /// negative "unreachable" result).
    pub fn shortest_path(&mut self, source: NodeId, target: NodeId) -> Option<StPath> {
        let key = self.key(ArtifactKind::Path { source, target });
        if let Some(CacheValue::Path(p)) = self.cache.get(&key) {
            return p;
        }
        let p = shortest_st_path(self.graph, source, target);
        self.cache.insert(key, CacheValue::Path(p.clone()));
        p
    }

    /// The BFS tree rooted at `root`, cached; a cold build's metrics
    /// accumulate on the session.
    ///
    /// # Errors
    ///
    /// [`SessionError::Solve`] with [`SolveError::Partitioned`] when the
    /// communication graph is disconnected.
    pub fn bfs_tree(&mut self, root: NodeId) -> Result<Arc<BfsTree>, SessionError> {
        let key = self.key(ArtifactKind::Tree { root });
        if let Some(CacheValue::Tree(t)) = self.cache.get(&key) {
            return Ok(t);
        }
        let mut net = self.fresh_network();
        let (tree, _) = build_bfs_tree(&mut net, root).map_err(SolveError::from)?;
        self.metrics.merge_from(&mut net.take_metrics());
        let arc = Arc::new(tree);
        self.cache.insert(key, CacheValue::Tree(arc.clone()));
        Ok(arc)
    }

    /// Solves one full instance through the cache: a hit returns the
    /// stored answers with empty metrics (no phases ran), a miss runs
    /// `solver` cold on a fresh network — exactly like the one-shot
    /// entry points — and stores the result.
    ///
    /// # Errors
    ///
    /// Whatever the underlying solver reports.
    pub fn solve_instance(
        &mut self,
        inst: &Instance<'_>,
        params: &Params,
        solver: SolverKind,
    ) -> Result<(Arc<ScaledAnswers>, Metrics), SolveError> {
        let key = self.key(ArtifactKind::Replacement {
            source: inst.s(),
            target: inst.t(),
            solver,
            params_fp: params_fingerprint(params),
            path_fp: path_fingerprint(&inst.path),
        });
        if let Some(CacheValue::Replacement(arc)) = self.cache.get(&key) {
            // Defensive: a warm-booted entry that survived checksums but
            // does not fit this instance is recomputed, never trusted.
            if arc.scaled.len() == inst.hops() {
                return Ok((arc, Metrics::default()));
            }
        }
        let mut net = self.fresh_network();
        let answers = run_cold(&mut net, inst, params, solver)?;
        let arc = Arc::new(answers);
        self.cache.insert(key, CacheValue::Replacement(arc.clone()));
        self.stats.solver_runs += 1;
        Ok((arc, net.take_metrics()))
    }

    /// Answers a batch of failed-edge queries.
    ///
    /// Queries are grouped by `(source, target)`; each group costs at
    /// most one replacement solve (cached across batches), and queries
    /// whose avoided edge is off the shortest path — or absent — are
    /// answered from the path alone. Answers come back in input order.
    ///
    /// # Errors
    ///
    /// [`SessionError`] when the communication graph is disconnected or
    /// a solver fails; unreachable `(source, target)` pairs are *not*
    /// errors — they answer [`Answer::unreachable`].
    pub fn solve_batch(&mut self, queries: &[Query]) -> Result<Vec<Answer>, SessionError> {
        let before = self.cache.stats();
        self.stats.batches += 1;
        self.stats.queries += queries.len() as u64;
        let params = self.params.clone();
        let solver = self.solver;

        let mut groups: BTreeMap<(NodeId, NodeId), Vec<usize>> = BTreeMap::new();
        for (i, q) in queries.iter().enumerate() {
            groups.entry((q.source, q.target)).or_default().push(i);
        }

        let mut answers = vec![Answer::unreachable(); queries.len()];
        for ((s, t), idxs) in groups {
            if s == t {
                // Zero-length path: no edge of it can fail, so every
                // query (with or without a failed edge) answers 0.
                for &i in &idxs {
                    answers[i] = Answer {
                        scaled: Dist::new(0),
                        den: 1,
                    };
                }
                continue;
            }
            let Some(path) = self.shortest_path(s, t) else {
                continue; // unreachable pair: all its queries stay ∞
            };
            let base = Answer {
                scaled: path.length(self.graph),
                den: 1,
            };
            let mut need_solver = false;
            for &i in &idxs {
                match queries[i].avoid.and_then(|e| path_edge_index(&path, e)) {
                    Some(_) => need_solver = true,
                    // avoid ∉ P (or no failure): P itself survives, so
                    // the shortest length is |P|.
                    None => answers[i] = base,
                }
            }
            if !need_solver {
                continue;
            }
            let diameter = self.diameter()?;
            let inst = Instance::with_parts(self.graph, path.clone(), diameter)?;
            let (repl, mut m) = self.solve_instance(&inst, &params, solver)?;
            self.metrics.merge_from(&mut m);
            for &i in &idxs {
                if let Some(j) = queries[i].avoid.and_then(|e| path_edge_index(&path, e)) {
                    answers[i] = Answer {
                        scaled: repl.scaled[j],
                        den: repl.den,
                    };
                }
            }
        }

        let delta = self.cache.stats().delta_since(&before);
        self.metrics.record_cache(delta);
        Ok(answers)
    }

    // -----------------------------------------------------------------
    // Persistence
    // -----------------------------------------------------------------

    /// Encodes every cache entry as a typed `TAG_CACHE` artifact, in
    /// oldest-touched-first order (so re-importing reproduces the
    /// recency ranking).
    pub fn export_artifacts(&self) -> Vec<rpaths_store::Artifact> {
        self.cache
            .entries_by_recency()
            .iter()
            .map(|(key, value)| cache_artifact(key.fingerprint, &key.kind, value))
            .collect()
    }

    /// Imports persisted cache artifacts, returning how many were
    /// accepted. Entries that fail to decode, carry a different graph
    /// fingerprint, or are not `TAG_CACHE` sections are skipped — a
    /// damaged cache warms partially or not at all, it never errors.
    pub fn import_artifacts(&mut self, artifacts: &[rpaths_store::Artifact]) -> usize {
        let mut imported = 0;
        for a in artifacts {
            let Ok(entry) = cache_entry_from(a, self.graph) else {
                continue;
            };
            if entry.fingerprint != self.fingerprint {
                continue;
            }
            self.cache.insert(self.key(entry.kind), entry.value);
            imported += 1;
        }
        imported
    }

    /// Atomically writes the graph plus the whole cache as one
    /// `rpaths-store` snapshot.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        crate::artifacts::save(path, self.graph, self.export_artifacts())
    }

    /// Warm-boots the cache from a snapshot, returning how many entries
    /// were imported.
    ///
    /// Partial loads are fine (corrupt sections were already dropped by
    /// the store); a snapshot of a *different* graph imports nothing.
    ///
    /// # Errors
    ///
    /// Only structural failures before the graph is recovered
    /// ([`StoreError`]); artifact corruption degrades to a colder cache.
    pub fn warm_boot(&mut self, path: impl AsRef<Path>) -> Result<usize, StoreError> {
        let snapshot = crate::artifacts::load(path)?.into_snapshot();
        if snapshot.graph.fingerprint() != self.fingerprint {
            return Ok(0);
        }
        Ok(self.import_artifacts(&snapshot.artifacts))
    }
}

/// Runs `f` on a fresh network over `graph` and pairs its result with
/// the network's metrics — the single implementation of the
/// `Network::new` / `solve_on` / `take_metrics` sequence every one-shot
/// entry point used to hand-roll.
///
/// # Errors
///
/// Whatever `f` reports.
pub fn with_network<'g, T>(
    graph: &'g DiGraph,
    f: impl FnOnce(&mut Network<'g>) -> Result<T, SolveError>,
) -> Result<(T, Metrics), SolveError> {
    let mut net = Network::new(graph);
    let out = f(&mut net)?;
    Ok((out, net.take_metrics()))
}

/// Runs `solver` cold on `net` — the single dispatch point from
/// [`SolverKind`] to the network-level `solve_on` implementations.
/// Exact solvers come back as [`ScaledAnswers`] with `den = 1`.
///
/// # Errors
///
/// Whatever the solver reports.
pub fn run_cold(
    net: &mut Network<'_>,
    inst: &Instance<'_>,
    params: &Params,
    solver: SolverKind,
) -> Result<ScaledAnswers, SolveError> {
    let exact = |scaled: Vec<Dist>| ScaledAnswers { scaled, den: 1 };
    match solver {
        SolverKind::Unweighted => unweighted::solve_on(net, inst, params).map(exact),
        SolverKind::Weighted => weighted::solve_on(net, inst, params),
        SolverKind::Naive => baseline::naive::solve_on(net, inst, params).map(exact),
        SolverKind::Mr24 => baseline::mr24::solve_on(net, inst, params).map(exact),
    }
}

/// Index of `e` on `path`, if it is a path edge.
fn path_edge_index(path: &StPath, e: EdgeId) -> Option<usize> {
    if !path.contains_edge(e) {
        return None;
    }
    path.edges().iter().position(|&pe| pe == e)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv64(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = FNV_OFFSET;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Stable fingerprint of every [`Params`] field that can change a
/// solver's answers or round profile.
pub fn params_fingerprint(p: &Params) -> u64 {
    fnv64([
        p.zeta as u64,
        p.landmark_prob.to_bits(),
        p.seed,
        p.eps_num,
        p.eps_den,
        p.budget_factor,
    ])
}

/// Stable fingerprint of a path's exact edge sequence.
pub fn path_fingerprint(path: &StPath) -> u64 {
    fnv64(path.edges().iter().map(|&e| e as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::alg::replacement_lengths;
    use graphkit::gen::{parallel_lane, planted_path_digraph};
    use graphkit::GraphBuilder;

    fn lane_session(params: Params) -> (graphkit::DiGraph, NodeId, NodeId) {
        let _ = params;
        parallel_lane(12, 3, 2)
    }

    #[test]
    fn batch_matches_oracle_and_reports_hits() {
        let (g, s, t) = lane_session(Params::for_n(0));
        let mut params = Params::with_zeta(g.node_count(), 4);
        params.landmark_prob = 1.0;
        let mut session = SolverSession::new(&g, params);
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        let oracle = replacement_lengths(&g, &inst.path);

        let queries: Vec<Query> = inst
            .path
            .edges()
            .iter()
            .map(|&e| Query::avoiding(s, t, e))
            .collect();
        let answers = session.solve_batch(&queries).unwrap();
        for (i, a) in answers.iter().enumerate() {
            assert_eq!(a.scaled, oracle[i], "edge {i}");
            assert_eq!(a.den, 1);
        }
        // One path lookup + one solver run covered every query.
        assert_eq!(session.stats().solver_runs, 1);

        // A second identical batch is answered entirely from the cache.
        let runs_before = session.stats().solver_runs;
        let again = session.solve_batch(&queries).unwrap();
        assert_eq!(again, answers);
        assert_eq!(session.stats().solver_runs, runs_before);
        assert!(session.stats().cache.hits > 0);
        assert!(session.stats().cache.hit_rate() > 0.0);
    }

    #[test]
    fn off_path_and_intact_queries_answer_path_length() {
        let (g, s, t) = planted_path_digraph(30, 8, 60, 3);
        let mut session = SolverSession::new(&g, Params::for_n(30));
        let path = session.shortest_path(s, t).unwrap();
        let off_path = (0..g.edge_count() as EdgeId)
            .find(|&e| !path.contains_edge(e))
            .expect("some edge off the path");
        let answers = session
            .solve_batch(&[Query::intact(s, t), Query::avoiding(s, t, off_path)])
            .unwrap();
        assert_eq!(answers[0], answers[1]);
        assert_eq!(answers[0].scaled, path.length(&g));
        // No avoided edge lay on P, so no solver ran at all.
        assert_eq!(session.stats().solver_runs, 0);
    }

    #[test]
    fn unreachable_pairs_answer_infinity_not_error() {
        let mut b = GraphBuilder::new(4);
        b.add_bidirectional(0, 1);
        b.add_bidirectional(1, 2);
        b.add_bidirectional(2, 3);
        let g = b.build();
        let mut session = SolverSession::new(&g, Params::for_n(4));
        // 0 → 3 exists; pick a pair with no directed path if any —
        // otherwise just check the intact answer is finite.
        let answers = session.solve_batch(&[Query::intact(0, 3)]).unwrap();
        assert!(answers[0].is_finite());
    }

    #[test]
    fn fingerprints_distinguish_params_and_paths() {
        let a = Params::with_zeta(100, 5);
        let b = Params::with_zeta(100, 6);
        assert_ne!(params_fingerprint(&a), params_fingerprint(&b));
        assert_eq!(params_fingerprint(&a), params_fingerprint(&a.clone()));
        let (g, s, t) = parallel_lane(6, 2, 1);
        let p = shortest_st_path(&g, s, t).unwrap();
        assert_eq!(path_fingerprint(&p), path_fingerprint(&p));
    }

    #[test]
    fn diameter_and_tree_are_cached() {
        let (g, _, _) = parallel_lane(8, 2, 1);
        let mut session = SolverSession::new(&g, Params::for_n(g.node_count()));
        let d1 = session.diameter().unwrap();
        let d2 = session.diameter().unwrap();
        assert_eq!(d1, d2);
        let t1 = session.bfs_tree(0).unwrap();
        let rounds_after_first = session.metrics().rounds();
        assert!(rounds_after_first > 0);
        let t2 = session.bfs_tree(0).unwrap();
        assert_eq!(session.metrics().rounds(), rounds_after_first);
        assert!(Arc::ptr_eq(&t1, &t2));
        assert!(session.stats().cache.hits >= 2);
    }
}
