//! Algorithm parameters.

use crate::Instance;

/// Tunable knobs for the replacement-paths algorithms.
///
/// The paper fixes ζ = n^{2/3} and samples landmarks with probability
/// `c·log n / n^{2/3}`; both are explicit here so tests can exercise the
/// short- and long-detour regimes on small graphs (Proposition 4.1 holds
/// for any ζ) and benchmarks can sweep the trade-off.
#[derive(Clone, Debug)]
pub struct Params {
    /// The short/long detour threshold ζ (detour hops `> ζ` are "long").
    pub zeta: usize,
    /// Landmark sampling probability (Definition 5.2), normally
    /// `min(1, c·ln n / ζ)`.
    pub landmark_prob: f64,
    /// Seed for all randomness (landmark sampling, Lemma 2.5 sampling).
    pub seed: u64,
    /// Approximation slack ε for weighted graphs, as a rational
    /// `eps_num / eps_den` (e.g. `(1, 2)` for ε = 0.5). Exact rational
    /// arithmetic keeps the `(1+ε)` guarantee airtight.
    pub eps_num: u64,
    /// See [`Params::eps_num`].
    pub eps_den: u64,
    /// Multiplier on every internal round budget (default `1`).
    ///
    /// The budgets are sized for healthy networks; under fault
    /// injection, message delay stretches every phase. The recovery
    /// wrapper (`crate::resilient`) retries with a doubled factor after
    /// each [`crate::SolveError::Engine`] round-limit failure, so a
    /// solve that merely ran long gets more headroom instead of dying.
    pub budget_factor: u64,
}

impl Params {
    /// The constant `c` in the landmark probability `c·ln n / ζ`.
    /// The paper's Lemma 5.3 needs a large enough constant for the
    /// high-probability coverage guarantee; `4` keeps small test
    /// instances reliable without flooding them with landmarks.
    pub const LANDMARK_C: f64 = 4.0;

    /// Paper defaults for an instance: `ζ = ⌈n^{2/3}⌉`,
    /// `landmark_prob = min(1, c·ln n / ζ)`, ε = 1/2.
    pub fn for_instance(inst: &Instance<'_>) -> Params {
        Params::for_n(inst.n())
    }

    /// Paper defaults for a graph of `n` vertices.
    pub fn for_n(n: usize) -> Params {
        let zeta = (n as f64).powf(2.0 / 3.0).ceil() as usize;
        Params::with_zeta(n, zeta.max(1))
    }

    /// Defaults with an explicit threshold ζ.
    pub fn with_zeta(n: usize, zeta: usize) -> Params {
        assert!(zeta >= 1, "ζ must be at least 1");
        let ln_n = (n.max(2) as f64).ln();
        Params {
            zeta,
            landmark_prob: (Self::LANDMARK_C * ln_n / zeta as f64).min(1.0),
            seed: 0x5eed,
            eps_num: 1,
            eps_den: 2,
            budget_factor: 1,
        }
    }

    /// Replaces the round-budget multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero (a zero budget can never finish).
    pub fn with_budget_factor(mut self, factor: u64) -> Params {
        assert!(factor >= 1, "budget factor must be at least 1");
        self.budget_factor = factor;
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Params {
        self.seed = seed;
        self
    }

    /// Replaces ε (as a rational `num/den`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < num/den < 1` possibilities required by
    /// Theorem 3 (`ε ∈ (0, 1)`).
    pub fn with_eps(mut self, num: u64, den: u64) -> Params {
        assert!(num > 0 && den > 0 && num < den, "ε must lie in (0, 1)");
        self.eps_num = num;
        self.eps_den = den;
        self
    }

    /// ε as a float (for reporting).
    pub fn eps(&self) -> f64 {
        self.eps_num as f64 / self.eps_den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeta_follows_two_thirds_power() {
        let p = Params::for_n(1000);
        assert_eq!(p.zeta, 100);
        let p = Params::for_n(8);
        assert_eq!(p.zeta, 4);
    }

    #[test]
    fn landmark_probability_capped_at_one() {
        let p = Params::with_zeta(100, 1);
        assert_eq!(p.landmark_prob, 1.0);
    }

    #[test]
    fn eps_accessors() {
        let p = Params::for_n(100).with_eps(1, 4);
        assert!((p.eps() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "(0, 1)")]
    fn eps_must_be_below_one() {
        let _ = Params::for_n(100).with_eps(3, 2);
    }
}
