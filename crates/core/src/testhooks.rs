//! Test-only fault hooks for validating the correctness harness itself.
//!
//! A differential fuzzer is only trustworthy if it demonstrably *catches*
//! bugs. This module hosts deliberately injectable defects, each behind a
//! flag that defaults to off and costs one thread-local load when the
//! solver runs. The `rpaths-fuzz` binary flips them (via
//! `--inject-tiebreak-bug` or `RPATHS_INJECT_TIEBREAK=1`) to prove the
//! sweep → divergence → minimizer → fixture pipeline fires end to end;
//! nothing in the production crates ever sets them.
//!
//! The flags are **thread-local**: the solver merge always executes on
//! the thread that called `solve`, so a test (or the fuzz binary) that
//! flips a flag perturbs only its own solves — concurrently running
//! tests in the same binary are unaffected.

use std::cell::Cell;

thread_local! {
    /// When set, [`crate::unweighted::solve_on`] merges the short- and
    /// long-detour answers with a *flipped* tie-break: where the two
    /// sides disagree it keeps the larger value instead of the smaller.
    /// Answers stay deterministic (the fuzzer's bit-identity
    /// cross-checks still pass) but over-estimate whenever the winning
    /// detour regime is not the one the flip favours — exactly the kind
    /// of subtle merge bug the differential oracle exists to catch.
    /// Propagates to every consumer of the unweighted solver: sessions,
    /// batches, 2-SiSP, and reachability.
    static FLIP_UNWEIGHTED_MERGE: Cell<bool> = const { Cell::new(false) };
}

/// Enables or disables the flipped unweighted merge tie-break for
/// solves issued from the current thread.
pub fn set_flip_unweighted_merge(on: bool) {
    FLIP_UNWEIGHTED_MERGE.with(|f| f.set(on));
}

/// Whether the flipped merge is enabled on the current thread.
pub fn flip_unweighted_merge() -> bool {
    FLIP_UNWEIGHTED_MERGE.with(|f| f.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_off_and_toggles() {
        assert!(!flip_unweighted_merge());
        set_flip_unweighted_merge(true);
        assert!(flip_unweighted_merge());
        set_flip_unweighted_merge(false);
        assert!(!flip_unweighted_merge());
    }

    #[test]
    fn flag_is_thread_local() {
        set_flip_unweighted_merge(true);
        let other = std::thread::spawn(flip_unweighted_merge).join().unwrap();
        set_flip_unweighted_merge(false);
        assert!(!other, "other threads must not observe this thread's flag");
    }
}
