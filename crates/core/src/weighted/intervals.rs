//! Lemmas 7.7–7.9 and Proposition 7.1: interval pipelining for weighted
//! short detours.
//!
//! Weighted short detours can *span* arbitrarily many path indices (a
//! single heavy edge from `s` to `t` is a 1-hop detour), so the
//! unweighted windowed DP of Lemma 4.4 does not apply. Instead the index
//! range `{0..h}` is split into `ℓ = O(n^{1/3})` disjoint intervals of
//! `O(ζ)` indices, and each edge's answer is assembled from
//!
//! - **nearby detours** (one endpoint in the edge's interval): in-interval
//!   pipelined sweeps, `O(ζ)` rounds (Lemma 7.7);
//! - **distant detours** (both endpoints outside): every interval
//!   publishes `X̃(I_q, [l_k, ∞))` for all later intervals `k` — `O(ℓ²) =
//!   O(n^{2/3})` broadcast messages (Lemmas 7.8, 7.9).

use congest::broadcast::broadcast;
use congest::pipeline::{prefix_sweep, Lane};
use congest::{word_bits, Network};
use graphkit::Dist;

use crate::weighted::{approximator, ScaledAnswers};
use crate::{Instance, Params};

/// The disjoint index intervals `I_q = [q·ζ, min((q+1)·ζ − 1, h)]`.
pub fn intervals(h: usize, zeta: usize) -> Vec<(usize, usize)> {
    assert!(zeta >= 1);
    let mut out = Vec::new();
    let mut l = 0;
    while l <= h {
        let r = (l + zeta - 1).min(h);
        out.push((l, r));
        l = r + 1;
    }
    out
}

/// Proposition 7.1: scaled good approximations of
/// `X((−∞, i], [i+1, ∞))` for every edge `(v_i, v_{i+1})` of `P`.
pub fn solve_short_apx(
    net: &mut Network<'_>,
    inst: &Instance<'_>,
    params: &Params,
    tree: &congest::bfs_tree::BfsTree,
) -> ScaledAnswers {
    let apx = approximator::compute(net, inst, params);
    let h = inst.hops();
    let iv = intervals(h, params.zeta);
    let ell = iv.len();

    let fwd_lanes: Vec<Lane> = iv
        .iter()
        .map(|&(l, r)| {
            Lane::forward(
                inst.path.nodes()[l..=r].to_vec(),
                inst.path.edges()[l..r].to_vec(),
            )
        })
        .collect();
    let max_size = iv.iter().map(|&(l, r)| r - l + 1).max().unwrap_or(1);

    // (a) Nearby detours leaving within the interval:
    // near_a[i] = X̃([l_q, i], [i+1, ∞)) = min_{k in [l_q, i]} fwd[k][i+1].
    let input_a = |lane: usize, pos: usize, job: usize| -> Dist {
        let (l, r) = iv[lane];
        let k = l + pos;
        let i = l + job;
        if i <= r && i < h && k <= r {
            apx.fwd[k][i + 1]
        } else {
            Dist::INF
        }
    };
    let (sweep_a, _) = prefix_sweep(net, &fwd_lanes, max_size, &input_a, "apx/nearby-fwd");
    let near_a: Vec<Dist> = (0..h)
        .map(|i| {
            let q = i / params.zeta;
            let (l, _) = iv[q];
            let rel = i - l;
            sweep_a[q][rel][rel]
        })
        .collect();

    // (b) Nearby detours returning within the interval:
    // at v_{i+1}: min_{k in [i+1, r_q]} bwd[k][i]; then shift one edge left.
    let bwd_lanes: Vec<Lane> = iv
        .iter()
        .map(|&(l, r)| {
            let mut nodes = inst.path.nodes()[l..=r].to_vec();
            let mut links = inst.path.edges()[l..r].to_vec();
            nodes.reverse();
            links.reverse();
            Lane::backward(nodes, links)
        })
        .collect();
    let input_b = |lane: usize, pos: usize, job: usize| -> Dist {
        let (_, r) = iv[lane];
        if job == 0 || job > r {
            return Dist::INF;
        }
        let i = r - job; // target edge index
        let k = r - pos;
        if k > i {
            apx.bwd[k][i]
        } else {
            Dist::INF
        }
    };
    let (sweep_b, _) = prefix_sweep(net, &bwd_lanes, max_size + 1, &input_b, "apx/nearby-bwd");
    // Value for edge i lives at v_{i+1} = lane pos job-1 where job = r - i.
    let at_next: Vec<Dist> = (0..h)
        .map(|i| {
            let q = i / params.zeta;
            let (_, r) = iv[q];
            if i == r {
                return Dist::INF; // cross-interval edge, handled by (c)
            }
            let job = r - i;
            sweep_b[q][job - 1][job]
        })
        .collect();
    // Shift one edge left: v_{i+1} -> v_i (single round, all edges).
    let shift_lanes: Vec<Lane> = (0..h)
        .map(|i| {
            Lane::backward(
                vec![inst.path.node(i + 1), inst.path.node(i)],
                vec![inst.path.edge(i)],
            )
        })
        .collect();
    let shift_input = |lane: usize, pos: usize, _job: usize| -> Dist {
        if pos == 0 {
            at_next[lane]
        } else {
            Dist::INF
        }
    };
    let (shifted, _) = prefix_sweep(net, &shift_lanes, 1, &shift_input, "apx/shift");
    let near_b: Vec<Dist> = (0..h).map(|i| shifted[i][1][0]).collect();

    // (c) Distant detours: every interval q publishes
    // X̃(I_q, [l_k, ∞)) for k > q (Lemma 7.8), then everyone combines
    // (Lemma 7.9).
    let input_c = |lane: usize, pos: usize, job: usize| -> Dist {
        let (l, _) = iv[lane];
        if job > lane && job < ell {
            let lk = iv[job].0;
            apx.fwd[l + pos][lk]
        } else {
            Dist::INF
        }
    };
    let (sweep_c, _) = prefix_sweep(net, &fwd_lanes, ell, &input_c, "apx/distant");
    let mut items: Vec<Vec<(u32, u32, u64)>> = vec![Vec::new(); inst.n()];
    for (q, lane) in fwd_lanes.iter().enumerate() {
        let last = lane.nodes.len() - 1;
        let origin = lane.nodes[last];
        for k in q + 1..ell {
            if let Some(d) = sweep_c[q][last][k].finite() {
                items[origin].push((q as u32, k as u32, d));
            }
        }
    }
    let (streams, _) = broadcast(
        net,
        tree,
        items,
        |&(q, k, d)| word_bits(q as u64) + word_bits(k as u64) + word_bits(d),
        "apx/broadcast-intervals",
    );
    let stream = &streams[inst.s()];
    let mut summary = vec![vec![Dist::INF; ell]; ell];
    for &(q, k, d) in stream {
        let cell = &mut summary[q as usize][k as usize];
        *cell = (*cell).min(Dist::new(d));
    }
    // upto[q][k] = X̃((−∞, r_q], [l_k, ∞)) = min_{x <= q} summary[x][k].
    let mut upto = vec![vec![Dist::INF; ell]; ell];
    for q in 0..ell {
        for k in 0..ell {
            let prev = if q > 0 { upto[q - 1][k] } else { Dist::INF };
            upto[q][k] = prev.min(summary[q][k]);
        }
    }

    // Final per-edge combine (Proposition 7.1's case analysis).
    let scaled = (0..h)
        .map(|i| {
            let q = i / params.zeta;
            let (_, r) = iv[q];
            if i == r {
                // Edge crosses intervals q and q+1.
                return upto[q][q + 1];
            }
            let mut best = near_a[i].min(near_b[i]);
            if q > 0 && q + 1 < ell {
                best = best.min(upto[q - 1][q + 1]);
            }
            best
        })
        .collect();
    ScaledAnswers {
        scaled,
        den: apx.den,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::alg::{hop_bounded_dists, shortest_st_path};
    use graphkit::gen::random_weighted_digraph;

    #[test]
    fn interval_layout() {
        assert_eq!(intervals(9, 4), vec![(0, 3), (4, 7), (8, 9)]);
        assert_eq!(intervals(3, 10), vec![(0, 3)]);
        assert_eq!(intervals(0, 1), vec![(0, 0)]);
    }

    /// Exact short-detour oracle: X((−∞,i],[i+1,∞)) with detours of <= ζ
    /// hops, centralized.
    fn oracle_short(inst: &Instance<'_>, zeta: usize) -> Vec<Dist> {
        let h = inst.hops();
        let mut best = vec![Dist::INF; h];
        for k in 0..h {
            let from_vk = hop_bounded_dists(inst.graph, inst.path.node(k), zeta, |e| {
                inst.in_g_minus_p(e)
            });
            for j in k + 1..=h {
                let len = inst.prefix[k] + from_vk[inst.path.node(j)] + inst.suffix[j];
                if !len.is_finite() {
                    continue;
                }
                // This detour replaces edges k..j-1.
                for i in k..j {
                    best[i] = best[i].min(len);
                }
            }
        }
        best
    }

    #[test]
    fn short_apx_brackets_oracle() {
        let mut tested = 0;
        for seed in 0..15 {
            let g = random_weighted_digraph(32, 100, 10, seed);
            let Some((s, t)) = graphkit::gen::random_reachable_pair(&g, seed ^ 7) else {
                continue;
            };
            let Some(p) = shortest_st_path(&g, s, t) else {
                continue;
            };
            if p.hops() < 4 {
                continue;
            }
            let inst = Instance::new(&g, p).unwrap();
            let zeta = 4;
            let params = Params::with_zeta(inst.n(), zeta).with_eps(1, 2);
            let mut net = Network::new(inst.graph);
            let (tree, _) = congest::bfs_tree::build_bfs_tree(&mut net, inst.s()).unwrap();
            let got = solve_short_apx(&mut net, &inst, &params, &tree);
            let want = oracle_short(&inst, zeta);
            let full = graphkit::alg::replacement_lengths(inst.graph, &inst.path);
            for i in 0..inst.hops() {
                // Validity: never below the unrestricted replacement
                // length (candidates may come from detours with more
                // than ζ hops — allowed, and they can undercut the
                // ζ-hop-restricted X).
                if let Some(g_val) = got.scaled[i].finite() {
                    let f = full[i].finite().expect("finite answer implies real path");
                    assert!(
                        g_val >= f * got.den,
                        "seed {seed} edge {i}: below the true replacement length"
                    );
                }
                // Approximation: at most (1+ε)·X_short when it exists.
                if let Some(w) = want[i].finite() {
                    let g_val = got.scaled[i]
                        .finite()
                        .unwrap_or_else(|| panic!("seed {seed} edge {i}: no candidate"));
                    assert!(
                        g_val * 2 <= w * got.den * 3,
                        "seed {seed} edge {i}: {g_val}/{} > 1.5·{w}",
                        got.den
                    );
                }
            }
            tested += 1;
        }
        assert!(tested >= 6, "too few instances: {tested}");
    }
}
