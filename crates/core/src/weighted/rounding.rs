//! Section 7.1: the rounding graphs `G_d`.
//!
//! For a scale `d` and unit `µ_d = ε·d/(2·hb)` (where `hb` is the hop
//! budget — ζ for short detours, also ζ for the landmark BFS), every edge
//! `e ∈ G \ P` becomes a path of `⌈w(e)/µ_d⌉` unit edges. Lengths in
//! `G_d` are integers in units of `µ_d`; we keep them as *scaled
//! numerators* over the common denominator `den = 2·hb·eps_den`, so one
//! `G_d` hop contributes `eps_num·d` to the numerator. All arithmetic is
//! exact.

use graphkit::DiGraph;

use crate::Params;

/// One rounding scale `d` with its precomputed edge delays.
#[derive(Clone, Debug)]
pub struct Scale {
    /// The scale `d` (detour lengths in `[d/2, d]` are approximated well).
    pub d: u64,
    /// Per-edge delay `⌈w(e)/µ_d⌉`, with `0` marking edges unusable at
    /// this scale (delay would exceed the hop cap, so no target detour
    /// could use them anyway).
    pub delays: Vec<u64>,
    /// Numerator contribution of one `G_d` hop: `eps_num · d`
    /// (denominator [`ScaleSet::den`]).
    pub hop_value: u64,
}

/// All scales `d = 2, 4, ..., 2^⌈log₂(max length)⌉` for one run.
#[derive(Clone, Debug)]
pub struct ScaleSet {
    /// The scales in increasing order of `d`.
    pub scales: Vec<Scale>,
    /// Common denominator of all scaled lengths: `2·hb·eps_den`.
    pub den: u64,
    /// Hop cap `ζ* = hb·(1 + 2/ε)` (exactly: `hb + ⌈2·hb·eps_den/eps_num⌉`).
    pub hop_cap: u64,
}

impl ScaleSet {
    /// Builds the scale set for hop budget `hb` on `graph`.
    ///
    /// # Panics
    ///
    /// Panics if `hb == 0`.
    pub fn build(graph: &DiGraph, params: &Params, hb: u64) -> ScaleSet {
        assert!(hb >= 1);
        let (en, ed) = (params.eps_num, params.eps_den);
        let den = 2 * hb * ed;
        let hop_cap = hb + (2 * hb * ed).div_ceil(en);
        // Upper bound on any path length: total edge weight.
        let max_len = graph.total_weight().max(1);
        let mut scales = Vec::new();
        let mut d = 2u64;
        loop {
            // delay(e) = ⌈w·den / (en·d)⌉ = ⌈w / µ_d⌉.
            let unit = en * d; // µ_d numerator over den
            let delays: Vec<u64> = graph
                .edges()
                .map(|(_, e)| {
                    let delay = (e.weight * den).div_ceil(unit);
                    if delay > hop_cap {
                        0 // unusable at this scale
                    } else {
                        delay
                    }
                })
                .collect();
            scales.push(Scale {
                d,
                delays,
                hop_value: unit,
            });
            if d >= 2 * max_len {
                break;
            }
            d *= 2;
        }
        ScaleSet {
            scales,
            den,
            hop_cap,
        }
    }

    /// Scaled numerator of an exact integer length (e.g. a prefix
    /// distance along `P`).
    pub fn scale_exact(&self, len: u64) -> u64 {
        len * self.den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::GraphBuilder;

    fn params_eps(num: u64, den: u64) -> Params {
        Params::with_zeta(100, 10).with_eps(num, den)
    }

    fn graph_with_weights(ws: &[u64]) -> DiGraph {
        let mut b = GraphBuilder::new(ws.len() + 1);
        for (i, &w) in ws.iter().enumerate() {
            b.add_edge(i, i + 1, w);
        }
        b.build()
    }

    #[test]
    fn delay_rounds_up() {
        let g = graph_with_weights(&[7]);
        let p = params_eps(1, 2); // ε = 1/2
        let hb = 10;
        let set = ScaleSet::build(&g, &p, hb);
        // den = 2·10·2 = 40; at d = 2: µ = 2/40 = 1/20; delay = ⌈7·20⌉ = 140
        // which exceeds hop_cap = 10 + 40/1... hop_cap = 10 + ⌈40/1⌉ = 50,
        // so the edge is disabled at d = 2.
        assert_eq!(set.den, 40);
        assert_eq!(set.hop_cap, 50);
        assert_eq!(set.scales[0].d, 2);
        assert_eq!(set.scales[0].delays[0], 0);
        // At d = 16: µ = 16/40 = 2/5; delay = ⌈7·5/2⌉ = ⌈17.5⌉ = 18 <= 50.
        let s16 = set.scales.iter().find(|s| s.d == 16).unwrap();
        assert_eq!(s16.delays[0], 18);
    }

    #[test]
    fn scales_cover_total_weight() {
        let g = graph_with_weights(&[100, 200, 300]);
        let p = params_eps(1, 2);
        let set = ScaleSet::build(&g, &p, 5);
        let max_d = set.scales.last().unwrap().d;
        assert!(
            max_d >= 600,
            "largest scale {max_d} must cover total weight"
        );
    }

    #[test]
    fn hop_distance_overestimates_but_bounded() {
        // Observation 7.3/7.4 at the arithmetic level: delay·µ >= w, and
        // delay·µ <= w + µ.
        let g = graph_with_weights(&[13, 5, 1]);
        let p = params_eps(1, 3);
        let set = ScaleSet::build(&g, &p, 7);
        for sc in &set.scales {
            for (id, e) in g.edges() {
                let delay = sc.delays[id];
                if delay == 0 {
                    continue;
                }
                let scaled_len = delay * sc.hop_value; // numerator
                let w_scaled = e.weight * set.den;
                assert!(scaled_len >= w_scaled, "no shrink");
                assert!(
                    scaled_len < w_scaled + sc.hop_value,
                    "overshoot below one unit"
                );
            }
        }
    }

    #[test]
    fn unit_weights_delay_matches_formula_at_largest_scale() {
        let g = graph_with_weights(&[1, 1]);
        let p = params_eps(1, 2);
        let set = ScaleSet::build(&g, &p, 10);
        // den = 2·10·2 = 40; largest scale d = 4 (>= 2·total = 4);
        // µ_4 = 4/40 = 1/10, so a unit edge subdivides into 10 hops.
        let last = set.scales.last().unwrap();
        assert_eq!(last.d, 4);
        assert_eq!(last.delays, vec![10, 10]);
    }
}
