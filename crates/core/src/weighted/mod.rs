//! Section 7: `(1+ε)`-approximate RPaths for weighted directed graphs
//! (Theorem 3).
//!
//! All distances in this module travel through the *rounding* device of
//! Section 7.1: for each scale `d = 2, 4, 8, ..., 2^⌈log(mW)⌉`, the graph
//! `G_d` replaces every edge of `G \ P` by `⌈w(e)/µ_d⌉` unit edges, where
//! `µ_d = ε·d/(2ζ)`. Running the *unweighted* hop-BFS of Lemma 4.2 on
//! `G_d` (edge delays on the real network) costs `O(ζ(1+2/ε))` rounds per
//! scale and over-estimates lengths in `[d/2, d]` by at most a factor
//! `(1+ε)` (Observations 7.3/7.4).
//!
//! Internally, all approximate lengths are *scaled rationals*: exact
//! integers in units of `1/den` where `den = 2·ζ·eps_den` (resp.
//! `2·h·eps_den` for the long-detour scales), so the `(1+ε)` guarantee is
//! never eroded by floating-point error. [`ApxOutput`] exposes them both
//! ways.

pub mod approximator;
pub mod intervals;
pub mod long;
pub mod rounding;

use congest::bfs_tree::build_bfs_tree;
use congest::{Metrics, Network};
use graphkit::Dist;

use crate::{knowledge, Instance, Params, SolveError};

/// Output of the approximate solver: per-edge values `x` with
/// `|st ⋄ e| ≤ x ≤ (1+ε)·|st ⋄ e|`.
#[derive(Clone, Debug)]
pub struct ApxOutput {
    /// Scaled numerators: `x_i = scaled[i] / den` exactly.
    pub scaled: Vec<Dist>,
    /// The common denominator.
    pub den: u64,
    /// Full metrics of the run.
    pub metrics: Metrics,
}

impl ApxOutput {
    /// The approximate replacement lengths as floats.
    pub fn values(&self) -> Vec<f64> {
        self.scaled
            .iter()
            .map(|d| match d.finite() {
                Some(v) => v as f64 / self.den as f64,
                None => f64::INFINITY,
            })
            .collect()
    }

    /// Checks the Theorem 3 guarantee against exact oracle values using
    /// exact rational arithmetic: `oracle ≤ x ≤ (1+ε)·oracle`.
    pub fn check_guarantee(
        &self,
        oracle: &[Dist],
        eps_num: u64,
        eps_den: u64,
    ) -> Result<(), String> {
        if oracle.len() != self.scaled.len() {
            return Err("length mismatch".into());
        }
        for (i, (&x, &o)) in self.scaled.iter().zip(oracle).enumerate() {
            match (x.finite(), o.finite()) {
                (None, None) => {}
                (Some(_), None) => {
                    return Err(format!("edge {i}: finite answer but oracle is ∞"));
                }
                (None, Some(_)) => {
                    return Err(format!("edge {i}: ∞ answer but oracle is finite"));
                }
                (Some(x), Some(o)) => {
                    // x/den >= o  <=>  x >= o*den
                    let x = x as u128;
                    let o = o as u128;
                    let den = self.den as u128;
                    if x < o * den {
                        return Err(format!("edge {i}: answer below oracle"));
                    }
                    // x/den <= (1+ε)o  <=>  x*eps_den <= o*den*(eps_den+eps_num)
                    if x * eps_den as u128 > o * den * (eps_den as u128 + eps_num as u128) {
                        return Err(format!(
                            "edge {i}: answer exceeds (1+ε)·oracle ({x}/{} vs {o})",
                            self.den
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Theorem 3: `(1+ε)`-approximate RPaths for weighted directed graphs in
/// `eO(n^{2/3} + D)` rounds, w.h.p.
///
/// Every phase runs on the sharded-parallel engine path, so the answers
/// and the per-phase [`congest::RunStats`] are bit-identical at any
/// `CONGEST_THREADS` setting.
///
/// # Errors
///
/// Returns [`SolveError::Partitioned`] when the communication graph is
/// disconnected.
pub fn solve(inst: &Instance<'_>, params: &Params) -> Result<ApxOutput, SolveError> {
    let mut session = crate::SolverSession::new(inst.graph, params.clone());
    let (answers, mut metrics) =
        session.solve_instance(inst, params, crate::SolverKind::Weighted)?;
    metrics.record_cache(session.stats().cache);
    Ok(ApxOutput {
        scaled: answers.scaled.clone(),
        den: answers.den,
        metrics,
    })
}

/// Like [`solve`], but on a caller-provided network (pre-configured
/// bandwidth, cut accounting, or thread counts); metrics accumulate on
/// `net`.
///
/// # Errors
///
/// Returns [`SolveError::Partitioned`] when the communication graph is
/// disconnected.
pub fn solve_on(
    net: &mut Network<'_>,
    inst: &Instance<'_>,
    params: &Params,
) -> Result<ScaledAnswers, SolveError> {
    let (tree, _) = build_bfs_tree(net, inst.s())?;
    let know = knowledge::acquire(net, inst, params, &tree);
    debug_assert_eq!(know.dist_s, inst.prefix);

    // Proposition 7.1: short detours via rounding + interval pipelining.
    let short = intervals::solve_short_apx(net, inst, params, &tree);
    // Proposition 7.11: long detours via approximate landmark distances.
    let long = long::solve_long_apx(net, inst, params, &tree);

    // Both sides produce scaled values; bring them to a common
    // denominator and take the minimum.
    let den = lcm(short.den, long.den);
    let scaled = short
        .scaled
        .iter()
        .zip(&long.scaled)
        .map(|(&a, &b)| {
            let a2 = a.saturating_mul(den / short.den);
            let b2 = b.saturating_mul(den / long.den);
            a2.min(b2)
        })
        .collect();
    Ok(ScaledAnswers { scaled, den })
}

/// A pair (scaled lengths, denominator) produced by one side of the
/// algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScaledAnswers {
    /// Scaled numerators, per path edge.
    pub scaled: Vec<Dist>,
    /// Common denominator.
    pub den: u64,
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::alg::replacement_lengths;
    use graphkit::alg::shortest_st_path;
    use graphkit::gen::random_weighted_digraph;

    fn weighted_instance(
        n: usize,
        m: usize,
        w: u64,
        seed: u64,
    ) -> Option<(graphkit::DiGraph, usize, usize)> {
        let g = random_weighted_digraph(n, m, w, seed);
        let (s, t) = graphkit::gen::random_reachable_pair(&g, seed ^ 1)?;
        let p = shortest_st_path(&g, s, t)?;
        if p.hops() < 3 {
            return None;
        }
        Some((g, s, t))
    }

    #[test]
    fn theorem3_guarantee_on_random_weighted() {
        let mut tested = 0;
        for seed in 0..14 {
            let Some((g, s, t)) = weighted_instance(36, 110, 12, seed) else {
                continue;
            };
            let inst = Instance::from_endpoints(&g, s, t).unwrap();
            let mut params = Params::with_zeta(inst.n(), 6).with_seed(seed);
            params.landmark_prob = 1.0;
            let out = solve(&inst, &params).unwrap();
            let oracle = replacement_lengths(&g, &inst.path);
            out.check_guarantee(&oracle, params.eps_num, params.eps_den)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            tested += 1;
        }
        assert!(tested >= 5, "too few usable instances ({tested})");
    }

    #[test]
    fn tighter_epsilon_still_holds() {
        let mut tested = 0;
        for seed in 20..30 {
            let Some((g, s, t)) = weighted_instance(30, 90, 8, seed) else {
                continue;
            };
            let inst = Instance::from_endpoints(&g, s, t).unwrap();
            let mut params = Params::with_zeta(inst.n(), 5)
                .with_seed(seed)
                .with_eps(1, 10);
            params.landmark_prob = 1.0;
            let out = solve(&inst, &params).unwrap();
            let oracle = replacement_lengths(&g, &inst.path);
            out.check_guarantee(&oracle, 1, 10)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            tested += 1;
        }
        assert!(tested >= 4);
    }

    #[test]
    fn unweighted_graphs_work_too() {
        // Theorem 3 subsumes unweighted graphs (weights all 1).
        let (g, s, t) = graphkit::gen::parallel_lane(12, 3, 2);
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        let mut params = Params::with_zeta(inst.n(), 4);
        params.landmark_prob = 1.0;
        let out = solve(&inst, &params).unwrap();
        let oracle = replacement_lengths(&g, &inst.path);
        out.check_guarantee(&oracle, params.eps_num, params.eps_den)
            .unwrap();
    }
}
