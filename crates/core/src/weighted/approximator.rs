//! Lemmas 7.5 / 7.6 / 7.2: short-detour approximators.
//!
//! For every scale `d`, the trimmed hop-BFS of Lemma 4.2 runs on the
//! rounding graph `G_d` (treating it as unweighted), once backwards
//! (locating detour *ends*, Objective::MaxIndex) and once forwards
//! (locating detour *starts*, Objective::MinIndex). Each `(level, f*)`
//! entry yields a candidate pair `(endpoint, length)`; collecting the
//! candidates across scales and taking suffix/prefix minima produces the
//! good approximations
//!
//! ```text
//! X̃({i}, [j, ∞))   — detours starting exactly at v_i, ending at ≥ j
//! X̃((−∞, j], {i})  — detours ending exactly at v_i, starting at ≤ j
//! ```
//!
//! All values are scaled numerators over [`super::rounding::ScaleSet::den`].

use congest::Network;
use graphkit::Dist;

use crate::short::hop_bfs::{hop_constrained_bfs, HopBfsConfig, Objective};
use crate::weighted::rounding::ScaleSet;
use crate::{Instance, Params};

/// The two tables of good approximations (Lemma 7.6).
#[derive(Clone, Debug)]
pub struct ShortApprox {
    /// Common denominator of all values.
    pub den: u64,
    /// `fwd[i][j]` = scaled `X̃({i}, [j, ∞))`, for `j > i` (else ∞).
    pub fwd: Vec<Vec<Dist>>,
    /// `bwd[i][j]` = scaled `X̃((−∞, j], {i})`, for `j < i` (else ∞).
    pub bwd: Vec<Vec<Dist>>,
}

/// Runs the `O(log(mW))` rounding-BFS executions (Lemma 7.5) and distills
/// the approximation tables (Lemma 7.2). Deterministic;
/// `O(ζ·(1+2/ε)·log(mW))` rounds.
pub fn compute(net: &mut Network<'_>, inst: &Instance<'_>, params: &Params) -> ShortApprox {
    let h = inst.hops();
    let set = ScaleSet::build(inst.graph, params, params.zeta as u64);
    let aux_suffix: Vec<u64> = (0..=h)
        .map(|j| inst.suffix[j].finite().expect("path distances finite"))
        .collect();
    let aux_prefix: Vec<u64> = (0..=h)
        .map(|j| inst.prefix[j].finite().expect("path distances finite"))
        .collect();

    // best_end[i][k]: best candidate with a detour v_i -> v_k (forward).
    let mut best_end = vec![vec![Dist::INF; h + 1]; h + 1];
    // best_start[i][k]: best candidate with a detour v_k -> v_i.
    let mut best_start = vec![vec![Dist::INF; h + 1]; h + 1];

    for scale in &set.scales {
        let fwd_cfg = HopBfsConfig {
            zeta: set.hop_cap as usize,
            objective: Objective::MaxIndex,
            delays: Some(&scale.delays),
            aux: &aux_suffix,
        };
        let fstar = hop_constrained_bfs(
            net,
            inst,
            &fwd_cfg,
            &format!("apx/hop-bfs-end-d{}", scale.d),
        );
        for i in 0..=h {
            for (hops, entry) in fstar.table[i].iter().enumerate().skip(1) {
                if let Some((k, suffix_k)) = *entry {
                    if k <= i {
                        continue;
                    }
                    // Validity: prefix(i) + hops·µ_d + suffix(k) bounds a
                    // real replacement path (Observation 7.3).
                    let val = Dist::new(
                        set.scale_exact(aux_prefix[i])
                            + hops as u64 * scale.hop_value
                            + set.scale_exact(suffix_k),
                    );
                    best_end[i][k] = best_end[i][k].min(val);
                }
            }
        }
        let bwd_cfg = HopBfsConfig {
            zeta: set.hop_cap as usize,
            objective: Objective::MinIndex,
            delays: Some(&scale.delays),
            aux: &aux_prefix,
        };
        let fstar = hop_constrained_bfs(
            net,
            inst,
            &bwd_cfg,
            &format!("apx/hop-bfs-start-d{}", scale.d),
        );
        for i in 0..=h {
            for (hops, entry) in fstar.table[i].iter().enumerate().skip(1) {
                if let Some((k, prefix_k)) = *entry {
                    if k >= i {
                        continue;
                    }
                    let val = Dist::new(
                        set.scale_exact(prefix_k)
                            + hops as u64 * scale.hop_value
                            + set.scale_exact(aux_suffix[i]),
                    );
                    best_start[i][k] = best_start[i][k].min(val);
                }
            }
        }
    }

    // Lemma 7.2: X̃({i},[j,∞)) = min over pairs (k, d) with k >= j.
    let fwd = best_end
        .into_iter()
        .map(|row| {
            let mut out = vec![Dist::INF; h + 2];
            for j in (0..=h).rev() {
                out[j] = out[j + 1].min(row[j]);
            }
            out.truncate(h + 1);
            out
        })
        .collect();
    let bwd = best_start
        .into_iter()
        .map(|row| {
            let mut out = vec![Dist::INF; h + 1];
            let mut running = Dist::INF;
            for (j, &v) in row.iter().enumerate() {
                running = running.min(v);
                out[j] = running;
            }
            out
        })
        .collect();
    ShortApprox {
        den: set.den,
        fwd,
        bwd,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::alg::hop_bounded_dists;
    use graphkit::alg::shortest_st_path;
    use graphkit::gen::random_weighted_digraph;

    /// Exact X({i}, [j, ∞)) restricted to detours of <= ζ hops, via the
    /// centralized hop-bounded oracle.
    fn oracle_x(inst: &Instance<'_>, zeta: usize) -> Vec<Vec<Dist>> {
        let h = inst.hops();
        (0..=h)
            .map(|i| {
                let from_vi = hop_bounded_dists(inst.graph, inst.path.node(i), zeta, |e| {
                    inst.in_g_minus_p(e)
                });
                let mut best = vec![Dist::INF; h + 1];
                for j in 0..=h {
                    if j > i {
                        best[j] = inst.prefix[i] + from_vi[inst.path.node(j)] + inst.suffix[j];
                    }
                }
                let mut out = vec![Dist::INF; h + 2];
                for j in (0..=h).rev() {
                    out[j] = out[j + 1].min(best[j]);
                }
                out.truncate(h + 1);
                out
            })
            .collect()
    }

    /// Unrestricted Y({i}, [j, ∞)): detours of any hop count.
    fn oracle_y(inst: &Instance<'_>) -> Vec<Vec<Dist>> {
        let h = inst.hops();
        (0..=h)
            .map(|i| {
                let from_vi = graphkit::alg::dijkstra(inst.graph, inst.path.node(i), |e| {
                    inst.in_g_minus_p(e)
                });
                let mut best = vec![Dist::INF; h + 1];
                for (j, b) in best.iter_mut().enumerate().take(h + 1).skip(i + 1) {
                    *b = inst.prefix[i] + from_vi[inst.path.node(j)] + inst.suffix[j];
                }
                let mut out = vec![Dist::INF; h + 2];
                for j in (0..=h).rev() {
                    out[j] = out[j + 1].min(best[j]);
                }
                out.truncate(h + 1);
                out
            })
            .collect()
    }

    #[test]
    fn approximator_brackets_the_oracle() {
        let mut tested = 0;
        for seed in 0..12 {
            let g = random_weighted_digraph(30, 90, 10, seed);
            let Some((s, t)) = graphkit::gen::random_reachable_pair(&g, seed) else {
                continue;
            };
            let Some(p) = shortest_st_path(&g, s, t) else {
                continue;
            };
            if p.hops() < 3 {
                continue;
            }
            let inst = Instance::new(&g, p).unwrap();
            let params = Params::with_zeta(inst.n(), 5).with_eps(1, 2);
            let mut net = Network::new(inst.graph);
            let apx = compute(&mut net, &inst, &params);
            let oracle = oracle_x(&inst, 5);
            let unrestricted = oracle_y(&inst);
            let h = inst.hops();
            for i in 0..=h {
                for j in (i + 1)..=h {
                    let got = apx.fwd[i][j];
                    // Validity: never below the *unrestricted* Y({i},[j,∞))
                    // (candidates may use detours with more than ζ hops,
                    // which is allowed and can undercut the ζ-hop X).
                    if let Some(g_val) = got.finite() {
                        let y = unrestricted[i][j]
                            .finite()
                            .expect("finite candidate implies a real path");
                        assert!(
                            g_val >= y * apx.den,
                            "seed {seed} ({i},{j}): shrunk below Y"
                        );
                    }
                    // Approximation: at most (1+ε)·X({i},[j,∞)) (ε = 1/2).
                    if let Some(w) = oracle[i][j].finite() {
                        let g_val = got
                            .finite()
                            .unwrap_or_else(|| panic!("seed {seed} ({i},{j}): missing candidate"));
                        assert!(
                            g_val * 2 <= w * apx.den * 3,
                            "seed {seed} ({i},{j}): {g_val} > 1.5·{w}·{}",
                            apx.den
                        );
                    }
                }
            }
            tested += 1;
        }
        assert!(tested >= 5, "too few instances: {tested}");
    }

    #[test]
    fn backward_table_mirrors_forward_on_symmetric_instance() {
        // On any instance: bwd[i][j] must be a valid upper bound for
        // detours ending at v_i starting at <= j (validity only).
        let g = random_weighted_digraph(25, 70, 6, 42);
        let Some((s, t)) = graphkit::gen::random_reachable_pair(&g, 1) else {
            return;
        };
        let Some(p) = shortest_st_path(&g, s, t) else {
            return;
        };
        if p.hops() < 2 {
            return;
        }
        let inst = Instance::new(&g, p).unwrap();
        let params = Params::with_zeta(inst.n(), 4);
        let mut net = Network::new(inst.graph);
        let apx = compute(&mut net, &inst, &params);
        // Validity: every finite bwd value, rescaled, is >= the true
        // unrestricted replacement value through that split (>= 2-SiSP
        // as a crude but sound lower bound).
        let best_any = graphkit::alg::second_simple_shortest(&g, &inst.path);
        if let Some(global_min) = best_any.finite() {
            for i in 0..=inst.hops() {
                for j in 0..i {
                    if let Some(v) = apx.bwd[i][j].finite() {
                        assert!(v >= global_min * apx.den);
                    }
                }
            }
        }
    }
}
