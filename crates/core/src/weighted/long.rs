//! Section 7.3 / Proposition 7.11: long detours in weighted graphs.
//!
//! The structure is identical to the unweighted Section 5 pipeline; the
//! only change (as in the paper) is that every exact hop-bounded BFS is
//! replaced by a `(1+ε)`-approximate hop-bounded multi-source shortest
//! paths computation. We realize the latter with the same rounding
//! device as Section 7.1: for each scale `d`, a multi-source BFS with
//! per-edge delays `⌈w(e)/µ_d⌉` (our stand-in for [Nan14, Thm 3.6] — see
//! DESIGN.md, substitutions table). All outputs are scaled rationals
//! over the common denominator.

use congest::bfs_tree::BfsTree;
use congest::multi_bfs::{default_budget, multi_source_bfs, MultiBfsConfig};
use congest::Network;
use graphkit::{Dist, NodeId};

use crate::long::dists::compose_from_tables;
use crate::long::{landmarks, segments};
use crate::weighted::rounding::ScaleSet;
use crate::weighted::ScaledAnswers;
use crate::{Instance, Params};

/// `(1+ε)`-approximate ζ-hop distances from `k` sources, as scaled
/// numerators over `set.den`. One rounded multi-source BFS per scale.
pub fn approx_hop_multi_source(
    net: &mut Network<'_>,
    inst: &Instance<'_>,
    set: &ScaleSet,
    sources: &[NodeId],
    reverse: bool,
    phase: &str,
    factor: u64,
) -> Vec<Vec<Dist>> {
    let n = inst.n();
    let k = sources.len();
    let mut best = vec![vec![Dist::INF; n]; k];
    for scale in &set.scales {
        let cfg = MultiBfsConfig {
            sources,
            max_dist: set.hop_cap,
            reverse,
            delays: Some(&scale.delays),
        };
        let budget =
            default_budget(k, set.hop_cap).max(4 * set.hop_cap + 4 * k as u64 + 64) * factor;
        let (hops, _) = multi_source_bfs(
            net,
            &cfg,
            |e| inst.in_g_minus_p(e),
            &format!("{phase}-d{}", scale.d),
            budget,
        )
        .expect("rounded multi-BFS quiesces");
        for (src, row) in hops.iter().enumerate() {
            for v in 0..n {
                if let Some(hcount) = row[v].finite() {
                    let scaled = Dist::new(hcount * scale.hop_value);
                    best[src][v] = best[src][v].min(scaled);
                }
            }
        }
    }
    best
}

/// Proposition 7.11: per-edge scaled upper bounds, `(1+ε)`-tight (w.h.p.)
/// for edges whose best replacement uses a long detour.
pub fn solve_long_apx(
    net: &mut Network<'_>,
    inst: &Instance<'_>,
    params: &Params,
    tree: &BfsTree,
) -> ScaledAnswers {
    let lms = landmarks::sample(inst, params);
    let set = ScaleSet::build(inst.graph, params, params.zeta as u64);
    if lms.is_empty() {
        return ScaledAnswers {
            scaled: vec![Dist::INF; inst.hops()],
            den: set.den,
        };
    }
    // Approximate hop-bounded distances from/to every landmark.
    let fwd_hb = approx_hop_multi_source(
        net,
        inst,
        &set,
        &lms,
        false,
        "apx-long/bfs-fwd",
        params.budget_factor,
    );
    let bwd_hb = approx_hop_multi_source(
        net,
        inst,
        &set,
        &lms,
        true,
        "apx-long/bfs-bwd",
        params.budget_factor,
    );
    // Lemma 5.4-style broadcast + closure + composition, on scaled values.
    let ld = compose_from_tables(net, inst, &lms, fwd_hb, bwd_hb, tree);
    // Scaled prefix/suffix distances along P.
    let h = inst.hops();
    let prefix: Vec<Dist> = (0..=h)
        .map(|i| Dist::new(set.scale_exact(inst.prefix[i].finite().expect("finite"))))
        .collect();
    let suffix: Vec<Dist> = (0..=h)
        .map(|i| Dist::new(set.scale_exact(inst.suffix[i].finite().expect("finite"))))
        .collect();
    let m_table = segments::distances_from_s(net, inst, params, &ld, tree, &prefix);
    let n_table = segments::distances_to_t(net, inst, params, &ld, tree, &suffix);
    let scaled = (0..h)
        .map(|i| {
            (0..lms.len())
                .map(|j| m_table[i][j] + n_table[i][j])
                .min()
                .unwrap_or(Dist::INF)
        })
        .collect();
    ScaledAnswers {
        scaled,
        den: set.den,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::bfs_tree::build_bfs_tree;
    use graphkit::alg::{dijkstra, replacement_lengths, shortest_st_path};
    use graphkit::gen::random_weighted_digraph;

    #[test]
    fn approx_multi_source_brackets_exact_distances() {
        let mut tested = 0;
        for seed in 0..10 {
            let g = random_weighted_digraph(28, 80, 9, seed);
            let Some((s, t)) = graphkit::gen::random_reachable_pair(&g, seed) else {
                continue;
            };
            let Some(p) = shortest_st_path(&g, s, t) else {
                continue;
            };
            if p.hops() < 2 {
                continue;
            }
            let inst = Instance::new(&g, p).unwrap();
            let params = Params::with_zeta(inst.n(), inst.n()).with_eps(1, 2);
            let set = ScaleSet::build(inst.graph, &params, params.zeta as u64);
            let sources = vec![s, t];
            let mut net = Network::new(inst.graph);
            let got = approx_hop_multi_source(&mut net, &inst, &set, &sources, false, "t", 1);
            for (si, &src) in sources.iter().enumerate() {
                let exact = dijkstra(inst.graph, src, |e| inst.in_g_minus_p(e));
                for v in inst.graph.nodes() {
                    match (got[si][v].finite(), exact[v].finite()) {
                        (None, None) => {}
                        (Some(gv), Some(ev)) => {
                            assert!(gv >= ev * set.den, "seed {seed}: shrunk");
                            assert!(
                                gv * 2 <= ev * set.den * 3,
                                "seed {seed}: {gv} > 1.5·{ev}·{}",
                                set.den
                            );
                        }
                        (got_f, exact_f) => panic!(
                            "seed {seed} src {src} v {v}: finiteness mismatch {got_f:?} vs {exact_f:?}"
                        ),
                    }
                }
            }
            tested += 1;
        }
        assert!(tested >= 4);
    }

    #[test]
    fn long_apx_is_valid_upper_bound() {
        let mut tested = 0;
        for seed in 0..10 {
            let g = random_weighted_digraph(30, 90, 8, seed + 40);
            let Some((s, t)) = graphkit::gen::random_reachable_pair(&g, seed) else {
                continue;
            };
            let Some(p) = shortest_st_path(&g, s, t) else {
                continue;
            };
            if p.hops() < 3 {
                continue;
            }
            let inst = Instance::new(&g, p).unwrap();
            let mut params = Params::with_zeta(inst.n(), 5).with_eps(1, 2);
            params.landmark_prob = 1.0;
            let mut net = Network::new(inst.graph);
            let (tree, _) = build_bfs_tree(&mut net, inst.s()).unwrap();
            let got = solve_long_apx(&mut net, &inst, &params, &tree);
            let oracle = replacement_lengths(&g, &inst.path);
            for i in 0..inst.hops() {
                if let Some(gv) = got.scaled[i].finite() {
                    let ov = oracle[i]
                        .finite()
                        .expect("finite answer implies a real replacement path");
                    assert!(gv >= ov * got.den, "seed {seed} edge {i}: below oracle");
                }
            }
            tested += 1;
        }
        assert!(tested >= 4);
    }
}
