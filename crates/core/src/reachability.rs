//! Replacement *reachability* (Section 8): for each edge `e` of `P`, is
//! `t` reachable from `s` at all in `G \ e`?
//!
//! The paper's conclusions note that even this yes/no variant is not
//! known to beat `eO(n^{2/3} + D)` rounds — the best known approach is
//! to run a replacement-paths algorithm and read off finiteness, which
//! is exactly what this module does (Theorem 1 for unweighted inputs,
//! Theorem 3 for weighted ones — reachability does not care about the
//! `(1+ε)` stretch).

use congest::{Metrics, Network};

use crate::{unweighted, weighted, Instance, Params, SolveError};

/// Output of the replacement-reachability computation.
#[derive(Clone, Debug)]
pub struct ReachabilityOutput {
    /// `survivable[i]` iff `t` stays reachable when `(v_i, v_{i+1})`
    /// fails.
    pub survivable: Vec<bool>,
    /// Full metrics of the run.
    pub metrics: Metrics,
}

impl ReachabilityOutput {
    /// `true` iff the path survives *any* single-edge failure.
    pub fn fully_protected(&self) -> bool {
        self.survivable.iter().all(|&b| b)
    }

    /// Indices of unprotected path edges (single points of failure).
    pub fn single_points_of_failure(&self) -> Vec<usize> {
        self.survivable
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| (!b).then_some(i))
            .collect()
    }
}

/// Computes replacement reachability for every path edge, w.h.p.
///
/// # Errors
///
/// Returns [`SolveError::Partitioned`] when the communication graph is
/// disconnected.
pub fn solve(inst: &Instance<'_>, params: &Params) -> Result<ReachabilityOutput, SolveError> {
    let kind = if inst.graph.is_unweighted() {
        crate::SolverKind::Unweighted
    } else {
        crate::SolverKind::Weighted
    };
    let mut session = crate::SolverSession::new(inst.graph, params.clone());
    let (answers, mut metrics) = session.solve_instance(inst, params, kind)?;
    metrics.record_cache(session.stats().cache);
    Ok(ReachabilityOutput {
        survivable: answers.scaled.iter().map(|d| d.is_finite()).collect(),
        metrics,
    })
}

/// Like [`solve`], but on a caller-provided network; metrics accumulate
/// on `net`.
///
/// # Errors
///
/// Returns [`SolveError::Partitioned`] when the communication graph is
/// disconnected.
pub fn solve_on(
    net: &mut Network<'_>,
    inst: &Instance<'_>,
    params: &Params,
) -> Result<Vec<bool>, SolveError> {
    if inst.graph.is_unweighted() {
        let replacement = unweighted::solve_on(net, inst, params)?;
        Ok(replacement.iter().map(|d| d.is_finite()).collect())
    } else {
        let answers = weighted::solve_on(net, inst, params)?;
        Ok(answers.scaled.iter().map(|d| d.is_finite()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::alg::replacement_lengths;
    use graphkit::gen::{parallel_lane, planted_path_digraph, random_weighted_digraph};

    fn oracle_reach(g: &graphkit::DiGraph, inst: &Instance<'_>) -> Vec<bool> {
        replacement_lengths(g, &inst.path)
            .iter()
            .map(|d| d.is_finite())
            .collect()
    }

    #[test]
    fn matches_oracle_on_unweighted() {
        for seed in 0..5 {
            let (g, s, t) = planted_path_digraph(40, 12, 70, seed);
            let inst = Instance::from_endpoints(&g, s, t).unwrap();
            let mut params = Params::with_zeta(40, 5).with_seed(seed);
            params.landmark_prob = 1.0;
            let out = solve(&inst, &params).unwrap();
            assert_eq!(out.survivable, oracle_reach(&g, &inst), "seed {seed}");
        }
    }

    #[test]
    fn spof_detection() {
        // Protection only between switches 0 and 6 of a 9-hop path:
        // edges 6, 7, 8 are single points of failure.
        let (g, s, t) = parallel_lane(6, 6, 1);
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        let mut params = Params::with_zeta(inst.n(), inst.n());
        params.landmark_prob = 1.0;
        let out = solve(&inst, &params).unwrap();
        assert!(out.fully_protected());
        assert!(out.single_points_of_failure().is_empty());

        let (g2, s2, t2) = planted_path_digraph(8, 7, 0, 0);
        let inst2 = Instance::from_endpoints(&g2, s2, t2).unwrap();
        let out2 = solve(&inst2, &params).unwrap();
        assert!(!out2.fully_protected());
        assert_eq!(out2.single_points_of_failure(), (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn matches_oracle_on_weighted() {
        let mut tested = 0;
        for seed in 0..10 {
            let g = random_weighted_digraph(30, 90, 8, seed);
            let Some((s, t)) = graphkit::gen::random_reachable_pair(&g, seed) else {
                continue;
            };
            let Ok(inst) = Instance::from_endpoints(&g, s, t) else {
                continue;
            };
            if inst.hops() < 3 {
                continue;
            }
            let mut params = Params::with_zeta(30, 5).with_seed(seed);
            params.landmark_prob = 1.0;
            let out = solve(&inst, &params).unwrap();
            assert_eq!(out.survivable, oracle_reach(&g, &inst), "seed {seed}");
            tested += 1;
        }
        assert!(tested >= 4);
    }
}
