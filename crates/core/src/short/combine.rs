//! Lemmas 4.3 and 4.4: from `f*` tables to per-edge short-detour answers.

use congest::pipeline::{diagonal_dp, Lane};
use congest::Network;
use graphkit::Dist;

use crate::short::hop_bfs::FStar;
use crate::Instance;

/// Lemma 4.3 (local computation): turns `f*_{v_i}` into the table
/// `X[i, ≥ i+d]` for `d = 1..=ζ`.
///
/// `X[i, ≥ j]` is the shortest length of a replacement path with a short
/// detour that starts precisely at `v_i` and ends at `v_{j'}` for some
/// `j' ≥ j`. The recurrence (proved in the paper) is
///
/// ```text
/// X[i, ≥ j] = min( X[i, ≥ j+1],  h_st − (j−i) + h*(i, j) )
/// h*(i, j)  = min { d ∈ [ζ] : f*_{v_i}(d) = j }
/// ```
///
/// Returns `x_ge[i][d-1] = X[i, ≥ i+d]`.
pub fn x_ge_tables(inst: &Instance<'_>, fstar: &FStar, zeta: usize) -> Vec<Vec<Dist>> {
    let h = inst.hops();
    (0..=h)
        .map(|i| {
            // h_first[j - i - 1] = h*(i, j) for j in i+1 ..= min(i+ζ, h).
            let span = zeta.min(h - i);
            let mut h_first = vec![u64::MAX; span];
            for d in 1..=zeta {
                if let Some((j, _)) = fstar.table[i][d] {
                    if j > i && j <= i + span {
                        let slot = &mut h_first[j - i - 1];
                        if *slot == u64::MAX {
                            *slot = d as u64;
                        }
                    }
                }
            }
            let mut out = vec![Dist::INF; zeta];
            let mut running = Dist::INF;
            for d in (1..=span).rev() {
                if h_first[d - 1] != u64::MAX {
                    let candidate = Dist::new(h as u64 - d as u64 + h_first[d - 1]);
                    running = running.min(candidate);
                }
                out[d - 1] = running;
            }
            out
        })
        .collect()
}

/// Lemma 4.4: the (ζ−1)-round systolic DP along `P` that turns
/// `X[i, ≥ j]` into `X[≤ i, ≥ i+1]`, the short-detour replacement length
/// for edge `(v_i, v_{i+1})`.
///
/// As derived in the paper, with `G(i, c) = X[≤ i, ≥ i+c]`:
///
/// ```text
/// G(i, ζ)    = X[i, ≥ i+ζ]                         (base, local)
/// G(i, c)    = min( G(i−1, c+1),  X[i, ≥ i+c] )    (one round per step)
/// ```
///
/// which is exactly one [`diagonal_dp`] run with `rounds = ζ − 1`.
pub fn pipeline_dp(
    net: &mut Network<'_>,
    inst: &Instance<'_>,
    x_ge: &[Vec<Dist>],
    zeta: usize,
) -> Vec<Dist> {
    let h = inst.hops();
    let lane = Lane::forward(inst.path.nodes().to_vec(), inst.path.edges().to_vec());
    let (cur, _) = diagonal_dp(
        net,
        &lane,
        |i| x_ge[i][zeta - 1],
        &|i, step| {
            let c = zeta as u64 - step; // c = ζ − r, down to 1
            debug_assert!(c >= 1);
            x_ge[i][(c - 1) as usize]
        },
        zeta as u64 - 1,
        "short/pipeline-dp",
    );
    cur[..h].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::short::hop_bfs::{hop_constrained_bfs, HopBfsConfig, Objective};
    use crate::{Instance, Params};
    use graphkit::alg::{bfs_hop_bounded, replacement_lengths};
    use graphkit::gen::planted_path_digraph;

    /// Centralized X[i, >= j]: enumerate exact detour endpoints by
    /// hop-bounded BFS from each v_i in G \ P.
    fn reference_x_ge(inst: &Instance<'_>, zeta: usize) -> Vec<Vec<Dist>> {
        let h = inst.hops();
        let g = inst.graph;
        (0..=h)
            .map(|i| {
                let from_vi =
                    bfs_hop_bounded(g, &[inst.path.node(i)], zeta, |e| !inst.is_path_edge[e]);
                // X[i, j] = h - (j - i) + detour(i, j), detour <= ζ hops.
                let mut out = vec![Dist::INF; zeta];
                for d in (1..=zeta.min(h - i)).rev() {
                    let j = i + d;
                    let mut best = if d < zeta.min(h - i) {
                        out[d] // X[i, >= j+1]
                    } else {
                        Dist::INF
                    };
                    if let Some(det) = from_vi[inst.path.node(j)].finite() {
                        best = best.min(Dist::new(h as u64 - d as u64 + det));
                    }
                    out[d - 1] = best;
                }
                out
            })
            .collect()
    }

    #[test]
    fn x_ge_matches_reference() {
        for seed in 0..6 {
            let (g, s, t) = planted_path_digraph(40, 12, 100, seed);
            let inst = Instance::from_endpoints(&g, s, t).unwrap();
            let zeta = 8;
            let aux: Vec<u64> = (0..=inst.hops())
                .map(|j| inst.suffix[j].finite().unwrap())
                .collect();
            let cfg = HopBfsConfig {
                zeta,
                objective: Objective::MaxIndex,
                delays: None,
                aux: &aux,
            };
            let mut net = Network::new(inst.graph);
            let fstar = hop_constrained_bfs(&mut net, &inst, &cfg, "test");
            let got = x_ge_tables(&inst, &fstar, zeta);
            let want = reference_x_ge(&inst, zeta);
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn full_pipeline_on_planted_graphs() {
        for seed in 0..6 {
            let (g, s, t) = planted_path_digraph(40, 14, 120, seed + 50);
            let inst = Instance::from_endpoints(&g, s, t).unwrap();
            let params = Params::with_zeta(inst.n(), inst.n());
            let mut net = Network::new(inst.graph);
            let got = crate::short::solve_short(&mut net, &inst, &params);
            let want = replacement_lengths(&g, &inst.path);
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn zeta_one_sees_only_single_hop_detours() {
        // Graph: edge 0 -> 2 (the shortest path, 1 hop) plus the 2-hop
        // route 0 -> 1 -> 2. The only replacement detour has 2 hops.
        let mut b = graphkit::GraphBuilder::new(3);
        b.add_arc(0, 1);
        b.add_arc(1, 2);
        b.add_arc(0, 2);
        let g = b.build();
        let inst = Instance::from_endpoints(&g, 0, 2).unwrap();
        assert_eq!(inst.hops(), 1);
        let want = replacement_lengths(&g, &inst.path);
        assert_eq!(want, vec![Dist::new(2)]);

        // ζ = 1 cannot see the 2-hop detour.
        let mut net = Network::new(inst.graph);
        let got1 = crate::short::solve_short(&mut net, &inst, &Params::with_zeta(3, 1));
        assert_eq!(got1, vec![Dist::INF]);

        // ζ = 2 can.
        let mut net = Network::new(inst.graph);
        let got2 = crate::short::solve_short(&mut net, &inst, &Params::with_zeta(3, 2));
        assert_eq!(got2, want);
    }
}
