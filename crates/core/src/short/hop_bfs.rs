//! Lemma 4.2: hop-constrained BFS with furthest-origin trimming.
//!
//! Every path vertex starts a BFS in `G \ P`; to avoid congestion, in
//! each round every node forwards only the strongest origin it heard in
//! the previous round ("strongest" = furthest along `P` for the paper's
//! backward BFS; the mirrored variant used by Section 7 keeps the
//! *earliest* origin instead). After `d` rounds a node's current value is
//! exactly
//!
//! ```text
//! f*_u(d) = max { j : a path u → v_j of length exactly d avoiding P }
//! ```
//!
//! (resp. `min { k : a path v_k → u ... }` for the mirrored variant).
//!
//! Messages carry the origin's index plus an auxiliary word (the origin's
//! distance to `t`, resp. from `s`) so the weighted algorithm can
//! reconstruct candidate lengths; in unweighted graphs the auxiliary word
//! is redundant but harmless.
//!
//! With per-edge *delays* the BFS runs on the rounding graph `G_d` of
//! Section 7: an edge of delay `w` behaves like `w` unit hops, which the
//! receiver models by holding the message `w - 1` extra rounds.

use congest::{word_bits, Network, NodeCtx, Scheduling, ShardedProtocol};
use graphkit::EdgeId;

use crate::Instance;

/// Which endpoint of a detour the BFS locates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Objective {
    /// Backward BFS (messages travel against edge direction): node `u`
    /// learns the largest `j` with a `u → v_j` path of length exactly
    /// `d` in `G \ P`. This is the paper's Lemma 4.2.
    MaxIndex,
    /// Forward BFS (messages travel along edge direction): node `u`
    /// learns the smallest `k` with a `v_k → u` path of length exactly
    /// `d` in `G \ P`. The mirror image, used for detour *starts*
    /// (Section 7).
    MinIndex,
}

/// Configuration for [`hop_constrained_bfs`].
pub struct HopBfsConfig<'a> {
    /// Number of BFS levels ζ (in delay units).
    pub zeta: usize,
    /// Which index to propagate.
    pub objective: Objective,
    /// Optional per-edge delays (`G_d` rounding); `0` disables an edge.
    pub delays: Option<&'a [u64]>,
    /// Per path position: the auxiliary word attached to that origin's
    /// announcements (distance to `t` for [`Objective::MaxIndex`], from
    /// `s` for [`Objective::MinIndex`]).
    pub aux: &'a [u64],
}

/// The tables `f*`: `table[pos][d] = Some((index, aux))` gives the
/// strongest path-vertex index whose BFS reaches `v_pos` in exactly `d`
/// (delayed) hops, together with that origin's auxiliary word.
#[derive(Clone, Debug)]
pub struct FStar {
    /// Indexed `[path position][level d]`, `d = 0..=ζ`.
    pub table: Vec<Vec<Option<(usize, u64)>>>,
}

#[derive(Clone, Copy, Debug)]
struct Token {
    idx: u32,
    aux: u64,
}

/// Read-only per-run state shared by every node.
struct HopShared<'a, 'i> {
    inst: &'i Instance<'i>,
    cfg: &'a HopBfsConfig<'a>,
}

/// One node's BFS state (sharded: the engine steps disjoint slices of
/// these from worker threads).
struct HopNode {
    /// The value computed this round: f*_u(round).
    cur: Option<Token>,
    /// Best candidate gathered for the *current* round.
    gather: Option<Token>,
    /// Delayed candidates: (release_round, token).
    held: Vec<(u64, Token)>,
    /// Per level `d`: the f* record. Allocated only at path vertices;
    /// the tables are assembled from these after the run.
    record: Vec<Option<(usize, u64)>>,
}

struct HopBfsProtocol<'a, 'i> {
    shared: HopShared<'a, 'i>,
    nodes: Vec<HopNode>,
}

fn delay_of(cfg: &HopBfsConfig<'_>, e: EdgeId) -> u64 {
    match cfg.delays {
        Some(d) => d[e],
        None => 1,
    }
}

fn stronger(objective: Objective, a: Token, b: Option<Token>) -> bool {
    match b {
        None => true,
        Some(b) => match objective {
            Objective::MaxIndex => a.idx > b.idx,
            Objective::MinIndex => a.idx < b.idx,
        },
    }
}

fn offer(objective: Objective, node: &mut HopNode, t: Token) {
    if stronger(objective, t, node.gather) {
        node.gather = Some(t);
    }
}

impl<'a, 'i> ShardedProtocol for HopBfsProtocol<'a, 'i> {
    type Msg = Token;
    type Node = HopNode;
    type Shared = HopShared<'a, 'i>;

    fn msg_bits(_: &Self::Shared, m: &Token) -> u64 {
        word_bits(m.idx as u64) + word_bits(m.aux)
    }

    fn shared(&self) -> &Self::Shared {
        &self.shared
    }

    fn split(&mut self) -> (&Self::Shared, &mut [Self::Node]) {
        (&self.shared, &mut self.nodes)
    }

    fn step_node(shared: &Self::Shared, node: &mut HopNode, ctx: &mut NodeCtx<'_, Token>) {
        step(shared, node, ctx);
        // Held (delayed-edge) candidates mature on round numbers, not on
        // receipt: stay armed until they are all released.
        if !node.held.is_empty() {
            ctx.wake();
        }
    }

    fn scheduling(&self) -> Scheduling {
        Scheduling::ActiveSet
    }
}

fn step(shared: &HopShared<'_, '_>, node: &mut HopNode, ctx: &mut NodeCtx<'_, Token>) {
    let v = ctx.node;
    let round = ctx.round;
    let cfg = shared.cfg;
    let inst = shared.inst;
    if round > cfg.zeta as u64 {
        return;
    }
    node.gather = None;
    if round == 0 {
        // Base: S_0(v_i) = {i}.
        if let Some(pos) = inst.path_index[v] {
            offer(
                cfg.objective,
                node,
                Token {
                    idx: pos as u32,
                    aux: cfg.aux[pos],
                },
            );
        }
    } else {
        let ports = ctx.ports();
        for &(port_idx, tok) in ctx.inbox() {
            let port = ports[port_idx as usize];
            let w = delay_of(cfg, port.link);
            debug_assert!(w >= 1);
            if w == 1 {
                offer(cfg.objective, node, tok);
            } else {
                node.held.push((round + (w - 1), tok));
            }
        }
        let mut matured = Vec::new();
        node.held.retain(|&(release, tok)| {
            if release <= round {
                matured.push(tok);
                false
            } else {
                true
            }
        });
        for tok in matured {
            offer(cfg.objective, node, tok);
        }
    }
    node.cur = node.gather;
    if let (Some(_), Some(tok)) = (inst.path_index[v], node.cur) {
        node.record[round as usize] = Some((tok.idx as usize, tok.aux));
    }
    // Propagate the strongest origin.
    if let Some(tok) = node.cur {
        if round == cfg.zeta as u64 {
            return; // final level recorded; nothing further to send
        }
        for (pi, port) in ctx.ports().iter().enumerate() {
            // Exclude edges of P entirely (Lemma 4.2: the BFS lives in
            // G \ P) and respect travel direction.
            if inst.is_path_edge[port.link] {
                continue;
            }
            let sends_here = match cfg.objective {
                Objective::MaxIndex => !port.outgoing, // towards in-neighbors
                Objective::MinIndex => port.outgoing,  // towards out-neighbors
            };
            if !sends_here {
                continue;
            }
            let w = delay_of(cfg, port.link);
            if w == 0 || round + w > cfg.zeta as u64 {
                continue;
            }
            ctx.send(pi as u32, tok);
        }
    }
}

/// Runs Lemma 4.2 (or its mirror) and returns the `f*` tables for all
/// path vertices. Deterministic; charges exactly `ζ + 1` rounds.
///
/// Runs on the sharded-parallel engine path (every node is stepped
/// every active round in dense instances); results are bit-identical
/// to a sequential run.
pub fn hop_constrained_bfs(
    net: &mut Network<'_>,
    inst: &Instance<'_>,
    cfg: &HopBfsConfig<'_>,
    phase: &str,
) -> FStar {
    let n = inst.n();
    assert_eq!(
        cfg.aux.len(),
        inst.hops() + 1,
        "one aux word per path vertex"
    );
    if let Some(d) = cfg.delays {
        assert_eq!(d.len(), inst.graph.edge_count());
    }
    let mut proto = HopBfsProtocol {
        shared: HopShared { inst, cfg },
        nodes: (0..n)
            .map(|v| HopNode {
                cur: None,
                gather: None,
                held: Vec::new(),
                record: if inst.path_index[v].is_some() {
                    vec![None; cfg.zeta + 1]
                } else {
                    Vec::new()
                },
            })
            .collect(),
    };
    net.run_rounds_par(phase, &mut proto, cfg.zeta as u64 + 1);
    // Assemble the per-position tables from the path vertices' records.
    let mut table = vec![vec![None; cfg.zeta + 1]; inst.hops() + 1];
    for (v, node) in proto.nodes.into_iter().enumerate() {
        if let Some(pos) = inst.path_index[v] {
            table[pos] = node.record;
        }
    }
    FStar { table }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Instance;
    use graphkit::gen::{parallel_lane, planted_path_digraph};
    use graphkit::{DiGraph, GraphBuilder};

    /// Centralized reference for f* with the MaxIndex objective:
    /// dynamic programming over walk lengths in G \ P.
    fn reference_fstar(inst: &Instance<'_>, zeta: usize) -> Vec<Vec<Option<usize>>> {
        let g = inst.graph;
        let n = g.node_count();
        // best[d][u] = max j with a u -> v_j walk of length exactly d.
        let mut best = vec![vec![None::<usize>; n]; zeta + 1];
        for (pos, &v) in inst.path.nodes().iter().enumerate() {
            best[0][v] = Some(pos);
        }
        for d in 1..=zeta {
            for (e, edge) in g.edges() {
                if inst.is_path_edge[e] {
                    continue;
                }
                if let Some(j) = best[d - 1][edge.to] {
                    let cur = &mut best[d][edge.from];
                    if cur.is_none_or(|c| j > c) {
                        *cur = Some(j);
                    }
                }
            }
        }
        inst.path
            .nodes()
            .iter()
            .map(|&v| (0..=zeta).map(|d| best[d][v]).collect())
            .collect()
    }

    fn check_fstar(g: &DiGraph, s: usize, t: usize, zeta: usize) {
        let inst = Instance::from_endpoints(g, s, t).unwrap();
        let aux: Vec<u64> = (0..=inst.hops())
            .map(|j| inst.suffix[j].finite().unwrap())
            .collect();
        let cfg = HopBfsConfig {
            zeta,
            objective: Objective::MaxIndex,
            delays: None,
            aux: &aux,
        };
        let mut net = Network::new(inst.graph);
        let fstar = hop_constrained_bfs(&mut net, &inst, &cfg, "test");
        let want = reference_fstar(&inst, zeta);
        for pos in 0..=inst.hops() {
            for d in 0..=zeta {
                assert_eq!(
                    fstar.table[pos][d].map(|(j, _)| j),
                    want[pos][d],
                    "pos {pos}, d {d}"
                );
            }
        }
        // Aux words carry the origin's distance to t.
        for pos in 0..=inst.hops() {
            for d in 0..=zeta {
                if let Some((j, aux)) = fstar.table[pos][d] {
                    assert_eq!(aux, inst.suffix[j].finite().unwrap());
                }
            }
        }
    }

    #[test]
    fn fstar_matches_reference_on_lane() {
        let (g, s, t) = parallel_lane(8, 2, 2);
        check_fstar(&g, s, t, 8);
    }

    #[test]
    fn fstar_matches_reference_on_random() {
        for seed in 0..6 {
            let (g, s, t) = planted_path_digraph(36, 10, 90, seed);
            check_fstar(&g, s, t, 12);
        }
    }

    #[test]
    fn min_index_mirror() {
        // 0 -> 1 -> 2 path; detour edges 0 -> 3, 3 -> 2.
        let mut b = GraphBuilder::new(4);
        b.add_arc(0, 1);
        b.add_arc(1, 2);
        b.add_arc(0, 3);
        b.add_arc(3, 2);
        let g = b.build();
        let inst = Instance::from_endpoints(&g, 0, 2).unwrap();
        let aux: Vec<u64> = (0..=2).map(|i| inst.prefix[i].finite().unwrap()).collect();
        let cfg = HopBfsConfig {
            zeta: 4,
            objective: Objective::MinIndex,
            delays: None,
            aux: &aux,
        };
        let mut net = Network::new(inst.graph);
        let fstar = hop_constrained_bfs(&mut net, &inst, &cfg, "test");
        // v_2 is reached from v_0 by the walk 0 -> 3 -> 2 of length 2.
        assert_eq!(fstar.table[2][2], Some((0, 0)));
        // Node 3 is not on P, so f* is recorded only for path vertices;
        // v_2 at level 1 is reached from no one (3 is not a path vertex).
        assert_eq!(fstar.table[2][1], None);
    }

    #[test]
    fn delays_shift_levels() {
        // 0 -> 1 path edge; detour 0 -> 2 -> 1 where (2,1) has delay 3.
        let mut b = GraphBuilder::new(3);
        b.add_arc(0, 1); // path edge
        let e02 = b.add_arc(0, 2);
        let e21 = b.add_arc(2, 1);
        let g = b.build();
        let inst = Instance::from_endpoints(&g, 0, 1).unwrap();
        let aux = vec![1, 0];
        let mut delays = vec![1u64; g.edge_count()];
        delays[e02] = 2;
        delays[e21] = 3;
        let cfg = HopBfsConfig {
            zeta: 6,
            objective: Objective::MaxIndex,
            delays: Some(&delays),
            aux: &aux,
        };
        let mut net = Network::new(inst.graph);
        let fstar = hop_constrained_bfs(&mut net, &inst, &cfg, "test");
        // Backward BFS from v_1: reaches node 2 at level 3, node 0 at 5.
        assert_eq!(fstar.table[0][5], Some((1, 0)));
        for d in 1..5 {
            assert_eq!(fstar.table[0][d], None, "level {d}");
        }
    }

    #[test]
    fn trimming_keeps_congestion_at_one_message_per_link() {
        // The engine enforces this (it panics otherwise); a run on a dense
        // graph with a long path is the stress test.
        let (g, s, t) = planted_path_digraph(60, 20, 400, 11);
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        let aux: Vec<u64> = (0..=inst.hops())
            .map(|j| inst.suffix[j].finite().unwrap())
            .collect();
        let cfg = HopBfsConfig {
            zeta: 15,
            objective: Objective::MaxIndex,
            delays: None,
            aux: &aux,
        };
        let mut net = Network::new(inst.graph);
        let _ = hop_constrained_bfs(&mut net, &inst, &cfg, "test");
        assert_eq!(net.metrics().rounds(), 16);
    }
}
