//! Section 4: short-detour replacement paths (Proposition 4.1).
//!
//! A replacement path's *detour* is its maximal subpath that shares no
//! edge with `P`. Detours of at most ζ hops are handled here, in `O(ζ)`
//! deterministic rounds, in two stages:
//!
//! 1. [`hop_bfs`] (Lemma 4.2) — a ζ-round backward BFS from all path
//!    vertices simultaneously, where each node forwards only the BFS
//!    originating from the *furthest* path vertex. This yields the tables
//!    `f*_u(d)`.
//! 2. [`combine`] (Lemmas 4.3 and 4.4) — each path vertex locally turns
//!    `f*` into the suffix-minima `X[i, ≥ j]`, then a (ζ−1)-round
//!    systolic DP along `P` produces `X[≤ i, ≥ i+1]`, the short-detour
//!    replacement length for each edge.

pub mod combine;
pub mod hop_bfs;

use congest::Network;
use graphkit::Dist;

use crate::{Instance, Params};

/// Proposition 4.1: computes, for every edge `(v_i, v_{i+1})` of `P`, the
/// length of the shortest replacement path whose detour has at most
/// `params.zeta` hops ([`Dist::INF`] when none exists).
///
/// Deterministic; charges `O(ζ)` rounds to `net`.
pub fn solve_short(net: &mut Network<'_>, inst: &Instance<'_>, params: &Params) -> Vec<Dist> {
    let zeta = params.zeta;
    // Stage 1: hop-constrained BFS (Lemma 4.2).
    let aux: Vec<u64> = (0..=inst.hops())
        .map(|j| inst.suffix[j].finite().expect("path distances are finite"))
        .collect();
    let cfg = hop_bfs::HopBfsConfig {
        zeta,
        objective: hop_bfs::Objective::MaxIndex,
        delays: None,
        aux: &aux,
    };
    let fstar = hop_bfs::hop_constrained_bfs(net, inst, &cfg, "short/hop-bfs");
    // Stage 2: local Lemma 4.3 + distributed Lemma 4.4.
    let x_ge = combine::x_ge_tables(inst, &fstar, zeta);
    combine::pipeline_dp(net, inst, &x_ge, zeta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::alg::replacement_lengths;
    use graphkit::gen::{grid, parallel_lane, planted_path_digraph};

    /// With ζ >= n every detour is short, so Proposition 4.1 alone must
    /// reproduce the full oracle.
    fn assert_short_solves_everything(g: &graphkit::DiGraph, s: usize, t: usize) {
        let inst = Instance::from_endpoints(g, s, t).unwrap();
        let params = Params::with_zeta(inst.n(), inst.n());
        let mut net = Network::new(inst.graph);
        let got = solve_short(&mut net, &inst, &params);
        let want = replacement_lengths(g, &inst.path);
        assert_eq!(got, want);
    }

    #[test]
    fn big_zeta_equals_oracle_on_lane() {
        let (g, s, t) = parallel_lane(12, 3, 2);
        assert_short_solves_everything(&g, s, t);
    }

    #[test]
    fn big_zeta_equals_oracle_on_grid() {
        let (g, s, t) = grid(4, 5);
        assert_short_solves_everything(&g, s, t);
    }

    #[test]
    fn big_zeta_equals_oracle_on_random() {
        for seed in 0..8 {
            let (g, s, t) = planted_path_digraph(40, 12, 80, seed);
            assert_short_solves_everything(&g, s, t);
        }
    }

    #[test]
    fn small_zeta_is_a_valid_upper_bound_and_exact_for_short_detours() {
        // Lane with switches every 2 and stretch 1: detours have 2+2·1 = 4
        // hops, so ζ = 4 catches them all, ζ = 3 catches none.
        let (g, s, t) = parallel_lane(10, 2, 1);
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        let want = replacement_lengths(&g, &inst.path);

        let mut net = Network::new(inst.graph);
        let got4 = solve_short(&mut net, &inst, &Params::with_zeta(inst.n(), 4));
        assert_eq!(got4, want);

        let mut net = Network::new(inst.graph);
        let got3 = solve_short(&mut net, &inst, &Params::with_zeta(inst.n(), 3));
        assert!(got3.iter().all(|d| *d == Dist::INF));
    }

    #[test]
    fn mixed_regime_exactness() {
        // Detour spans vary; whenever the best replacement has a short
        // detour, the short solver must be exact; otherwise it must be an
        // upper bound (possibly infinite).
        let (g, s, t) = parallel_lane(18, 6, 2); // detours: 2 + 6·2 = 14 hops
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        let want = replacement_lengths(&g, &inst.path);
        let mut net = Network::new(inst.graph);
        let got = solve_short(&mut net, &inst, &Params::with_zeta(inst.n(), 14));
        assert_eq!(got, want);
    }

    #[test]
    fn rounds_are_linear_in_zeta() {
        let (g, s, t) = planted_path_digraph(120, 40, 240, 3);
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        for zeta in [5usize, 10, 20] {
            let mut net = Network::new(inst.graph);
            let _ = solve_short(&mut net, &inst, &Params::with_zeta(inst.n(), zeta));
            let rounds = net.metrics().rounds();
            assert!(
                rounds <= 3 * zeta as u64 + 8,
                "ζ={zeta}: rounds={rounds} not O(ζ)"
            );
        }
    }
}
