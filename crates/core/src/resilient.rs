//! Recovering solvers: fault-aware, bounded-retry wrappers around the
//! paper's algorithms.
//!
//! The solvers in this crate are all-or-nothing: a partitioned
//! communication graph or an exhausted round budget is a [`SolveError`]
//! and the caller gets no answer at all. That is the right contract for
//! reproducing the paper's theorems, but not for the fault campaigns:
//! a network that lost a link is *degraded*, not useless — the paper's
//! own object (shortest paths avoiding a failed edge) exists precisely
//! because routes survive failures.
//!
//! [`solve_with_recovery`] closes that gap in three moves:
//!
//! 1. **Detect.** The steady state of a [`FaultPlan`] (faults that never
//!    recover) is probed with a distributed BFS-tree build on a network
//!    running [`FaultPlan::steady`]; a `Disconnected` witness is the
//!    distributed evidence of a partition, cross-checked against a local
//!    computation of the source's surviving component.
//! 2. **Re-plan.** The solve is restricted to the source's surviving
//!    component: crashed nodes and downed links are removed, surviving
//!    nodes are remapped in ascending order (so the sub-solve is as
//!    deterministic as the original), and the demand is re-posed there.
//! 3. **Retry.** Each solve attempt runs with an exponentially growing
//!    [`Params::budget_factor`] ([`RecoveryPolicy::backoff`]), so an
//!    engine budget exhausted by fault-stretched phases gets more
//!    headroom instead of failing the campaign.
//!
//! The result is a structured [`Recovery`]: [`Recovery::Full`] when the
//! steady state is fault-free, [`Recovery::Degraded`] — with the partial
//! answer, the surviving route, and the unreachable nodes — when it is
//! not. Only a crashed source or exhausted retries are hard errors.

use congest::bfs_tree::{build_bfs_tree, TreeError};
use congest::{FaultPlan, Network};
use graphkit::{DiGraph, Dist, EdgeId, GraphBuilder, NodeId};

use crate::weighted::ScaledAnswers;
use crate::{
    reachability, sisp, unweighted, weighted, Instance, InstanceError, Params, SolveError,
};

/// A solver that can be retried on a (re-posed) instance.
///
/// Implementations are unit structs selecting one of the crate's
/// algorithms; the output is the answer alone — recovery is about
/// *answers surviving faults*, so per-run telemetry is dropped.
pub trait RecoverableSolver {
    /// The solver's answer.
    type Output;

    /// Human-readable solver name, used in campaign records.
    const NAME: &'static str;

    /// Runs one attempt on a healthy instance.
    ///
    /// # Errors
    ///
    /// Propagates the wrapped solver's [`SolveError`].
    fn attempt(inst: &Instance<'_>, params: &Params) -> Result<Self::Output, SolveError>;
}

/// Theorem 1: exact unweighted replacement lengths, per path edge.
pub struct Unweighted;

impl RecoverableSolver for Unweighted {
    type Output = Vec<Dist>;
    const NAME: &'static str = "unweighted";

    fn attempt(inst: &Instance<'_>, params: &Params) -> Result<Vec<Dist>, SolveError> {
        unweighted::solve(inst, params).map(|o| o.replacement)
    }
}

/// Theorem 3: `(1+ε)`-approximate weighted replacement lengths.
pub struct Weighted;

impl RecoverableSolver for Weighted {
    type Output = ScaledAnswers;
    const NAME: &'static str = "weighted";

    fn attempt(inst: &Instance<'_>, params: &Params) -> Result<ScaledAnswers, SolveError> {
        weighted::solve(inst, params).map(|o| ScaledAnswers {
            scaled: o.scaled,
            den: o.den,
        })
    }
}

/// The 2-SiSP value (Definition 2.3).
pub struct Sisp;

impl RecoverableSolver for Sisp {
    type Output = Dist;
    const NAME: &'static str = "sisp";

    fn attempt(inst: &Instance<'_>, params: &Params) -> Result<Dist, SolveError> {
        sisp::solve(inst, params).map(|o| o.value)
    }
}

/// Replacement reachability (Section 8), per path edge.
pub struct Reachability;

impl RecoverableSolver for Reachability {
    type Output = Vec<bool>;
    const NAME: &'static str = "reachability";

    fn attempt(inst: &Instance<'_>, params: &Params) -> Result<Vec<bool>, SolveError> {
        reachability::solve(inst, params).map(|o| o.survivable)
    }
}

/// Retry and backoff knobs for [`solve_with_recovery`].
#[derive(Clone, Debug)]
pub struct RecoveryPolicy {
    /// Solve attempts per instance before giving up (at least 1).
    pub max_attempts: u32,
    /// Round-budget multiplier applied after each budget-exhausted
    /// attempt (exponential backoff; at least 1).
    pub backoff: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> RecoveryPolicy {
        RecoveryPolicy {
            max_attempts: 3,
            backoff: 2,
        }
    }
}

/// Outcome of a recovering solve.
#[derive(Clone, Debug)]
pub enum Recovery<T> {
    /// The steady state is fault-free; the answer is for the instance
    /// exactly as posed.
    Full {
        /// The solver's answer.
        output: T,
        /// Attempts consumed (1 = first try succeeded).
        attempts: u32,
    },
    /// Permanent faults changed the instance; the answer (if any) is for
    /// the demand re-posed on the source's surviving component.
    Degraded(Degraded<T>),
}

impl<T> Recovery<T> {
    /// The answer, full or degraded, when one was produced.
    pub fn answered(&self) -> Option<&T> {
        match self {
            Recovery::Full { output, .. } => Some(output),
            Recovery::Degraded(d) => d.answered.as_ref(),
        }
    }

    /// `true` for [`Recovery::Degraded`].
    pub fn is_degraded(&self) -> bool {
        matches!(self, Recovery::Degraded(_))
    }

    /// Solve attempts consumed (0 when the partition made a solve moot).
    pub fn attempts(&self) -> u32 {
        match self {
            Recovery::Full { attempts, .. } => *attempts,
            Recovery::Degraded(d) => d.attempts,
        }
    }
}

/// A solve that survived permanent faults in degraded form.
#[derive(Clone, Debug)]
pub struct Degraded<T> {
    /// The answer on the surviving component, or `None` when the target
    /// itself is severed from the source.
    pub answered: Option<T>,
    /// The surviving shortest `s`-`t` route, in *original* node ids.
    pub path: Option<Vec<NodeId>>,
    /// Nodes outside the source's surviving component (original ids,
    /// ascending; includes crashed nodes).
    pub unreachable: Vec<NodeId>,
    /// Solve attempts consumed (0 when the target was unreachable).
    pub attempts: u32,
}

/// Why recovery itself failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryError {
    /// The source node is crashed in the steady state: nothing can even
    /// pose the demand.
    SourceDown,
    /// The demand was invalid before any fault was applied.
    Instance(InstanceError),
    /// Every attempt failed; `last` is the final solver error.
    Exhausted {
        /// Attempts consumed.
        attempts: u32,
        /// The last attempt's error.
        last: SolveError,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::SourceDown => write!(f, "source node is crashed in the steady state"),
            RecoveryError::Instance(e) => write!(f, "invalid demand: {e}"),
            RecoveryError::Exhausted { attempts, last } => {
                write!(f, "recovery exhausted after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

/// Solves the `(s, t)` replacement-paths demand on `graph` under the
/// *permanent* faults of `plan`, degrading instead of dying.
///
/// Transient faults (link flaps and crashes that recover, probabilistic
/// drop/delay) do not change the steady-state topology: the demand is
/// solved as posed and returned as [`Recovery::Full`]. Permanent faults
/// are detected with a distributed BFS-tree probe under
/// [`FaultPlan::steady`], the demand is re-posed on the source's
/// surviving component, and the result comes back as
/// [`Recovery::Degraded`]. Budget-exhausted attempts are retried up to
/// [`RecoveryPolicy::max_attempts`] times with exponentially growing
/// round budgets.
///
/// # Errors
///
/// [`RecoveryError::SourceDown`] when `s` is crashed in the steady
/// state, [`RecoveryError::Instance`] when the demand was invalid before
/// faults, [`RecoveryError::Exhausted`] when every attempt failed.
///
/// # Panics
///
/// Panics if `policy.max_attempts` or `policy.backoff` is zero, or if
/// the plan targets links or nodes outside `graph`.
pub fn solve_with_recovery<S: RecoverableSolver>(
    graph: &DiGraph,
    s: NodeId,
    t: NodeId,
    plan: &FaultPlan,
    params: &Params,
    policy: &RecoveryPolicy,
) -> Result<Recovery<S::Output>, RecoveryError> {
    assert!(policy.max_attempts >= 1, "at least one attempt is needed");
    assert!(policy.backoff >= 1, "backoff must not shrink the budget");
    let steady = plan.steady();
    let horizon = plan.horizon();
    if steady.node_down(s, horizon) {
        return Err(RecoveryError::SourceDown);
    }
    let downed_links = plan.links_down_at(horizon);
    let crashed = plan.nodes_down_at(horizon);
    if downed_links.is_empty() && crashed.is_empty() {
        // Transient faults only: the steady-state graph *is* the graph.
        let inst = Instance::from_endpoints(graph, s, t).map_err(RecoveryError::Instance)?;
        let (output, attempts) = retry::<S>(&inst, params, policy)?;
        return Ok(Recovery::Full { output, attempts });
    }

    // Distributed detection: a BFS-tree probe under the steady-state
    // plan either spans (still connected) or returns the Disconnected
    // witness. The local component computation below must agree — the
    // probe is the distributed evidence, the local pass the ground
    // truth we re-plan from.
    let mut probe_net = Network::new(graph);
    probe_net.set_fault_plan(Some(steady));
    let probe = build_bfs_tree(&mut probe_net, s);
    let component = surviving_component(graph, s, &downed_links, &crashed);
    match &probe {
        Ok(_) => debug_assert_eq!(component.len(), graph.node_count()),
        Err(TreeError::Disconnected { joined, .. }) => debug_assert_eq!(component.len(), *joined),
        Err(_) => {}
    }

    let mut in_comp = vec![false; graph.node_count()];
    for &v in &component {
        in_comp[v] = true;
    }
    let unreachable: Vec<NodeId> = graph.nodes().filter(|&v| !in_comp[v]).collect();
    if !in_comp[t] {
        return Ok(Recovery::Degraded(Degraded {
            answered: None,
            path: None,
            unreachable,
            attempts: 0,
        }));
    }

    // Re-pose the demand on the surviving component, nodes remapped in
    // ascending order so the sub-solve is exactly as deterministic as
    // the original.
    let mut new_id = vec![usize::MAX; graph.node_count()];
    for (i, &v) in component.iter().enumerate() {
        new_id[v] = i;
    }
    let mut b = GraphBuilder::new(component.len());
    for (id, e) in graph.edges() {
        if downed_links.binary_search(&id).is_ok() || !in_comp[e.from] || !in_comp[e.to] {
            continue;
        }
        b.add_edge(new_id[e.from], new_id[e.to], e.weight);
    }
    let sub = b.build();
    let inst = match Instance::from_endpoints(&sub, new_id[s], new_id[t]) {
        Ok(inst) => inst,
        Err(InstanceError::Unreachable { .. }) => {
            // Same undirected component, but no *directed* s-t route
            // survives the failures.
            return Ok(Recovery::Degraded(Degraded {
                answered: None,
                path: None,
                unreachable,
                attempts: 0,
            }));
        }
        Err(e) => return Err(RecoveryError::Instance(e)),
    };
    let path: Vec<NodeId> = inst.path.nodes().iter().map(|&v| component[v]).collect();
    let (output, attempts) = retry::<S>(&inst, params, policy)?;
    Ok(Recovery::Degraded(Degraded {
        answered: Some(output),
        path: Some(path),
        unreachable,
        attempts,
    }))
}

/// The retry loop: only engine budget exhaustion is retried (with the
/// budget factor multiplied by `policy.backoff` each time); a
/// partitioned network will not heal with more rounds.
fn retry<S: RecoverableSolver>(
    inst: &Instance<'_>,
    params: &Params,
    policy: &RecoveryPolicy,
) -> Result<(S::Output, u32), RecoveryError> {
    let mut factor = params.budget_factor;
    let mut last = None;
    for attempt in 1..=policy.max_attempts {
        let p = params.clone().with_budget_factor(factor);
        match S::attempt(inst, &p) {
            Ok(out) => return Ok((out, attempt)),
            Err(e @ SolveError::Engine(_)) => {
                last = Some(e);
                factor = factor.saturating_mul(policy.backoff);
            }
            Err(e) => {
                return Err(RecoveryError::Exhausted {
                    attempts: attempt,
                    last: e,
                })
            }
        }
    }
    Err(RecoveryError::Exhausted {
        attempts: policy.max_attempts,
        last: last.expect("loop ran at least once"),
    })
}

/// The source's component in the undirected surviving graph: downed
/// links and crashed nodes removed. Ascending node order.
fn surviving_component(
    graph: &DiGraph,
    s: NodeId,
    downed_links: &[EdgeId],
    crashed: &[NodeId],
) -> Vec<NodeId> {
    let n = graph.node_count();
    let mut dead = vec![false; n];
    for &v in crashed {
        dead[v] = true;
    }
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for (id, e) in graph.edges() {
        if downed_links.binary_search(&id).is_ok() || dead[e.from] || dead[e.to] {
            continue;
        }
        adj[e.from].push(e.to);
        adj[e.to].push(e.from);
    }
    let mut seen = vec![false; n];
    seen[s] = true;
    let mut stack = vec![s];
    while let Some(v) = stack.pop() {
        for &w in &adj[v] {
            if !seen[w] {
                seen[w] = true;
                stack.push(w);
            }
        }
    }
    (0..n).filter(|&v| seen[v]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::alg::replacement_lengths;
    use graphkit::gen::metro_ring;

    fn params_for(g: &DiGraph) -> Params {
        Params::for_n(g.node_count())
    }

    #[test]
    fn transient_faults_give_a_full_answer() {
        let g = metro_ring(8);
        let plan = FaultPlan::new(3).drop_messages(0.2);
        let rec = solve_with_recovery::<Unweighted>(
            &g,
            0,
            4,
            &plan,
            &params_for(&g),
            &RecoveryPolicy::default(),
        )
        .unwrap();
        let Recovery::Full { output, attempts } = rec else {
            panic!("transient faults must not degrade the instance");
        };
        assert_eq!(attempts, 1);
        let inst = Instance::from_endpoints(&g, 0, 4).unwrap();
        assert_eq!(output, replacement_lengths(&g, &inst.path));
    }

    #[test]
    fn single_span_failure_degrades_but_answers() {
        // Span 1 (nodes 1-2, edges 2 and 3) down forever: the ring stays
        // connected and the demand survives along the long way round.
        let g = metro_ring(8);
        let plan = FaultPlan::new(5)
            .fail_link(2, 0, None)
            .fail_link(3, 0, None);
        let rec = solve_with_recovery::<Unweighted>(
            &g,
            0,
            4,
            &plan,
            &params_for(&g),
            &RecoveryPolicy::default(),
        )
        .unwrap();
        let Recovery::Degraded(d) = rec else {
            panic!("a permanent failure must report as degraded");
        };
        assert!(d.unreachable.is_empty());
        assert_eq!(d.path.as_deref(), Some(&[0, 7, 6, 5, 4][..]));
        let answers = d.answered.expect("ring survives one span failure");
        // The surviving route has 4 edges; ring minus a span is a path
        // graph, so no further failure is survivable.
        assert_eq!(answers.len(), 4);
        assert!(answers.iter().all(|a| !a.is_finite()));
    }

    #[test]
    fn partition_reports_the_unreachable_half() {
        // Spans 0 (edges 0, 1) and 4 (edges 8, 9) down: nodes 1..=4 are
        // severed from the source's side.
        let g = metro_ring(8);
        let plan = FaultPlan::new(7)
            .fail_link(0, 0, None)
            .fail_link(1, 0, None)
            .fail_link(8, 0, None)
            .fail_link(9, 0, None);
        let rec = solve_with_recovery::<Unweighted>(
            &g,
            0,
            4,
            &plan,
            &params_for(&g),
            &RecoveryPolicy::default(),
        )
        .unwrap();
        let Recovery::Degraded(d) = rec else {
            panic!("a partition must report as degraded");
        };
        assert!(d.answered.is_none());
        assert_eq!(d.unreachable, vec![1, 2, 3, 4]);
    }

    #[test]
    fn crashed_target_is_unreachable_not_an_error() {
        let g = metro_ring(6);
        let plan = FaultPlan::new(9).crash_node(3, 0, None);
        let rec = solve_with_recovery::<Reachability>(
            &g,
            0,
            3,
            &plan,
            &params_for(&g),
            &RecoveryPolicy::default(),
        )
        .unwrap();
        let Recovery::Degraded(d) = rec else {
            panic!("a crashed target must report as degraded");
        };
        assert!(d.answered.is_none());
        assert_eq!(d.unreachable, vec![3]);
    }

    #[test]
    fn crashed_source_is_a_hard_error() {
        let g = metro_ring(6);
        let plan = FaultPlan::new(11).crash_node(0, 0, None);
        let err = solve_with_recovery::<Sisp>(
            &g,
            0,
            3,
            &plan,
            &params_for(&g),
            &RecoveryPolicy::default(),
        )
        .unwrap_err();
        assert_eq!(err, RecoveryError::SourceDown);
    }

    #[test]
    fn recovered_faults_do_not_degrade() {
        // A span that fails but comes back up before the horizon leaves
        // the steady state pristine.
        let g = metro_ring(8);
        let plan = FaultPlan::new(13)
            .fail_link(2, 0, Some(10))
            .crash_node(6, 2, Some(5));
        let rec = solve_with_recovery::<Sisp>(
            &g,
            0,
            4,
            &plan,
            &params_for(&g),
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert!(!rec.is_degraded());
        // Both ways round the ring have 4 hops: the second simple
        // shortest path has length 4 as well.
        assert_eq!(rec.answered(), Some(&Dist::new(4)));
    }
}
