//! Self-contained regression fixtures for the differential harness.
//!
//! A fixture is one `rpaths-store` snapshot holding the full graph (a
//! checksummed `TAG_GRAPH` section) plus a `TAG_BLOB` JSON document
//! describing *one* differential check: which solver to run, with which
//! [`Params`], at which engine thread counts, against which queries —
//! and what the centralized oracle answered when the fixture was minted.
//!
//! Replaying a fixture ([`Fixture::replay`]) first **recomputes** the
//! oracle from the stored graph and cross-checks it against the minted
//! values (catching fixture corruption and silent oracle drift), then
//! runs the solver through the same [`crate::oracle`] adapters the fuzz
//! sweep uses. The corpus under `tests/regressions/` is replayed by
//! `tests/fuzz_regressions.rs` on every tier-1 run, so every bug the
//! fuzzer ever minimized stays fixed.

use std::fmt;
use std::path::Path;

use graphkit::{DiGraph, Dist};
use rpaths_store::{Artifact, Snapshot, StoreError};
use serde::{Deserialize, Serialize};

use crate::oracle::{self, Divergence, FuzzSolver};
use crate::session::Query;
use crate::{Instance, Params};

/// Artifact key of the fixture document inside the snapshot.
pub const FIXTURE_KEY: &str = "fuzz/fixture";

/// Fixture document version this build writes and accepts.
pub const FIXTURE_VERSION: u32 = 1;

/// File extension the corpus uses (`tests/regressions/*.rpfix`).
pub const FIXTURE_EXT: &str = "rpfix";

/// Sentinel for "no avoided edge" / "unreachable" in the JSON document
/// (the vendored serde subset has no `Option`, and `u64::MAX` is how
/// [`Dist::INF`] prints anyway).
const NONE_SENTINEL: u64 = u64::MAX;

#[derive(Serialize, Deserialize)]
struct QueryDoc {
    source: u64,
    target: u64,
    avoid: u64,
}

#[derive(Serialize, Deserialize)]
struct FixtureDoc {
    version: u32,
    name: String,
    origin: String,
    solver: String,
    source: u64,
    target: u64,
    zeta: u64,
    landmark_prob_bits: u64,
    seed: u64,
    eps_num: u64,
    eps_den: u64,
    budget_factor: u64,
    threads: Vec<u64>,
    queries: Vec<QueryDoc>,
    expected: Vec<u64>,
}

/// One checked-in differential repro: graph + solver + parameters +
/// the oracle's minted answers.
///
/// Two modes, distinguished by `queries`:
///
/// - **instance mode** (`queries` empty): run `solver` on the full
///   instance `(graph, source → target)` and hold it to its oracle;
///   `expected` is the minted per-path-edge replacement length vector.
/// - **batch mode** (`queries` non-empty): run the queries through a
///   [`crate::SolverSession`] and hold every answer to a filtered
///   Dijkstra; `expected` is the minted per-query oracle length.
#[derive(Clone, Debug)]
pub struct Fixture {
    /// Fixture name (also the suggested file stem).
    pub name: String,
    /// Free-text provenance: harness seed, case index, minimizer stats.
    pub origin: String,
    /// Which solver surface to drive.
    pub solver: FuzzSolver,
    /// Instance source (ignored in batch mode).
    pub source: usize,
    /// Instance target (ignored in batch mode).
    pub target: usize,
    /// Solver parameters, reconstructed exactly (bit-exact
    /// `landmark_prob`).
    pub params: Params,
    /// Engine thread counts to replay at.
    pub threads: Vec<usize>,
    /// Batch queries (empty selects instance mode).
    pub queries: Vec<Query>,
    /// Minted oracle values (see mode description).
    pub expected: Vec<Dist>,
    /// The full graph.
    pub graph: DiGraph,
}

/// Why a fixture could not be loaded or replayed green.
#[derive(Debug)]
pub enum FixtureError {
    /// Snapshot-level failure (I/O, checksum, framing).
    Store(StoreError),
    /// The snapshot loaded but its fixture document is missing or
    /// malformed.
    Decode(String),
    /// The stored oracle values no longer match a fresh oracle run on
    /// the stored graph: the fixture bytes rotted or the oracle's
    /// semantics drifted. Either way the fixture cannot vouch for
    /// anything.
    StaleOracle(String),
    /// The solver diverged from the oracle — the regression the fixture
    /// guards has reappeared (or, for a deliberately injected defect,
    /// was successfully detected).
    Diverged(Divergence),
}

impl fmt::Display for FixtureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixtureError::Store(e) => write!(f, "snapshot error: {e}"),
            FixtureError::Decode(e) => write!(f, "bad fixture document: {e}"),
            FixtureError::StaleOracle(e) => write!(f, "stale fixture oracle: {e}"),
            FixtureError::Diverged(d) => write!(f, "divergence: {d}"),
        }
    }
}

impl std::error::Error for FixtureError {}

impl From<StoreError> for FixtureError {
    fn from(e: StoreError) -> FixtureError {
        FixtureError::Store(e)
    }
}

fn dist_to_u64(d: Dist) -> u64 {
    d.finite().unwrap_or(NONE_SENTINEL)
}

fn u64_to_dist(v: u64) -> Dist {
    if v == NONE_SENTINEL {
        Dist::INF
    } else {
        Dist::new(v)
    }
}

impl Fixture {
    /// Mints an instance-mode fixture: records the oracle's replacement
    /// lengths for `(graph, source → target)` now, to be enforced on
    /// every future replay.
    ///
    /// # Panics
    ///
    /// Panics if `target` is unreachable from `source` (no instance).
    #[allow(clippy::too_many_arguments)]
    pub fn instance_mode(
        name: impl Into<String>,
        origin: impl Into<String>,
        graph: DiGraph,
        source: usize,
        target: usize,
        params: Params,
        solver: FuzzSolver,
        threads: Vec<usize>,
    ) -> Fixture {
        let inst = Instance::from_endpoints(&graph, source, target)
            .expect("fixture instance must be constructible");
        let expected = oracle::oracle_replacements(&inst);
        drop(inst);
        Fixture {
            name: name.into(),
            origin: origin.into(),
            solver,
            source,
            target,
            params,
            threads,
            queries: Vec::new(),
            expected,
            graph,
        }
    }

    /// Mints a batch-mode fixture: records the filtered-Dijkstra oracle
    /// for every query now.
    pub fn batch_mode(
        name: impl Into<String>,
        origin: impl Into<String>,
        graph: DiGraph,
        params: Params,
        queries: Vec<Query>,
        threads: Vec<usize>,
    ) -> Fixture {
        let expected = queries
            .iter()
            .map(|q| oracle::oracle_query(&graph, q))
            .collect();
        Fixture {
            name: name.into(),
            origin: origin.into(),
            solver: if graph.is_unweighted() {
                FuzzSolver::Unweighted
            } else {
                FuzzSolver::Weighted
            },
            source: 0,
            target: 0,
            params,
            threads,
            queries,
            expected,
            graph,
        }
    }

    fn doc(&self) -> FixtureDoc {
        FixtureDoc {
            version: FIXTURE_VERSION,
            name: self.name.clone(),
            origin: self.origin.clone(),
            solver: self.solver.name().to_string(),
            source: self.source as u64,
            target: self.target as u64,
            zeta: self.params.zeta as u64,
            landmark_prob_bits: self.params.landmark_prob.to_bits(),
            seed: self.params.seed,
            eps_num: self.params.eps_num,
            eps_den: self.params.eps_den,
            budget_factor: self.params.budget_factor,
            threads: self.threads.iter().map(|&t| t as u64).collect(),
            queries: self
                .queries
                .iter()
                .map(|q| QueryDoc {
                    source: q.source as u64,
                    target: q.target as u64,
                    avoid: q.avoid.map_or(NONE_SENTINEL, |e| e as u64),
                })
                .collect(),
            expected: self.expected.iter().map(|&d| dist_to_u64(d)).collect(),
        }
    }

    /// Atomically writes the fixture as one snapshot file.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn write(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        let json = serde_json::to_string_pretty(&self.doc()).expect("fixture doc serializes");
        let mut snapshot = Snapshot::new(self.graph.clone());
        snapshot
            .artifacts
            .push(Artifact::blob(FIXTURE_KEY, json.into_bytes()));
        snapshot.write(path)
    }

    /// Reads a fixture back. Degraded snapshots are rejected: a corrupt
    /// corpus entry must fail loudly, not replay a weaker check.
    ///
    /// # Errors
    ///
    /// [`FixtureError::Store`] / [`FixtureError::Decode`].
    pub fn read(path: impl AsRef<Path>) -> Result<Fixture, FixtureError> {
        let loaded = Snapshot::read(&path)?;
        if loaded.is_partial() {
            return Err(FixtureError::Decode(format!(
                "snapshot is degraded ({} dropped sections)",
                loaded.dropped().len()
            )));
        }
        let snapshot = loaded.into_snapshot();
        let blob = snapshot
            .artifacts
            .iter()
            .find(|a| a.key == FIXTURE_KEY)
            .ok_or_else(|| FixtureError::Decode(format!("no {FIXTURE_KEY:?} artifact")))?;
        let text = std::str::from_utf8(&blob.body)
            .map_err(|e| FixtureError::Decode(format!("fixture blob is not UTF-8: {e}")))?;
        let doc: FixtureDoc =
            serde_json::from_str(text).map_err(|e| FixtureError::Decode(e.to_string()))?;
        if doc.version != FIXTURE_VERSION {
            return Err(FixtureError::Decode(format!(
                "unsupported fixture version {}",
                doc.version
            )));
        }
        let solver = FuzzSolver::parse(&doc.solver)
            .ok_or_else(|| FixtureError::Decode(format!("unknown solver {:?}", doc.solver)))?;
        let params = Params {
            zeta: doc.zeta as usize,
            landmark_prob: f64::from_bits(doc.landmark_prob_bits),
            seed: doc.seed,
            eps_num: doc.eps_num,
            eps_den: doc.eps_den,
            budget_factor: doc.budget_factor,
        };
        Ok(Fixture {
            name: doc.name,
            origin: doc.origin,
            solver,
            source: doc.source as usize,
            target: doc.target as usize,
            params,
            threads: doc.threads.iter().map(|&t| t as usize).collect(),
            queries: doc
                .queries
                .iter()
                .map(|q| Query {
                    source: q.source as usize,
                    target: q.target as usize,
                    avoid: (q.avoid != NONE_SENTINEL).then_some(q.avoid as usize),
                })
                .collect(),
            expected: doc.expected.iter().map(|&v| u64_to_dist(v)).collect(),
            graph: snapshot.graph,
        })
    }

    /// Recomputes the oracle from the stored graph and compares it to
    /// the minted values.
    ///
    /// # Errors
    ///
    /// [`FixtureError::StaleOracle`] on any disagreement.
    pub fn verify_oracle(&self) -> Result<(), FixtureError> {
        let fresh: Vec<Dist> = if self.queries.is_empty() {
            let inst = Instance::from_endpoints(&self.graph, self.source, self.target)
                .map_err(|e| FixtureError::StaleOracle(format!("instance: {e}")))?;
            oracle::oracle_replacements(&inst)
        } else {
            self.queries
                .iter()
                .map(|q| oracle::oracle_query(&self.graph, q))
                .collect()
        };
        if fresh != self.expected {
            return Err(FixtureError::StaleOracle(format!(
                "minted {:?}, recomputed {:?}",
                self.expected, fresh
            )));
        }
        Ok(())
    }

    /// Replays the fixture: oracle re-verification, then the solver
    /// differential at every thread count in `self.threads` (or only
    /// `threads_override`), with bit-identity across thread counts in
    /// batch mode.
    ///
    /// # Errors
    ///
    /// [`FixtureError::Diverged`] when the guarded regression has
    /// reappeared; [`FixtureError::StaleOracle`] when the fixture
    /// itself no longer self-validates.
    pub fn replay(&self, threads_override: Option<usize>) -> Result<(), FixtureError> {
        self.verify_oracle()?;
        let threads: Vec<usize> = match threads_override {
            Some(t) => vec![t],
            None if self.threads.is_empty() => vec![1],
            None => self.threads.clone(),
        };
        if self.queries.is_empty() {
            let inst = Instance::from_endpoints(&self.graph, self.source, self.target)
                .map_err(|e| FixtureError::StaleOracle(format!("instance: {e}")))?;
            for &t in &threads {
                oracle::check_instance(&inst, &self.params, self.solver, t)
                    .map_err(FixtureError::Diverged)?;
            }
        } else {
            let mut first: Option<Vec<crate::Answer>> = None;
            for &t in &threads {
                let answers = oracle::check_batch(&self.graph, &self.params, &self.queries, t)
                    .map_err(FixtureError::Diverged)?;
                if let Some(prev) = &first {
                    if *prev != answers {
                        return Err(FixtureError::Diverged(Divergence {
                            check: format!(
                                "batch answers differ between {} and {t} threads",
                                threads[0]
                            ),
                            index: None,
                            got: format!("{answers:?}"),
                            want: format!("{prev:?}"),
                        }));
                    }
                } else {
                    first = Some(answers);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::gen::parallel_lane;

    fn lane_fixture() -> Fixture {
        let (g, s, t) = parallel_lane(8, 2, 2);
        let mut params = Params::with_zeta(g.node_count(), 4);
        params.landmark_prob = 1.0;
        Fixture::instance_mode(
            "lane-8",
            "unit test",
            g,
            s,
            t,
            params,
            FuzzSolver::Unweighted,
            vec![1, 2],
        )
    }

    #[test]
    fn round_trip_and_green_replay() {
        let fix = lane_fixture();
        let dir = std::env::temp_dir().join(format!("rpfix-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lane-8.rpfix");
        fix.write(&path).unwrap();
        let back = Fixture::read(&path).unwrap();
        assert_eq!(back.name, "lane-8");
        assert_eq!(back.solver, FuzzSolver::Unweighted);
        assert_eq!(back.threads, vec![1, 2]);
        assert_eq!(back.expected, fix.expected);
        assert_eq!(back.graph.fingerprint(), fix.graph.fingerprint());
        back.replay(None).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batch_mode_round_trip() {
        let (g, s, t) = parallel_lane(6, 3, 2);
        let path = graphkit::alg::shortest_st_path(&g, s, t).unwrap();
        let queries = vec![
            Query::intact(s, t),
            Query::avoiding(s, t, path.edge(0)),
            Query::avoiding(s, t, path.edge(2)),
        ];
        let fix = Fixture::batch_mode(
            "lane-batch",
            "unit test",
            g,
            Params::with_zeta(19, 4),
            queries,
            vec![1, 2],
        );
        let dir = std::env::temp_dir().join(format!("rpfix-test-b-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("lane-batch.rpfix");
        fix.write(&p).unwrap();
        let back = Fixture::read(&p).unwrap();
        assert_eq!(back.queries, fix.queries);
        back.replay(None).unwrap();
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn injected_bug_replays_red() {
        let fix = lane_fixture();
        crate::testhooks::set_flip_unweighted_merge(true);
        let replay = fix.replay(Some(1));
        crate::testhooks::set_flip_unweighted_merge(false);
        assert!(
            matches!(replay, Err(FixtureError::Diverged(_))),
            "flipped merge must replay red, got {replay:?}"
        );
    }

    #[test]
    fn tampered_expected_is_stale() {
        let mut fix = lane_fixture();
        fix.expected[0] = Dist::new(1);
        let err = fix.verify_oracle().unwrap_err();
        assert!(matches!(err, FixtureError::StaleOracle(_)));
    }
}
