//! Distributed replacement paths in the CONGEST model.
//!
//! This crate implements the algorithms of *Optimal Distributed
//! Replacement Paths* (Chang, Chen, Dey, Mishra, Nguyen, Sanchez; PODC
//! 2025) on top of the message-level simulator in the `congest` crate:
//!
//! - [`unweighted::solve`] — **Theorem 1**: exact replacement paths in
//!   unweighted directed graphs in `eO(n^{2/3} + D)` rounds, combining
//!   the short-detour machinery of Section 4 ([`short`]) with the
//!   landmark-based long-detour machinery of Section 5 ([`long`]).
//! - [`weighted::solve`] — **Theorem 3**: `(1+ε)`-approximate replacement
//!   paths in weighted directed graphs in the same round complexity
//!   (Section 7), via rounding.
//! - [`sisp`] — the 2-SiSP problem (Definition 2.3): the single smallest
//!   replacement length, aggregated in `O(D)` extra rounds.
//! - [`reachability`] — the yes/no variant from the paper's open
//!   problems (Section 8): which path edges are survivable at all.
//! - [`resilient`] — recovering wrappers around all of the above:
//!   [`resilient::solve_with_recovery`] detects the permanent faults of
//!   a `congest::FaultPlan`, re-poses the demand on the source's
//!   surviving component, and retries with exponential round-budget
//!   backoff, returning a structured degraded answer instead of
//!   all-or-nothing failure.
//! - [`baseline`] — what the paper compares against: the trivial
//!   `O(h_st · T_SSSP)` algorithm and the `eO(n^{2/3} + √(n·h_st) + D)`
//!   algorithm of Manoharan and Ramachandran (SIROCCO 2024).
//!
//! The entry point for problem instances is [`Instance`]; algorithm knobs
//! (the short/long threshold ζ, the landmark sampling rate, seeds, ε)
//! live in [`Params`]. Every solver returns both the answers and the
//! full round/message/bit accounting of its run.
//!
//! For answering *many* queries against one graph, [`SolverSession`]
//! ([`session`]) is the plan/execute layer: it batches failed-edge
//! queries, shares the expensive phases across them, and caches every
//! intermediate artifact in a deterministic LRU ([`cache`]) that
//! persists through `rpaths-store` snapshots. The one-shot entry points
//! above are thin wrappers over a fresh session, so their signatures
//! and answers are unchanged.
//!
//! Every phase of every solver — tree construction, knowledge waves,
//! hop-BFS, multi-source BFS, pipelines, broadcasts, aggregations — runs
//! on the `congest` crate's deterministic sharded-parallel engine, so
//! whole solves are bit-identical at any `CONGEST_THREADS` setting
//! (enforced end-to-end by `tests/engine_equivalence.rs`). Failure
//! scenarios are first-class: solvers return [`SolveError`] (for
//! example, on a partitioned communication graph) instead of panicking.
//!
//! # Quick example
//!
//! ```
//! use graphkit::gen::parallel_lane;
//! use rpaths_core::{Instance, Params, unweighted};
//!
//! let (g, s, t) = parallel_lane(16, 4, 2);
//! let inst = Instance::from_endpoints(&g, s, t).unwrap();
//! let params = Params::for_instance(&inst);
//! let out = unweighted::solve(&inst, &params).unwrap();
//! // Exact agreement with the centralized oracle:
//! let oracle = graphkit::alg::replacement_lengths(inst.graph, &inst.path);
//! assert_eq!(out.replacement, oracle);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;
pub mod baseline;
pub mod cache;
pub mod fixture;
mod instance;
pub mod knowledge;
pub mod long;
pub mod oracle;
mod params;
pub mod reachability;
pub mod resilient;
pub mod session;
pub mod short;
pub mod sisp;
pub mod testhooks;
pub mod unweighted;
pub mod weighted;

pub use cache::{ArtifactCache, ArtifactKind, CacheKey, CacheValue, SolverKind};
pub use instance::{Instance, InstanceError};
pub use params::Params;
pub use session::{Answer, Query, SessionError, SessionStats, SolverSession};

use std::fmt;

use congest::bfs_tree::TreeError;
use congest::Metrics;
use graphkit::Dist;

/// Why a solver could not produce an answer.
///
/// Every public solver returns `Result<_, SolveError>`: failure scenarios
/// (most importantly a *partitioned* communication graph, where the BFS
/// tree the global primitives run on cannot span) are recoverable
/// conditions callers handle, never panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// The communication graph is partitioned: the BFS tree rooted at the
    /// source reached only `reached` of `total` nodes.
    Partitioned {
        /// Nodes in the source's component.
        reached: usize,
        /// Nodes in the network.
        total: usize,
        /// The smallest node id outside the source's component.
        witness: usize,
    },
    /// An engine round budget was exhausted (an invariant violation, not
    /// a topology property).
    Engine(congest::EngineError),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Partitioned {
                reached,
                total,
                witness,
            } => write!(
                f,
                "communication graph is partitioned: the source's component holds \
                 {reached} of {total} nodes and {severed} nodes are unreachable \
                 (first witness: node {witness})",
                severed = total - reached
            ),
            SolveError::Engine(e) => write!(f, "engine budget exhausted: {e}"),
        }
    }
}

impl std::error::Error for SolveError {}

impl From<TreeError> for SolveError {
    fn from(e: TreeError) -> SolveError {
        match e {
            TreeError::Disconnected {
                joined,
                total,
                witness,
            } => SolveError::Partitioned {
                reached: joined,
                total,
                witness,
            },
            TreeError::Engine(e) => SolveError::Engine(e),
        }
    }
}

/// The output of a replacement-paths solver.
#[derive(Clone, Debug)]
pub struct RPathsOutput {
    /// `replacement[i] = |st ⋄ (v_i, v_{i+1})|` for each edge of `P`
    /// (exact solvers) or an upper bound within the approximation
    /// guarantee (approximate solvers).
    pub replacement: Vec<Dist>,
    /// Full round/message/bit accounting for the run.
    pub metrics: Metrics,
}

impl RPathsOutput {
    /// The 2-SiSP value implied by the per-edge answers.
    pub fn sisp(&self) -> Dist {
        self.replacement.iter().copied().min().unwrap_or(Dist::INF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioned_message_names_witness_and_component_sizes() {
        // Campaign reports and operator logs surface this string; keep
        // the witness node and both component sizes in it.
        let err = SolveError::Partitioned {
            reached: 5,
            total: 12,
            witness: 9,
        };
        assert_eq!(
            err.to_string(),
            "communication graph is partitioned: the source's component holds \
             5 of 12 nodes and 7 nodes are unreachable (first witness: node 9)"
        );
    }

    #[test]
    fn tree_error_converts_with_fields_preserved() {
        let err: SolveError = TreeError::Disconnected {
            joined: 2,
            total: 5,
            witness: 0,
        }
        .into();
        assert_eq!(
            err,
            SolveError::Partitioned {
                reached: 2,
                total: 5,
                witness: 0
            }
        );
    }
}
