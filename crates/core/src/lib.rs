//! Distributed replacement paths in the CONGEST model.
//!
//! This crate implements the algorithms of *Optimal Distributed
//! Replacement Paths* (Chang, Chen, Dey, Mishra, Nguyen, Sanchez; PODC
//! 2025) on top of the message-level simulator in the `congest` crate:
//!
//! - [`unweighted::solve`] — **Theorem 1**: exact replacement paths in
//!   unweighted directed graphs in `eO(n^{2/3} + D)` rounds, combining
//!   the short-detour machinery of Section 4 ([`short`]) with the
//!   landmark-based long-detour machinery of Section 5 ([`long`]).
//! - [`weighted::solve`] — **Theorem 3**: `(1+ε)`-approximate replacement
//!   paths in weighted directed graphs in the same round complexity
//!   (Section 7), via rounding.
//! - [`sisp`] — the 2-SiSP problem (Definition 2.3): the single smallest
//!   replacement length, aggregated in `O(D)` extra rounds.
//! - [`reachability`] — the yes/no variant from the paper's open
//!   problems (Section 8): which path edges are survivable at all.
//! - [`baseline`] — what the paper compares against: the trivial
//!   `O(h_st · T_SSSP)` algorithm and the `eO(n^{2/3} + √(n·h_st) + D)`
//!   algorithm of Manoharan and Ramachandran (SIROCCO 2024).
//!
//! The entry point for problem instances is [`Instance`]; algorithm knobs
//! (the short/long threshold ζ, the landmark sampling rate, seeds, ε)
//! live in [`Params`]. Every solver returns both the answers and the
//! full round/message/bit accounting of its run.
//!
//! # Quick example
//!
//! ```
//! use graphkit::gen::parallel_lane;
//! use rpaths_core::{Instance, Params, unweighted};
//!
//! let (g, s, t) = parallel_lane(16, 4, 2);
//! let inst = Instance::from_endpoints(&g, s, t).unwrap();
//! let params = Params::for_instance(&inst);
//! let out = unweighted::solve(&inst, &params);
//! // Exact agreement with the centralized oracle:
//! let oracle = graphkit::alg::replacement_lengths(inst.graph, &inst.path);
//! assert_eq!(out.replacement, oracle);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
mod instance;
pub mod knowledge;
pub mod long;
mod params;
pub mod reachability;
pub mod short;
pub mod sisp;
pub mod unweighted;
pub mod weighted;

pub use instance::{Instance, InstanceError};
pub use params::Params;

use congest::Metrics;
use graphkit::Dist;

/// The output of a replacement-paths solver.
#[derive(Clone, Debug)]
pub struct RPathsOutput {
    /// `replacement[i] = |st ⋄ (v_i, v_{i+1})|` for each edge of `P`
    /// (exact solvers) or an upper bound within the approximation
    /// guarantee (approximate solvers).
    pub replacement: Vec<Dist>,
    /// Full round/message/bit accounting for the run.
    pub metrics: Metrics,
}

impl RPathsOutput {
    /// The 2-SiSP value implied by the per-edge answers.
    pub fn sisp(&self) -> Dist {
        self.replacement.iter().copied().min().unwrap_or(Dist::INF)
    }
}
