//! The 2-SiSP problem (Definition 2.3).
//!
//! 2-SiSP asks for the single value `min over e in P of |st ⋄ e|` — the
//! length of the second simple shortest path. It reduces to RPaths plus
//! an `O(D)`-round min aggregation over the BFS tree, which is also the
//! reduction used by the paper's lower bound (Corollary 6.2 ⇒
//! Proposition 6.1 direction).

use congest::aggregate::{aggregate, AggOp};
use congest::bfs_tree::{build_bfs_tree, BfsTree};
use congest::Network;
use graphkit::Dist;

use crate::{unweighted, weighted, Instance, Params, SolveError};

/// Result of a 2-SiSP computation.
#[derive(Clone, Debug)]
pub struct SispOutput {
    /// The 2-SiSP value, known to *all* vertices after the aggregation.
    pub value: Dist,
    /// Full metrics of the run.
    pub metrics: congest::Metrics,
}

/// Aggregates the global minimum of per-node values over the BFS tree in
/// `O(height)` rounds; afterwards every node knows it. (A thin wrapper
/// around [`congest::aggregate`] with [`AggOp::Min`].)
pub fn aggregate_min(net: &mut Network<'_>, tree: &BfsTree, values: &[Dist]) -> Dist {
    aggregate(net, tree, AggOp::Min, values)
}

/// Solves 2-SiSP for an unweighted instance: Theorem 1's RPaths plus an
/// `O(D)`-round aggregation.
///
/// # Errors
///
/// Returns [`SolveError::Partitioned`] when the communication graph is
/// disconnected.
pub fn solve(inst: &Instance<'_>, params: &Params) -> Result<SispOutput, SolveError> {
    let (value, metrics) =
        crate::session::with_network(inst.graph, |net| solve_on(net, inst, params))?;
    Ok(SispOutput { value, metrics })
}

/// `(1+ε)`-approximate 2-SiSP for weighted instances: Theorem 3's
/// Apx-RPaths followed by the same `O(D)`-round min aggregation over the
/// scaled values. The result `x` satisfies
/// `2-SiSP ≤ x/den ≤ (1+ε)·2-SiSP`.
///
/// # Errors
///
/// Returns [`SolveError::Partitioned`] when the communication graph is
/// disconnected.
pub fn solve_weighted(
    inst: &Instance<'_>,
    params: &Params,
) -> Result<(Dist, u64, congest::Metrics), SolveError> {
    let apx = weighted::solve(inst, params)?;
    let mut values = vec![Dist::INF; inst.n()];
    for i in 0..inst.hops() {
        values[inst.path.node(i)] = apx.scaled[i];
    }
    let (value, mut agg) = crate::session::with_network(inst.graph, |net| {
        let (tree, _) = build_bfs_tree(net, inst.s())?;
        Ok(aggregate(net, &tree, AggOp::Min, &values))
    })?;
    // Merge the aggregation phases into the solver's log by reference —
    // no deep clone of the phase records.
    let mut metrics = apx.metrics;
    metrics.merge_from(&mut agg);
    Ok((value, apx.den, metrics))
}

/// Like [`solve`], but on a caller-provided network (Section 6
/// experiments attach cut accounting before calling this).
///
/// # Errors
///
/// Returns [`SolveError::Partitioned`] when the communication graph is
/// disconnected.
pub fn solve_on(
    net: &mut Network<'_>,
    inst: &Instance<'_>,
    params: &Params,
) -> Result<Dist, SolveError> {
    let replacement = unweighted::solve_on(net, inst, params)?;
    // Aggregation input: v_i contributes replacement[i].
    let mut values = vec![Dist::INF; inst.n()];
    for i in 0..inst.hops() {
        values[inst.path.node(i)] = replacement[i];
    }
    let (tree, _) = build_bfs_tree(net, inst.s())?;
    Ok(aggregate_min(net, &tree, &values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::alg::second_simple_shortest;
    use graphkit::gen::{parallel_lane, planted_path_digraph, theorem2_family};

    #[test]
    fn aggregate_min_finds_global_minimum() {
        let (g, _, _) = planted_path_digraph(40, 10, 80, 1);
        let mut net = Network::new(&g);
        let (tree, _) = build_bfs_tree(&mut net, 0).unwrap();
        let mut values = vec![Dist::INF; 40];
        values[17] = Dist::new(5);
        values[31] = Dist::new(3);
        assert_eq!(aggregate_min(&mut net, &tree, &values), Dist::new(3));
    }

    #[test]
    fn aggregate_min_all_infinite() {
        let (g, _, _) = planted_path_digraph(20, 5, 30, 2);
        let mut net = Network::new(&g);
        let (tree, _) = build_bfs_tree(&mut net, 3).unwrap();
        let values = vec![Dist::INF; 20];
        assert_eq!(aggregate_min(&mut net, &tree, &values), Dist::INF);
    }

    #[test]
    fn sisp_matches_oracle() {
        for seed in 0..5 {
            let (g, s, t) = planted_path_digraph(40, 12, 100, seed);
            let inst = Instance::from_endpoints(&g, s, t).unwrap();
            let mut params = Params::with_zeta(40, 5).with_seed(seed);
            params.landmark_prob = 1.0;
            let out = solve(&inst, &params).unwrap();
            assert_eq!(
                out.value,
                second_simple_shortest(&g, &inst.path),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn sisp_on_theorem2_family() {
        // The Ω(D) family: 2-SiSP is d+1 when the long path is intact,
        // infinite when an edge is reversed.
        let intact = theorem2_family(8, None);
        let inst = Instance::new(
            &intact.graph,
            graphkit::StPath::from_nodes(&intact.graph, &intact.short_path).unwrap(),
        )
        .unwrap();
        let params = Params::with_zeta(inst.n(), inst.n());
        assert_eq!(solve(&inst, &params).unwrap().value, Dist::new(9));

        let broken = theorem2_family(8, Some(4));
        let inst = Instance::new(
            &broken.graph,
            graphkit::StPath::from_nodes(&broken.graph, &broken.short_path).unwrap(),
        )
        .unwrap();
        assert_eq!(solve(&inst, &params).unwrap().value, Dist::INF);
    }

    #[test]
    fn weighted_sisp_within_guarantee() {
        let g = graphkit::gen::random_weighted_digraph(30, 90, 9, 11);
        let (s, t) = graphkit::gen::random_reachable_pair(&g, 2).unwrap();
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        if inst.hops() < 3 {
            return;
        }
        let mut params = Params::with_zeta(30, 5);
        params.landmark_prob = 1.0;
        let (value, den, _) = solve_weighted(&inst, &params).unwrap();
        let oracle = second_simple_shortest(&g, &inst.path);
        match (value.finite(), oracle.finite()) {
            (None, None) => {}
            (Some(v), Some(o)) => {
                assert!(v >= o * den, "below the exact 2-SiSP");
                // ε = 1/2: v/den <= 1.5·o
                assert!(v * 2 <= o * den * 3, "beyond (1+ε)");
            }
            other => panic!("finiteness mismatch: {other:?}"),
        }
    }

    #[test]
    fn sisp_on_lane() {
        let (g, s, t) = parallel_lane(14, 7, 2);
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        let mut params = Params::with_zeta(inst.n(), 7);
        params.landmark_prob = 1.0;
        let out = solve(&inst, &params).unwrap();
        assert_eq!(out.value, second_simple_shortest(&g, &inst.path));
    }
}
