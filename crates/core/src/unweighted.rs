//! Theorem 1: exact RPaths for unweighted directed graphs in
//! `eO(n^{2/3} + D)` rounds.
//!
//! Runs the Lemma 2.5 preprocessing, the `O(ζ)`-round short-detour
//! algorithm (Proposition 4.1) and the `eO(n^{2/3} + D)`-round
//! long-detour algorithm (Proposition 5.1), and takes the per-edge
//! minimum of the two outputs.

use congest::bfs_tree::build_bfs_tree;
use congest::Network;

use crate::{knowledge, long, short, Instance, Params, RPathsOutput, SolveError};

/// Solves unweighted directed RPaths (Definition 2.1) with high
/// probability, exactly.
///
/// Every phase runs on the sharded-parallel engine path, so the answers
/// and the per-phase [`congest::RunStats`] are bit-identical at any
/// `CONGEST_THREADS` setting. This is a thin wrapper over a fresh
/// [`crate::SolverSession`]; batch workloads should hold a session and
/// use [`crate::SolverSession::solve_batch`] to reuse artifacts across
/// queries.
///
/// # Errors
///
/// Returns [`SolveError::Partitioned`] when the communication graph is
/// disconnected.
///
/// # Panics
///
/// Panics if the graph is weighted — use [`crate::weighted::solve`] for
/// the `(1+ε)` algorithm of Theorem 3.
pub fn solve(inst: &Instance<'_>, params: &Params) -> Result<RPathsOutput, SolveError> {
    let mut session = crate::SolverSession::new(inst.graph, params.clone());
    let (answers, mut metrics) =
        session.solve_instance(inst, params, crate::SolverKind::Unweighted)?;
    metrics.record_cache(session.stats().cache);
    Ok(RPathsOutput {
        replacement: answers.scaled.clone(),
        metrics,
    })
}

/// Like [`solve`], but on a caller-provided network (so callers can
/// pre-configure bandwidth, cut accounting, or thread counts — the
/// Section 6 experiments and the engine-equivalence tests do all three).
///
/// # Errors
///
/// Returns [`SolveError::Partitioned`] when the communication graph is
/// disconnected.
pub fn solve_on(
    net: &mut Network<'_>,
    inst: &Instance<'_>,
    params: &Params,
) -> Result<Vec<graphkit::Dist>, SolveError> {
    assert!(
        inst.graph.is_unweighted(),
        "Theorem 1 applies to unweighted graphs; see weighted::solve"
    );
    let (tree, _) = build_bfs_tree(net, inst.s())?;
    // Lemma 2.5: vertices acquire their index and prefix/suffix distances.
    let know = knowledge::acquire(net, inst, params, &tree);
    debug_assert_eq!(know.dist_s, inst.prefix);
    let short_ans = short::solve_short(net, inst, params);
    let long_ans = long::solve_long(net, inst, params, &tree);
    // Test-only injectable defect (see `crate::testhooks`): a flipped
    // tie-break keeps the larger side where the regimes disagree.
    let flip = crate::testhooks::flip_unweighted_merge();
    Ok(short_ans
        .into_iter()
        .zip(long_ans)
        .map(|(a, b)| if flip { a.max(b) } else { a.min(b) })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::alg::replacement_lengths;
    use graphkit::gen::{grid, layered_dag, parallel_lane, planted_path_digraph};
    use graphkit::Dist;

    fn check_exact(g: &graphkit::DiGraph, s: usize, t: usize, params: Params) {
        let inst = Instance::from_endpoints(g, s, t).unwrap();
        let out = solve(&inst, &params).unwrap();
        let want = replacement_lengths(g, &inst.path);
        assert_eq!(out.replacement, want);
    }

    #[test]
    fn theorem1_on_parallel_lane_mixed_regimes() {
        // Detours of 2 + 5·2 = 12 hops with ζ = 5: strictly long regime.
        let (g, s, t) = parallel_lane(20, 5, 2);
        let mut params = Params::with_zeta(g.node_count(), 5);
        params.landmark_prob = 0.8; // dense enough for tiny n
        check_exact(&g, s, t, params);
    }

    #[test]
    fn theorem1_on_parallel_lane_short_regime() {
        // Detours of 2 + 2·1 = 4 hops with ζ = 6: strictly short regime.
        let (g, s, t) = parallel_lane(20, 2, 1);
        let params = Params::with_zeta(g.node_count(), 6);
        check_exact(&g, s, t, params);
    }

    #[test]
    fn theorem1_on_random_planted_paths() {
        for seed in 0..8 {
            let (g, s, t) = planted_path_digraph(50, 16, 130, seed);
            let mut params = Params::with_zeta(50, 6).with_seed(seed);
            params.landmark_prob = 1.0; // make w.h.p. certain at n = 50
            check_exact(&g, s, t, params);
        }
    }

    #[test]
    fn theorem1_on_grid_and_dag() {
        let (g, s, t) = grid(5, 6);
        check_exact(&g, s, t, Params::with_zeta(30, 4));
        let (g, s, t) = layered_dag(8, 4, 40, 9);
        let mut p = Params::with_zeta(g.node_count(), 4);
        p.landmark_prob = 1.0;
        check_exact(&g, s, t, p);
    }

    #[test]
    fn output_sisp_helper() {
        let (g, s, t) = parallel_lane(8, 2, 1);
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        let out = solve(&inst, &Params::with_zeta(g.node_count(), 8)).unwrap();
        let want = replacement_lengths(&g, &inst.path);
        assert_eq!(out.sisp(), want.iter().copied().min().unwrap());
        assert!(out.sisp() != Dist::INF);
    }

    #[test]
    fn rounds_stay_subquadratic() {
        let (g, s, t) = planted_path_digraph(200, 60, 500, 4);
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        let params = Params::for_instance(&inst);
        let out = solve(&inst, &params).unwrap();
        // At n = 200 the polylog factors dominate (|L| ≈ c·ln n · n^{1/3}
        // landmarks means ~|L|² broadcast rounds); the real asymptotics
        // are exercised in the benchmark harness. Sanity cap only:
        let n = inst.n() as u64;
        assert!(
            out.metrics.rounds() < n * n / 4,
            "rounds = {}",
            out.metrics.rounds()
        );
    }
}
