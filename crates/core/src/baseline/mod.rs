//! The algorithms the paper compares against (Table 1).
//!
//! - [`naive`]: the trivial `O(h_st · T_SSSP)` algorithm mentioned in the
//!   paper's remark — one BFS in `G \ e` per path edge, sequentially.
//! - [`mr24`]: the `eO(n^{2/3} + √(n·h_st) + D)` algorithm of Manoharan
//!   and Ramachandran (SIROCCO 2024), whose round profile carries the
//!   `h_st` dependence the paper eliminates: a simultaneous ζ-hop BFS
//!   from *all* path vertices (`O(h_st + ζ)` rounds) and a broadcast in
//!   which path vertices, not just landmarks, publish their landmark
//!   distances (`O(|L|² + |L|·h_st + D)` messages).

pub mod mr24;
pub mod naive;
