//! The Manoharan–Ramachandran (SIROCCO 2024) baseline:
//! `eO(n^{2/3} + √(n·h_st) + D)` rounds for unweighted directed RPaths.
//!
//! This is the algorithm the paper improves on, reproduced here so the
//! Table 1 comparison can be *measured*. Its round profile differs from
//! Theorem 1 in exactly the ways the paper describes (Section 3.1):
//!
//! - The path identifiers are made global knowledge up front — justified
//!   in their setting because their round complexity already contains an
//!   `O(h_st)` term. We charge an `O(h_st + D)` broadcast for it.
//! - Short detours: a ζ'-hop BFS from **all** path vertices
//!   simultaneously (`O(h_st + ζ')` rounds; messages are per-source, not
//!   trimmed), versus the paper's `O(ζ)` furthest-origin BFS.
//! - Long detours: **both** landmarks *and path vertices* publish their
//!   landmark distances, an `O(|L|² + |L|·h_st + D)`-round broadcast,
//!   versus the paper's landmark-only `O(|L|² + D)`.
//! - The threshold is ζ' = max(n^{2/3}, √(n·h_st)) — their balance point;
//!   the √(n·h_st) term is the one Theorem 1 removes.

use congest::bfs_tree::build_bfs_tree;
use congest::broadcast::broadcast;
use congest::multi_bfs::{default_budget, multi_source_bfs, MultiBfsConfig};
use congest::{word_bits, Network};
use graphkit::Dist;

use crate::long::dists::min_plus_closure;
use crate::long::landmarks;
use crate::short::combine::pipeline_dp;
use crate::{Instance, Params, RPathsOutput, SolveError};

/// MR24's threshold: `ζ' = max(ζ, ⌈√(n·h_st)⌉)`.
pub fn mr_zeta(n: usize, h: usize, zeta: usize) -> usize {
    zeta.max(((n as f64) * (h as f64)).sqrt().ceil() as usize)
}

/// Runs the MR24 algorithm. Exact w.h.p.;
/// `eO(n^{2/3} + √(n·h_st) + D)` rounds.
///
/// # Errors
///
/// Returns [`SolveError::Partitioned`] when the communication graph is
/// disconnected.
pub fn solve(inst: &Instance<'_>, params: &Params) -> Result<RPathsOutput, SolveError> {
    let mut session = crate::SolverSession::new(inst.graph, params.clone());
    let (answers, mut metrics) = session.solve_instance(inst, params, crate::SolverKind::Mr24)?;
    metrics.record_cache(session.stats().cache);
    Ok(RPathsOutput {
        replacement: answers.scaled.clone(),
        metrics,
    })
}

/// Like [`solve`], but on a caller-provided network; metrics accumulate
/// on `net`.
///
/// # Errors
///
/// Returns [`SolveError::Partitioned`] when the communication graph is
/// disconnected.
pub fn solve_on(
    net: &mut Network<'_>,
    inst: &Instance<'_>,
    params: &Params,
) -> Result<Vec<Dist>, SolveError> {
    assert!(inst.graph.is_unweighted(), "mr24 baseline is unweighted");
    let n = inst.n();
    let h = inst.hops();
    let zeta = mr_zeta(n, h, params.zeta);
    let (tree, _) = build_bfs_tree(net, inst.s())?;

    // MR24's initial-knowledge assumption: everyone learns the vertex
    // sequence of P (an O(h_st + D) broadcast).
    let mut id_items: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
    for (i, &v) in inst.path.nodes().iter().enumerate() {
        id_items[v].push((i as u32, v as u32));
    }
    let _ = broadcast(
        net,
        &tree,
        id_items,
        |&(i, v)| word_bits(i as u64) + word_bits(v as u64),
        "mr24/path-ids",
    );

    // --- Short detours: ζ'-hop BFS from all of P, untrimmed. ---
    let cfg = MultiBfsConfig {
        sources: inst.path.nodes(),
        max_dist: zeta as u64,
        reverse: true, // v_i learns d(v_i -> v_j) for every j
        delays: None,
    };
    let (to_path, _) = multi_source_bfs(
        net,
        &cfg,
        |e| inst.in_g_minus_p(e),
        "mr24/path-bfs",
        default_budget(h + 1, zeta as u64) * 2 * params.budget_factor,
    )
    .expect("path BFS quiesces");
    // Locally: X[i, >= i+d] tables, then the same O(ζ') pipelined DP.
    let x_ge: Vec<Vec<Dist>> = (0..=h)
        .map(|i| {
            let vi = inst.path.node(i);
            let span = zeta.min(h - i);
            let mut out = vec![Dist::INF; zeta.max(1)];
            let mut running = Dist::INF;
            for d in (1..=span).rev() {
                let j = i + d;
                if let Some(det) = to_path[j][vi].finite() {
                    running = running.min(Dist::new(h as u64 - d as u64 + det));
                }
                out[d - 1] = running;
            }
            out
        })
        .collect();
    let short_ans = pipeline_dp(net, inst, &x_ge, zeta.max(1));

    // --- Long detours: landmarks, with the fat broadcast. ---
    let mut lparams = params.clone();
    lparams.zeta = zeta;
    // MR24's density for the (possibly larger) threshold ζ'. An explicit
    // caller override below the computed density is respected (tests pin
    // it); landmark_prob = 1 forces full landmarks for exactness tests.
    lparams.landmark_prob = if params.landmark_prob >= 0.999 {
        1.0
    } else {
        (Params::LANDMARK_C * (n.max(2) as f64).ln() / zeta as f64)
            .min(params.landmark_prob)
            .min(1.0)
    };
    let lms = landmarks::sample(inst, &lparams);
    let k = lms.len();
    let long_ans: Vec<Dist> = if k == 0 {
        vec![Dist::INF; h]
    } else {
        let fwd_cfg = MultiBfsConfig {
            sources: &lms,
            max_dist: zeta as u64,
            reverse: false,
            delays: None,
        };
        let (fwd, _) = multi_source_bfs(
            net,
            &fwd_cfg,
            |e| inst.in_g_minus_p(e),
            "mr24/landmark-bfs-fwd",
            default_budget(k, zeta as u64) * 2 * params.budget_factor,
        )
        .expect("landmark BFS quiesces");
        let bwd_cfg = MultiBfsConfig {
            sources: &lms,
            max_dist: zeta as u64,
            reverse: true,
            delays: None,
        };
        let (bwd, _) = multi_source_bfs(
            net,
            &bwd_cfg,
            |e| inst.in_g_minus_p(e),
            "mr24/landmark-bfs-bwd",
            default_budget(k, zeta as u64) * 2 * params.budget_factor,
        )
        .expect("landmark BFS quiesces");

        // The fat broadcast: landmark-landmark pairs PLUS every path
        // vertex's distances to and from every landmark — the
        // O(|L|² + |L|·h_st) message volume of MR24.
        #[derive(Clone, Copy)]
        enum Item {
            Pair(u32, u32, u64),
            PathTo(u32, u32, u64),   // d(v_i -> l_j)
            PathFrom(u32, u32, u64), // d(l_j -> v_i)
        }
        let bits = |it: &Item| match *it {
            Item::Pair(a, b, d) | Item::PathTo(a, b, d) | Item::PathFrom(a, b, d) => {
                2 + word_bits(a as u64) + word_bits(b as u64) + word_bits(d)
            }
        };
        let mut items: Vec<Vec<Item>> = vec![Vec::new(); n];
        for (j, row) in fwd.iter().enumerate() {
            for (kk, &lk) in lms.iter().enumerate() {
                if let Some(d) = row[lk].finite() {
                    items[lk].push(Item::Pair(j as u32, kk as u32, d));
                }
            }
        }
        for (i, &v) in inst.path.nodes().iter().enumerate() {
            for j in 0..k {
                if let Some(d) = bwd[j][v].finite() {
                    items[v].push(Item::PathTo(i as u32, j as u32, d));
                }
                if let Some(d) = fwd[j][v].finite() {
                    items[v].push(Item::PathFrom(i as u32, j as u32, d));
                }
            }
        }
        let (streams, _) = broadcast(net, &tree, items, bits, "mr24/fat-broadcast");
        let stream = &streams[inst.s()];

        // Everything below is local at every vertex.
        let mut pairs = vec![vec![Dist::INF; k]; k];
        let mut path_to = vec![vec![Dist::INF; k]; h + 1];
        let mut path_from = vec![vec![Dist::INF; k]; h + 1];
        for it in stream {
            match *it {
                Item::Pair(a, b, d) => {
                    let c = &mut pairs[a as usize][b as usize];
                    *c = (*c).min(Dist::new(d));
                }
                Item::PathTo(i, j, d) => {
                    let c = &mut path_to[i as usize][j as usize];
                    *c = (*c).min(Dist::new(d));
                }
                Item::PathFrom(i, j, d) => {
                    let c = &mut path_from[i as usize][j as usize];
                    *c = (*c).min(Dist::new(d));
                }
            }
        }
        for (j, row) in pairs.iter_mut().enumerate() {
            row[j] = Dist::ZERO;
        }
        let closure = min_plus_closure(pairs);
        // Exact (w.h.p.) |v_i -> l_j| and |l_j -> v_i| via composition.
        let mut exact_to = path_to.clone();
        let mut exact_from = path_from.clone();
        for i in 0..=h {
            for j in 0..k {
                for mid in 0..k {
                    exact_to[i][j] = exact_to[i][j].min(path_to[i][mid] + closure[mid][j]);
                    exact_from[i][j] = exact_from[i][j].min(closure[j][mid] + path_from[i][mid]);
                }
            }
        }
        // A(l, i) = min_{k <= i} (k + |v_k -> l|); B(l, i) = min_{k' >= i+1}.
        let mut a = vec![vec![Dist::INF; k]; h + 1];
        for i in 0..=h {
            for j in 0..k {
                let own = Dist::new(i as u64) + exact_to[i][j];
                a[i][j] = if i == 0 { own } else { a[i - 1][j].min(own) };
            }
        }
        let mut b = vec![vec![Dist::INF; k]; h + 2];
        for i in (1..=h).rev() {
            for j in 0..k {
                let own = exact_from[i][j] + Dist::new((h - i) as u64);
                b[i][j] = b[i + 1][j].min(own);
            }
        }
        (0..h)
            .map(|i| {
                (0..k)
                    .map(|j| a[i][j] + b[i + 1][j])
                    .min()
                    .unwrap_or(Dist::INF)
            })
            .collect()
    };

    Ok(short_ans
        .into_iter()
        .zip(long_ans)
        .map(|(x, y)| x.min(y))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::alg::replacement_lengths;
    use graphkit::gen::{parallel_lane, planted_path_digraph};

    #[test]
    fn mr24_matches_oracle_on_planted() {
        for seed in 0..5 {
            let (g, s, t) = planted_path_digraph(40, 12, 100, seed);
            let inst = Instance::from_endpoints(&g, s, t).unwrap();
            let mut params = Params::with_zeta(40, 5).with_seed(seed);
            params.landmark_prob = 1.0;
            let out = solve(&inst, &params).unwrap();
            assert_eq!(
                out.replacement,
                replacement_lengths(&g, &inst.path),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn mr24_matches_oracle_on_lane() {
        let (g, s, t) = parallel_lane(18, 6, 2);
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        let mut params = Params::with_zeta(inst.n(), 4);
        params.landmark_prob = 1.0;
        let out = solve(&inst, &params).unwrap();
        assert_eq!(out.replacement, replacement_lengths(&g, &inst.path));
    }

    #[test]
    fn mr_zeta_is_the_balance_point() {
        assert_eq!(mr_zeta(1000, 1, 100), 100); // n^{2/3} dominates
        assert!(mr_zeta(1000, 500, 100) >= 707); // √(n·h) dominates
    }

    #[test]
    fn mr24_costs_more_rounds_as_h_grows() {
        // Same n, longer path: MR24's round count must grow noticeably.
        let build = |h: usize| {
            let (g, s, t) = planted_path_digraph(160, h, 350, 7);
            let inst = Instance::from_endpoints(&g, s, t).unwrap();
            // Pin the landmark density so the comparison isolates the
            // h_st dependence (otherwise a larger ζ' lowers |L| and the
            // |L|² broadcast shrinks, masking the effect at tiny n).
            let mut params = Params::for_instance(&inst).with_seed(3);
            params.landmark_prob = 0.15;
            solve(&inst, &params).unwrap().metrics.rounds()
        };
        let short = build(8);
        let long = build(100);
        assert!(long > short, "short={short}, long={long}");
    }
}
