//! The trivial baseline: `h_st` sequential single-source BFS runs.
//!
//! For each edge `e` of `P` in turn, run a BFS from `s` in `G \ e` and
//! record the distance at `t`. This is the `O(h_st · T_SSSP)` algorithm
//! from the paper's remark in Section 1.1 — asymptotically terrible in
//! `h_st`, but simple, exact, deterministic, and *faster* than the
//! `eO(n^{2/3} + D)` algorithm when `h_st` is very small, exactly as the
//! paper notes.

use congest::bfs_tree::build_bfs_tree;
use congest::broadcast::broadcast;
use congest::multi_bfs::{multi_source_bfs, MultiBfsConfig};
use congest::{word_bits, Network};
use graphkit::Dist;

use crate::{Instance, Params, RPathsOutput, SolveError};

/// Runs the naive per-edge-BFS algorithm. Exact; `O(h_st · T_BFS + D)`
/// rounds.
///
/// # Errors
///
/// Returns [`SolveError::Partitioned`] when the communication graph is
/// disconnected.
pub fn solve(inst: &Instance<'_>, params: &Params) -> Result<RPathsOutput, SolveError> {
    let mut session = crate::SolverSession::new(inst.graph, params.clone());
    let (answers, mut metrics) = session.solve_instance(inst, params, crate::SolverKind::Naive)?;
    metrics.record_cache(session.stats().cache);
    Ok(RPathsOutput {
        replacement: answers.scaled.clone(),
        metrics,
    })
}

/// Like [`solve`], but on a caller-provided network; metrics accumulate
/// on `net`.
///
/// # Errors
///
/// Returns [`SolveError::Partitioned`] when the communication graph is
/// disconnected.
pub fn solve_on(
    net: &mut Network<'_>,
    inst: &Instance<'_>,
    _params: &Params,
) -> Result<Vec<Dist>, SolveError> {
    assert!(inst.graph.is_unweighted(), "naive baseline is unweighted");
    let (tree, _) = build_bfs_tree(net, inst.s())?;
    let n = inst.n() as u64;
    let mut replacement = Vec::with_capacity(inst.hops());
    for (i, &banned) in inst.path.edges().iter().enumerate() {
        let cfg = MultiBfsConfig {
            sources: &[inst.s()],
            max_dist: n,
            reverse: false,
            delays: None,
        };
        let (dist, _) = multi_source_bfs(
            net,
            &cfg,
            |e| e != banned,
            &format!("naive/bfs-{i}"),
            8 * n + 64,
        )
        .expect("BFS quiesces");
        replacement.push(dist[0][inst.t()]);
    }
    // `t` observed every answer; publish them so each v_i knows its own
    // (and, for convenience of the caller, everyone knows all).
    let mut items: Vec<Vec<(u32, u64)>> = vec![Vec::new(); inst.n()];
    items[inst.t()] = replacement
        .iter()
        .enumerate()
        .map(|(i, d)| (i as u32, d.raw()))
        .collect();
    let _ = broadcast(
        net,
        &tree,
        items,
        |&(i, d)| word_bits(i as u64) + 1 + word_bits(if d == u64::MAX { 0 } else { d }),
        "naive/publish",
    );
    Ok(replacement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::alg::replacement_lengths;
    use graphkit::gen::{parallel_lane, planted_path_digraph};

    #[test]
    fn naive_matches_oracle() {
        for seed in 0..5 {
            let (g, s, t) = planted_path_digraph(40, 12, 100, seed);
            let inst = Instance::from_endpoints(&g, s, t).unwrap();
            let out = solve(&inst, &Params::for_instance(&inst)).unwrap();
            assert_eq!(out.replacement, replacement_lengths(&g, &inst.path));
        }
    }

    #[test]
    fn rounds_scale_with_hops() {
        let (g1, s1, t1) = parallel_lane(8, 2, 1);
        let inst1 = Instance::from_endpoints(&g1, s1, t1).unwrap();
        let r1 = solve(&inst1, &Params::for_instance(&inst1))
            .unwrap()
            .metrics
            .rounds();

        let (g2, s2, t2) = parallel_lane(32, 2, 1);
        let inst2 = Instance::from_endpoints(&g2, s2, t2).unwrap();
        let r2 = solve(&inst2, &Params::for_instance(&inst2))
            .unwrap()
            .metrics
            .rounds();

        // 4x the hops (and similar per-BFS depth) should cost much more
        // than 4x the rounds of the short instance.
        assert!(r2 > 4 * r1, "r1 = {r1}, r2 = {r2}");
    }

    #[test]
    fn infinite_replacements_detected() {
        let (g, s, t) = parallel_lane(6, 6, 1); // switches only at 0 and 6
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        let out = solve(&inst, &Params::for_instance(&inst)).unwrap();
        let want = replacement_lengths(&g, &inst.path);
        assert_eq!(out.replacement, want);
    }
}
