//! A size-bounded, deterministic LRU cache for solver artifacts.
//!
//! Sessions ([`crate::session`]) answer many queries against one
//! immutable graph; the expensive intermediates — BFS trees, shortest
//! paths, the undirected diameter, and whole per-path-edge replacement
//! answers — are pure functions of `(graph, artifact kind, params)`,
//! so they are cached here keyed by the graph's stable
//! [`fingerprint`](graphkit::DiGraph::fingerprint) plus a typed
//! [`ArtifactKind`].
//!
//! **Determinism contract.** The cache is an ordinary sequential data
//! structure driven only by the session's call sequence: recency is a
//! monotonic logical clock (one tick per touch, never wall time), keys
//! are totally ordered, and eviction always removes the entry with the
//! smallest recency stamp. Two sessions that issue the same operations
//! in the same order therefore hold the same entries, evict the same
//! victims, and report the same [`CacheStats`] — on any machine, at any
//! `CONGEST_THREADS` setting. The LRU proptests in
//! `tests/session_differential.rs` pin this down against a naive model.
//!
//! Cache telemetry deliberately stays *out* of [`congest::Metrics`]
//! equality (like `DispatchStats`): hits change how fast an answer is
//! produced, never the answer.

use std::collections::BTreeMap;
use std::sync::Arc;

use congest::bfs_tree::BfsTree;
use congest::CacheStats;
use graphkit::{NodeId, StPath};

use crate::weighted::ScaledAnswers;

/// Which solver produced a cached replacement-answers artifact.
///
/// Part of the cache key: the same instance solved by Theorem 1 and by
/// a baseline yields different round profiles (and, for the weighted
/// solver, different scaled encodings), so their artifacts never alias.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SolverKind {
    /// Theorem 1: exact unweighted replacement paths.
    Unweighted,
    /// Theorem 3: `(1+ε)`-approximate weighted replacement paths.
    Weighted,
    /// The trivial per-edge-BFS baseline.
    Naive,
    /// The Manoharan–Ramachandran (SIROCCO 2024) baseline.
    Mr24,
}

impl SolverKind {
    /// Stable one-byte code used by the persisted cache section.
    pub fn code(self) -> u8 {
        match self {
            SolverKind::Unweighted => 0,
            SolverKind::Weighted => 1,
            SolverKind::Naive => 2,
            SolverKind::Mr24 => 3,
        }
    }

    /// Inverse of [`SolverKind::code`].
    pub fn from_code(code: u8) -> Option<SolverKind> {
        match code {
            0 => Some(SolverKind::Unweighted),
            1 => Some(SolverKind::Weighted),
            2 => Some(SolverKind::Naive),
            3 => Some(SolverKind::Mr24),
            _ => None,
        }
    }

    /// Human-readable name (artifact keys, logs).
    pub fn name(self) -> &'static str {
        match self {
            SolverKind::Unweighted => "unweighted",
            SolverKind::Weighted => "weighted",
            SolverKind::Naive => "naive",
            SolverKind::Mr24 => "mr24",
        }
    }
}

/// What kind of artifact a cache entry holds, with the parameters that
/// identify it among its kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ArtifactKind {
    /// The undirected diameter `D` of the communication graph.
    Diameter,
    /// A shortest `source → target` path (or proof of unreachability).
    Path {
        /// Path source.
        source: NodeId,
        /// Path target.
        target: NodeId,
    },
    /// The BFS tree rooted at `root`.
    Tree {
        /// Tree root.
        root: NodeId,
    },
    /// Per-path-edge replacement answers for one solved instance.
    Replacement {
        /// Instance source.
        source: NodeId,
        /// Instance target.
        target: NodeId,
        /// The solver that produced the answers.
        solver: SolverKind,
        /// Fingerprint of the [`crate::Params`] used.
        params_fp: u64,
        /// Fingerprint of the instance's path edges (two shortest paths
        /// between the same endpoints may differ; answers depend on
        /// which one failed edges live on).
        path_fp: u64,
    },
}

/// Full cache key: graph identity plus typed artifact identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheKey {
    /// [`graphkit::DiGraph::fingerprint`] of the graph the artifact was
    /// computed on.
    pub fingerprint: u64,
    /// The artifact's kind and parameters.
    pub kind: ArtifactKind,
}

/// A cached artifact value.
///
/// Large payloads sit behind [`Arc`] so a hit is a pointer bump, not a
/// deep clone.
#[derive(Clone, Debug)]
pub enum CacheValue {
    /// Value for [`ArtifactKind::Diameter`].
    Diameter(usize),
    /// Value for [`ArtifactKind::Path`]; `None` records that the target
    /// is unreachable (negative results are worth caching too).
    Path(Option<StPath>),
    /// Value for [`ArtifactKind::Tree`].
    Tree(Arc<BfsTree>),
    /// Value for [`ArtifactKind::Replacement`].
    Replacement(Arc<ScaledAnswers>),
}

#[derive(Clone, Debug)]
struct Entry {
    value: CacheValue,
    stamp: u64,
}

/// The deterministic LRU artifact cache.
///
/// See the [module docs](self) for the determinism contract. Stats are
/// cumulative over the cache's lifetime; callers wanting per-batch
/// deltas snapshot [`ArtifactCache::stats`] and use
/// [`CacheStats::delta_since`].
#[derive(Clone, Debug)]
pub struct ArtifactCache {
    capacity: usize,
    clock: u64,
    entries: BTreeMap<CacheKey, Entry>,
    /// Inverse index `stamp → key`; stamps are unique (one clock tick
    /// per touch), so the smallest stamp is the unique LRU victim.
    recency: BTreeMap<u64, CacheKey>,
    stats: CacheStats,
}

impl ArtifactCache {
    /// Creates an empty cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a cache that can hold nothing
    /// would turn every insert into an immediate self-eviction.
    pub fn new(capacity: usize) -> ArtifactCache {
        assert!(capacity >= 1, "cache capacity must be at least 1");
        ArtifactCache {
            capacity,
            clock: 0,
            entries: BTreeMap::new(),
            recency: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cumulative hit/miss/insertion/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drops every entry (counters are kept — a clear is an operational
    /// event, not a new cache).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.recency.clear();
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Looks up `key`, recording a hit or miss and refreshing the
    /// entry's recency on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<CacheValue> {
        let stamp = self.tick();
        match self.entries.get_mut(key) {
            Some(entry) => {
                self.recency.remove(&entry.stamp);
                entry.stamp = stamp;
                self.recency.insert(stamp, *key);
                self.stats.hits += 1;
                Some(entry.value.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Looks up `key` without recording a hit/miss or touching recency
    /// (inspection, tests).
    pub fn peek(&self, key: &CacheKey) -> Option<&CacheValue> {
        self.entries.get(key).map(|e| &e.value)
    }

    /// Inserts (or replaces) `key`, evicting the least recently used
    /// entry if the capacity bound would be exceeded.
    pub fn insert(&mut self, key: CacheKey, value: CacheValue) {
        let stamp = self.tick();
        if let Some(old) = self.entries.insert(key, Entry { value, stamp }) {
            self.recency.remove(&old.stamp);
        }
        self.recency.insert(stamp, key);
        self.stats.insertions += 1;
        while self.entries.len() > self.capacity {
            // Unique stamps make the victim unique; `pop_first` on the
            // recency index is the deterministic LRU choice.
            let (_, victim) = self
                .recency
                .pop_first()
                .expect("recency index tracks every entry");
            self.entries.remove(&victim);
            self.stats.evictions += 1;
        }
    }

    /// All entries ordered oldest-touched first.
    ///
    /// This is the persistence order: re-inserting in this order into a
    /// fresh cache reproduces the recency ranking (the last insert is
    /// the most recent, as it was here).
    pub fn entries_by_recency(&self) -> Vec<(CacheKey, CacheValue)> {
        self.recency
            .values()
            .map(|k| (*k, self.entries[k].value.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::Dist;

    fn key(i: u64) -> CacheKey {
        CacheKey {
            fingerprint: 0xfeed,
            kind: ArtifactKind::Tree { root: i as NodeId },
        }
    }

    fn val(d: usize) -> CacheValue {
        CacheValue::Diameter(d)
    }

    #[test]
    fn capacity_is_never_exceeded_and_lru_is_evicted() {
        let mut c = ArtifactCache::new(2);
        c.insert(key(0), val(0));
        c.insert(key(1), val(1));
        assert!(c.get(&key(0)).is_some()); // 0 becomes most recent
        c.insert(key(2), val(2)); // evicts 1, the LRU
        assert_eq!(c.len(), 2);
        assert!(c.peek(&key(0)).is_some());
        assert!(c.peek(&key(1)).is_none());
        assert!(c.peek(&key(2)).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn stats_count_hits_misses_insertions() {
        let mut c = ArtifactCache::new(4);
        assert!(c.get(&key(7)).is_none());
        c.insert(key(7), val(3));
        assert!(c.get(&key(7)).is_some());
        assert!(c.get(&key(7)).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.evictions), (2, 1, 1, 0));
        assert_eq!(s.lookups(), 3);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn replacing_a_key_keeps_one_entry() {
        let mut c = ArtifactCache::new(2);
        c.insert(key(5), val(1));
        c.insert(key(5), val(2));
        assert_eq!(c.len(), 1);
        assert!(matches!(c.peek(&key(5)), Some(CacheValue::Diameter(2))));
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn entries_by_recency_is_oldest_first() {
        let mut c = ArtifactCache::new(8);
        c.insert(key(0), val(0));
        c.insert(key(1), val(1));
        c.insert(key(2), val(2));
        let _ = c.get(&key(0)); // 0 is now the newest
        let order: Vec<CacheKey> = c.entries_by_recency().into_iter().map(|(k, _)| k).collect();
        assert_eq!(order, vec![key(1), key(2), key(0)]);
    }

    #[test]
    fn value_variants_round_trip_through_the_map() {
        let mut c = ArtifactCache::new(4);
        let k = CacheKey {
            fingerprint: 1,
            kind: ArtifactKind::Replacement {
                source: 0,
                target: 3,
                solver: SolverKind::Unweighted,
                params_fp: 9,
                path_fp: 11,
            },
        };
        let answers = Arc::new(ScaledAnswers {
            scaled: vec![Dist::new(4), Dist::INF],
            den: 1,
        });
        c.insert(k, CacheValue::Replacement(answers.clone()));
        match c.get(&k) {
            Some(CacheValue::Replacement(a)) => {
                assert_eq!(a.scaled, answers.scaled);
                assert_eq!(a.den, 1);
            }
            other => panic!("wrong value back: {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_rejected() {
        let _ = ArtifactCache::new(0);
    }
}
