//! Ground-truth oracle adapters for differential testing.
//!
//! Every solver in this workspace has a centralized counterpart in
//! `graphkit::alg` (Dijkstra, BFS, [`replacement_lengths`],
//! [`second_simple_shortest`]). This module packages "run solver X and
//! compare against its oracle" as one call per solver kind, returning a
//! structured [`Divergence`] instead of panicking — the building block
//! the `rpaths-fuzz` harness, the regression-fixture replayer
//! ([`crate::fixture`]), and ad-hoc differential tests all share.
//!
//! The checks are *semantic*, per solver contract:
//!
//! - exact solvers (Theorem 1, naive, MR24) must equal
//!   [`replacement_lengths`] bit for bit;
//! - the weighted solver (Theorem 3) must satisfy the exact-rational
//!   `oracle ≤ x ≤ (1+ε)·oracle` guarantee;
//! - 2-SiSP must equal [`second_simple_shortest`];
//! - reachability must equal the oracle's finiteness profile;
//! - batch answers must match a per-query filtered Dijkstra.

use std::fmt;

use graphkit::alg::{dijkstra, replacement_lengths, second_simple_shortest};
use graphkit::{DiGraph, Dist};

use crate::session::{Answer, Query};
use crate::{baseline, reachability, sisp, unweighted, weighted, Instance, Params};

/// Every solver surface the differential harness can drive — a superset
/// of [`crate::SolverKind`] (which only names the session-cacheable
/// replacement solvers).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FuzzSolver {
    /// Theorem 1 exact unweighted solver.
    Unweighted,
    /// Theorem 3 `(1+ε)`-approximate weighted solver.
    Weighted,
    /// 2-SiSP (Definition 2.3) on the unweighted solver.
    Sisp,
    /// Replacement reachability (Section 8).
    Reachability,
    /// The trivial per-edge baseline.
    Naive,
    /// Manoharan–Ramachandran (SIROCCO 2024) baseline.
    Mr24,
}

impl FuzzSolver {
    /// Every solver, in stable order.
    pub const ALL: [FuzzSolver; 6] = [
        FuzzSolver::Unweighted,
        FuzzSolver::Weighted,
        FuzzSolver::Sisp,
        FuzzSolver::Reachability,
        FuzzSolver::Naive,
        FuzzSolver::Mr24,
    ];

    /// Stable name (fixture files, CLI flags, logs).
    pub fn name(self) -> &'static str {
        match self {
            FuzzSolver::Unweighted => "unweighted",
            FuzzSolver::Weighted => "weighted",
            FuzzSolver::Sisp => "sisp",
            FuzzSolver::Reachability => "reachability",
            FuzzSolver::Naive => "naive",
            FuzzSolver::Mr24 => "mr24",
        }
    }

    /// Parses [`FuzzSolver::name`] back.
    pub fn parse(name: &str) -> Option<FuzzSolver> {
        FuzzSolver::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Whether this solver only accepts unweighted graphs (the Theorem 1
    /// machinery and everything built on it asserts unit weights).
    pub fn needs_unweighted(self) -> bool {
        !matches!(self, FuzzSolver::Weighted | FuzzSolver::Reachability)
    }
}

impl fmt::Display for FuzzSolver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A solver answer that disagrees with its ground-truth oracle (or a
/// solver failure on an input the oracle can answer).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Which comparison failed, e.g. `"unweighted vs replacement_lengths"`.
    pub check: String,
    /// Offending index (path-edge or query position), when localized.
    pub index: Option<usize>,
    /// What the solver produced.
    pub got: String,
    /// What the oracle says.
    pub want: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.check)?;
        if let Some(i) = self.index {
            write!(f, " at index {i}")?;
        }
        write!(f, ": got {}, want {}", self.got, self.want)
    }
}

fn fmt_dist(d: Dist) -> String {
    match d.finite() {
        Some(v) => v.to_string(),
        None => "∞".into(),
    }
}

/// The exact replacement-length oracle for an instance (per path edge;
/// `∞` where `t` is unreachable after the failure).
pub fn oracle_replacements(inst: &Instance<'_>) -> Vec<Dist> {
    replacement_lengths(inst.graph, &inst.path)
}

/// The exact oracle for one batch query: a filtered Dijkstra from the
/// query source (`∞` when the target is unreachable in `G \ avoid`).
pub fn oracle_query(graph: &DiGraph, q: &Query) -> Dist {
    let dist = dijkstra(graph, q.source, |e| Some(e) != q.avoid);
    dist[q.target]
}

/// Runs `solver` on `inst` at `threads` engine threads and checks the
/// answers against the centralized oracle.
///
/// # Errors
///
/// A [`Divergence`] describing the first disagreement, or the solver
/// failure (a solver error on a connected instance is itself a bug the
/// harness must surface).
pub fn check_instance(
    inst: &Instance<'_>,
    params: &Params,
    solver: FuzzSolver,
    threads: usize,
) -> Result<(), Divergence> {
    let run = |f: &mut dyn FnMut(&mut congest::Network<'_>) -> Result<(), Divergence>| {
        let mut net = congest::Network::new(inst.graph);
        net.set_threads(threads);
        f(&mut net)
    };
    let solver_err = |e: crate::SolveError| Divergence {
        check: format!("{solver} failed to solve"),
        index: None,
        got: e.to_string(),
        want: "an answer".into(),
    };
    let oracle = oracle_replacements(inst);
    match solver {
        FuzzSolver::Unweighted | FuzzSolver::Naive | FuzzSolver::Mr24 => run(&mut |net| {
            let got = match solver {
                FuzzSolver::Unweighted => unweighted::solve_on(net, inst, params),
                FuzzSolver::Naive => baseline::naive::solve_on(net, inst, params),
                _ => baseline::mr24::solve_on(net, inst, params),
            }
            .map_err(solver_err)?;
            for (i, (&g, &w)) in got.iter().zip(&oracle).enumerate() {
                if g != w {
                    return Err(Divergence {
                        check: format!("{solver} vs replacement_lengths"),
                        index: Some(i),
                        got: fmt_dist(g),
                        want: fmt_dist(w),
                    });
                }
            }
            Ok(())
        }),
        FuzzSolver::Weighted => run(&mut |net| {
            let got = weighted::solve_on(net, inst, params).map_err(solver_err)?;
            let got = weighted::ApxOutput {
                scaled: got.scaled,
                den: got.den,
                metrics: congest::Metrics::default(),
            };
            got.check_guarantee(&oracle, params.eps_num, params.eps_den)
                .map_err(|e| Divergence {
                    check: "weighted vs (1+ε) guarantee".into(),
                    index: None,
                    got: e,
                    want: format!("within (1+{}/{})·oracle", params.eps_num, params.eps_den),
                })
        }),
        FuzzSolver::Sisp => run(&mut |net| {
            let got = sisp::solve_on(net, inst, params).map_err(solver_err)?;
            let want = second_simple_shortest(inst.graph, &inst.path);
            if got != want {
                return Err(Divergence {
                    check: "sisp vs second_simple_shortest".into(),
                    index: None,
                    got: fmt_dist(got),
                    want: fmt_dist(want),
                });
            }
            Ok(())
        }),
        FuzzSolver::Reachability => run(&mut |net| {
            let got = reachability::solve_on(net, inst, params).map_err(solver_err)?;
            for (i, (&g, w)) in got
                .iter()
                .zip(oracle.iter().map(|d| d.is_finite()))
                .enumerate()
            {
                if g != w {
                    return Err(Divergence {
                        check: "reachability vs oracle finiteness".into(),
                        index: Some(i),
                        got: g.to_string(),
                        want: w.to_string(),
                    });
                }
            }
            Ok(())
        }),
    }
}

/// Checks one batch answer against [`oracle_query`]: exact equality for
/// `den = 1` answers, the exact-rational `(1+ε)` envelope otherwise.
pub fn check_answer(
    graph: &DiGraph,
    q: &Query,
    a: &Answer,
    eps_num: u64,
    eps_den: u64,
    position: usize,
) -> Result<(), Divergence> {
    let want = oracle_query(graph, q);
    let diverge = |got: String, want: String| Divergence {
        check: "solve_batch vs filtered Dijkstra".into(),
        index: Some(position),
        got,
        want,
    };
    match (a.scaled.finite(), want.finite()) {
        (None, None) => Ok(()),
        (Some(_), None) => Err(diverge(format!("{}/{}", a.scaled, a.den), "∞".into())),
        (None, Some(w)) => Err(diverge("∞".into(), w.to_string())),
        (Some(x), Some(w)) => {
            let (x, w, den) = (x as u128, w as u128, a.den as u128);
            // w ≤ x/den ≤ (1+ε)·w, exactly (den = 1 and ε ignored for
            // exact answers only if callers pass eps 0/1 — exact solvers
            // satisfy the envelope trivially at ε = 0).
            if x < w * den {
                return Err(diverge(format!("{x}/{den}"), format!("at least {w}")));
            }
            if x * eps_den as u128 > w * den * (eps_den as u128 + eps_num as u128) {
                return Err(diverge(
                    format!("{x}/{den}"),
                    format!("at most (1+{eps_num}/{eps_den})·{w}"),
                ));
            }
            Ok(())
        }
    }
}

/// Runs a batch through a fresh [`crate::SolverSession`] at `threads`
/// engine threads and checks every answer against [`oracle_query`].
/// Exact sessions (unweighted graphs) are held to exact equality
/// (ε = 0); weighted sessions to the `(1+ε)` envelope from `params`.
///
/// Returns the answers so callers can cross-check bit-identity across
/// thread counts and warm/cold paths.
///
/// # Errors
///
/// The first [`Divergence`], including session failures.
pub fn check_batch(
    graph: &DiGraph,
    params: &Params,
    queries: &[Query],
    threads: usize,
) -> Result<Vec<Answer>, Divergence> {
    let mut session = crate::SolverSession::new(graph, params.clone());
    session.set_threads(threads);
    let answers = session.solve_batch(queries).map_err(|e| Divergence {
        check: "solve_batch failed".into(),
        index: None,
        got: e.to_string(),
        want: "answers".into(),
    })?;
    let (eps_num, eps_den) = if graph.is_unweighted() {
        (0, 1)
    } else {
        (params.eps_num, params.eps_den)
    };
    for (i, (q, a)) in queries.iter().zip(&answers).enumerate() {
        check_answer(graph, q, a, eps_num, eps_den, i)?;
    }
    Ok(answers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::gen::{parallel_lane, planted_path_digraph, random_weighted_digraph};

    fn lane_params(n: usize) -> Params {
        let mut p = Params::with_zeta(n, 4);
        p.landmark_prob = 1.0;
        p
    }

    #[test]
    fn all_solvers_pass_on_a_lane() {
        let (g, s, t) = parallel_lane(10, 2, 2);
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        let params = lane_params(g.node_count());
        for solver in FuzzSolver::ALL {
            if solver.needs_unweighted() && !g.is_unweighted() {
                continue;
            }
            check_instance(&inst, &params, solver, 2).unwrap_or_else(|d| panic!("{solver}: {d}"));
        }
    }

    #[test]
    fn weighted_guarantee_checked_on_weighted_graph() {
        let g = random_weighted_digraph(24, 70, 7, 3);
        let Some((s, t)) = graphkit::gen::random_reachable_pair(&g, 5) else {
            panic!("seed produced no reachable pair");
        };
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        let mut params = Params::with_zeta(24, 5);
        params.landmark_prob = 1.0;
        check_instance(&inst, &params, FuzzSolver::Weighted, 1).unwrap();
        check_instance(&inst, &params, FuzzSolver::Reachability, 1).unwrap();
    }

    #[test]
    fn batch_check_agrees_with_dijkstra() {
        let (g, s, t) = planted_path_digraph(40, 10, 80, 2);
        let params = lane_params(40);
        let path = graphkit::alg::shortest_st_path(&g, s, t).unwrap();
        let mut queries = vec![Query::intact(s, t)];
        queries.extend(path.edges().iter().map(|&e| Query::avoiding(s, t, e)));
        queries.push(Query::avoiding(s, t, {
            (0..g.edge_count())
                .find(|&e| !path.contains_edge(e))
                .unwrap()
        }));
        let a1 = check_batch(&g, &params, &queries, 1).unwrap();
        let a2 = check_batch(&g, &params, &queries, 2).unwrap();
        assert_eq!(a1, a2, "bit-identity across thread counts");
    }

    #[test]
    fn injected_tiebreak_bug_is_caught() {
        // The testhooks defect must be visible to the differential
        // check — this is the contract the fuzz harness's
        // --inject-tiebreak-bug validation rests on.
        let (g, s, t) = parallel_lane(12, 3, 2);
        let inst = Instance::from_endpoints(&g, s, t).unwrap();
        let params = lane_params(g.node_count());
        check_instance(&inst, &params, FuzzSolver::Unweighted, 1).unwrap();
        crate::testhooks::set_flip_unweighted_merge(true);
        let caught = check_instance(&inst, &params, FuzzSolver::Unweighted, 1);
        crate::testhooks::set_flip_unweighted_merge(false);
        assert!(caught.is_err(), "flipped merge must diverge on a lane");
    }

    #[test]
    fn solver_names_round_trip() {
        for s in FuzzSolver::ALL {
            assert_eq!(FuzzSolver::parse(s.name()), Some(s));
        }
        assert_eq!(FuzzSolver::parse("nope"), None);
    }
}
