//! Information pipelining along embedded paths.
//!
//! Two communication patterns recur in the paper:
//!
//! - [`diagonal_dp`]: the systolic wavefront of Lemma 4.4 — every round,
//!   every path vertex forwards its running value to its successor and
//!   folds in a step-dependent local term. `R` rounds compute an
//!   `R`-step min-recurrence at every vertex simultaneously.
//! - [`prefix_sweep`]: the staggered sweeps of Lemmas 5.7, 7.7 and 7.8 —
//!   `J` independent prefix-min jobs ride the same path, job `j` delayed
//!   by `j` rounds so each link carries at most one message per round.
//!   Sweeps over *disjoint* lanes (the paper's segments) run in parallel.
//!
//! Values are distances ([`Dist`]) and the fold is `min`, which is all the
//! paper's pipelines need.

use graphkit::{Dist, EdgeId, NodeId};

use crate::network::{word_bits, Network, NodeCtx, Scheduling, ShardedProtocol};
use crate::RunStats;

fn dist_bits(d: Dist) -> u64 {
    1 + word_bits(d.finite().unwrap_or(0))
}

/// A directed lane embedded in the graph: `nodes[i]` talks to
/// `nodes[i+1]` over graph edge `links[i]`.
///
/// When `against_edges` is `false`, `nodes[i]` must be `links[i]`'s tail;
/// when `true`, its head (the lane runs against edge orientation, which
/// the CONGEST model allows since links are bidirectional).
#[derive(Clone, Debug)]
pub struct Lane {
    /// Vertex sequence of the lane.
    pub nodes: Vec<NodeId>,
    /// Graph edges realizing consecutive lane hops.
    pub links: Vec<EdgeId>,
    /// Whether the lane traverses its edges head-to-tail.
    pub against_edges: bool,
}

impl Lane {
    /// A lane that follows a subpath of `P` in path order.
    pub fn forward(nodes: Vec<NodeId>, links: Vec<EdgeId>) -> Lane {
        Lane {
            nodes,
            links,
            against_edges: false,
        }
    }

    /// A lane that follows a subpath of `P` in reverse order
    /// (`nodes` and `links` already reversed by the caller).
    pub fn backward(nodes: Vec<NodeId>, links: Vec<EdgeId>) -> Lane {
        Lane {
            nodes,
            links,
            against_edges: true,
        }
    }

    fn validate(&self, net: &Network<'_>) {
        assert_eq!(self.nodes.len(), self.links.len() + 1, "lane shape");
        for (i, &l) in self.links.iter().enumerate() {
            let e = net.graph().edge(l);
            if self.against_edges {
                assert_eq!(e.to, self.nodes[i], "lane link {i} tail mismatch");
                assert_eq!(e.from, self.nodes[i + 1], "lane link {i} head mismatch");
            } else {
                assert_eq!(e.from, self.nodes[i], "lane link {i} tail mismatch");
                assert_eq!(e.to, self.nodes[i + 1], "lane link {i} head mismatch");
            }
        }
    }

    /// Port at `nodes[i]` used to reach `nodes[i+1]`.
    fn send_port(&self, net: &Network<'_>, i: usize) -> u32 {
        if self.against_edges {
            net.port_at_head(self.links[i])
        } else {
            net.port_at_tail(self.links[i])
        }
    }
}

// ---------------------------------------------------------------------
// Systolic diagonal DP (Lemma 4.4).
// ---------------------------------------------------------------------

/// Read-only lane geometry and the step-input function.
struct DpShared<'a> {
    /// position of each node on the lane, usize::MAX if absent
    pos_of: Vec<usize>,
    send_ports: Vec<u32>,
    input: &'a (dyn Fn(usize, u64) -> Dist + Sync),
    rounds: u64,
    lane_len: usize,
}

/// One node's running DP value (sharded: the engine steps disjoint
/// slices of these from worker threads).
#[derive(Clone, Copy)]
struct DpNode {
    cur: Dist,
}

struct DiagonalDp<'a> {
    shared: DpShared<'a>,
    nodes: Vec<DpNode>,
}

impl<'a> ShardedProtocol for DiagonalDp<'a> {
    type Msg = Dist;
    type Node = DpNode;
    type Shared = DpShared<'a>;

    fn msg_bits(_: &Self::Shared, msg: &Dist) -> u64 {
        dist_bits(*msg)
    }

    fn shared(&self) -> &Self::Shared {
        &self.shared
    }

    fn split(&mut self) -> (&Self::Shared, &mut [Self::Node]) {
        (&self.shared, &mut self.nodes)
    }

    fn step_node(shared: &Self::Shared, node: &mut DpNode, ctx: &mut NodeCtx<'_, Dist>) {
        let pos = shared.pos_of[ctx.node];
        if pos == usize::MAX {
            return;
        }
        // The systolic schedule fires on round numbers, not on receipt
        // (position 0 never receives anything): every lane vertex stays
        // armed until the last fold step. Off-lane nodes fall out of the
        // active set after round 0.
        if ctx.round < shared.rounds {
            ctx.wake();
        }
        // Step r: fold the predecessor's value (sent in round r-1) and the
        // local term for step r, then forward.
        if ctx.round > 0 {
            let step = ctx.round;
            if step > shared.rounds {
                return;
            }
            let received = ctx.inbox().first().map(|&(_, d)| d).unwrap_or(Dist::INF);
            let local = (shared.input)(pos, step);
            node.cur = if pos == 0 { local } else { received.min(local) };
        }
        if ctx.round < shared.rounds && pos + 1 < shared.lane_len {
            ctx.send(shared.send_ports[pos], node.cur);
        }
    }

    fn scheduling(&self) -> Scheduling {
        Scheduling::ActiveSet
    }
}

/// Runs the systolic recurrence of Lemma 4.4 along a lane.
///
/// Let `cur⁰[p] = init(p)`. For step `r = 1..=rounds`:
///
/// ```text
/// curʳ[p] = min(curʳ⁻¹[p-1], input(p, r))    (p > 0)
/// curʳ[0] = input(0, r)
/// ```
///
/// Every link carries exactly one message per round, so the protocol
/// takes exactly `rounds + 1` engine rounds. Returns the final `cur`.
///
/// Runs on the sharded-parallel engine path; results and stats are
/// bit-identical at every thread count.
pub fn diagonal_dp(
    net: &mut Network<'_>,
    lane: &Lane,
    init: impl Fn(usize) -> Dist,
    input: &(dyn Fn(usize, u64) -> Dist + Sync),
    rounds: u64,
    phase: &str,
) -> (Vec<Dist>, RunStats) {
    lane.validate(net);
    let n = net.node_count();
    let mut pos_of = vec![usize::MAX; n];
    for (i, &v) in lane.nodes.iter().enumerate() {
        pos_of[v] = i;
    }
    let send_ports: Vec<u32> = (0..lane.links.len())
        .map(|i| lane.send_port(net, i))
        .collect();
    let mut nodes = vec![DpNode { cur: Dist::INF }; n];
    for (i, &v) in lane.nodes.iter().enumerate() {
        nodes[v].cur = init(i);
    }
    let mut proto = DiagonalDp {
        shared: DpShared {
            pos_of,
            send_ports,
            input,
            rounds,
            lane_len: lane.nodes.len(),
        },
        nodes,
    };
    let stats = net.run_rounds_par(phase, &mut proto, rounds + 1);
    let cur = lane.nodes.iter().map(|&v| proto.nodes[v].cur).collect();
    (cur, stats)
}

// ---------------------------------------------------------------------
// Staggered prefix sweeps (Lemmas 5.7, 7.7, 7.8).
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
struct SweepMsg {
    job: u32,
    dist: Dist,
}

/// One node's role on one lane.
#[derive(Clone, Copy, Debug)]
struct Placement {
    lane: u32,
    pos: u32,
    /// Port on which this lane's predecessor messages arrive
    /// (`u32::MAX` at position 0).
    recv_port: u32,
    /// Port towards this lane's successor (`u32::MAX` at the last
    /// position).
    send_port: u32,
}

/// Read-only sweep geometry and the per-cell input function.
struct SweepShared<'a> {
    jobs: usize,
    /// Each node may sit on several lanes (checkpoints join segments).
    placements: Vec<Vec<Placement>>,
    input: &'a (dyn Fn(usize, usize, usize) -> Dist + Sync),
}

/// One node's sweep state (sharded: the engine steps disjoint slices of
/// these from worker threads).
struct SweepNode {
    /// received[placement][job]: value arriving from that lane's
    /// predecessor.
    received: Vec<Vec<Dist>>,
}

struct PrefixSweep<'a> {
    shared: SweepShared<'a>,
    nodes: Vec<SweepNode>,
}

impl<'a> ShardedProtocol for PrefixSweep<'a> {
    type Msg = SweepMsg;
    type Node = SweepNode;
    type Shared = SweepShared<'a>;

    fn msg_bits(_: &Self::Shared, msg: &SweepMsg) -> u64 {
        word_bits(msg.job as u64) + dist_bits(msg.dist)
    }

    fn shared(&self) -> &Self::Shared {
        &self.shared
    }

    fn split(&mut self) -> (&Self::Shared, &mut [Self::Node]) {
        (&self.shared, &mut self.nodes)
    }

    fn step_node(shared: &Self::Shared, node: &mut SweepNode, ctx: &mut NodeCtx<'_, SweepMsg>) {
        let v = ctx.node;
        let placements = &shared.placements[v];
        if placements.is_empty() {
            return;
        }
        for &(port, msg) in ctx.inbox() {
            let pi = placements
                .iter()
                .position(|pl| pl.recv_port == port)
                .expect("sweep message arrived on a non-lane port");
            node.received[pi][msg.job as usize] = msg.dist;
        }
        // Job j leaves position p at round j + p.
        let r = ctx.round;
        for (pi, pl) in placements.iter().enumerate() {
            let (lane_idx, pos) = (pl.lane as usize, pl.pos as usize);
            if pl.send_port == u32::MAX {
                continue;
            }
            // The staggered schedule is round-driven (job j departs at
            // round j + pos whether or not anything arrived), so the
            // node re-arms itself until its last departure round.
            if shared.jobs > 0 && r < pos as u64 + shared.jobs as u64 - 1 {
                ctx.wake();
            }
            if r < pos as u64 {
                continue;
            }
            let job = (r - pos as u64) as usize;
            if job >= shared.jobs {
                continue;
            }
            let acc = node.received[pi][job].min((shared.input)(lane_idx, pos, job));
            if acc.is_finite() {
                ctx.send(
                    pl.send_port,
                    SweepMsg {
                        job: job as u32,
                        dist: acc,
                    },
                );
            }
        }
    }

    fn idle(&self) -> bool {
        true
    }

    fn scheduling(&self) -> Scheduling {
        Scheduling::ActiveSet
    }
}

/// Runs `jobs` staggered prefix-min sweeps over each lane in parallel.
///
/// For lane `l`, position `p`, job `j`, the result is
/// `min over p' <= p of input(l, p', j)`; every lane vertex ends up
/// knowing the result at its own position for every job. Lanes must be
/// *link*-disjoint; sharing endpoint vertices is allowed (the paper's
/// segments overlap at checkpoints).
///
/// Takes exactly `jobs + max_lane_len` engine rounds — the `O(|I| + J)`
/// pipelining cost of Lemma 5.7.
///
/// Runs on the sharded-parallel engine path; results and stats are
/// bit-identical at every thread count.
///
/// # Panics
///
/// Panics if two lanes share a link (that would violate the CONGEST
/// bandwidth of the shared link).
pub fn prefix_sweep(
    net: &mut Network<'_>,
    lanes: &[Lane],
    jobs: usize,
    input: &(dyn Fn(usize, usize, usize) -> Dist + Sync),
    phase: &str,
) -> (Vec<Vec<Vec<Dist>>>, RunStats) {
    let n = net.node_count();
    let mut placements: Vec<Vec<Placement>> = vec![Vec::new(); n];
    let mut used_links = std::collections::HashSet::new();
    for (li, lane) in lanes.iter().enumerate() {
        lane.validate(net);
        for &l in &lane.links {
            assert!(
                used_links.insert(l),
                "link {l} appears on two lanes; lanes must be link-disjoint"
            );
        }
        for (pi, &v) in lane.nodes.iter().enumerate() {
            let recv_port = if pi == 0 {
                u32::MAX
            } else if lane.against_edges {
                net.port_at_tail(lane.links[pi - 1])
            } else {
                net.port_at_head(lane.links[pi - 1])
            };
            let send_port = if pi + 1 == lane.nodes.len() {
                u32::MAX
            } else {
                lane.send_port(net, pi)
            };
            placements[v].push(Placement {
                lane: li as u32,
                pos: pi as u32,
                recv_port,
                send_port,
            });
        }
    }
    let nodes: Vec<SweepNode> = placements
        .iter()
        .map(|pls| SweepNode {
            received: vec![vec![Dist::INF; jobs]; pls.len()],
        })
        .collect();
    let max_len = lanes.iter().map(|l| l.nodes.len()).max().unwrap_or(0) as u64;
    let total_rounds = jobs as u64 + max_len;
    let mut proto = PrefixSweep {
        shared: SweepShared {
            jobs,
            placements,
            input,
        },
        nodes,
    };
    let stats = net.run_rounds_par(phase, &mut proto, total_rounds);
    // Reassemble the per-lane tables from the per-node state, then
    // finalize locally: fold each position's own input into what arrived.
    let mut out: Vec<Vec<Vec<Dist>>> = lanes
        .iter()
        .map(|lane| vec![vec![Dist::INF; jobs]; lane.nodes.len()])
        .collect();
    let PrefixSweep { shared, nodes } = proto;
    for (pls, node) in shared.placements.iter().zip(nodes) {
        for (pl, row) in pls.iter().zip(node.received) {
            out[pl.lane as usize][pl.pos as usize] = row;
        }
    }
    for (li, lane) in lanes.iter().enumerate() {
        for pos in 0..lane.nodes.len() {
            for job in 0..jobs {
                let own = input(li, pos, job);
                out[li][pos][job] = out[li][pos][job].min(own);
            }
        }
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::GraphBuilder;

    fn path_graph(n: usize) -> (graphkit::DiGraph, Vec<EdgeId>) {
        let mut b = GraphBuilder::new(n);
        let links: Vec<EdgeId> = (0..n - 1).map(|i| b.add_arc(i, i + 1)).collect();
        (b.build(), links)
    }

    #[test]
    fn diagonal_dp_computes_windowed_min() {
        // input(p, r) = X[p][r], init = X[p][0]; after R rounds
        // cur[p] = min over k in 0..=min(p, R) of X[p-k][R-k]
        // ... with the boundary rule cur resets at pos 0.
        let n = 6;
        let (g, links) = path_graph(n);
        let lane = Lane::forward((0..n).collect(), links);
        let table: Vec<Vec<u64>> = (0..n)
            .map(|p| (0..4u64).map(|r| (10 * p as u64 + r) % 17 + 1).collect())
            .collect();
        let rounds = 3;
        let mut net = Network::new(&g);
        let (cur, stats) = diagonal_dp(
            &mut net,
            &lane,
            |p| Dist::new(table[p][0]),
            &|p, r| Dist::new(table[p][r as usize]),
            rounds,
            "dp",
        );
        // Reference: simulate the recurrence directly.
        let mut reference: Vec<Dist> = (0..n).map(|p| Dist::new(table[p][0])).collect();
        for r in 1..=rounds {
            let prev = reference.clone();
            for p in 0..n {
                let local = Dist::new(table[p][r as usize]);
                reference[p] = if p == 0 {
                    local
                } else {
                    prev[p - 1].min(local)
                };
            }
        }
        assert_eq!(cur, reference);
        assert_eq!(stats.rounds, rounds + 1);
    }

    #[test]
    fn prefix_sweep_computes_prefix_minima() {
        let n = 7;
        let jobs = 5;
        let (g, links) = path_graph(n);
        let lane = Lane::forward((0..n).collect(), links);
        let val = |pos: usize, job: usize| ((pos * 13 + job * 7) % 11 + 1) as u64;
        let mut net = Network::new(&g);
        let (out, stats) = prefix_sweep(
            &mut net,
            std::slice::from_ref(&lane),
            jobs,
            &|_, pos, job| Dist::new(val(pos, job)),
            "sweep",
        );
        for pos in 0..n {
            for job in 0..jobs {
                let expect = (0..=pos).map(|p| val(p, job)).min().unwrap();
                assert_eq!(out[0][pos][job], Dist::new(expect), "pos {pos} job {job}");
            }
        }
        assert_eq!(stats.rounds, jobs as u64 + n as u64);
    }

    #[test]
    fn prefix_sweep_skips_infinite_inputs() {
        let n = 5;
        let (g, links) = path_graph(n);
        let lane = Lane::forward((0..n).collect(), links);
        let mut net = Network::new(&g);
        let (out, stats) = prefix_sweep(
            &mut net,
            std::slice::from_ref(&lane),
            2,
            &|_, pos, job| {
                if pos == 2 && job == 1 {
                    Dist::new(42)
                } else {
                    Dist::INF
                }
            },
            "sweep",
        );
        assert_eq!(out[0][1][1], Dist::INF);
        assert_eq!(out[0][2][1], Dist::new(42));
        assert_eq!(out[0][4][1], Dist::new(42));
        assert_eq!(out[0][4][0], Dist::INF);
        // Infinite values are never sent.
        assert!(stats.messages <= 2);
    }

    #[test]
    fn backward_lane_runs_against_edges() {
        let n = 5;
        let (g, links) = path_graph(n);
        // Lane from node 4 down to node 0, against the edge directions.
        let nodes: Vec<NodeId> = (0..n).rev().collect();
        let rev_links: Vec<EdgeId> = links.into_iter().rev().collect();
        let lane = Lane::backward(nodes, rev_links);
        let mut net = Network::new(&g);
        let (out, _) = prefix_sweep(
            &mut net,
            std::slice::from_ref(&lane),
            1,
            &|_, pos, _| Dist::new(10 - pos as u64),
            "sweep",
        );
        // pos on the lane: 0 is node 4, 4 is node 0; prefix mins decrease.
        for pos in 0..n {
            let expect = (0..=pos).map(|p| 10 - p as u64).min().unwrap();
            assert_eq!(out[0][pos][0], Dist::new(expect));
        }
    }

    #[test]
    fn two_disjoint_lanes_run_in_parallel() {
        // Two separate 3-node paths in one graph.
        let mut b = GraphBuilder::new(6);
        let l0 = vec![b.add_arc(0, 1), b.add_arc(1, 2)];
        let l1 = vec![b.add_arc(3, 4), b.add_arc(4, 5)];
        // A connecting edge so the communication graph is connected.
        b.add_arc(2, 3);
        let g = b.build();
        let lanes = vec![
            Lane::forward(vec![0, 1, 2], l0),
            Lane::forward(vec![3, 4, 5], l1),
        ];
        let mut net = Network::new(&g);
        let (out, stats) = prefix_sweep(
            &mut net,
            &lanes,
            3,
            &|lane, pos, job| Dist::new((lane * 100 + pos * 10 + job) as u64 + 1),
            "sweep",
        );
        for lane in 0..2 {
            for pos in 0..3 {
                for job in 0..3 {
                    let expect = (0..=pos)
                        .map(|p| (lane * 100 + p * 10 + job) as u64 + 1)
                        .min()
                        .unwrap();
                    assert_eq!(out[lane][pos][job], Dist::new(expect));
                }
            }
        }
        // Parallel lanes: rounds = jobs + max_len, not the sum over lanes.
        assert_eq!(stats.rounds, 3 + 3);
    }

    #[test]
    fn lanes_may_share_checkpoint_vertices() {
        // Two segments of one path share node 2, like the paper's
        // checkpoints.
        let (g, links) = path_graph(5);
        let lane1 = Lane::forward(vec![0, 1, 2], vec![links[0], links[1]]);
        let lane2 = Lane::forward(vec![2, 3, 4], vec![links[2], links[3]]);
        let mut net = Network::new(&g);
        let (out, _) = prefix_sweep(
            &mut net,
            &[lane1, lane2],
            2,
            &|lane, pos, job| Dist::new((lane * 50 + pos * 10 + job + 1) as u64),
            "sweep",
        );
        // Lane 0 prefix-min at its last position.
        assert_eq!(out[0][2][0], Dist::new(1));
        // Lane 1 restarts its own prefix at node 2.
        assert_eq!(out[1][0][1], Dist::new(52));
        assert_eq!(out[1][2][0], Dist::new(51));
    }

    #[test]
    #[should_panic(expected = "link-disjoint")]
    fn link_sharing_lanes_rejected() {
        let (g, links) = path_graph(3);
        let lane1 = Lane::forward(vec![0, 1], vec![links[0]]);
        let lane2 = Lane::forward(vec![0, 1], vec![links[0]]);
        let mut net = Network::new(&g);
        let _ = prefix_sweep(&mut net, &[lane1, lane2], 1, &|_, _, _| Dist::INF, "x");
    }
}
