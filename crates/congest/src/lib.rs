//! A round-accurate simulator for the CONGEST model of distributed
//! computing, plus the communication primitives used by the
//! replacement-paths algorithms.
//!
//! # The model
//!
//! A network is a graph `G = (V, E)`; each vertex is a computational node
//! and each edge a bidirectional communication link. Computation proceeds
//! in synchronous rounds: in each round every node may send one
//! `O(log n)`-bit message per incident link per direction, then receives
//! whatever its neighbors sent. Local computation is free; the complexity
//! measure is the number of rounds ([Peleg 2000]).
//!
//! The simulator *enforces* the model: at most one message per link
//! direction per round, and every message's declared size must fit the
//! configured bandwidth. Violations are protocol bugs and panic.
//!
//! # Layout
//!
//! - [`Network`] + [`Protocol`]: the engine. Algorithms are state
//!   machines; the engine owns delivery, round counting, bit accounting,
//!   and optional cut accounting (bits crossing a labelled vertex cut —
//!   used by the Section 6 lower-bound experiments).
//! - [`bfs_tree`]: distributed BFS tree over the underlying undirected
//!   graph (depth at most the eccentricity of the root, hence at most
//!   `D`).
//! - [`broadcast`]: Lemma 2.4 — broadcasting `M` messages to everyone in
//!   `O(M + D)` rounds via pipelined upcast/downcast on the BFS tree.
//! - [`aggregate`]: op-generic tree aggregation (convergecast +
//!   downcast) in `O(D)` rounds — the 2-SiSP finale uses the `Min`
//!   instance.
//! - [`multi_bfs`]: Lemma 5.5 — `k`-source `h`-hop BFS in `O(k + h)`
//!   rounds, with optional per-edge hop delays (the rounding device of
//!   Section 7) and per-source distance tables.
//! - [`pipeline`]: staggered prefix folds along an embedded path — the
//!   "information pipelining" pattern of Lemmas 4.4, 5.7, 7.7 and 7.8.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod bfs_tree;
pub mod broadcast;
mod metrics;
pub mod multi_bfs;
mod network;
pub mod pipeline;

pub use metrics::{Metrics, PhaseStats, RunStats};
pub use network::{word_bits, EngineError, NodeCtx, Network, Port, Protocol, Side};
