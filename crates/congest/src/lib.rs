//! A round-accurate simulator for the CONGEST model of distributed
//! computing, plus the communication primitives used by the
//! replacement-paths algorithms.
//!
//! # The model
//!
//! A network is a graph `G = (V, E)`; each vertex is a computational node
//! and each edge a bidirectional communication link. Computation proceeds
//! in synchronous rounds: in each round every node may send one
//! `O(log n)`-bit message per incident link per direction, then receives
//! whatever its neighbors sent. Local computation is free; the complexity
//! measure is the number of rounds ([Peleg 2000]).
//!
//! The simulator *enforces* the model: at most one message per link
//! direction per round, and every message's declared size must fit the
//! configured bandwidth. Violations are protocol bugs and panic.
//!
//! # The engine
//!
//! [`Network`] + [`Protocol`]: algorithms are state machines; the engine
//! owns delivery, round counting, bit accounting, and optional cut
//! accounting (bits crossing a labelled vertex cut — used by the
//! Section 6 lower-bound experiments).
//!
//! Internally the engine is built for the paper's regime — protocols
//! whose rounds vastly outnumber their busy nodes:
//!
//! - **Active-set scheduling.** A protocol declares its scheduling
//!   contract via [`Protocol::scheduling`]. Under
//!   [`Scheduling::ActiveSet`], a node is stepped only when it is in
//!   round 0, received a message this round, or re-armed itself with
//!   [`NodeCtx::wake`] in the previous round; senders implicitly arm
//!   their receivers. Protocols with self-driven work (send queues,
//!   delayed deliveries, systolic round schedules) call `wake` to stay
//!   scheduled. [`Scheduling::FullSweep`] — the default, and forceable
//!   network-wide with [`Network::set_full_sweep`] — steps every node
//!   every round and is correct for any protocol. On traffic-dense
//!   rounds the engine automatically falls back to sweeping (stepping a
//!   superset of the active set is always exact), so active-set
//!   bookkeeping never loses to the sweep it replaces.
//! - **Flat mailbox arenas.** Sends are staged in one flat buffer and
//!   counting-sorted by destination into a CSR-bucketed arena at the end
//!   of each round; per-node inboxes are slices of that arena. Arena
//!   offsets, link occupancy, and activation marks are validated by
//!   monotonically increasing round generations instead of being
//!   cleared, and all non-message buffers live on the [`Network`], reused
//!   across rounds *and* phases.
//! - **Deterministic sharded parallelism.** A protocol that factors its
//!   state into a `Sync` shared part and a per-node slice
//!   ([`ShardedProtocol`]) can be driven through
//!   [`Network::run_rounds_par`] / [`Network::run_until_quiet_par`]:
//!   worker threads (std scoped threads, no unsafe) execute a
//!   three-phase pipeline over disjoint contiguous node shards whose
//!   boundaries are degree-balanced (prefix sums of `1 + deg(v)`), so
//!   hub-heavy topologies don't serialize on one hot shard. Workers
//!   step their shards and derive all per-message bookkeeping
//!   shard-locally — CONGEST checks, bit accounting, destination
//!   histograms, and a shard-local counting sort; the main thread
//!   merges histograms in ascending shard order (reproducing the exact
//!   sequential first-touch destination order) and prefix-scans the
//!   arena layout; workers then gather disjoint inbox ranges — so
//!   per-destination inbox order is bit-identical by construction, not
//!   by luck. Whether a round fans out at all is decided by an adaptive
//!   cost model (EWMA of measured sequential vs parallel round cost,
//!   reported as [`DispatchStats`]), so sparse active-set workloads
//!   never regress; thread count comes from the `CONGEST_THREADS`
//!   environment variable or [`Network::set_threads`].
//!
//! **Invariant:** scheduling and parallelism are wall-clock
//! optimizations with no effect on the measured model quantities.
//! Delivered messages, per-destination delivery order, round counts, and
//! every [`RunStats`] field are bit-identical between `ActiveSet` and
//! `FullSweep` runs and across all thread counts and shard geometries;
//! the differential suite in `tests/engine_equivalence.rs` asserts this
//! for every primitive and every end-to-end solver, and a property test
//! randomizes shard boundaries. Table 1 numbers depend only on the
//! model, never on the schedule or the hardware.
//!
//! # Fault injection
//!
//! The invariant extends to *misbehaving* networks: a seeded
//! [`FaultPlan`] ([`faults`]) attaches timed link failures, node
//! crashes, and probabilistic message drop/delay to a [`Network`]
//! ([`Network::set_fault_plan`]), applied at commit time in both the
//! sequential and the sharded-parallel round loops. Every per-message
//! decision hashes `(seed, round, link, direction)` — message identity,
//! not draw order — so a fixed plan yields bit-identical delivery,
//! [`RunStats`], and [`FaultStats`] at any `CONGEST_THREADS` setting;
//! [`FaultStats`] is *included* in [`Metrics`] equality to pin that
//! down (unlike [`DispatchStats`], which is excluded).
//!
//! **Coverage:** every protocol shipped by this crate — BFS-tree
//! construction, broadcast, aggregation, multi-source BFS, and both
//! pipelines — implements [`ShardedProtocol`] and is driven through the
//! sharded-parallel entry points; there is no sequential-only protocol
//! left. New protocols should implement [`ShardedProtocol`] directly
//! (the blanket [`Protocol`] impl keeps them runnable on the sequential
//! engine and in differential tests for free).
//!
//! # Communication primitives
//! - [`bfs_tree`]: distributed BFS tree over the underlying undirected
//!   graph (depth at most the eccentricity of the root, hence at most
//!   `D`).
//! - [`broadcast`]: Lemma 2.4 — broadcasting `M` messages to everyone in
//!   `O(M + D)` rounds via pipelined upcast/downcast on the BFS tree.
//! - [`aggregate`]: op-generic tree aggregation (convergecast +
//!   downcast) in `O(D)` rounds — the 2-SiSP finale uses the `Min`
//!   instance.
//! - [`multi_bfs`]: Lemma 5.5 — `k`-source `h`-hop BFS in `O(k + h)`
//!   rounds, with optional per-edge hop delays (the rounding device of
//!   Section 7) and per-source distance tables.
//! - [`pipeline`]: staggered prefix folds along an embedded path — the
//!   "information pipelining" pattern of Lemmas 4.4, 5.7, 7.7 and 7.8.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod bfs_tree;
pub mod broadcast;
pub mod faults;
mod metrics;
pub mod multi_bfs;
mod network;
pub mod pipeline;

pub use faults::{Fate, FaultPlan};
pub use metrics::{CacheStats, DispatchStats, FaultStats, Metrics, PhaseStats, RunStats};
pub use network::{
    word_bits, EngineError, Network, NodeCtx, Port, Protocol, Scheduling, ShardedProtocol, Side,
};
