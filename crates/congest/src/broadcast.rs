//! Lemma 2.4: broadcasting `M` messages to all nodes in `O(M + D)` rounds.
//!
//! Every node starts with a (possibly empty) list of `O(log n)`-bit items.
//! Items are upcast towards the BFS-tree root (one per tree link per
//! round, pipelined), the root serializes them, and the stream is downcast
//! to everyone. All nodes receive all items in the same order.

use std::collections::VecDeque;

use crate::bfs_tree::BfsTree;
use crate::network::{Network, NodeCtx, Scheduling, ShardedProtocol};
use crate::RunStats;

#[derive(Clone, Debug)]
enum Flow<T> {
    Up(T),
    Down(T),
}

/// Read-only state every node consults: the tree and the item sizing.
struct BcastShared<'t, F> {
    tree: &'t BfsTree,
    bits: F,
    expected_total: usize,
}

/// One node's pipeline state (sharded: the engine steps disjoint slices
/// of these from worker threads).
struct BcastNode<T> {
    /// Items waiting to move towards the root.
    up_queue: VecDeque<T>,
    /// The root's serialized stream so far (only meaningful at the root).
    /// At non-root nodes, items received from the parent, in stream order.
    delivered: Vec<T>,
    /// Next index of `delivered` to forward to children.
    down_cursor: usize,
}

struct BroadcastProtocol<'t, T, F> {
    shared: BcastShared<'t, F>,
    nodes: Vec<BcastNode<T>>,
}

impl<'t, T, F> ShardedProtocol for BroadcastProtocol<'t, T, F>
where
    T: Clone + Send + Sync,
    F: Fn(&T) -> u64 + Sync,
{
    type Msg = Flow<T>;
    type Node = BcastNode<T>;
    type Shared = BcastShared<'t, F>;

    fn msg_bits(shared: &Self::Shared, msg: &Flow<T>) -> u64 {
        match msg {
            Flow::Up(t) | Flow::Down(t) => 1 + (shared.bits)(t),
        }
    }

    fn shared(&self) -> &Self::Shared {
        &self.shared
    }

    fn split(&mut self) -> (&Self::Shared, &mut [Self::Node]) {
        (&self.shared, &mut self.nodes)
    }

    fn step_node(shared: &Self::Shared, node: &mut BcastNode<T>, ctx: &mut NodeCtx<'_, Flow<T>>) {
        let v = ctx.node;
        let tree = shared.tree;
        for (_, msg) in ctx.inbox() {
            match msg {
                Flow::Up(item) => {
                    if v == tree.root {
                        node.delivered.push(item.clone());
                    } else {
                        node.up_queue.push_back(item.clone());
                    }
                }
                Flow::Down(item) => node.delivered.push(item.clone()),
            }
        }
        // Move one queued item towards the root.
        if let Some(item) = node.up_queue.pop_front() {
            match tree.parent_port[v] {
                Some(pp) => ctx.send(pp, Flow::Up(item)),
                // The root's "upward" move is appending to its own stream.
                None => node.delivered.push(item),
            }
        }
        // Relay the next stream item to all children.
        if node.down_cursor < node.delivered.len() {
            let item = node.delivered[node.down_cursor].clone();
            node.down_cursor += 1;
            for &cp in &tree.child_ports[v] {
                ctx.send(cp, Flow::Down(item.clone()));
            }
        }
        // The pipeline moves one item per round, so a node with queued
        // uploads or an unforwarded stream suffix must act again next
        // round even if nothing new arrives.
        if !node.up_queue.is_empty() || node.down_cursor < node.delivered.len() {
            ctx.wake();
        }
    }

    fn idle(&self) -> bool {
        self.nodes.iter().all(|nd| {
            nd.up_queue.is_empty()
                && nd.down_cursor == nd.delivered.len()
                && nd.delivered.len() == self.shared.expected_total
        })
    }

    fn scheduling(&self) -> Scheduling {
        Scheduling::ActiveSet
    }
}

/// Broadcasts every node's items to every node over `tree`.
///
/// Returns, per node, all items in a globally consistent order, plus the
/// run statistics. `bits` declares the size of one item (the engine
/// checks it against the bandwidth, so items must be `O(log n)` bits —
/// split larger payloads into multiple items).
///
/// Round complexity is `O(M + height(tree))` where `M` is the total item
/// count, matching Lemma 2.4; tests assert the constant.
///
/// Runs on the sharded-parallel engine path: on dense instances the
/// per-node pipeline steps are split across worker threads, with output
/// and [`RunStats`] bit-identical to a sequential run.
///
/// # Panics
///
/// Panics if the protocol fails to quiesce within `4(M + height) + 16`
/// rounds, which would indicate an engine or tree bug.
pub fn broadcast<T: Clone + Send + Sync>(
    net: &mut Network<'_>,
    tree: &BfsTree,
    items: Vec<Vec<T>>,
    bits: impl Fn(&T) -> u64 + Sync,
    phase: &str,
) -> (Vec<Vec<T>>, RunStats) {
    let n = net.node_count();
    assert_eq!(items.len(), n);
    let total: usize = items.iter().map(|i| i.len()).sum();
    let mut proto = BroadcastProtocol {
        shared: BcastShared {
            tree,
            bits,
            expected_total: total,
        },
        nodes: items
            .into_iter()
            .map(|i| BcastNode {
                up_queue: VecDeque::from(i),
                delivered: Vec::new(),
                down_cursor: 0,
            })
            .collect(),
    };
    let budget = 4 * (total as u64 + tree.height) + 16;
    let stats = net
        .run_until_quiet_par(phase, &mut proto, budget)
        .expect("broadcast quiesces within O(M + D)");
    (
        proto.nodes.into_iter().map(|nd| nd.delivered).collect(),
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs_tree::build_bfs_tree;
    use graphkit::gen::random_digraph;

    #[test]
    fn everyone_gets_everything_in_same_order() {
        let g = random_digraph(30, 60, 2);
        let mut net = Network::new(&g);
        let (tree, _) = build_bfs_tree(&mut net, 0).unwrap();
        let items: Vec<Vec<u64>> = (0..30).map(|v| vec![v as u64, 100 + v as u64]).collect();
        let (out, _) = broadcast(&mut net, &tree, items, |_| 16, "bcast");
        assert_eq!(out[0].len(), 60);
        let mut sorted = out[0].clone();
        sorted.sort_unstable();
        let expected: Vec<u64> = (0..30u64).chain(100..130).collect();
        assert_eq!(sorted, expected);
        for v in 1..30 {
            assert_eq!(out[v], out[0], "node {v} must see the same stream");
        }
    }

    #[test]
    fn rounds_linear_in_items_plus_depth() {
        let g = random_digraph(64, 128, 7);
        let mut net = Network::new(&g);
        let (tree, _) = build_bfs_tree(&mut net, 0).unwrap();
        let m = 50usize;
        let items: Vec<Vec<u64>> = (0..64)
            .map(|v| if v < m { vec![v as u64] } else { vec![] })
            .collect();
        let (_, stats) = broadcast(&mut net, &tree, items, |_| 16, "bcast");
        assert!(
            stats.rounds <= 3 * (m as u64 + tree.height) + 8,
            "rounds {} too high for M={m}, depth={}",
            stats.rounds,
            tree.height
        );
    }

    #[test]
    fn empty_broadcast_is_cheap() {
        let g = random_digraph(20, 30, 1);
        let mut net = Network::new(&g);
        let (tree, _) = build_bfs_tree(&mut net, 0).unwrap();
        let (out, stats) = broadcast(&mut net, &tree, vec![vec![]; 20], |_: &u64| 8, "bcast");
        assert!(out.iter().all(|o| o.is_empty()));
        assert!(stats.rounds <= 2);
    }

    #[test]
    fn single_origin_many_items() {
        let g = random_digraph(25, 50, 3);
        let mut net = Network::new(&g);
        let (tree, _) = build_bfs_tree(&mut net, 5).unwrap();
        let mut items: Vec<Vec<u64>> = vec![vec![]; 25];
        items[13] = (0..40).collect();
        let (out, _) = broadcast(&mut net, &tree, items, |_| 16, "bcast");
        for v in 0..25 {
            assert_eq!(out[v], (0..40).collect::<Vec<u64>>());
        }
    }
}
