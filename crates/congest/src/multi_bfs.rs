//! Lemma 5.5: `k`-source `h`-hop BFS in `O(k + h)` rounds.
//!
//! Each node learns its hop distance (up to `h`) from every source. The
//! implementation pipelines announcements with a smallest-distance-first
//! priority per link, the standard schedule behind the `O(k + h)` bound
//! of Lenzen–Patt-Shamir–Peleg.
//!
//! Two extensions used elsewhere in the workspace:
//!
//! - **Direction**: BFS can follow edges forwards or backwards (the paper
//!   runs BFS in the reverse graph in Lemmas 4.2 and 5.6).
//! - **Per-edge hop delays**: an edge with delay `w` behaves like a path
//!   of `w` unit edges. This realizes the Section 7 rounding graphs `G_d`
//!   *on the real network*: traversing the subdivided edge costs `w`
//!   rounds, which the receiving node models by holding the announcement
//!   for `w - 1` extra rounds before acting on it. Capacity matches the
//!   subdivided path: one announcement may enter the edge per round.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use graphkit::{Dist, EdgeId, NodeId};

use crate::network::{word_bits, Network, NodeCtx, Scheduling, ShardedProtocol};
use crate::{Port, RunStats};

/// Configuration for a multi-source hop-bounded BFS.
///
/// Borrows its source list and delay table so constructing a
/// configuration allocates nothing — callers that sweep over scales or
/// path edges reuse one sources slice across every run.
pub struct MultiBfsConfig<'a> {
    /// The BFS sources; distances are reported per source index.
    pub sources: &'a [NodeId],
    /// Maximum (delayed-)hop distance to explore; larger distances stay
    /// infinite.
    pub max_dist: u64,
    /// `false`: announcements travel along edge direction (distances
    /// *from* the sources). `true`: they travel against it (distances
    /// *to* the sources).
    pub reverse: bool,
    /// Optional per-edge hop delays (the `⌈w(e)/µ⌉` of Section 7). `None`
    /// means every edge has delay 1. A delay of 0 disables the edge.
    pub delays: Option<&'a [u64]>,
}

/// Wire format: both fields are u32 so an announcement is 8 bytes, not
/// 16 — halving staging/arena traffic on the hot path. Hop distances
/// are bounded by `max_dist` (asserted `< u32::MAX` at entry) and
/// source indices by `k <= n`, so the narrowing is lossless and the
/// declared [`word_bits`] sizes are unchanged.
#[derive(Clone, Copy, Debug)]
struct Announce {
    src: u32,
    /// Sender's distance at send time; receiver adds the edge delay.
    dist: u32,
}

/// Read-only per-run state shared by every node.
struct MbfsShared<'c, F> {
    cfg: &'c MultiBfsConfig<'c>,
    enabled: F,
}

/// One node's BFS state (sharded: the engine steps disjoint slices of
/// these from worker threads).
struct MbfsNode {
    /// best[src]; `u32::MAX` is the "unreached" sentinel (real
    /// distances are capped at `max_dist < u32::MAX`).
    best: Vec<u32>,
    /// Per port: announcements waiting for this link, smallest distance
    /// first. Entries are (dist_at_sender, src).
    queues: Vec<BinaryHeap<Reverse<(u32, u32)>>>,
    /// Announcements received over a delayed edge, held until the round
    /// at which the subdivided path would deliver them:
    /// (release_round, src, dist_at_receiver).
    held: Vec<(u64, u32, u32)>,
    /// Queued announcements across all port queues (the node's
    /// activation signal and quiescence witness).
    pending: u64,
}

struct MultiBfsProtocol<'c, F> {
    shared: MbfsShared<'c, F>,
    nodes: Vec<MbfsNode>,
}

fn delay_of(cfg: &MultiBfsConfig<'_>, e: EdgeId) -> u64 {
    match cfg.delays {
        Some(d) => d[e],
        None => 1,
    }
}

/// Try to improve `node.best[src]` to `dist`; on success enqueue
/// announcements on every sending port.
fn relax<F: Fn(EdgeId) -> bool>(
    shared: &MbfsShared<'_, F>,
    node: &mut MbfsNode,
    src: u32,
    dist: u32,
    ports: &[Port],
) {
    let cfg = shared.cfg;
    if dist as u64 > cfg.max_dist || dist >= node.best[src as usize] {
        return;
    }
    node.best[src as usize] = dist;
    for (pi, port) in ports.iter().enumerate() {
        let sends_here = if cfg.reverse {
            !port.outgoing
        } else {
            port.outgoing
        };
        if !sends_here || !(shared.enabled)(port.link) {
            continue;
        }
        let w = delay_of(cfg, port.link);
        if w == 0 || dist as u64 + w > cfg.max_dist {
            continue;
        }
        node.queues[pi].push(Reverse((dist, src)));
        node.pending += 1;
    }
}

impl<'c, F: Fn(EdgeId) -> bool + Sync> ShardedProtocol for MultiBfsProtocol<'c, F> {
    type Msg = Announce;
    type Node = MbfsNode;
    type Shared = MbfsShared<'c, F>;

    fn msg_bits(_: &Self::Shared, msg: &Announce) -> u64 {
        word_bits(msg.src as u64) + word_bits(msg.dist as u64)
    }

    fn shared(&self) -> &Self::Shared {
        &self.shared
    }

    fn split(&mut self) -> (&Self::Shared, &mut [Self::Node]) {
        (&self.shared, &mut self.nodes)
    }

    fn step_node(shared: &Self::Shared, node: &mut MbfsNode, ctx: &mut NodeCtx<'_, Announce>) {
        let v = ctx.node;
        let ports = ctx.ports();
        // Initial relaxations.
        if ctx.round == 0 {
            for (i, &s) in shared.cfg.sources.iter().enumerate() {
                if s == v {
                    relax(shared, node, i as u32, 0, ports);
                }
            }
        }
        // Receive: apply unit-delay announcements now, hold delayed ones.
        for &(port_idx, ann) in ctx.inbox() {
            let port = ports[port_idx as usize];
            let w = delay_of(shared.cfg, port.link);
            debug_assert!(w >= 1, "received over a disabled edge");
            // The sender only forwards when dist + w <= max_dist, so
            // the sum fits u32 (max_dist < u32::MAX is asserted).
            let arrived = (ann.dist as u64 + w) as u32;
            if w == 1 {
                relax(shared, node, ann.src, arrived, ports);
            } else {
                // Engine already charged 1 round; the rest of the
                // subdivided path costs w - 1 more.
                node.held.push((ctx.round + (w - 1), ann.src, arrived));
            }
        }
        // Release matured held announcements.
        let mut matured = Vec::new();
        node.held.retain(|&(release, src, dist)| {
            if release <= ctx.round {
                matured.push((src, dist));
                false
            } else {
                true
            }
        });
        for (src, dist) in matured {
            relax(shared, node, src, dist, ports);
        }
        // Send: one announcement per port, smallest distance first,
        // skipping entries superseded by a later improvement.
        for pi in 0..ports.len() {
            while let Some(Reverse((dist, src))) = node.queues[pi].pop() {
                node.pending -= 1;
                if dist > node.best[src as usize] {
                    continue; // superseded
                }
                ctx.send(pi as u32, Announce { src, dist });
                break;
            }
        }
        // Queued announcements and held (delayed) arrivals are
        // self-driven work: re-arm until both drain.
        if node.pending > 0 || !node.held.is_empty() {
            ctx.wake();
        }
    }

    fn idle(&self) -> bool {
        self.nodes
            .iter()
            .all(|nd| nd.pending == 0 && nd.held.is_empty())
    }

    fn scheduling(&self) -> Scheduling {
        Scheduling::ActiveSet
    }
}

/// Runs a multi-source hop-bounded BFS; returns `dist[src_idx][node]`.
///
/// `enabled` filters edges (e.g. `G \ P`). The round budget should be
/// comfortably above the theoretical `O(k + h)`; the returned stats tell
/// you what was actually used.
///
/// Runs on the sharded-parallel engine path: on traffic-dense rounds
/// the per-node relaxations are split across worker threads, with
/// distances and [`RunStats`] bit-identical to a sequential run.
///
/// # Errors
///
/// Returns the engine error when the protocol fails to quiesce within
/// `max_rounds`.
pub fn multi_source_bfs(
    net: &mut Network<'_>,
    cfg: &MultiBfsConfig<'_>,
    enabled: impl Fn(EdgeId) -> bool + Sync,
    phase: &str,
    max_rounds: u64,
) -> Result<(Vec<Vec<Dist>>, RunStats), crate::EngineError> {
    let n = net.node_count();
    let k = cfg.sources.len();
    assert!(
        cfg.max_dist < u32::MAX as u64,
        "max_dist {} does not fit the u32 hop-distance encoding",
        cfg.max_dist
    );
    // Each port queue holds at most one live announcement per source and
    // each held list at most one delayed arrival per source, so `k` is
    // the natural pre-reservation for both.
    let mut proto = MultiBfsProtocol {
        shared: MbfsShared { cfg, enabled },
        nodes: (0..n)
            .map(|v| MbfsNode {
                best: vec![u32::MAX; k],
                queues: (0..net.ports(v).len())
                    .map(|_| BinaryHeap::with_capacity(k))
                    .collect(),
                held: Vec::with_capacity(k),
                pending: 0,
            })
            .collect(),
    };
    let stats = net.run_until_quiet_par(phase, &mut proto, max_rounds)?;
    let mut out = vec![vec![Dist::INF; n]; k];
    for (v, node) in proto.nodes.iter().enumerate() {
        for s in 0..k {
            if node.best[s] != u32::MAX {
                out[s][v] = Dist::new(node.best[s] as u64);
            }
        }
    }
    Ok((out, stats))
}

/// A generous default round budget for [`multi_source_bfs`]:
/// `4(k + h) + 64` rounds, several times the theoretical bound.
pub fn default_budget(k: usize, max_dist: u64) -> u64 {
    4 * (k as u64 + max_dist) + 64
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::alg::{bfs, bfs_hop_bounded};
    use graphkit::gen::random_digraph;
    use graphkit::GraphBuilder;

    fn check_against_oracle(n: usize, m: usize, seed: u64, k: usize, h: u64) {
        let g = random_digraph(n, m, seed);
        let sources: Vec<NodeId> = (0..k).map(|i| (i * 7) % n).collect();
        let cfg = MultiBfsConfig {
            sources: &sources,
            max_dist: h,
            reverse: false,
            delays: None,
        };
        let mut net = Network::new(&g);
        let (dist, stats) =
            multi_source_bfs(&mut net, &cfg, |_| true, "mbfs", default_budget(k, h)).unwrap();
        for (i, &s) in sources.iter().enumerate() {
            let oracle = bfs_hop_bounded(&g, &[s], h as usize, |_| true);
            assert_eq!(dist[i], oracle, "source {s}");
        }
        assert!(
            stats.rounds <= k as u64 + h + 8,
            "rounds {} above k + h = {}",
            stats.rounds,
            k as u64 + h
        );
    }

    #[test]
    fn matches_oracle_small() {
        check_against_oracle(30, 60, 1, 4, 10);
    }

    #[test]
    fn matches_oracle_many_sources() {
        check_against_oracle(50, 150, 2, 12, 50);
    }

    #[test]
    fn reverse_direction() {
        let g = random_digraph(40, 100, 3);
        let cfg = MultiBfsConfig {
            sources: &[5, 17],
            max_dist: 40,
            reverse: true,
            delays: None,
        };
        let mut net = Network::new(&g);
        let (dist, _) =
            multi_source_bfs(&mut net, &cfg, |_| true, "mbfs", default_budget(2, 40)).unwrap();
        let rev = g.reversed();
        for (i, &s) in [5usize, 17].iter().enumerate() {
            assert_eq!(dist[i], bfs(&rev, s, |_| true), "source {s}");
        }
    }

    #[test]
    fn edge_filter_respected() {
        let mut b = GraphBuilder::new(3);
        b.add_arc(0, 1); // edge 0 (disabled below)
        b.add_arc(0, 2);
        b.add_arc(2, 1);
        let g = b.build();
        let cfg = MultiBfsConfig {
            sources: &[0],
            max_dist: 10,
            reverse: false,
            delays: None,
        };
        let mut net = Network::new(&g);
        let (dist, _) = multi_source_bfs(&mut net, &cfg, |e| e != 0, "mbfs", 100).unwrap();
        assert_eq!(dist[0][1], Dist::new(2)); // via 2
    }

    #[test]
    fn hop_cap_enforced() {
        let g = random_digraph(40, 80, 4);
        let cfg = MultiBfsConfig {
            sources: &[0],
            max_dist: 2,
            reverse: false,
            delays: None,
        };
        let mut net = Network::new(&g);
        let (dist, _) = multi_source_bfs(&mut net, &cfg, |_| true, "mbfs", 100).unwrap();
        let oracle = bfs_hop_bounded(&g, &[0], 2, |_| true);
        assert_eq!(dist[0], oracle);
    }

    #[test]
    fn delays_act_as_subdivided_edges() {
        // 0 -> 1 with delay 5, 0 -> 2 -> 1 with unit delays.
        let mut b = GraphBuilder::new(3);
        b.add_arc(0, 1);
        b.add_arc(0, 2);
        b.add_arc(2, 1);
        let g = b.build();
        let cfg = MultiBfsConfig {
            sources: &[0],
            max_dist: 10,
            reverse: false,
            delays: Some(&[5, 1, 1]),
        };
        let mut net = Network::new(&g);
        let (dist, stats) = multi_source_bfs(&mut net, &cfg, |_| true, "mbfs", 100).unwrap();
        assert_eq!(dist[0][1], Dist::new(2)); // the 2-hop route beats delay 5
        assert_eq!(dist[0][2], Dist::new(1));
        // Delayed announcement still takes real rounds: at least 3.
        assert!(stats.rounds >= 3);
    }

    #[test]
    fn delay_zero_disables_edge() {
        let mut b = GraphBuilder::new(2);
        b.add_arc(0, 1);
        let g = b.build();
        let cfg = MultiBfsConfig {
            sources: &[0],
            max_dist: 10,
            reverse: false,
            delays: Some(&[0]),
        };
        let mut net = Network::new(&g);
        let (dist, _) = multi_source_bfs(&mut net, &cfg, |_| true, "mbfs", 100).unwrap();
        assert_eq!(dist[0][1], Dist::INF);
    }

    #[test]
    fn delayed_distance_semantics_match_weights() {
        // Weighted shortest path semantics under rounding with µ = 1:
        // delays equal weights, so BFS distance equals weighted distance.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 3);
        b.add_edge(1, 3, 4);
        b.add_edge(0, 2, 2);
        b.add_edge(2, 3, 9);
        let g = b.build();
        let delays: Vec<u64> = g.edges().map(|(_, e)| e.weight).collect();
        let cfg = MultiBfsConfig {
            sources: &[0],
            max_dist: 20,
            reverse: false,
            delays: Some(&delays),
        };
        let mut net = Network::new(&g);
        let (dist, _) = multi_source_bfs(&mut net, &cfg, |_| true, "mbfs", 200).unwrap();
        assert_eq!(dist[0][3], Dist::new(7));
        assert_eq!(dist[0][2], Dist::new(2));
    }
}
