//! Distributed BFS tree over the underlying undirected graph.
//!
//! Nearly every global primitive in the paper (Lemma 2.4 broadcast, the
//! `O(D)`-round aggregations) runs on a BFS tree rooted anywhere; its
//! depth is at most the root's undirected eccentricity, hence at most `D`.
//!
//! Construction can *fail*: a partitioned communication graph leaves some
//! nodes outside the root's component, which [`build_bfs_tree`] reports
//! as the recoverable [`TreeError::Disconnected`] instead of aborting —
//! failure-scenario callers (network partitions) match on it and degrade
//! gracefully.

use std::fmt;

use graphkit::NodeId;

use crate::network::{word_bits, Network, NodeCtx, Scheduling, ShardedProtocol};
use crate::{EngineError, RunStats};

/// The result of distributed BFS-tree construction.
#[derive(Clone, Debug)]
pub struct BfsTree {
    /// The root node.
    pub root: NodeId,
    /// Per node: the port leading to its parent (`None` at the root).
    pub parent_port: Vec<Option<u32>>,
    /// Per node: the parent node id (`None` at the root).
    pub parent: Vec<Option<NodeId>>,
    /// Per node: ports leading to its children.
    pub child_ports: Vec<Vec<u32>>,
    /// Per node: hop depth from the root.
    pub depth: Vec<u64>,
    /// Height of the tree (max depth).
    pub height: u64,
}

/// Why BFS-tree construction could not produce a spanning tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeError {
    /// The communication graph is disconnected: only `joined` of `total`
    /// nodes are in the root's component. `witness` is the smallest
    /// unreachable node id.
    Disconnected {
        /// Nodes that joined the tree.
        joined: usize,
        /// Nodes in the network.
        total: usize,
        /// The smallest node id the flood never reached.
        witness: NodeId,
    },
    /// The flood failed to quiesce within its round budget (an engine or
    /// protocol invariant violation, not a topology property).
    Engine(EngineError),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::Disconnected {
                joined,
                total,
                witness,
            } => write!(
                f,
                "communication graph is disconnected: the BFS tree reached {joined} \
                 of {total} nodes and {severed} nodes are unreachable (first \
                 witness: node {witness})",
                severed = total - joined
            ),
            TreeError::Engine(e) => write!(f, "BFS tree flood did not quiesce: {e}"),
        }
    }
}

impl std::error::Error for TreeError {}

impl From<EngineError> for TreeError {
    fn from(e: EngineError) -> TreeError {
        TreeError::Engine(e)
    }
}

/// Wire format: depth is u32 (tree depth is bounded by `n - 1 <
/// u32::MAX` nodes), keeping the message at 8 bytes on the engine's
/// hot path; the declared [`word_bits`] size is unchanged.
#[derive(Clone, Copy, Debug)]
enum TreeMsg {
    /// "I am at depth d; join me."
    Join { depth: u32 },
    /// "You are my parent."
    Adopt,
}

/// Read-only state every node consults: the root id.
struct TreeShared {
    root: NodeId,
}

/// One node's construction state (sharded: the engine steps disjoint
/// slices of these from worker threads).
#[derive(Clone)]
struct TreeNode {
    depth: Option<u32>,
    parent_port: Option<u32>,
    child_ports: Vec<u32>,
}

struct TreeProtocol {
    shared: TreeShared,
    nodes: Vec<TreeNode>,
}

impl ShardedProtocol for TreeProtocol {
    type Msg = TreeMsg;
    type Node = TreeNode;
    type Shared = TreeShared;

    fn msg_bits(_: &TreeShared, msg: &TreeMsg) -> u64 {
        match msg {
            TreeMsg::Join { depth } => 1 + word_bits(*depth as u64),
            TreeMsg::Adopt => 1,
        }
    }

    fn shared(&self) -> &TreeShared {
        &self.shared
    }

    fn split(&mut self) -> (&TreeShared, &mut [TreeNode]) {
        (&self.shared, &mut self.nodes)
    }

    fn step_node(shared: &TreeShared, node: &mut TreeNode, ctx: &mut NodeCtx<'_, TreeMsg>) {
        let v = ctx.node;
        // Record adoption replies.
        for &(port, msg) in ctx.inbox() {
            if matches!(msg, TreeMsg::Adopt) {
                node.child_ports.push(port);
            }
        }
        let newly_joined = if ctx.round == 0 && v == shared.root {
            node.depth = Some(0);
            true
        } else if node.depth.is_none() {
            if let Some(&(port, TreeMsg::Join { depth })) = ctx
                .inbox()
                .iter()
                .find(|(_, m)| matches!(m, TreeMsg::Join { .. }))
            {
                node.depth = Some(depth + 1);
                node.parent_port = Some(port);
                true
            } else {
                false
            }
        } else {
            false
        };
        if newly_joined {
            let my_depth = node.depth.expect("just set");
            if let Some(pp) = node.parent_port {
                ctx.send(pp, TreeMsg::Adopt);
            }
            for p in 0..ctx.ports().len() as u32 {
                if Some(p) != node.parent_port {
                    ctx.send(p, TreeMsg::Join { depth: my_depth });
                }
            }
        }
    }

    // Joins and adoptions happen only on receipt (or at the root in
    // round 0), so the protocol is sweep-agnostic as-is.
    fn scheduling(&self) -> Scheduling {
        Scheduling::ActiveSet
    }
}

/// Builds a BFS tree rooted at `root`, charging the rounds it takes
/// (at most `ecc(root) + O(1)`).
///
/// Runs on the sharded-parallel engine path; the tree and [`RunStats`]
/// are bit-identical at every thread count.
///
/// # Errors
///
/// Returns [`TreeError::Disconnected`] when some node is not in the
/// root's component of the communication graph — the tree would not
/// span, so downstream broadcasts/aggregations could not terminate.
/// Partition-tolerant callers match on this instead of aborting.
pub fn build_bfs_tree(
    net: &mut Network<'_>,
    root: NodeId,
) -> Result<(BfsTree, RunStats), TreeError> {
    let n = net.node_count();
    let mut proto = TreeProtocol {
        shared: TreeShared { root },
        nodes: vec![
            TreeNode {
                depth: None,
                parent_port: None,
                child_ports: Vec::new(),
            };
            n
        ],
    };
    let stats = net.run_until_quiet_par("bfs-tree", &mut proto, 2 * n as u64 + 4)?;
    let mut depth = Vec::with_capacity(n);
    let mut joined = 0usize;
    let mut witness = None;
    for (v, node) in proto.nodes.iter().enumerate() {
        match node.depth {
            Some(d) => {
                joined += 1;
                depth.push(d as u64);
            }
            None => {
                if witness.is_none() {
                    witness = Some(v);
                }
                depth.push(0);
            }
        }
    }
    if let Some(witness) = witness {
        return Err(TreeError::Disconnected {
            joined,
            total: n,
            witness,
        });
    }
    let height = depth.iter().copied().max().unwrap_or(0);
    let parent = (0..n)
        .map(|v| {
            proto.nodes[v]
                .parent_port
                .map(|p| net.ports(v)[p as usize].peer)
        })
        .collect();
    let (parent_port, child_ports) = proto
        .nodes
        .into_iter()
        .map(|nd| (nd.parent_port, nd.child_ports))
        .unzip();
    Ok((
        BfsTree {
            root,
            parent_port,
            parent,
            child_ports,
            depth,
            height,
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::gen::random_digraph;
    use graphkit::GraphBuilder;

    #[test]
    fn line_tree_depths() {
        let mut b = GraphBuilder::new(5);
        for i in 0..4 {
            b.add_arc(i, i + 1);
        }
        let g = b.build();
        let mut net = Network::new(&g);
        let (tree, stats) = build_bfs_tree(&mut net, 2).unwrap();
        assert_eq!(tree.depth, vec![2, 1, 0, 1, 2]);
        assert_eq!(tree.height, 2);
        assert_eq!(tree.parent[2], None);
        assert_eq!(tree.parent[0], Some(1));
        assert_eq!(tree.parent[4], Some(3));
        assert!(stats.rounds <= 5);
    }

    #[test]
    fn children_are_symmetric_to_parents() {
        let g = random_digraph(40, 80, 5);
        let mut net = Network::new(&g);
        let (tree, _) = build_bfs_tree(&mut net, 0).unwrap();
        for v in 0..40 {
            for &cp in &tree.child_ports[v] {
                let child = net.ports(v)[cp as usize].peer;
                assert_eq!(tree.parent[child], Some(v));
                assert_eq!(tree.depth[child], tree.depth[v] + 1);
            }
        }
        // Every non-root node is someone's child.
        let child_count: usize = tree.child_ports.iter().map(|c| c.len()).sum();
        assert_eq!(child_count, 39);
    }

    #[test]
    fn depth_is_undirected_distance() {
        let g = random_digraph(30, 40, 9);
        let mut net = Network::new(&g);
        let (tree, _) = build_bfs_tree(&mut net, 7).unwrap();
        // Verify against a centralized undirected BFS.
        let mut dist = vec![usize::MAX; 30];
        let mut queue = std::collections::VecDeque::new();
        dist[7] = 0;
        queue.push_back(7);
        while let Some(u) = queue.pop_front() {
            for w in g.undirected_neighbors(u) {
                if dist[w] == usize::MAX {
                    dist[w] = dist[u] + 1;
                    queue.push_back(w);
                }
            }
        }
        for v in 0..30 {
            assert_eq!(tree.depth[v] as usize, dist[v], "node {v}");
        }
    }

    #[test]
    fn rounds_bounded_by_height() {
        let g = random_digraph(60, 150, 3);
        let mut net = Network::new(&g);
        let (tree, stats) = build_bfs_tree(&mut net, 0).unwrap();
        // Joins finish at round height; adopts and quiescence detection
        // add a constant.
        assert!(
            stats.rounds <= tree.height + 3,
            "rounds {} vs height {}",
            stats.rounds,
            tree.height
        );
    }

    #[test]
    fn disconnection_is_a_recoverable_error() {
        // Two components: 0-1-2 and 3-4. The flood from 0 reaches three
        // nodes; construction must report the partition, not panic.
        let mut b = GraphBuilder::new(5);
        b.add_arc(0, 1);
        b.add_arc(1, 2);
        b.add_arc(3, 4);
        let g = b.build();
        let mut net = Network::new(&g);
        let err = build_bfs_tree(&mut net, 0).unwrap_err();
        assert_eq!(
            err,
            TreeError::Disconnected {
                joined: 3,
                total: 5,
                witness: 3
            }
        );
        // The network stays usable: a root inside the other component
        // sees the mirror-image partition.
        let err = build_bfs_tree(&mut net, 3).unwrap_err();
        assert_eq!(
            err,
            TreeError::Disconnected {
                joined: 2,
                total: 5,
                witness: 0
            }
        );
    }

    #[test]
    fn disconnected_message_names_witness_and_component_sizes() {
        // Operators triage partitions from this string; keep the witness
        // node and both component sizes in it.
        let err = TreeError::Disconnected {
            joined: 3,
            total: 5,
            witness: 3,
        };
        assert_eq!(
            err.to_string(),
            "communication graph is disconnected: the BFS tree reached 3 of 5 \
             nodes and 2 nodes are unreachable (first witness: node 3)"
        );
    }

    #[test]
    fn isolated_node_is_reported() {
        let mut b = GraphBuilder::new(3);
        b.add_arc(0, 1);
        let g = b.build();
        let mut net = Network::new(&g);
        match build_bfs_tree(&mut net, 0) {
            Err(TreeError::Disconnected {
                joined,
                total,
                witness,
            }) => {
                assert_eq!((joined, total, witness), (2, 3, 2));
            }
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }
}
