//! Distributed BFS tree over the underlying undirected graph.
//!
//! Nearly every global primitive in the paper (Lemma 2.4 broadcast, the
//! `O(D)`-round aggregations) runs on a BFS tree rooted anywhere; its
//! depth is at most the root's undirected eccentricity, hence at most `D`.

use graphkit::NodeId;

use crate::network::{word_bits, Network, NodeCtx, Protocol, Scheduling};
use crate::RunStats;

/// The result of distributed BFS-tree construction.
#[derive(Clone, Debug)]
pub struct BfsTree {
    /// The root node.
    pub root: NodeId,
    /// Per node: the port leading to its parent (`None` at the root).
    pub parent_port: Vec<Option<u32>>,
    /// Per node: the parent node id (`None` at the root).
    pub parent: Vec<Option<NodeId>>,
    /// Per node: ports leading to its children.
    pub child_ports: Vec<Vec<u32>>,
    /// Per node: hop depth from the root.
    pub depth: Vec<u64>,
    /// Height of the tree (max depth).
    pub height: u64,
}

#[derive(Clone, Copy, Debug)]
enum TreeMsg {
    /// "I am at depth d; join me."
    Join { depth: u64 },
    /// "You are my parent."
    Adopt,
}

struct TreeProtocol {
    root: NodeId,
    depth: Vec<Option<u64>>,
    parent_port: Vec<Option<u32>>,
    child_ports: Vec<Vec<u32>>,
}

impl Protocol for TreeProtocol {
    type Msg = TreeMsg;

    fn msg_bits(&self, msg: &TreeMsg) -> u64 {
        match msg {
            TreeMsg::Join { depth } => 1 + word_bits(*depth),
            TreeMsg::Adopt => 1,
        }
    }

    fn on_round(&mut self, ctx: &mut NodeCtx<'_, TreeMsg>) {
        let v = ctx.node;
        // Record adoption replies.
        for i in 0..ctx.inbox().len() {
            let (port, msg) = ctx.inbox()[i];
            if matches!(msg, TreeMsg::Adopt) {
                self.child_ports[v].push(port);
            }
        }
        let newly_joined = if ctx.round == 0 && v == self.root {
            self.depth[v] = Some(0);
            true
        } else if self.depth[v].is_none() {
            if let Some(&(port, TreeMsg::Join { depth })) = ctx
                .inbox()
                .iter()
                .find(|(_, m)| matches!(m, TreeMsg::Join { .. }))
            {
                self.depth[v] = Some(depth + 1);
                self.parent_port[v] = Some(port);
                true
            } else {
                false
            }
        } else {
            false
        };
        if newly_joined {
            let my_depth = self.depth[v].expect("just set");
            if let Some(pp) = self.parent_port[v] {
                ctx.send(pp, TreeMsg::Adopt);
            }
            for p in 0..ctx.ports().len() as u32 {
                if Some(p) != self.parent_port[v] {
                    ctx.send(p, TreeMsg::Join { depth: my_depth });
                }
            }
        }
    }

    // Joins and adoptions happen only on receipt (or at the root in
    // round 0), so the protocol is sweep-agnostic as-is.
    fn scheduling(&self) -> Scheduling {
        Scheduling::ActiveSet
    }
}

/// Builds a BFS tree rooted at `root`, charging the rounds it takes
/// (at most `ecc(root) + O(1)`).
///
/// # Panics
///
/// Panics if the communication graph is disconnected (some node never
/// joins within `2n + 4` rounds).
pub fn build_bfs_tree(net: &mut Network<'_>, root: NodeId) -> (BfsTree, RunStats) {
    let n = net.node_count();
    let mut proto = TreeProtocol {
        root,
        depth: vec![None; n],
        parent_port: vec![None; n],
        child_ports: vec![Vec::new(); n],
    };
    let stats = net
        .run_until_quiet("bfs-tree", &mut proto, 2 * n as u64 + 4)
        .expect("BFS tree floods quiesce within 2n rounds");
    let depth: Vec<u64> = proto
        .depth
        .iter()
        .enumerate()
        .map(|(v, d)| {
            d.unwrap_or_else(|| {
                panic!("node {v} unreachable: communication graph must be connected")
            })
        })
        .collect();
    let height = depth.iter().copied().max().unwrap_or(0);
    let parent = (0..n)
        .map(|v| proto.parent_port[v].map(|p| net.ports(v)[p as usize].peer))
        .collect();
    (
        BfsTree {
            root,
            parent_port: proto.parent_port,
            parent,
            child_ports: proto.child_ports,
            depth,
            height,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::gen::random_digraph;
    use graphkit::GraphBuilder;

    #[test]
    fn line_tree_depths() {
        let mut b = GraphBuilder::new(5);
        for i in 0..4 {
            b.add_arc(i, i + 1);
        }
        let g = b.build();
        let mut net = Network::new(&g);
        let (tree, stats) = build_bfs_tree(&mut net, 2);
        assert_eq!(tree.depth, vec![2, 1, 0, 1, 2]);
        assert_eq!(tree.height, 2);
        assert_eq!(tree.parent[2], None);
        assert_eq!(tree.parent[0], Some(1));
        assert_eq!(tree.parent[4], Some(3));
        assert!(stats.rounds <= 5);
    }

    #[test]
    fn children_are_symmetric_to_parents() {
        let g = random_digraph(40, 80, 5);
        let mut net = Network::new(&g);
        let (tree, _) = build_bfs_tree(&mut net, 0);
        for v in 0..40 {
            for &cp in &tree.child_ports[v] {
                let child = net.ports(v)[cp as usize].peer;
                assert_eq!(tree.parent[child], Some(v));
                assert_eq!(tree.depth[child], tree.depth[v] + 1);
            }
        }
        // Every non-root node is someone's child.
        let child_count: usize = tree.child_ports.iter().map(|c| c.len()).sum();
        assert_eq!(child_count, 39);
    }

    #[test]
    fn depth_is_undirected_distance() {
        let g = random_digraph(30, 40, 9);
        let mut net = Network::new(&g);
        let (tree, _) = build_bfs_tree(&mut net, 7);
        // Verify against a centralized undirected BFS.
        let mut dist = vec![usize::MAX; 30];
        let mut queue = std::collections::VecDeque::new();
        dist[7] = 0;
        queue.push_back(7);
        while let Some(u) = queue.pop_front() {
            for w in g.undirected_neighbors(u) {
                if dist[w] == usize::MAX {
                    dist[w] = dist[u] + 1;
                    queue.push_back(w);
                }
            }
        }
        for v in 0..30 {
            assert_eq!(tree.depth[v] as usize, dist[v], "node {v}");
        }
    }

    #[test]
    fn rounds_bounded_by_height() {
        let g = random_digraph(60, 150, 3);
        let mut net = Network::new(&g);
        let (tree, stats) = build_bfs_tree(&mut net, 0);
        // Joins finish at round height; adopts and quiescence detection
        // add a constant.
        assert!(
            stats.rounds <= tree.height + 3,
            "rounds {} vs height {}",
            stats.rounds,
            tree.height
        );
    }
}
