//! Deterministic fault injection for the round engine.
//!
//! A [`FaultPlan`] describes *when the network misbehaves*: timed link
//! failures and recoveries, node crashes and restarts, and per-message
//! probabilistic drop/delay. The engine applies the plan at **commit
//! time** — the moment a round's staged sends become next-round inboxes
//! — in both the sequential and the sharded-parallel round loops, so a
//! protocol never observes *how* faults were evaluated, only which
//! messages arrived.
//!
//! # Fault model
//!
//! - **Link failure** ([`FaultPlan::fail_link`]): while edge `e` is down
//!   (rounds `down_at..up_at`, or forever when `up_at` is `None`), every
//!   message committed on either direction of `e` is dropped and counted
//!   in [`FaultStats::dropped_link_down`]. A link may fail and recover
//!   repeatedly (flapping) by registering multiple intervals.
//! - **Node crash** ([`FaultPlan::crash_node`]): a crashed node is
//!   *fail-silent at the network layer* — messages **to and from** it
//!   are dropped ([`FaultStats::dropped_node_down`]). The node's local
//!   step still executes (its state survives the crash, like a process
//!   whose NIC died), which keeps the active-set scheduling contract
//!   intact; protocols observe the crash purely as silence.
//! - **Random drop** ([`FaultPlan::drop_messages`]): each surviving
//!   message is dropped with probability `p`, decided by a hash of
//!   `(seed, round, link, direction)` — *message identity*, never draw
//!   order — so the decision is independent of thread count and
//!   scheduling ([`FaultStats::dropped_random`]).
//! - **Random delay** ([`FaultPlan::delay_messages`]): each surviving
//!   message is instead held for `1..=max_delay` extra rounds (again
//!   hash-decided) and delivered at the start of its due round's commit,
//!   *before* that round's fresh sends, so delayed messages keep a
//!   deterministic inbox position. Delayed messages bypass the CONGEST
//!   occupancy re-check at their due round (they already passed it when
//!   sent; the wire, not the sender, is holding them), and their
//!   bits/messages are charged to [`crate::RunStats`] at actual
//!   delivery. A drive that ends on an exact round budget silently
//!   strands undelivered in-flight messages; compare
//!   [`FaultStats::delayed`] with [`FaultStats::delivered_late`].
//!
//! Fates are sealed when a message is *sent*: a link failing or a node
//! crashing while a delayed message is in flight does not retroactively
//! destroy it.
//!
//! # Determinism contract
//!
//! For a fixed plan (seed included), the delivered messages, their
//! per-destination inbox order, the [`crate::RunStats`], and the
//! [`FaultStats`] are bit-identical at any `CONGEST_THREADS` setting,
//! any scheduling mode, and any shard geometry. This holds because every
//! per-message decision is a pure function of `(seed, round, link,
//! direction)` and the engine evaluates the plan against the same
//! deterministic staged-send order the fault-free engine guarantees.
//! `tests/engine_equivalence.rs` (chaos matrix) and the
//! `primitives_properties.rs` proptests pin this; [`FaultStats`] is
//! *included* in [`crate::Metrics`] equality — unlike
//! [`crate::DispatchStats`] — precisely so those suites catch any
//! divergence.
//!
//! # Interaction with adaptive dispatch
//!
//! When a plan is attached, parallel rounds still *step* shards on
//! worker threads, but the fused derivation pass is skipped and the
//! commit (fate evaluation, delay queue, accounting, counting sort)
//! runs on the main thread over the ascending-shard concatenation of
//! the shard stagings — the exact sequential send order. Fault
//! injection is a robustness feature, not a throughput feature: it
//! trades the parallel commit for a commit that is bit-identical by
//! construction. The adaptive dispatcher's routing (and its
//! [`crate::DispatchStats`]) is unaffected and, as always, never
//! changes results.

use graphkit::{EdgeId, NodeId};

pub use crate::metrics::FaultStats;

/// One timed down interval for a link or a node: down from `down_at`
/// (inclusive) until `up_at` (exclusive), or forever when `up_at` is
/// `None`. "Down in round r" means messages *committed* in round r are
/// affected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct DownInterval {
    /// The failed element (an [`EdgeId`] or a [`NodeId`]).
    target: usize,
    /// First affected round.
    down_at: u64,
    /// First round the element is back up; `None` = permanent.
    up_at: Option<u64>,
}

impl DownInterval {
    #[inline]
    fn covers(&self, round: u64) -> bool {
        round >= self.down_at && self.up_at.is_none_or(|up| round < up)
    }
}

/// The fate of one committed message under a [`FaultPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fate {
    /// Delivered normally this round.
    Deliver,
    /// Dropped by the random-drop probability.
    Drop,
    /// Held for this many extra rounds (`>= 1`), then delivered.
    Delay(u64),
}

/// A deterministic, seeded schedule of network faults.
///
/// Built with a fluent API and attached to a network via
/// [`crate::Network::set_fault_plan`]; see the [module docs](self) for
/// the fault model and the determinism contract.
///
/// # Examples
///
/// ```
/// use congest::FaultPlan;
///
/// // Link 3 flaps twice, node 7 crashes for good at round 10, and 5%
/// // of all other traffic is dropped at random (seed 42).
/// let plan = FaultPlan::new(42)
///     .fail_link(3, 2, Some(6))
///     .fail_link(3, 9, Some(12))
///     .crash_node(7, 10, None)
///     .drop_messages(0.05);
/// assert!(plan.link_down(3, 2) && !plan.link_down(3, 6));
/// assert!(plan.node_down(7, 1_000_000));
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    links: Vec<DownInterval>,
    nodes: Vec<DownInterval>,
    drop_prob: f64,
    delay_prob: f64,
    max_delay: u64,
}

impl FaultPlan {
    /// A plan with no faults yet; `seed` drives all probabilistic
    /// decisions.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Takes edge `link` down for rounds `down_at..up_at` (`None` =
    /// permanently). May be called repeatedly for the same link
    /// (flapping).
    pub fn fail_link(mut self, link: EdgeId, down_at: u64, up_at: Option<u64>) -> FaultPlan {
        assert!(
            up_at.is_none_or(|up| up > down_at),
            "link {link}: up_at ({up_at:?}) must exceed down_at ({down_at})"
        );
        self.links.push(DownInterval {
            target: link,
            down_at,
            up_at,
        });
        self
    }

    /// Crashes node `node` for rounds `down_at..up_at` (`None` =
    /// permanently). Crashed nodes are fail-silent: traffic to and from
    /// them is dropped.
    pub fn crash_node(mut self, node: NodeId, down_at: u64, up_at: Option<u64>) -> FaultPlan {
        assert!(
            up_at.is_none_or(|up| up > down_at),
            "node {node}: up_at ({up_at:?}) must exceed down_at ({down_at})"
        );
        self.nodes.push(DownInterval {
            target: node,
            down_at,
            up_at,
        });
        self
    }

    /// Drops each message (on a healthy link, between healthy nodes)
    /// with probability `prob`.
    pub fn drop_messages(mut self, prob: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&prob), "drop probability in [0, 1]");
        self.drop_prob = prob;
        self
    }

    /// Delays each message that survives the drop roll with probability
    /// `prob`, holding it for `1..=max_delay` extra rounds.
    pub fn delay_messages(mut self, prob: f64, max_delay: u64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&prob), "delay probability in [0, 1]");
        assert!(
            prob + self.drop_prob <= 1.0,
            "drop + delay probability must not exceed 1"
        );
        assert!(max_delay >= 1, "max_delay must be at least 1 round");
        self.delay_prob = prob;
        self.max_delay = max_delay;
        self
    }

    /// The plan's seed.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `true` when the plan can never affect a message.
    pub fn is_inert(&self) -> bool {
        self.links.is_empty()
            && self.nodes.is_empty()
            && self.drop_prob <= 0.0
            && self.delay_prob <= 0.0
    }

    /// Is edge `link` down in round `round`?
    #[inline]
    pub fn link_down(&self, link: EdgeId, round: u64) -> bool {
        self.links
            .iter()
            .any(|iv| iv.target == link && iv.covers(round))
    }

    /// Is node `node` crashed in round `round`?
    #[inline]
    pub fn node_down(&self, node: NodeId, round: u64) -> bool {
        self.nodes
            .iter()
            .any(|iv| iv.target == node && iv.covers(round))
    }

    /// All links down in round `round` (ascending, deduplicated).
    pub fn links_down_at(&self, round: u64) -> Vec<EdgeId> {
        Self::down_at(&self.links, round)
    }

    /// All nodes crashed in round `round` (ascending, deduplicated).
    pub fn nodes_down_at(&self, round: u64) -> Vec<NodeId> {
        Self::down_at(&self.nodes, round)
    }

    fn down_at(ivs: &[DownInterval], round: u64) -> Vec<usize> {
        let mut out: Vec<usize> = ivs
            .iter()
            .filter(|iv| iv.covers(round))
            .map(|iv| iv.target)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The first round from which the timed fault set no longer changes
    /// (`0` for a plan with no timed faults). From this round on,
    /// exactly the permanent (`up_at == None`) faults are active.
    pub fn horizon(&self) -> u64 {
        self.links
            .iter()
            .chain(&self.nodes)
            .map(|iv| iv.up_at.unwrap_or(iv.down_at))
            .max()
            .unwrap_or(0)
    }

    /// The plan's steady state as a plan of its own: every *permanent*
    /// fault active from round 0, with the probabilistic components
    /// removed. This is what a diagnostic probe should run under when
    /// asking "what does the network look like once the dust settles?".
    pub fn steady(&self) -> FaultPlan {
        let keep = |ivs: &[DownInterval]| {
            ivs.iter()
                .filter(|iv| iv.up_at.is_none())
                .map(|iv| DownInterval {
                    target: iv.target,
                    down_at: 0,
                    up_at: None,
                })
                .collect()
        };
        FaultPlan {
            seed: self.seed,
            links: keep(&self.links),
            nodes: keep(&self.nodes),
            drop_prob: 0.0,
            delay_prob: 0.0,
            max_delay: 0,
        }
    }

    /// The plan as seen from `delta` rounds into its timeline: every
    /// interval shifted earlier by `delta` (clamped at round 0),
    /// already-expired intervals removed. Lets a caller chain several
    /// drives (each of which restarts its round counter at 0) against
    /// one logical fault timeline.
    pub fn shifted(&self, delta: u64) -> FaultPlan {
        let shift = |ivs: &[DownInterval]| {
            ivs.iter()
                .filter(|iv| iv.up_at.is_none_or(|up| up > delta))
                .map(|iv| DownInterval {
                    target: iv.target,
                    down_at: iv.down_at.saturating_sub(delta),
                    up_at: iv.up_at.map(|up| up - delta),
                })
                .collect()
        };
        FaultPlan {
            seed: self.seed,
            links: shift(&self.links),
            nodes: shift(&self.nodes),
            drop_prob: self.drop_prob,
            delay_prob: self.delay_prob,
            max_delay: self.max_delay,
        }
    }

    /// The probabilistic fate of a message committed in `round` on
    /// direction `outgoing` of `link`, assuming link and endpoints are
    /// healthy. Pure in `(seed, round, link, outgoing)`: the CONGEST
    /// constraint makes that tuple a unique message identity, so the
    /// decision never depends on evaluation order.
    pub fn fate(&self, round: u64, link: EdgeId, outgoing: bool) -> Fate {
        if self.drop_prob <= 0.0 && self.delay_prob <= 0.0 {
            return Fate::Deliver;
        }
        let key = ((link as u64) << 1) | u64::from(outgoing);
        let h = mix(self.seed, round, key);
        // 53 uniform mantissa bits -> u in [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.drop_prob {
            return Fate::Drop;
        }
        if u < self.drop_prob + self.delay_prob {
            let extra = 1 + mix(self.seed ^ DELAY_STREAM, round, key) % self.max_delay.max(1);
            return Fate::Delay(extra);
        }
        Fate::Deliver
    }

    /// Panics if any fault targets an element outside the graph; called
    /// by [`crate::Network::set_fault_plan`] so a misaddressed plan
    /// fails loudly instead of silently never firing.
    pub(crate) fn validate(&self, edges: usize, nodes: usize) {
        for (i, iv) in self.links.iter().enumerate() {
            assert!(
                iv.target < edges,
                "fault plan link fault #{i} targets edge {} but the graph has {edges} edges",
                iv.target
            );
        }
        for (i, iv) in self.nodes.iter().enumerate() {
            assert!(
                iv.target < nodes,
                "fault plan node fault #{i} targets node {} but the graph has {nodes} nodes",
                iv.target
            );
        }
    }
}

/// Separates the delay-length hash stream from the drop/delay decision
/// stream (an arbitrary odd constant).
const DELAY_STREAM: u64 = 0x6c62_272e_07bb_0143;

/// SplitMix64-style finalizer over `(seed, round, key)`. The per-message
/// luck function: high-quality 64-bit avalanche, no state, no order
/// dependence.
fn mix(seed: u64, round: u64, key: u64) -> u64 {
    let mut z = seed
        .wrapping_add(round.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(key.wrapping_mul(0xc2b2_ae3d_27d4_eb4f));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_bounds_are_half_open() {
        let plan = FaultPlan::new(0).fail_link(4, 3, Some(7));
        assert!(!plan.link_down(4, 2));
        assert!(plan.link_down(4, 3));
        assert!(plan.link_down(4, 6));
        assert!(!plan.link_down(4, 7));
        assert!(!plan.link_down(5, 4), "other links unaffected");
    }

    #[test]
    fn permanent_faults_never_recover() {
        let plan = FaultPlan::new(0).crash_node(2, 5, None);
        assert!(!plan.node_down(2, 4));
        assert!(plan.node_down(2, 5));
        assert!(plan.node_down(2, u64::MAX));
    }

    #[test]
    fn flapping_is_multiple_intervals() {
        let plan = FaultPlan::new(0)
            .fail_link(1, 0, Some(2))
            .fail_link(1, 4, Some(6));
        let down: Vec<bool> = (0..7).map(|r| plan.link_down(1, r)).collect();
        assert_eq!(down, [true, true, false, false, true, true, false]);
    }

    #[test]
    fn down_at_listings_sort_and_dedup() {
        let plan = FaultPlan::new(0)
            .fail_link(9, 0, None)
            .fail_link(2, 0, None)
            .fail_link(9, 1, Some(3));
        assert_eq!(plan.links_down_at(1), vec![2, 9]);
        assert_eq!(plan.links_down_at(5), vec![2, 9]);
    }

    #[test]
    fn fate_is_a_pure_function() {
        let plan = FaultPlan::new(123)
            .drop_messages(0.4)
            .delay_messages(0.3, 5);
        for round in 0..50 {
            for link in 0..20 {
                for dir in [false, true] {
                    let a = plan.fate(round, link, dir);
                    let b = plan.fate(round, link, dir);
                    assert_eq!(a, b);
                    if let Fate::Delay(d) = a {
                        assert!((1..=5).contains(&d));
                    }
                }
            }
        }
    }

    #[test]
    fn fate_frequencies_track_probabilities() {
        let plan = FaultPlan::new(7).drop_messages(0.5);
        let trials = 2000;
        let drops = (0..trials)
            .filter(|&r| plan.fate(r, 0, true) == Fate::Drop)
            .count();
        // 0.5 ± generous slack; the point is "roughly half", not
        // statistical rigor.
        assert!((700..1300).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn different_seeds_give_different_luck() {
        let a = FaultPlan::new(1).drop_messages(0.5);
        let b = FaultPlan::new(2).drop_messages(0.5);
        let diverges = (0..200).any(|r| a.fate(r, 3, true) != b.fate(r, 3, true));
        assert!(diverges);
    }

    #[test]
    fn horizon_and_steady_state() {
        let plan = FaultPlan::new(0)
            .fail_link(1, 2, Some(8))
            .fail_link(3, 5, None)
            .crash_node(0, 1, Some(4))
            .drop_messages(0.1);
        assert_eq!(plan.horizon(), 8);
        let steady = plan.steady();
        assert!(steady.link_down(3, 0), "permanent fault active from 0");
        assert!(!steady.link_down(1, 3), "recovered fault removed");
        assert!(!steady.node_down(0, 2), "recovered crash removed");
        assert_eq!(steady.fate(0, 9, true), Fate::Deliver, "no randomness");
        assert_eq!(FaultPlan::new(0).horizon(), 0);
    }

    #[test]
    fn shifted_advances_the_timeline() {
        let plan = FaultPlan::new(0)
            .fail_link(1, 3, Some(6))
            .fail_link(2, 0, Some(2))
            .crash_node(4, 10, None);
        let sh = plan.shifted(4);
        assert!(sh.link_down(1, 0), "mid-interval shift clamps to 0");
        assert!(sh.link_down(1, 1) && !sh.link_down(1, 2));
        assert!(!sh.link_down(2, 0), "expired interval dropped");
        assert!(sh.node_down(4, 6) && !sh.node_down(4, 5));
    }

    #[test]
    #[should_panic(expected = "up_at")]
    fn empty_interval_rejected() {
        let _ = FaultPlan::new(0).fail_link(0, 5, Some(5));
    }

    #[test]
    #[should_panic(expected = "targets edge 9")]
    fn validate_names_the_bad_edge() {
        FaultPlan::new(0).fail_link(9, 0, None).validate(4, 10);
    }
}
