//! The synchronous round engine.

use std::fmt;

use graphkit::{DiGraph, EdgeId, NodeId};

use crate::metrics::{Metrics, RunStats};

/// Number of bits needed to write `x` in binary (`0 -> 1` bit).
///
/// Used to express message sizes in terms of the paper's `O(log n)`-bit
/// words.
pub fn word_bits(x: u64) -> u64 {
    (64 - x.leading_zeros() as u64).max(1)
}

/// One end of a communication link, as seen from a particular node.
///
/// A link is a graph edge; communication is bidirectional regardless of
/// the edge's direction, but protocols usually care whether the node is
/// the edge's tail (`outgoing == true`) or head.
#[derive(Clone, Copy, Debug)]
pub struct Port {
    /// The graph edge realizing this link.
    pub link: EdgeId,
    /// The node on the other end.
    pub peer: NodeId,
    /// `true` when this node is the edge's tail (`edge.from`).
    pub outgoing: bool,
    /// The edge weight (1 in unweighted graphs).
    pub weight: u64,
}

/// Which side of the Alice/Bob cut a node belongs to (Section 6
/// experiments). Messages between `Alice` and `Bob` nodes are counted in
/// [`RunStats::cut_bits`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// Alice's side of the cut.
    Alice,
    /// Bob's side of the cut.
    Bob,
    /// Not assigned to either player.
    Neutral,
}

/// Errors the engine can report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The protocol did not reach quiescence within the round budget.
    RoundLimitExceeded {
        /// The configured budget.
        max_rounds: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::RoundLimitExceeded { max_rounds } => {
                write!(f, "protocol still active after {max_rounds} rounds")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// A node's view of one round: its inbox from the previous round and an
/// outbox for this round.
pub struct NodeCtx<'a, M> {
    /// This node's id.
    pub node: NodeId,
    /// The current round number (0-based; round 0 has empty inboxes).
    pub round: u64,
    ports: &'a [Port],
    inbox: &'a [(u32, M)],
    outbox: &'a mut Vec<(NodeId, u32, M)>,
}

impl<'a, M> NodeCtx<'a, M> {
    /// The node's incident links.
    #[inline]
    pub fn ports(&self) -> &[Port] {
        self.ports
    }

    /// Messages delivered this round as `(port index, message)` pairs.
    #[inline]
    pub fn inbox(&self) -> &[(u32, M)] {
        self.inbox
    }

    /// Queues a message on the given port.
    ///
    /// The engine enforces the CONGEST constraint when the round is
    /// committed: at most one message per link per direction per round.
    #[inline]
    pub fn send(&mut self, port: u32, msg: M) {
        debug_assert!((port as usize) < self.ports.len(), "port out of range");
        self.outbox.push((self.node, port, msg));
    }
}

/// A distributed algorithm driven by the engine.
///
/// One `Protocol` value holds the state of *all* nodes (typically as
/// `Vec`s indexed by `NodeId`); the engine calls [`Protocol::on_round`]
/// once per node per round. Implementations must only read and write the
/// state of `ctx.node` — all cross-node information must flow through
/// messages. The engine cannot enforce this discipline, but it does
/// enforce the bandwidth constraints on everything that is sent.
pub trait Protocol {
    /// The message type. Its size in bits is declared via
    /// [`Protocol::msg_bits`] and checked against the network bandwidth.
    type Msg: Clone;

    /// Declared size of a message in bits; must be `O(log n)` (fit the
    /// network's bandwidth).
    fn msg_bits(&self, msg: &Self::Msg) -> u64;

    /// Executes one round at `ctx.node`: read `ctx.inbox()`, update local
    /// state, send messages.
    fn on_round(&mut self, ctx: &mut NodeCtx<'_, Self::Msg>);

    /// `false` while the protocol has internal pending work even though no
    /// messages are in flight (e.g. delayed deliveries or staggered
    /// starts). Quiescence requires `idle()` *and* an empty network.
    fn idle(&self) -> bool {
        true
    }
}

/// A CONGEST network over a [`DiGraph`], with cumulative metrics.
///
/// # Examples
///
/// ```
/// use congest::Network;
/// use graphkit::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_arc(0, 1);
/// b.add_arc(1, 2);
/// let g = b.build();
/// let net = Network::new(&g);
/// assert_eq!(net.node_count(), 3);
/// assert_eq!(net.ports(1).len(), 2);
/// ```
pub struct Network<'g> {
    graph: &'g DiGraph,
    ports: Vec<Vec<Port>>,
    /// For each edge: (port index at `from`, port index at `to`).
    edge_ports: Vec<(u32, u32)>,
    bandwidth: u64,
    cut: Option<Vec<Side>>,
    metrics: Metrics,
}

impl<'g> Network<'g> {
    /// Wraps a graph as a CONGEST network with the default `Θ(log n)`
    /// bandwidth (`8·⌈log₂ n⌉ + 32` bits, enough for a constant number of
    /// words per message).
    pub fn new(graph: &'g DiGraph) -> Network<'g> {
        let n = graph.node_count();
        let mut ports: Vec<Vec<Port>> = vec![Vec::new(); n];
        let mut edge_ports = vec![(0u32, 0u32); graph.edge_count()];
        for (id, e) in graph.edges() {
            edge_ports[id].0 = ports[e.from].len() as u32;
            ports[e.from].push(Port {
                link: id,
                peer: e.to,
                outgoing: true,
                weight: e.weight,
            });
            edge_ports[id].1 = ports[e.to].len() as u32;
            ports[e.to].push(Port {
                link: id,
                peer: e.from,
                outgoing: false,
                weight: e.weight,
            });
        }
        let bandwidth = 8 * word_bits(n as u64) + 32;
        Network {
            graph,
            ports,
            edge_ports,
            bandwidth,
            cut: None,
            metrics: Metrics::default(),
        }
    }

    /// Overrides the per-message bandwidth in bits (the `B` of
    /// `CONGEST(B)`).
    pub fn with_bandwidth(mut self, bits: u64) -> Network<'g> {
        self.bandwidth = bits;
        self
    }

    /// Labels nodes with cut sides for Alice/Bob bit accounting.
    ///
    /// # Panics
    ///
    /// Panics if `sides.len() != n`.
    pub fn set_cut(&mut self, sides: Vec<Side>) {
        assert_eq!(sides.len(), self.graph.node_count());
        self.cut = Some(sides);
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &'g DiGraph {
        self.graph
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Configured per-message bandwidth in bits.
    #[inline]
    pub fn bandwidth(&self) -> u64 {
        self.bandwidth
    }

    /// The ports of node `v`.
    #[inline]
    pub fn ports(&self, v: NodeId) -> &[Port] {
        &self.ports[v]
    }

    /// Port index of edge `e` at its tail (`from`) endpoint.
    #[inline]
    pub fn port_at_tail(&self, e: EdgeId) -> u32 {
        self.edge_ports[e].0
    }

    /// Port index of edge `e` at its head (`to`) endpoint.
    #[inline]
    pub fn port_at_head(&self, e: EdgeId) -> u32 {
        self.edge_ports[e].1
    }

    /// Cumulative metrics over every phase run so far.
    #[inline]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Records a phase executed outside the engine (e.g. a fixed number of
    /// idle alignment rounds). Use sparingly; prefer real protocols.
    pub fn charge(&mut self, name: &str, stats: RunStats) {
        self.metrics.record(name, stats);
    }

    /// Runs `proto` for exactly `rounds` rounds (deterministic schedules
    /// with known round bounds, e.g. the ζ-round hop-BFS).
    ///
    /// # Panics
    ///
    /// Panics if the protocol violates the CONGEST constraints (two
    /// messages on one link direction in a round, or an oversized
    /// message).
    pub fn run_rounds<P: Protocol>(&mut self, name: &str, proto: &mut P, rounds: u64) -> RunStats {
        let (stats, _) = self.drive(proto, Budget::Exact(rounds));
        self.metrics.record(name, stats);
        stats
    }

    /// Runs `proto` until quiescence (no messages in flight and
    /// `proto.idle()`), up to `max_rounds`.
    ///
    /// # Panics
    ///
    /// Panics on CONGEST constraint violations, as in
    /// [`Network::run_rounds`].
    pub fn run_until_quiet<P: Protocol>(
        &mut self,
        name: &str,
        proto: &mut P,
        max_rounds: u64,
    ) -> Result<RunStats, EngineError> {
        let (stats, quiesced) = self.drive(proto, Budget::UntilQuiet(max_rounds));
        if !quiesced {
            return Err(EngineError::RoundLimitExceeded { max_rounds });
        }
        self.metrics.record(name, stats);
        Ok(stats)
    }

    fn drive<P: Protocol>(&mut self, proto: &mut P, budget: Budget) -> (RunStats, bool) {
        let n = self.graph.node_count();
        let mut stats = RunStats::default();
        let mut inboxes: Vec<Vec<(u32, P::Msg)>> = vec![Vec::new(); n];
        let mut next: Vec<Vec<(u32, P::Msg)>> = vec![Vec::new(); n];
        let mut outbox: Vec<(NodeId, u32, P::Msg)> = Vec::new();
        // Per-round link-direction occupancy; directions are 2*link + side.
        let mut occupied: Vec<u64> = vec![0; 2 * self.graph.edge_count()];
        let mut round: u64 = 0;
        let mut quiesced = false;
        loop {
            match budget {
                Budget::Exact(r) if round >= r => {
                    quiesced = true;
                    break;
                }
                Budget::UntilQuiet(max) if round >= max => break,
                _ => {}
            }
            outbox.clear();
            for v in 0..n {
                let mut ctx = NodeCtx {
                    node: v,
                    round,
                    ports: &self.ports[v],
                    inbox: &inboxes[v],
                    outbox: &mut outbox,
                };
                proto.on_round(&mut ctx);
            }
            let sent = outbox.len() as u64;
            for (sender, port_idx, msg) in outbox.drain(..) {
                let port = self.ports[sender][port_idx as usize];
                let dir = 2 * port.link + usize::from(!port.outgoing);
                assert_ne!(
                    occupied[dir],
                    round + 1,
                    "CONGEST violation: two messages on link {} direction {} in round {} \
                     (sender {})",
                    port.link,
                    usize::from(!port.outgoing),
                    round,
                    sender
                );
                occupied[dir] = round + 1;
                let bits = proto.msg_bits(&msg);
                assert!(
                    bits <= self.bandwidth,
                    "CONGEST violation: {bits}-bit message exceeds bandwidth {} (sender {sender})",
                    self.bandwidth
                );
                stats.messages += 1;
                stats.bits += bits;
                stats.max_message_bits = stats.max_message_bits.max(bits);
                if let Some(cut) = &self.cut {
                    let a = cut[sender];
                    let b = cut[port.peer];
                    if a != b && a != Side::Neutral && b != Side::Neutral {
                        stats.cut_bits += bits;
                    }
                }
                let recv_port = if port.outgoing {
                    self.edge_ports[port.link].1
                } else {
                    self.edge_ports[port.link].0
                };
                next[port.peer].push((recv_port, msg));
            }
            round += 1;
            for v in 0..n {
                inboxes[v].clear();
            }
            std::mem::swap(&mut inboxes, &mut next);
            if matches!(budget, Budget::UntilQuiet(_))
                && sent == 0
                && inboxes.iter().all(|i| i.is_empty())
                && proto.idle()
            {
                quiesced = true;
                break;
            }
        }
        stats.rounds = round;
        (stats, quiesced)
    }
}

impl fmt::Debug for Network<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.graph.node_count())
            .field("links", &self.graph.edge_count())
            .field("bandwidth_bits", &self.bandwidth)
            .finish()
    }
}

#[derive(Clone, Copy)]
enum Budget {
    Exact(u64),
    UntilQuiet(u64),
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::GraphBuilder;

    /// Floods a token from node 0; each node records the round it heard it.
    struct Flood {
        heard: Vec<Option<u64>>,
    }

    impl Protocol for Flood {
        type Msg = ();

        fn msg_bits(&self, _: &()) -> u64 {
            1
        }

        fn on_round(&mut self, ctx: &mut NodeCtx<'_, ()>) {
            let v = ctx.node;
            let newly = if ctx.round == 0 && v == 0 {
                self.heard[v] = Some(0);
                true
            } else if self.heard[v].is_none() && !ctx.inbox().is_empty() {
                self.heard[v] = Some(ctx.round);
                true
            } else {
                false
            };
            if newly {
                for p in 0..ctx.ports().len() as u32 {
                    ctx.send(p, ());
                }
            }
        }
    }

    fn line(n: usize) -> DiGraph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_arc(i, i + 1);
        }
        b.build()
    }

    #[test]
    fn flood_reaches_everyone_in_ecc_rounds() {
        let g = line(6);
        let mut net = Network::new(&g);
        let mut p = Flood {
            heard: vec![None; 6],
        };
        let stats = net.run_until_quiet("flood", &mut p, 100).unwrap();
        for (v, h) in p.heard.iter().enumerate() {
            assert_eq!(*h, Some(v as u64), "node {v}");
        }
        // 5 hops to the far end, +1 round to observe quiescence.
        assert!(stats.rounds <= 7, "rounds = {}", stats.rounds);
        assert_eq!(net.metrics().rounds(), stats.rounds);
    }

    #[test]
    fn flood_crosses_reversed_edges() {
        // Links are bidirectional even though edges are directed.
        let mut b = GraphBuilder::new(3);
        b.add_arc(1, 0);
        b.add_arc(2, 1);
        let g = b.build();
        let mut net = Network::new(&g);
        let mut p = Flood {
            heard: vec![None; 3],
        };
        net.run_until_quiet("flood", &mut p, 100).unwrap();
        assert!(p.heard.iter().all(|h| h.is_some()));
    }

    #[test]
    fn exact_budget_charges_full_rounds() {
        let g = line(4);
        let mut net = Network::new(&g);
        let mut p = Flood {
            heard: vec![None; 4],
        };
        let stats = net.run_rounds("flood", &mut p, 50);
        assert_eq!(stats.rounds, 50);
    }

    #[test]
    fn round_limit_is_an_error() {
        let g = line(10);
        let mut net = Network::new(&g);
        let mut p = Flood {
            heard: vec![None; 10],
        };
        let err = net.run_until_quiet("flood", &mut p, 3);
        assert_eq!(err, Err(EngineError::RoundLimitExceeded { max_rounds: 3 }));
        // Node 9 cannot have heard anything within 3 rounds.
        assert!(p.heard[9].is_none());
    }

    struct DoubleSend;

    impl Protocol for DoubleSend {
        type Msg = ();
        fn msg_bits(&self, _: &()) -> u64 {
            1
        }
        fn on_round(&mut self, ctx: &mut NodeCtx<'_, ()>) {
            if ctx.node == 0 && ctx.round == 0 {
                ctx.send(0, ());
                ctx.send(0, ());
            }
        }
    }

    #[test]
    #[should_panic(expected = "CONGEST violation")]
    fn two_messages_on_one_direction_panic() {
        let g = line(2);
        let mut net = Network::new(&g);
        net.run_rounds("bad", &mut DoubleSend, 2);
    }

    struct FatMessage;

    impl Protocol for FatMessage {
        type Msg = ();
        fn msg_bits(&self, _: &()) -> u64 {
            1 << 20
        }
        fn on_round(&mut self, ctx: &mut NodeCtx<'_, ()>) {
            if ctx.node == 0 && ctx.round == 0 {
                ctx.send(0, ());
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds bandwidth")]
    fn oversized_message_panics() {
        let g = line(2);
        let mut net = Network::new(&g);
        net.run_rounds("fat", &mut FatMessage, 2);
    }

    #[test]
    fn opposite_directions_share_a_link() {
        // Both endpoints may use the same link in the same round.
        struct PingPong;
        impl Protocol for PingPong {
            type Msg = ();
            fn msg_bits(&self, _: &()) -> u64 {
                1
            }
            fn on_round(&mut self, ctx: &mut NodeCtx<'_, ()>) {
                if ctx.round == 0 {
                    ctx.send(0, ());
                }
            }
        }
        let g = line(2);
        let mut net = Network::new(&g);
        let stats = net.run_rounds("pingpong", &mut PingPong, 2);
        assert_eq!(stats.messages, 2);
    }

    #[test]
    fn cut_accounting_counts_crossing_bits() {
        let g = line(4);
        let mut net = Network::new(&g);
        net.set_cut(vec![Side::Alice, Side::Alice, Side::Bob, Side::Bob]);
        let mut p = Flood {
            heard: vec![None; 4],
        };
        let stats = net.run_until_quiet("flood", &mut p, 100).unwrap();
        // Only link 1<->2 crosses; flooding sends once in each direction
        // eventually, but node 2 hears before sending back, so exactly the
        // forward message plus node 2's echo cross.
        assert!(stats.cut_bits >= 1);
        assert!(stats.cut_bits <= 2);
    }

    #[test]
    fn word_bits_examples() {
        assert_eq!(word_bits(0), 1);
        assert_eq!(word_bits(1), 1);
        assert_eq!(word_bits(2), 2);
        assert_eq!(word_bits(255), 8);
        assert_eq!(word_bits(256), 9);
    }
}
