//! The synchronous round engine.
//!
//! Three engine-level optimizations keep simulation wall-clock
//! proportional to *traffic* rather than `Θ(n · rounds)`, and then split
//! that traffic across cores:
//!
//! - **Active-set scheduling**: protocols that opt in via
//!   [`Protocol::scheduling`] are stepped only at nodes that can act —
//!   nodes that received a message, nodes in round 0, and nodes that
//!   explicitly re-armed themselves with [`NodeCtx::wake`]. Unmigrated
//!   protocols keep the full-sweep behavior.
//! - **Flat mailbox arenas**: instead of per-node `Vec<Vec<_>>` inboxes
//!   and a reallocated outbox, one staging buffer is counting-sorted by
//!   destination into a CSR-bucketed arena each round. Occupancy and
//!   validity checks use monotonically increasing round generations, so
//!   nothing is cleared between rounds or phases.
//! - **Deterministic sharded parallelism**: protocols that store their
//!   per-node state in a slice ([`ShardedProtocol`]) are executed by a
//!   three-phase pipeline ([`Network::run_rounds_par`] /
//!   [`Network::run_until_quiet_par`]) over disjoint contiguous node
//!   shards whose boundaries are *degree-balanced*: shard `k` ends
//!   where the prefix sum of `1 + deg(v)` reaches its share of the
//!   total, so a star or power-law hub no longer serializes one hot
//!   shard ([`Network::set_shard_bounds`] overrides the geometry).
//!
//! The parallel pipeline runs each round in three phases:
//!
//! 1. **Step + derive** (workers): each worker steps its shard, staging
//!    sends into a shard-local buffer, then runs the per-message
//!    derivation — bandwidth check, bit and cut accounting, the CONGEST
//!    one-message-per-link-direction check (shard-local, because a link
//!    direction is owned by exactly one sender and a sender lives in
//!    exactly one shard), a per-destination histogram, and a shard-local
//!    stable counting sort by destination.
//! 2. **Merge + scan** (main thread): shard histograms are merged in
//!    ascending shard order — reproducing the exact sequential
//!    first-touch destination order — and an exclusive prefix scan
//!    assigns every destination its contiguous inbox slice in the
//!    arena.
//! 3. **Gather** (workers): destinations are partitioned into
//!    message-count-balanced ranges; each worker materializes its
//!    ranges' inbox slices by walking the shard-local sort orders in
//!    ascending shard order, so every arena entry is identical to the
//!    sequential counting sort's.
//!
//! Whether a round takes the parallel pipeline or the sequential commit
//! is decided per round by an adaptive cost model: rounds below a work
//! floor stay sequential outright, and contested rounds are timed, with
//! EWMA estimates of sequential vs parallel nanoseconds per unit of
//! work picking the predicted-cheaper path (probing the other one
//! occasionally so the estimates track phase changes). The decision is
//! recorded as [`DispatchStats`] telemetry in [`Metrics`] and never
//! affects results — only wall-clock.
//!
//! All of these are pure wall-clock optimizations: the delivered
//! messages, their per-destination order, and all [`RunStats`]
//! accounting are bit-exact with a sequential full sweep (asserted by
//! `tests/engine_equivalence.rs` across schedules, thread counts, and
//! shard geometries).

use std::fmt;

use graphkit::{DiGraph, EdgeId, NodeId};

use crate::faults::{Fate, FaultPlan};
use crate::metrics::{DispatchStats, FaultStats, Metrics, RunStats};

/// Number of bits needed to write `x` in binary (`0 -> 1` bit).
///
/// Used to express message sizes in terms of the paper's `O(log n)`-bit
/// words.
pub fn word_bits(x: u64) -> u64 {
    (64 - x.leading_zeros() as u64).max(1)
}

/// One end of a communication link, as seen from a particular node.
///
/// A link is a graph edge; communication is bidirectional regardless of
/// the edge's direction, but protocols usually care whether the node is
/// the edge's tail (`outgoing == true`) or head.
#[derive(Clone, Copy, Debug)]
pub struct Port {
    /// The graph edge realizing this link.
    pub link: EdgeId,
    /// The node on the other end.
    pub peer: NodeId,
    /// `true` when this node is the edge's tail (`edge.from`).
    pub outgoing: bool,
    /// The edge weight (1 in unweighted graphs).
    pub weight: u64,
}

/// Which side of the Alice/Bob cut a node belongs to (Section 6
/// experiments). Messages between `Alice` and `Bob` nodes are counted in
/// [`RunStats::cut_bits`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// Alice's side of the cut.
    Alice,
    /// Bob's side of the cut.
    Bob,
    /// Not assigned to either player.
    Neutral,
}

/// Errors the engine can report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The protocol did not reach quiescence within the round budget.
    ///
    /// The final-round snapshot makes budget exhaustion diagnosable
    /// without rerunning: a protocol that is *still making progress*
    /// (nonzero `last_active`/`last_messages`) merely needs a larger
    /// budget, while one that exhausted the budget in silence is
    /// livelocked on [`Protocol::idle`] or stranded in-flight (delayed)
    /// traffic under a fault plan.
    RoundLimitExceeded {
        /// The configured budget.
        max_rounds: u64,
        /// Rounds actually executed before giving up.
        rounds: u64,
        /// Nodes stepped in the final round.
        last_active: u64,
        /// Messages delivered or still in flight after the final
        /// round's commit.
        last_messages: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::RoundLimitExceeded {
                max_rounds,
                rounds,
                last_active,
                last_messages,
            } => {
                write!(
                    f,
                    "protocol still active after {rounds} of {max_rounds} budgeted rounds \
                     ({last_active} nodes stepped and {last_messages} messages delivered or \
                     in flight in the final round)"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// How the engine decides which nodes to step each round.
///
/// This is part of the [`Protocol`] contract, declared via
/// [`Protocol::scheduling`]. It affects only which `on_round` calls are
/// made — never what is delivered, in which order, or what is charged to
/// [`RunStats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheduling {
    /// Every node is stepped every round (the default, and the reference
    /// semantics). Correct for any protocol.
    FullSweep,
    /// A node is stepped only when it (a) is in round 0, (b) received a
    /// message delivered this round, or (c) called [`NodeCtx::wake`] in
    /// the previous round. Protocols opting in must uphold the
    /// *sweep-agnostic* contract: stepping a node with an empty inbox
    /// that did not wake itself is a no-op (no sends, no externally
    /// visible state change).
    ActiveSet,
}

/// A node's view of one round: its inbox from the previous round and an
/// outbox for this round.
pub struct NodeCtx<'a, M> {
    /// This node's id.
    pub node: NodeId,
    /// The current round number (0-based; round 0 has empty inboxes).
    pub round: u64,
    ports: &'a [Port],
    inbox: &'a [(u32, M)],
    /// Staged sends; `Option` so the commit phase can move messages into
    /// the delivery arena without cloning.
    outbox: &'a mut Vec<(NodeId, u32, Option<M>)>,
    woke: &'a mut bool,
}

impl<'a, M> NodeCtx<'a, M> {
    /// The node's incident links.
    ///
    /// The returned slice borrows the network, not the context, so it
    /// can be held across [`NodeCtx::send`] calls.
    #[inline]
    pub fn ports(&self) -> &'a [Port] {
        self.ports
    }

    /// Messages delivered this round as `(port index, message)` pairs.
    ///
    /// The returned slice borrows the delivery arena, not the context,
    /// so inbox processing can be interleaved with [`NodeCtx::send`]
    /// without cloning the inbox first.
    #[inline]
    pub fn inbox(&self) -> &'a [(u32, M)] {
        self.inbox
    }

    /// Queues a message on the given port.
    ///
    /// The engine enforces the CONGEST constraint when the round is
    /// committed: at most one message per link per direction per round.
    /// Sending also schedules the receiver for the next round under
    /// [`Scheduling::ActiveSet`].
    #[inline]
    pub fn send(&mut self, port: u32, msg: M) {
        debug_assert!((port as usize) < self.ports.len(), "port out of range");
        self.outbox.push((self.node, port, Some(msg)));
    }

    /// Marks this node active for the next round even if it receives no
    /// message (the explicit arm of the [`Scheduling::ActiveSet`]
    /// activation contract).
    ///
    /// Use it for self-driven work: pending send queues, held/delayed
    /// messages, or systolic schedules that fire on round numbers rather
    /// than on receipt. A no-op under [`Scheduling::FullSweep`].
    #[inline]
    pub fn wake(&mut self) {
        *self.woke = true;
    }
}

/// A distributed algorithm driven by the engine.
///
/// One `Protocol` value holds the state of *all* nodes (typically as
/// `Vec`s indexed by `NodeId`); the engine calls [`Protocol::on_round`]
/// once per scheduled node per round. Implementations must only read and
/// write the state of `ctx.node` — all cross-node information must flow
/// through messages. The engine cannot enforce this discipline, but it
/// does enforce the bandwidth constraints on everything that is sent.
pub trait Protocol {
    /// The message type. Its size in bits is declared via
    /// [`Protocol::msg_bits`] and checked against the network bandwidth.
    type Msg: Clone;

    /// Declared size of a message in bits; must be `O(log n)` (fit the
    /// network's bandwidth).
    fn msg_bits(&self, msg: &Self::Msg) -> u64;

    /// Executes one round at `ctx.node`: read `ctx.inbox()`, update local
    /// state, send messages.
    fn on_round(&mut self, ctx: &mut NodeCtx<'_, Self::Msg>);

    /// `false` while the protocol has internal pending work even though no
    /// messages are in flight (e.g. delayed deliveries or staggered
    /// starts). Quiescence requires `idle()` *and* an empty network.
    fn idle(&self) -> bool {
        true
    }

    /// The scheduling contract this protocol upholds; defaults to the
    /// always-correct [`Scheduling::FullSweep`]. Override to
    /// [`Scheduling::ActiveSet`] once `on_round` is sweep-agnostic (see
    /// [`Scheduling`]) — the engine then skips idle nodes, which is the
    /// difference between `Θ(n · rounds)` and `Θ(traffic)` simulation
    /// cost on sparse workloads.
    fn scheduling(&self) -> Scheduling {
        Scheduling::FullSweep
    }
}

/// A protocol whose per-node state is a slice the engine can split into
/// disjoint contiguous shards and step from worker threads.
///
/// This is the data-parallel refinement of [`Protocol`]: instead of one
/// `&mut self` entry point per node, the protocol factors its state into
///
/// - [`ShardedProtocol::Shared`] — configuration and topology read by
///   every node (`Sync`, immutable during a round), and
/// - [`ShardedProtocol::Node`] — one state value per node, stored
///   contiguously in node-id order and exposed via
///   [`ShardedProtocol::split`].
///
/// [`ShardedProtocol::step_node`] may touch *only* the given node's
/// state; the type system enforces it (each worker holds `&mut` to its
/// shard alone), which is exactly the locality discipline the CONGEST
/// model asks for anyway.
///
/// Every `ShardedProtocol` is automatically a [`Protocol`] (a blanket
/// impl steps single nodes through the same `step_node`), so sharded
/// protocols run unchanged on the sequential engine, under
/// [`Network::set_full_sweep`], and in differential tests.
///
/// # Determinism contract
///
/// The engine guarantees that a parallel run is bit-identical to a
/// sequential one for *any* implementation: workers step ascending node
/// ranges, stage sends into shard-local buffers, and the buffers are
/// concatenated in ascending shard order before delivery, so the
/// counting sort sees the exact sequential send order. The only
/// obligation on the implementation is the usual one — `step_node` must
/// depend only on `Shared`, its own `Node`, and the [`NodeCtx`] (no
/// interior-mutable side channels in `Shared`).
pub trait ShardedProtocol {
    /// The message type (see [`Protocol::Msg`]); `Send + Sync` so
    /// workers can read delivery arenas and stage sends across threads.
    type Msg: Clone + Send + Sync;

    /// Per-node state, stored contiguously in node-id order.
    type Node: Send;

    /// State shared read-only by all nodes within a round.
    type Shared: Sync;

    /// Declared size of a message in bits (see [`Protocol::msg_bits`]).
    fn msg_bits(shared: &Self::Shared, msg: &Self::Msg) -> u64;

    /// The shared read-only state.
    fn shared(&self) -> &Self::Shared;

    /// Splits the protocol into its shared state and the per-node state
    /// slice (`len == n`, indexed by `NodeId`).
    fn split(&mut self) -> (&Self::Shared, &mut [Self::Node]);

    /// Executes one round at `ctx.node`, touching only `node` (that
    /// node's state slot) and `shared`.
    fn step_node(shared: &Self::Shared, node: &mut Self::Node, ctx: &mut NodeCtx<'_, Self::Msg>);

    /// See [`Protocol::idle`].
    fn idle(&self) -> bool {
        true
    }

    /// See [`Protocol::scheduling`].
    fn scheduling(&self) -> Scheduling {
        Scheduling::FullSweep
    }
}

impl<P: ShardedProtocol> Protocol for P {
    type Msg = P::Msg;

    fn msg_bits(&self, msg: &P::Msg) -> u64 {
        P::msg_bits(self.shared(), msg)
    }

    fn on_round(&mut self, ctx: &mut NodeCtx<'_, P::Msg>) {
        let v = ctx.node;
        let (shared, nodes) = self.split();
        P::step_node(shared, &mut nodes[v], ctx);
    }

    fn idle(&self) -> bool {
        <P as ShardedProtocol>::idle(self)
    }

    fn scheduling(&self) -> Scheduling {
        <P as ShardedProtocol>::scheduling(self)
    }
}

/// Reusable, non-generic engine buffers.
///
/// Sized once per network and shared by every phase run on it; validity
/// is tracked by the monotonically increasing `generation`, so between
/// rounds and phases nothing needs clearing (the "round-stamped
/// generations" device).
struct EngineScratch {
    /// Monotonic round generation, never reset.
    generation: u64,
    /// Per link direction (`2*link + side`): generation of the last send.
    occupied: Vec<u64>,
    /// Per node: start of its inbox slice in the arena.
    inbox_start: Vec<u32>,
    /// Per node: length of its inbox slice.
    inbox_len: Vec<u32>,
    /// Per node: generation at which `inbox_start`/`inbox_len` are valid.
    inbox_stamp: Vec<u64>,
    /// Per node: message count this round, then placement cursor.
    counts: Vec<u32>,
    /// Per node: generation at which `counts` is valid.
    count_stamp: Vec<u64>,
    /// Per node: generation for which the node is already queued to step.
    active_stamp: Vec<u64>,
    /// Nodes to step this round (ascending ids), under `ActiveSet`.
    active: Vec<u32>,
    /// Nodes queued for the next round (unsorted until the round ends).
    next_active: Vec<u32>,
    /// Destinations that received at least one message this round.
    touched: Vec<u32>,
    /// Per staged message: destination node.
    dests: Vec<u32>,
    /// Per staged message: receiving port at the destination.
    recv_ports: Vec<u32>,
    /// Stable counting-sort permutation (arena slot -> staging index).
    order: Vec<u32>,
    /// Inclusive prefix sum of per-destination counts over `touched`
    /// (length `touched.len() + 1`), used to balance the gather phase.
    touched_prefix: Vec<u64>,
    /// Per-shard worker scratch for the parallel pipeline, persisted
    /// across rounds and drives like everything else here.
    shard_scratch: Vec<ShardScratch>,
}

impl EngineScratch {
    fn new(nodes: usize, edges: usize) -> EngineScratch {
        EngineScratch {
            generation: 0,
            occupied: vec![0; 2 * edges],
            inbox_start: vec![0; nodes],
            inbox_len: vec![0; nodes],
            inbox_stamp: vec![0; nodes],
            counts: vec![0; nodes],
            count_stamp: vec![0; nodes],
            active_stamp: vec![0; nodes],
            active: Vec::new(),
            next_active: Vec::new(),
            touched: Vec::new(),
            dests: Vec::new(),
            recv_ports: Vec::new(),
            order: Vec::new(),
            touched_prefix: Vec::new(),
            shard_scratch: Vec::new(),
        }
    }

    /// Guarantees at least `shards` per-shard scratches, each with
    /// node-indexed arrays of length `n`. New entries are zeroed, which
    /// the generation stamping treats as "never valid".
    fn ensure_shards(&mut self, shards: usize, n: usize) {
        if self.shard_scratch.len() < shards {
            self.shard_scratch.resize_with(shards, ShardScratch::new);
        }
        for scr in &mut self.shard_scratch[..shards] {
            if scr.count_stamp.len() < n {
                scr.count_stamp.resize(n, 0);
                scr.local_count.resize(n, 0);
                scr.local_start.resize(n, 0);
            }
        }
    }
}

/// Non-generic scratch owned by one worker shard, reused across rounds.
///
/// The node-indexed arrays (`count_stamp`/`local_count`/`local_start`)
/// are validity-stamped by round generation like the global scratch, so
/// nothing is cleared between rounds; the message-indexed vectors are
/// rebuilt from empty each round but keep their capacity.
struct ShardScratch {
    /// Per staged message: destination node.
    dests: Vec<u32>,
    /// Per staged message: receiving port at the destination.
    recv_ports: Vec<u32>,
    /// Destinations first touched by this shard's sends, in send order.
    touched: Vec<u32>,
    /// Per destination: generation at which `local_count` is valid.
    count_stamp: Vec<u64>,
    /// Per destination: messages this shard sent to it this round.
    local_count: Vec<u32>,
    /// Per destination: placement cursor during the shard-local
    /// counting sort; afterwards the *end* of the destination's run in
    /// `order` (start = end - `local_count`).
    local_start: Vec<u32>,
    /// Shard-local stable counting-sort permutation
    /// (run slot -> shard staging index).
    order: Vec<u32>,
    /// Per sender port index: `port_block` of the last staged send,
    /// grown lazily to the widest port index seen. Detects duplicate
    /// sends on one link direction: a direction is owned by exactly one
    /// (sender, port) pair, and a sender's sends are consecutive in the
    /// staging buffer, so a repeat port within one sender block is
    /// exactly a CONGEST occupancy violation.
    port_seen: Vec<u64>,
    /// Monotone per-sender-block counter stamping `port_seen` (starts
    /// at 1 so lazily-zeroed entries never collide).
    port_block: u64,
    /// Nodes in this shard that called [`NodeCtx::wake`], ascending.
    woke: Vec<u32>,
    /// Partial [`RunStats`] accounting for this shard's sends.
    messages: u64,
    bits: u64,
    max_bits: u64,
    cut_bits: u64,
}

impl ShardScratch {
    fn new() -> ShardScratch {
        ShardScratch {
            dests: Vec::new(),
            recv_ports: Vec::new(),
            touched: Vec::new(),
            count_stamp: Vec::new(),
            local_count: Vec::new(),
            local_start: Vec::new(),
            order: Vec::new(),
            port_seen: Vec::new(),
            port_block: 0,
            woke: Vec::new(),
            messages: 0,
            bits: 0,
            max_bits: 0,
            cut_bits: 0,
        }
    }

    fn clear_round(&mut self) {
        self.dests.clear();
        self.recv_ports.clear();
        self.touched.clear();
        self.woke.clear();
        self.messages = 0;
        self.bits = 0;
        self.max_bits = 0;
        self.cut_bits = 0;
    }
}

/// A CONGEST network over a [`DiGraph`], with cumulative metrics.
///
/// # Examples
///
/// ```
/// use congest::Network;
/// use graphkit::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_arc(0, 1);
/// b.add_arc(1, 2);
/// let g = b.build();
/// let net = Network::new(&g);
/// assert_eq!(net.node_count(), 3);
/// assert_eq!(net.ports(1).len(), 2);
/// ```
pub struct Network<'g> {
    graph: &'g DiGraph,
    ports: Vec<Vec<Port>>,
    /// For each edge: (port index at `from`, port index at `to`).
    edge_ports: Vec<(u32, u32)>,
    bandwidth: u64,
    cut: Option<Vec<Side>>,
    metrics: Metrics,
    scratch: EngineScratch,
    force_full_sweep: bool,
    pool: shardpool::Pool,
    /// Work floor: rounds below `step_count + delivered` stay on the
    /// sequential path without consulting the cost model; `0` forces
    /// the parallel pipeline on every round.
    par_node_threshold: usize,
    /// Minimum staged messages before the gather phase fans out.
    par_msg_threshold: usize,
    /// Explicit interior shard split points (testing/tuning); `None`
    /// means degree-balanced chunks of the node range.
    shard_bounds: Option<Vec<usize>>,
    /// Prefix sum of per-node work weight `1 + deg(v)`; `deg_prefix[v]`
    /// is the total weight of nodes `0..v`. Drives the default
    /// degree-balanced shard boundaries.
    deg_prefix: Vec<u64>,
    /// Adaptive dispatch cost model, learned across drives.
    dispatch: DispatchModel,
    /// Optional fault-injection schedule applied at commit time; see
    /// [`crate::faults`].
    fault_plan: Option<FaultPlan>,
}

impl<'g> Network<'g> {
    /// Wraps a graph as a CONGEST network with the default `Θ(log n)`
    /// bandwidth (`8·⌈log₂ n⌉ + 32` bits, enough for a constant number of
    /// words per message).
    pub fn new(graph: &'g DiGraph) -> Network<'g> {
        let n = graph.node_count();
        // Two-pass construction: count degrees first so every per-node
        // port vector is allocated exactly once.
        let mut degree = vec![0u32; n];
        for (_, e) in graph.edges() {
            degree[e.from] += 1;
            degree[e.to] += 1;
        }
        let mut ports: Vec<Vec<Port>> = degree
            .iter()
            .map(|&d| Vec::with_capacity(d as usize))
            .collect();
        let mut edge_ports = vec![(0u32, 0u32); graph.edge_count()];
        for (id, e) in graph.edges() {
            edge_ports[id].0 = ports[e.from].len() as u32;
            ports[e.from].push(Port {
                link: id,
                peer: e.to,
                outgoing: true,
                weight: e.weight,
            });
            edge_ports[id].1 = ports[e.to].len() as u32;
            ports[e.to].push(Port {
                link: id,
                peer: e.from,
                outgoing: false,
                weight: e.weight,
            });
        }
        let bandwidth = 8 * word_bits(n as u64) + 32;
        let mut deg_prefix = Vec::with_capacity(n + 1);
        deg_prefix.push(0u64);
        for p in &ports {
            deg_prefix.push(deg_prefix.last().unwrap() + 1 + p.len() as u64);
        }
        Network {
            graph,
            ports,
            edge_ports,
            bandwidth,
            cut: None,
            metrics: Metrics::default(),
            scratch: EngineScratch::new(n, graph.edge_count()),
            force_full_sweep: false,
            pool: shardpool::Pool::from_env("CONGEST_THREADS"),
            par_node_threshold: DEFAULT_PAR_NODE_THRESHOLD,
            par_msg_threshold: DEFAULT_PAR_MSG_THRESHOLD,
            shard_bounds: None,
            deg_prefix,
            dispatch: DispatchModel::default(),
            fault_plan: None,
        }
    }

    /// Overrides the per-message bandwidth in bits (the `B` of
    /// `CONGEST(B)`).
    pub fn with_bandwidth(mut self, bits: u64) -> Network<'g> {
        self.bandwidth = bits;
        self
    }

    /// Forces every protocol onto the [`Scheduling::FullSweep`] reference
    /// schedule regardless of its declared contract.
    ///
    /// The differential tests use this to check that active-set runs are
    /// bit-exact with full sweeps; it is also a debugging aid when a
    /// migrated protocol is suspected of violating the sweep-agnostic
    /// contract.
    pub fn set_full_sweep(&mut self, on: bool) {
        self.force_full_sweep = on;
    }

    /// Sets the number of worker threads for the sharded-parallel
    /// entry points ([`Network::run_rounds_par`] and
    /// [`Network::run_until_quiet_par`]). `1` forces sequential
    /// execution; the default comes from the `CONGEST_THREADS`
    /// environment variable (unset/`0` = auto-detect).
    ///
    /// Thread count never affects results — only wall-clock.
    pub fn set_threads(&mut self, threads: usize) {
        self.pool.set_threads(threads);
    }

    /// The configured worker-thread count.
    #[inline]
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Sets the adaptive dispatcher's work floor: rounds whose work
    /// (nodes stepped plus messages delivered) falls below `nodes` run
    /// sequentially without consulting the cost model, and gather-phase
    /// fan-out requires at least `4 * nodes` staged messages. `0`
    /// disables the floor *and* the cost model — every eligible round
    /// takes the parallel pipeline, which the differential tests use to
    /// exercise parallelism deterministically on small graphs.
    pub fn set_parallel_threshold(&mut self, nodes: usize) {
        self.par_node_threshold = nodes;
        self.par_msg_threshold = 4 * nodes;
    }

    /// Overrides the shard boundaries with explicit interior split
    /// points (strictly ascending, each in `1..n`); `None` restores
    /// degree-balanced chunking. Shard geometry never affects results —
    /// the differential property tests randomize it to prove that.
    ///
    /// # Panics
    ///
    /// Panics if any split point is out of range, duplicated, or out of
    /// order; the message names the offending index.
    pub fn set_shard_bounds(&mut self, splits: Option<Vec<usize>>) {
        if let Some(splits) = &splits {
            let n = self.graph.node_count();
            let mut prev = 0usize;
            for (i, &s) in splits.iter().enumerate() {
                assert!(
                    s > prev,
                    "shard split point #{i} ({s}) must exceed the previous split ({prev}): \
                     split points are strictly ascending"
                );
                assert!(
                    s < n,
                    "shard split point #{i} ({s}) is out of range: interior splits lie in 1..{n}"
                );
                prev = s;
            }
        }
        self.shard_bounds = splits;
    }

    /// Attaches (or clears) a fault-injection schedule; every subsequent
    /// drive on this network applies it at commit time, with per-drive
    /// round numbering starting at 0 (use [`FaultPlan::shifted`] to
    /// spread one logical timeline over several drives). Fault telemetry
    /// accumulates in [`Metrics::faults`]; see [`crate::faults`] for the
    /// fault model and the determinism contract.
    ///
    /// # Panics
    ///
    /// Panics if the plan targets an edge or node outside this graph;
    /// the message names the offending fault.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        if let Some(p) = &plan {
            p.validate(self.graph.edge_count(), self.graph.node_count());
        }
        self.fault_plan = plan;
    }

    /// The attached fault plan, if any.
    #[inline]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Labels nodes with cut sides for Alice/Bob bit accounting.
    ///
    /// # Panics
    ///
    /// Panics if `sides.len() != n`.
    pub fn set_cut(&mut self, sides: Vec<Side>) {
        assert_eq!(sides.len(), self.graph.node_count());
        self.cut = Some(sides);
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &'g DiGraph {
        self.graph
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Configured per-message bandwidth in bits.
    #[inline]
    pub fn bandwidth(&self) -> u64 {
        self.bandwidth
    }

    /// The ports of node `v`.
    #[inline]
    pub fn ports(&self, v: NodeId) -> &[Port] {
        &self.ports[v]
    }

    /// Port index of edge `e` at its tail (`from`) endpoint.
    #[inline]
    pub fn port_at_tail(&self, e: EdgeId) -> u32 {
        self.edge_ports[e].0
    }

    /// Port index of edge `e` at its head (`to`) endpoint.
    #[inline]
    pub fn port_at_head(&self, e: EdgeId) -> u32 {
        self.edge_ports[e].1
    }

    /// Cumulative metrics over every phase run so far.
    #[inline]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Moves the accumulated metrics out of the network, leaving an
    /// empty log behind.
    ///
    /// Solvers that own their network use this to hand the accounting to
    /// their output without deep-cloning every phase record; combine
    /// multiple runs with [`Metrics::merge_from`].
    pub fn take_metrics(&mut self) -> Metrics {
        std::mem::take(&mut self.metrics)
    }

    /// Records a phase executed outside the engine (e.g. a fixed number of
    /// idle alignment rounds). Use sparingly; prefer real protocols.
    pub fn charge(&mut self, name: &str, stats: RunStats) {
        self.metrics.record(name, stats);
    }

    /// Runs `proto` for exactly `rounds` rounds (deterministic schedules
    /// with known round bounds, e.g. the ζ-round hop-BFS).
    ///
    /// # Panics
    ///
    /// Panics if the protocol violates the CONGEST constraints (two
    /// messages on one link direction in a round, or an oversized
    /// message).
    pub fn run_rounds<P: Protocol>(&mut self, name: &str, proto: &mut P, rounds: u64) -> RunStats {
        let out = self.drive(proto, Budget::Exact(rounds));
        self.metrics.record(name, out.stats);
        self.metrics.record_faults(out.faults);
        out.stats
    }

    /// Runs `proto` until quiescence (no messages in flight and
    /// `proto.idle()`), up to `max_rounds`.
    ///
    /// # Panics
    ///
    /// Panics on CONGEST constraint violations, as in
    /// [`Network::run_rounds`].
    pub fn run_until_quiet<P: Protocol>(
        &mut self,
        name: &str,
        proto: &mut P,
        max_rounds: u64,
    ) -> Result<RunStats, EngineError> {
        let out = self.drive(proto, Budget::UntilQuiet(max_rounds));
        if !out.quiesced {
            return Err(out.round_limit_error(max_rounds));
        }
        self.metrics.record(name, out.stats);
        self.metrics.record_faults(out.faults);
        Ok(out.stats)
    }

    /// [`Network::run_rounds`] on the sharded-parallel execution path:
    /// rounds with enough work are stepped by worker threads over
    /// disjoint node shards, with results bit-identical to the
    /// sequential engine.
    ///
    /// # Panics
    ///
    /// Panics on CONGEST constraint violations, as in
    /// [`Network::run_rounds`].
    pub fn run_rounds_par<P: ShardedProtocol>(
        &mut self,
        name: &str,
        proto: &mut P,
        rounds: u64,
    ) -> RunStats {
        let out = self.drive_par(proto, Budget::Exact(rounds));
        self.metrics.record(name, out.stats);
        self.metrics.record_faults(out.faults);
        out.stats
    }

    /// [`Network::run_until_quiet`] on the sharded-parallel execution
    /// path (see [`Network::run_rounds_par`]).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::RoundLimitExceeded`] when the protocol
    /// fails to quiesce within `max_rounds`.
    pub fn run_until_quiet_par<P: ShardedProtocol>(
        &mut self,
        name: &str,
        proto: &mut P,
        max_rounds: u64,
    ) -> Result<RunStats, EngineError> {
        let out = self.drive_par(proto, Budget::UntilQuiet(max_rounds));
        if !out.quiesced {
            return Err(out.round_limit_error(max_rounds));
        }
        self.metrics.record(name, out.stats);
        self.metrics.record_faults(out.faults);
        Ok(out.stats)
    }

    fn drive<P: Protocol>(&mut self, proto: &mut P, budget: Budget) -> DriveOutcome {
        let n = self.graph.node_count();
        let full_sweep = self.force_full_sweep || proto.scheduling() == Scheduling::FullSweep;
        let mut stats = RunStats::default();
        // The only per-drive (message-typed) buffers; both are filled and
        // drained wholesale, so they stabilize at peak traffic size after
        // the first few rounds.
        let mut staging: Vec<(NodeId, u32, Option<P::Msg>)> = Vec::new();
        let mut arena: Vec<(u32, P::Msg)> = Vec::new();
        // Split borrows: scratch is mutated while ports/edge_ports/cut
        // are read, which the compiler allows per-field.
        let ports = &self.ports;
        let edge_ports = &self.edge_ports;
        let cut = &self.cut;
        let bandwidth = self.bandwidth;
        let mut fault_run: Option<FaultRun<'_, P::Msg>> =
            self.fault_plan.as_ref().map(FaultRun::new);
        let sc = &mut self.scratch;
        sc.active.clear();
        sc.next_active.clear();
        let mut round: u64 = 0;
        let mut quiesced = false;
        let mut last_active: u64 = 0;
        let mut last_sent: u64 = 0;
        // Round 0 sweeps everyone even under ActiveSet (the activation
        // contract's base case).
        let mut step_all_next = true;
        loop {
            match budget {
                Budget::Exact(r) if round >= r => {
                    quiesced = true;
                    break;
                }
                Budget::UntilQuiet(max) if round >= max => break,
                _ => {}
            }
            sc.generation += 1;
            let g = sc.generation;
            let step_all = full_sweep || step_all_next;
            let step_count = if step_all { n } else { sc.active.len() };
            for i in 0..step_count {
                let v = if step_all { i } else { sc.active[i] as usize };
                let inbox: &[(u32, P::Msg)] = if sc.inbox_stamp[v] == g {
                    let start = sc.inbox_start[v] as usize;
                    &arena[start..start + sc.inbox_len[v] as usize]
                } else {
                    &[]
                };
                let mut woke = false;
                let mut ctx = NodeCtx {
                    node: v,
                    round,
                    ports: &ports[v],
                    inbox,
                    outbox: &mut staging,
                    woke: &mut woke,
                };
                proto.on_round(&mut ctx);
                if woke && !full_sweep && sc.active_stamp[v] != g + 1 {
                    sc.active_stamp[v] = g + 1;
                    sc.next_active.push(v as u32);
                }
            }
            // Commit phase: enforce CONGEST, account bits, and deliver
            // via the counting-sorted arena (through the fault plan's
            // filter when one is attached).
            let sent = match fault_run.as_mut() {
                Some(fr) => commit_round_faulty(
                    sc,
                    &mut stats,
                    fr,
                    &mut staging,
                    &mut arena,
                    ports,
                    edge_ports,
                    cut.as_deref(),
                    bandwidth,
                    full_sweep,
                    round,
                    g,
                    |m| proto.msg_bits(m),
                ),
                None => commit_round(
                    sc,
                    &mut stats,
                    &mut staging,
                    &mut arena,
                    ports,
                    edge_ports,
                    cut.as_deref(),
                    bandwidth,
                    full_sweep,
                    round,
                    g,
                    |m| proto.msg_bits(m),
                ),
            };
            last_active = step_count as u64;
            last_sent = sent;
            round += 1;
            if !full_sweep {
                // Stepping a superset of the active set is always exact
                // (the sweep-agnostic contract), so on traffic-dense
                // rounds skip the sort and sweep everyone — active-set
                // bookkeeping then costs nothing when it cannot win.
                step_all_next = 8 * sc.next_active.len() >= n;
                if !step_all_next {
                    // Ascending node order keeps send order — and
                    // therefore per-destination inbox order — identical
                    // to a full sweep.
                    sc.next_active.sort_unstable();
                    std::mem::swap(&mut sc.active, &mut sc.next_active);
                }
                sc.next_active.clear();
            }
            if matches!(budget, Budget::UntilQuiet(_)) && sent == 0 && proto.idle() {
                quiesced = true;
                break;
            }
        }
        stats.rounds = round;
        // Invalidate the final round's stamps so the next phase on this
        // network cannot observe stale inboxes or activations.
        sc.generation += 1;
        DriveOutcome {
            stats,
            quiesced,
            last_active,
            last_sent,
            faults: fault_run.map(|fr| fr.stats).unwrap_or_default(),
        }
    }

    /// The sharded-parallel twin of [`Network::drive`].
    ///
    /// Each round is dispatched adaptively: rounds whose work (nodes
    /// stepped + messages delivered) falls below the floor run the
    /// sequential step/commit on the caller thread, and contested
    /// rounds are timed so an EWMA cost model can route them to the
    /// predicted-cheaper path. The parallel path is the three-phase
    /// pipeline described in the module docs: workers step
    /// degree-balanced shards and derive per-message bookkeeping
    /// shard-locally (phase 1), the main thread merges histograms in
    /// ascending shard order and prefix-scans the arena layout
    /// (phase 2), and workers gather disjoint inbox ranges (phase 3) —
    /// bit-identical to the sequential engine throughout.
    ///
    /// With a fault plan attached, parallel rounds still step shards on
    /// workers but skip the fused derivation pass; the fault-aware
    /// commit then runs on the main thread over the ascending-shard
    /// concatenation of the shard stagings (the exact sequential send
    /// order), so fault decisions and delivery stay bit-identical by
    /// construction (see [`crate::faults`]).
    fn drive_par<P: ShardedProtocol>(&mut self, proto: &mut P, budget: Budget) -> DriveOutcome {
        let n = self.graph.node_count();
        if self.pool.threads() <= 1 || n == 0 {
            return self.drive(proto, budget);
        }
        // Shard geometry is fixed for the whole drive.
        let bounds: Vec<(usize, usize)> = match &self.shard_bounds {
            Some(splits) => {
                let mut b = Vec::with_capacity(splits.len() + 1);
                let mut lo = 0;
                for &s in splits {
                    debug_assert!(lo < s && s < n, "validated by set_shard_bounds");
                    b.push((lo, s));
                    lo = s;
                }
                b.push((lo, n));
                b
            }
            None => shardpool::weighted_chunks(&self.deg_prefix, self.pool.threads()),
        };
        let shards = bounds.len();
        self.scratch.ensure_shards(shards, n);
        let full_sweep = self.force_full_sweep
            || <P as ShardedProtocol>::scheduling(proto) == Scheduling::FullSweep;
        let mut stats = RunStats::default();
        let mut staging: Vec<(NodeId, u32, Option<P::Msg>)> = Vec::new();
        let mut arena: Vec<(u32, P::Msg)> = Vec::new();
        // Shard-local generic buffers, reused across rounds.
        let mut shard_staging: Vec<Vec<(NodeId, u32, Option<P::Msg>)>> =
            (0..shards).map(|_| Vec::new()).collect();
        let mut gather_bufs: Vec<Vec<(u32, P::Msg)>> = (0..shards).map(|_| Vec::new()).collect();
        let ports = &self.ports;
        let edge_ports = &self.edge_ports;
        let cut = self.cut.as_deref();
        let bandwidth = self.bandwidth;
        let pool = &self.pool;
        let node_threshold = self.par_node_threshold;
        let msg_threshold = self.par_msg_threshold;
        let model = &mut self.dispatch;
        let mut dstats = DispatchStats::default();
        let mut fault_run: Option<FaultRun<'_, P::Msg>> =
            self.fault_plan.as_ref().map(FaultRun::new);
        let faulty = fault_run.is_some();
        let sc = &mut self.scratch;
        sc.active.clear();
        sc.next_active.clear();
        let mut round: u64 = 0;
        let mut quiesced = false;
        let mut step_all_next = true;
        let mut last_active: u64 = 0;
        let mut last_sent: u64 = 0;
        loop {
            match budget {
                Budget::Exact(r) if round >= r => {
                    quiesced = true;
                    break;
                }
                Budget::UntilQuiet(max) if round >= max => break,
                _ => {}
            }
            sc.generation += 1;
            let g = sc.generation;
            let step_all = full_sweep || step_all_next;
            let step_count = if step_all { n } else { sc.active.len() };
            let (shared, nodes) = proto.split();
            assert_eq!(
                nodes.len(),
                n,
                "ShardedProtocol::split must expose exactly one state per node"
            );
            // --- Adaptive dispatch: floor, then cost model ---
            let work = step_count as u64 + last_sent;
            let (go_par, measure) = if node_threshold == 0 {
                // Test mode: every round fans out, untimed, so runs
                // stay deterministic for the differential suites.
                (true, false)
            } else if work < node_threshold as u64 {
                dstats.floor_rounds += 1;
                (false, false)
            } else {
                model.contested += 1;
                match (model.seq_ns_per_unit, model.par_ns_per_unit) {
                    (None, _) => (false, true),
                    (_, None) => (true, true),
                    (Some(seq), Some(par)) => {
                        let probe = model.contested.is_multiple_of(DISPATCH_PROBE_PERIOD);
                        ((par < seq) != probe, true)
                    }
                }
            };
            let timer = measure.then(std::time::Instant::now);
            let sent = if go_par {
                dstats.par_rounds += 1;
                // ===== Phase 1: step + derive (workers) =====
                let inbox_start = &sc.inbox_start;
                let inbox_len = &sc.inbox_len;
                let inbox_stamp = &sc.inbox_stamp;
                let active: &[u32] = &sc.active;
                let arena_r: &[(u32, P::Msg)] = &arena;
                let mut items: Vec<StepItem<'_, P::Msg, P::Node>> = Vec::with_capacity(shards);
                let mut rest = nodes;
                let mut cursor = 0usize;
                let mut staging_iter = shard_staging.iter_mut();
                let mut scratch_iter = sc.shard_scratch.iter_mut();
                for &(lo, hi) in &bounds {
                    let (chunk, tail) = rest.split_at_mut(hi - lo);
                    rest = tail;
                    let act = if step_all {
                        &active[0..0]
                    } else {
                        let start = cursor;
                        while cursor < active.len() && (active[cursor] as usize) < hi {
                            cursor += 1;
                        }
                        &active[start..cursor]
                    };
                    items.push(StepItem {
                        lo,
                        chunk,
                        active: act,
                        staging: staging_iter.next().expect("one staging buffer per shard"),
                        scratch: scratch_iter.next().expect("one scratch per shard"),
                    });
                }
                pool.run(&mut items, |_, it| {
                    it.staging.clear();
                    let scr = &mut *it.scratch;
                    scr.clear_round();
                    let count = if step_all {
                        it.chunk.len()
                    } else {
                        it.active.len()
                    };
                    for i in 0..count {
                        let v = if step_all {
                            it.lo + i
                        } else {
                            it.active[i] as usize
                        };
                        let inbox: &[(u32, P::Msg)] = if inbox_stamp[v] == g {
                            let start = inbox_start[v] as usize;
                            &arena_r[start..start + inbox_len[v] as usize]
                        } else {
                            &[]
                        };
                        let mut woke = false;
                        let mut ctx = NodeCtx {
                            node: v,
                            round,
                            ports: &ports[v],
                            inbox,
                            outbox: &mut *it.staging,
                            woke: &mut woke,
                        };
                        P::step_node(shared, &mut it.chunk[v - it.lo], &mut ctx);
                        if woke && !full_sweep {
                            scr.woke.push(v as u32);
                        }
                    }
                    if faulty {
                        // Under a fault plan the main thread commits the
                        // concatenated stagings itself (fate evaluation
                        // interleaves with every per-message check), so
                        // the fused derivation pass would be wasted — and
                        // wrong about drops.
                        return;
                    }
                    // Derivation pass: all per-message bookkeeping that
                    // needs no cross-shard state — CONGEST checks, bit
                    // accounting, destination histogram, and the
                    // shard-local stable counting sort.
                    let mut prev_sender = usize::MAX;
                    for &(sender, port_idx, ref msg) in it.staging.iter() {
                        let port = ports[sender][port_idx as usize];
                        let bits =
                            P::msg_bits(shared, msg.as_ref().expect("staged message present"));
                        assert!(
                            bits <= bandwidth,
                            "CONGEST violation: {bits}-bit message exceeds bandwidth \
                             {bandwidth} (sender {sender})",
                        );
                        scr.messages += 1;
                        scr.bits += bits;
                        scr.max_bits = scr.max_bits.max(bits);
                        if let Some(cut) = cut {
                            let a = cut[sender];
                            let b = cut[port.peer];
                            if a != b && a != Side::Neutral && b != Side::Neutral {
                                scr.cut_bits += bits;
                            }
                        }
                        // Occupancy: a link direction is owned by one
                        // (sender, port) pair and a sender's sends are
                        // consecutive, so a repeated port inside one
                        // sender block is exactly a duplicate direction.
                        if sender != prev_sender {
                            prev_sender = sender;
                            scr.port_block += 1;
                        }
                        let p = port_idx as usize;
                        if p >= scr.port_seen.len() {
                            scr.port_seen.resize(p + 1, 0);
                        }
                        assert_ne!(
                            scr.port_seen[p],
                            scr.port_block,
                            "CONGEST violation: two messages on link {} direction {} in \
                             round {} (sender {})",
                            port.link,
                            usize::from(!port.outgoing),
                            round,
                            sender
                        );
                        scr.port_seen[p] = scr.port_block;
                        let dest = port.peer;
                        scr.dests.push(dest as u32);
                        scr.recv_ports.push(if port.outgoing {
                            edge_ports[port.link].1
                        } else {
                            edge_ports[port.link].0
                        });
                        if scr.count_stamp[dest] != g {
                            scr.count_stamp[dest] = g;
                            scr.local_count[dest] = 0;
                            scr.touched.push(dest as u32);
                        }
                        scr.local_count[dest] += 1;
                    }
                    // Shard-local stable counting sort by destination;
                    // afterwards `local_start[d]` is the *end* of d's
                    // run in `order`.
                    let mut offset: u32 = 0;
                    for &d in &scr.touched {
                        let d = d as usize;
                        scr.local_start[d] = offset;
                        offset += scr.local_count[d];
                    }
                    scr.order.clear();
                    scr.order.resize(scr.dests.len(), 0);
                    for (i, &d) in scr.dests.iter().enumerate() {
                        let d = d as usize;
                        let slot = scr.local_start[d] as usize;
                        scr.local_start[d] += 1;
                        scr.order[slot] = i as u32;
                    }
                });
                drop(items);
                // ===== Phase 2: merge + scan (main thread) =====
                // Wake activations first, as in the sequential step
                // loop; `next_active` ordering is immaterial (it is
                // sorted or discarded below).
                if !full_sweep {
                    for scr in &sc.shard_scratch[..shards] {
                        for &w in &scr.woke {
                            let w = w as usize;
                            if sc.active_stamp[w] != g + 1 {
                                sc.active_stamp[w] = g + 1;
                                sc.next_active.push(w as u32);
                            }
                        }
                    }
                }
                if let Some(fr) = fault_run.as_mut() {
                    // Fault path: concatenate the shard stagings in
                    // ascending shard order — the exact sequential send
                    // order — and run the fault-aware commit on this
                    // thread, where fate evaluation, the delay queue,
                    // and all accounting interleave per message.
                    for buf in shard_staging.iter_mut() {
                        staging.append(buf);
                    }
                    commit_round_faulty(
                        sc,
                        &mut stats,
                        fr,
                        &mut staging,
                        &mut arena,
                        ports,
                        edge_ports,
                        cut,
                        bandwidth,
                        full_sweep,
                        round,
                        g,
                        |m| P::msg_bits(shared, m),
                    )
                } else {
                    merge_scan_gather::<P::Msg>(
                        sc,
                        &mut stats,
                        &mut shard_staging,
                        &mut gather_bufs,
                        &mut arena,
                        pool,
                        shards,
                        msg_threshold,
                        full_sweep,
                        g,
                    )
                }
            } else {
                if measure {
                    dstats.seq_rounds += 1;
                }
                // --- Sequential round on the caller thread ---
                for i in 0..step_count {
                    let v = if step_all { i } else { sc.active[i] as usize };
                    let inbox: &[(u32, P::Msg)] = if sc.inbox_stamp[v] == g {
                        let start = sc.inbox_start[v] as usize;
                        &arena[start..start + sc.inbox_len[v] as usize]
                    } else {
                        &[]
                    };
                    let mut woke = false;
                    let mut ctx = NodeCtx {
                        node: v,
                        round,
                        ports: &ports[v],
                        inbox,
                        outbox: &mut staging,
                        woke: &mut woke,
                    };
                    P::step_node(shared, &mut nodes[v], &mut ctx);
                    if woke && !full_sweep && sc.active_stamp[v] != g + 1 {
                        sc.active_stamp[v] = g + 1;
                        sc.next_active.push(v as u32);
                    }
                }
                match fault_run.as_mut() {
                    Some(fr) => commit_round_faulty(
                        sc,
                        &mut stats,
                        fr,
                        &mut staging,
                        &mut arena,
                        ports,
                        edge_ports,
                        cut,
                        bandwidth,
                        full_sweep,
                        round,
                        g,
                        |m| P::msg_bits(shared, m),
                    ),
                    None => commit_round(
                        sc,
                        &mut stats,
                        &mut staging,
                        &mut arena,
                        ports,
                        edge_ports,
                        cut,
                        bandwidth,
                        full_sweep,
                        round,
                        g,
                        |m| P::msg_bits(shared, m),
                    ),
                }
            };
            if let Some(t0) = timer {
                model.observe(go_par, t0.elapsed().as_nanos() as f64, work);
            }
            last_active = step_count as u64;
            last_sent = sent;
            round += 1;
            if !full_sweep {
                step_all_next = 8 * sc.next_active.len() >= n;
                if !step_all_next {
                    sc.next_active.sort_unstable();
                    std::mem::swap(&mut sc.active, &mut sc.next_active);
                }
                sc.next_active.clear();
            }
            if matches!(budget, Budget::UntilQuiet(_))
                && sent == 0
                && <P as ShardedProtocol>::idle(proto)
            {
                quiesced = true;
                break;
            }
        }
        stats.rounds = round;
        sc.generation += 1;
        dstats.ewma_seq_ns_per_unit = model.seq_ns_per_unit.unwrap_or(0.0);
        dstats.ewma_par_ns_per_unit = model.par_ns_per_unit.unwrap_or(0.0);
        self.metrics.record_dispatch(dstats);
        DriveOutcome {
            stats,
            quiesced,
            last_active,
            last_sent,
            faults: fault_run.map(|fr| fr.stats).unwrap_or_default(),
        }
    }
}

impl fmt::Debug for Network<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.graph.node_count())
            .field("links", &self.graph.edge_count())
            .field("bandwidth_bits", &self.bandwidth)
            .finish()
    }
}

#[derive(Clone, Copy)]
enum Budget {
    Exact(u64),
    UntilQuiet(u64),
}

/// Everything one engine drive produced: the public [`RunStats`], the
/// quiescence verdict, a final-round snapshot (for diagnosable budget
/// errors), and the drive's fault telemetry.
struct DriveOutcome {
    stats: RunStats,
    quiesced: bool,
    /// Nodes stepped in the final executed round.
    last_active: u64,
    /// Messages delivered or left in flight by the final round's commit.
    last_sent: u64,
    faults: FaultStats,
}

impl DriveOutcome {
    fn round_limit_error(&self, max_rounds: u64) -> EngineError {
        EngineError::RoundLimitExceeded {
            max_rounds,
            rounds: self.stats.rounds,
            last_active: self.last_active,
            last_messages: self.last_sent,
        }
    }
}

/// Per-drive fault-injection state: the plan, the in-flight delayed
/// messages, and the drive's [`FaultStats`]. Message fates are decided
/// exclusively inside [`commit_round_faulty`], on the main thread, from
/// the deterministic staged-send order.
struct FaultRun<'p, M> {
    plan: &'p FaultPlan,
    /// In-flight delayed messages: `(due round, sender, port index,
    /// message)`, in send order. Fates are sealed at send time, so due
    /// entries are always delivered.
    delayed: Vec<(u64, NodeId, u32, Option<M>)>,
    /// The current round's due messages, drained from `delayed`.
    due: Vec<(NodeId, u32, Option<M>)>,
    /// Per delivered message: payload handle — index into `due` when
    /// below the round's due count, else `due_count +` staging index.
    payload: Vec<u32>,
    stats: FaultStats,
}

impl<'p, M> FaultRun<'p, M> {
    fn new(plan: &'p FaultPlan) -> FaultRun<'p, M> {
        FaultRun {
            plan,
            delayed: Vec::new(),
            due: Vec::new(),
            payload: Vec::new(),
            stats: FaultStats::default(),
        }
    }
}

/// Default work floor of the adaptive dispatcher: rounds whose work
/// (nodes stepped + messages delivered) falls below this run
/// sequentially without consulting the cost model, so sparse
/// active-set workloads never pay fan-out or timing overhead.
const DEFAULT_PAR_NODE_THRESHOLD: usize = 2048;

/// Default minimum staged messages before the gather phase fans out
/// (clones per slot are much cheaper than protocol steps, so this
/// threshold is higher).
const DEFAULT_PAR_MSG_THRESHOLD: usize = 8192;

/// Every `DISPATCH_PROBE_PERIOD`-th contested round runs the
/// predicted-*slower* path so its cost estimate keeps tracking phase
/// changes in the workload.
const DISPATCH_PROBE_PERIOD: u64 = 32;

/// EWMA smoothing factor for the dispatch cost estimates.
const EWMA_ALPHA: f64 = 0.2;

/// The adaptive dispatcher's cost model: EWMA nanoseconds per unit of
/// work (nodes stepped + messages delivered) for each execution path,
/// learned from timed contested rounds and persisted on the network
/// across drives. Routing decisions never affect results — both paths
/// are bit-identical — only wall-clock.
#[derive(Clone, Copy, Debug, Default)]
struct DispatchModel {
    seq_ns_per_unit: Option<f64>,
    par_ns_per_unit: Option<f64>,
    /// Contested rounds seen so far (drives the probing cadence).
    contested: u64,
}

impl DispatchModel {
    fn observe(&mut self, parallel: bool, elapsed_ns: f64, work: u64) {
        let sample = elapsed_ns / work.max(1) as f64;
        let est = if parallel {
            &mut self.par_ns_per_unit
        } else {
            &mut self.seq_ns_per_unit
        };
        *est = Some(match *est {
            None => sample,
            Some(e) => EWMA_ALPHA * sample + (1.0 - EWMA_ALPHA) * e,
        });
    }
}

/// One step-phase work item: a contiguous node shard plus its buffers.
struct StepItem<'a, M, N> {
    /// First node id of the shard.
    lo: usize,
    /// The shard's per-node protocol state (`nodes[lo..hi]`).
    chunk: &'a mut [N],
    /// The shard's slice of the sorted active list (empty on sweeps).
    active: &'a [u32],
    /// Sends staged by this shard's nodes, in step order.
    staging: &'a mut Vec<(NodeId, u32, Option<M>)>,
    /// The shard's non-generic worker scratch.
    scratch: &'a mut ShardScratch,
}

/// One gather-phase work item: a contiguous range of the global
/// touched-destination list whose inbox slices this worker fills.
struct GatherItem<'a, M> {
    buf: &'a mut Vec<(u32, M)>,
    tlo: usize,
    thi: usize,
}

/// The sequential commit phase: enforce CONGEST, account bits, count
/// messages per destination, counting-sort, and materialize the arena.
/// Shared by [`Network::drive`] and the below-threshold rounds of
/// [`Network::drive_par`]; the parallel merge path mirrors it
/// pass-for-pass (asserted bit-exact by the differential tests).
#[allow(clippy::too_many_arguments)]
fn commit_round<M>(
    sc: &mut EngineScratch,
    stats: &mut RunStats,
    staging: &mut Vec<(NodeId, u32, Option<M>)>,
    arena: &mut Vec<(u32, M)>,
    ports: &[Vec<Port>],
    edge_ports: &[(u32, u32)],
    cut: Option<&[Side]>,
    bandwidth: u64,
    full_sweep: bool,
    round: u64,
    g: u64,
    bits_of: impl Fn(&M) -> u64,
) -> u64 {
    let sent = staging.len() as u64;
    sc.touched.clear();
    sc.dests.clear();
    sc.recv_ports.clear();
    for &(sender, port_idx, ref msg) in staging.iter() {
        let port = ports[sender][port_idx as usize];
        let dir = 2 * port.link + usize::from(!port.outgoing);
        assert_ne!(
            sc.occupied[dir],
            g,
            "CONGEST violation: two messages on link {} direction {} in round {} \
             (sender {})",
            port.link,
            usize::from(!port.outgoing),
            round,
            sender
        );
        sc.occupied[dir] = g;
        let bits = bits_of(msg.as_ref().expect("staged message present"));
        assert!(
            bits <= bandwidth,
            "CONGEST violation: {bits}-bit message exceeds bandwidth {bandwidth} \
             (sender {sender})",
        );
        stats.messages += 1;
        stats.bits += bits;
        stats.max_message_bits = stats.max_message_bits.max(bits);
        if let Some(cut) = cut {
            let a = cut[sender];
            let b = cut[port.peer];
            if a != b && a != Side::Neutral && b != Side::Neutral {
                stats.cut_bits += bits;
            }
        }
        let dest = port.peer;
        sc.dests.push(dest as u32);
        sc.recv_ports.push(if port.outgoing {
            edge_ports[port.link].1
        } else {
            edge_ports[port.link].0
        });
        if sc.count_stamp[dest] != g {
            sc.count_stamp[dest] = g;
            sc.counts[dest] = 0;
            sc.touched.push(dest as u32);
        }
        sc.counts[dest] += 1;
        // Receiving a message activates the destination.
        if !full_sweep && sc.active_stamp[dest] != g + 1 {
            sc.active_stamp[dest] = g + 1;
            sc.next_active.push(dest as u32);
        }
    }
    finish_order(sc, g);
    arena.clear();
    arena.extend(sc.order.iter().map(|&i| {
        let msg = staging[i as usize]
            .2
            .take()
            .expect("each staged message is delivered exactly once");
        (sc.recv_ports[i as usize], msg)
    }));
    staging.clear();
    sent
}

/// CSR offsets for the next round's inboxes plus the stable
/// counting-sort permutation (arena slot -> staging index). Reads
/// `sc.dests`/`sc.touched`, leaves the result in `sc.order`.
fn finish_order(sc: &mut EngineScratch, g: u64) {
    let mut offset: u32 = 0;
    for &d in &sc.touched {
        let d = d as usize;
        sc.inbox_start[d] = offset;
        sc.inbox_len[d] = sc.counts[d];
        sc.inbox_stamp[d] = g + 1;
        offset += sc.counts[d];
        sc.counts[d] = 0;
    }
    sc.order.clear();
    sc.order.resize(sc.dests.len(), 0);
    for (i, &d) in sc.dests.iter().enumerate() {
        let d = d as usize;
        let slot = (sc.inbox_start[d] + sc.counts[d]) as usize;
        sc.counts[d] += 1;
        sc.order[slot] = i as u32;
    }
}

/// Does a message between `a` and `b` cross the labelled Alice/Bob cut?
#[inline]
fn crosses_cut(cut: Option<&[Side]>, a: NodeId, b: NodeId) -> bool {
    match cut {
        Some(cut) => {
            let (sa, sb) = (cut[a], cut[b]);
            sa != sb && sa != Side::Neutral && sb != Side::Neutral
        }
        None => false,
    }
}

/// Appends one delivered message's destination bookkeeping: histogram,
/// first-touch registration, receiver activation. Shared by the due and
/// fresh legs of [`commit_round_faulty`]; mirrors the corresponding
/// lines of [`commit_round`].
#[inline]
fn deliver_to(
    sc: &mut EngineScratch,
    port: Port,
    edge_ports: &[(u32, u32)],
    full_sweep: bool,
    g: u64,
) {
    let dest = port.peer;
    sc.dests.push(dest as u32);
    sc.recv_ports.push(if port.outgoing {
        edge_ports[port.link].1
    } else {
        edge_ports[port.link].0
    });
    if sc.count_stamp[dest] != g {
        sc.count_stamp[dest] = g;
        sc.counts[dest] = 0;
        sc.touched.push(dest as u32);
    }
    sc.counts[dest] += 1;
    if !full_sweep && sc.active_stamp[dest] != g + 1 {
        sc.active_stamp[dest] = g + 1;
        sc.next_active.push(dest as u32);
    }
}

/// The fault-aware twin of [`commit_round`].
///
/// Every staged send passes the CONGEST occupancy and bandwidth checks
/// first — faults never excuse a protocol bug — and only then does the
/// attached [`FaultPlan`] seal its fate: deliver, drop (endpoint
/// crashed, link down, or bad luck, checked in that order), or delay.
/// Due delayed messages are delivered ahead of the round's fresh sends
/// (they have been on the wire longest; the fixed position keeps inbox
/// order deterministic), bypass the occupancy re-check (the wire, not a
/// sender, holds them), and are charged to [`RunStats`] at actual
/// delivery.
///
/// Returns delivered messages *plus* messages still in flight, so a
/// network with pending delayed traffic never looks quiescent.
#[allow(clippy::too_many_arguments)]
fn commit_round_faulty<M>(
    sc: &mut EngineScratch,
    stats: &mut RunStats,
    fr: &mut FaultRun<'_, M>,
    staging: &mut Vec<(NodeId, u32, Option<M>)>,
    arena: &mut Vec<(u32, M)>,
    ports: &[Vec<Port>],
    edge_ports: &[(u32, u32)],
    cut: Option<&[Side]>,
    bandwidth: u64,
    full_sweep: bool,
    round: u64,
    g: u64,
    bits_of: impl Fn(&M) -> u64,
) -> u64 {
    sc.touched.clear();
    sc.dests.clear();
    sc.recv_ports.clear();
    fr.payload.clear();
    let events_before = fr.stats.total_dropped() + fr.stats.delayed + fr.stats.delivered_late;
    // Pull this round's due delayed messages, preserving send order.
    fr.due.clear();
    {
        let FaultRun { delayed, due, .. } = fr;
        delayed.retain_mut(|(due_round, sender, port_idx, msg)| {
            if *due_round == round {
                due.push((*sender, *port_idx, msg.take()));
                false
            } else {
                true
            }
        });
    }
    let due_count = fr.due.len();
    for (j, &(sender, port_idx, ref msg)) in fr.due.iter().enumerate() {
        let port = ports[sender][port_idx as usize];
        let bits = bits_of(msg.as_ref().expect("delayed message present"));
        stats.messages += 1;
        stats.bits += bits;
        stats.max_message_bits = stats.max_message_bits.max(bits);
        if crosses_cut(cut, sender, port.peer) {
            stats.cut_bits += bits;
        }
        fr.stats.delivered_late += 1;
        deliver_to(sc, port, edge_ports, full_sweep, g);
        fr.payload.push(j as u32);
    }
    for i in 0..staging.len() {
        let (sender, port_idx) = (staging[i].0, staging[i].1);
        let port = ports[sender][port_idx as usize];
        let dir = 2 * port.link + usize::from(!port.outgoing);
        assert_ne!(
            sc.occupied[dir],
            g,
            "CONGEST violation: two messages on link {} direction {} in round {} \
             (sender {})",
            port.link,
            usize::from(!port.outgoing),
            round,
            sender
        );
        sc.occupied[dir] = g;
        let bits = bits_of(staging[i].2.as_ref().expect("staged message present"));
        assert!(
            bits <= bandwidth,
            "CONGEST violation: {bits}-bit message exceeds bandwidth {bandwidth} \
             (sender {sender})",
        );
        // The protocol passed its checks; now the wire decides.
        if fr.plan.node_down(sender, round) || fr.plan.node_down(port.peer, round) {
            fr.stats.dropped_node_down += 1;
            continue;
        }
        if fr.plan.link_down(port.link, round) {
            fr.stats.dropped_link_down += 1;
            continue;
        }
        match fr.plan.fate(round, port.link, port.outgoing) {
            Fate::Drop => {
                fr.stats.dropped_random += 1;
                continue;
            }
            Fate::Delay(extra) => {
                fr.stats.delayed += 1;
                let msg = staging[i].2.take();
                fr.delayed.push((round + extra, sender, port_idx, msg));
                continue;
            }
            Fate::Deliver => {}
        }
        stats.messages += 1;
        stats.bits += bits;
        stats.max_message_bits = stats.max_message_bits.max(bits);
        if crosses_cut(cut, sender, port.peer) {
            stats.cut_bits += bits;
        }
        deliver_to(sc, port, edge_ports, full_sweep, g);
        fr.payload.push((due_count + i) as u32);
    }
    let delivered = fr.payload.len() as u64;
    finish_order(sc, g);
    arena.clear();
    {
        let FaultRun { due, payload, .. } = fr;
        arena.extend(sc.order.iter().map(|&k| {
            let k = k as usize;
            let pi = payload[k] as usize;
            let msg = if pi < due_count {
                due[pi].2.take()
            } else {
                staging[pi - due_count].2.take()
            }
            .expect("each delivered message is materialized exactly once");
            (sc.recv_ports[k], msg)
        }));
    }
    staging.clear();
    let events_after = fr.stats.total_dropped() + fr.stats.delayed + fr.stats.delivered_late;
    if events_after != events_before {
        fr.stats.faulty_rounds += 1;
    }
    delivered + fr.delayed.len() as u64
}

/// Phases 2 and 3 of the parallel pipeline (the fault-free path): merge
/// the shard histograms in ascending shard order — reproducing the
/// sequential first-touch destination order exactly, because the
/// sequential staging is the ascending-shard concatenation of the shard
/// stagings — prefix-scan the arena layout, and gather the inbox
/// slices, fanning out when the round's traffic justifies it. Returns
/// the number of staged messages.
#[allow(clippy::too_many_arguments)]
fn merge_scan_gather<M: Clone + Send + Sync>(
    sc: &mut EngineScratch,
    stats: &mut RunStats,
    shard_staging: &mut [Vec<(NodeId, u32, Option<M>)>],
    gather_bufs: &mut [Vec<(u32, M)>],
    arena: &mut Vec<(u32, M)>,
    pool: &shardpool::Pool,
    shards: usize,
    msg_threshold: usize,
    full_sweep: bool,
    g: u64,
) -> u64 {
    sc.touched.clear();
    let mut sent = 0u64;
    for scr in &sc.shard_scratch[..shards] {
        stats.messages += scr.messages;
        stats.bits += scr.bits;
        stats.max_message_bits = stats.max_message_bits.max(scr.max_bits);
        stats.cut_bits += scr.cut_bits;
        sent += scr.dests.len() as u64;
        for &d in &scr.touched {
            let du = d as usize;
            if sc.count_stamp[du] != g {
                sc.count_stamp[du] = g;
                sc.counts[du] = 0;
                sc.touched.push(d);
                if !full_sweep && sc.active_stamp[du] != g + 1 {
                    sc.active_stamp[du] = g + 1;
                    sc.next_active.push(d);
                }
            }
            sc.counts[du] += scr.local_count[du];
        }
    }
    // Exclusive prefix scan: each touched destination gets its
    // contiguous arena slice, laid out exactly as the sequential
    // counting sort would.
    sc.touched_prefix.clear();
    sc.touched_prefix.push(0);
    let mut offset: u32 = 0;
    for &d in &sc.touched {
        let du = d as usize;
        sc.inbox_start[du] = offset;
        sc.inbox_len[du] = sc.counts[du];
        sc.inbox_stamp[du] = g + 1;
        offset += sc.counts[du];
        sc.touched_prefix.push(offset as u64);
    }
    debug_assert_eq!(offset as u64, sent);
    // ===== Phase 3: gather (workers) =====
    arena.clear();
    if sent >= msg_threshold.max(2) as u64 {
        // Destination ranges balanced by message count; each worker
        // fills its ranges' inbox slices by walking the shard sort
        // orders shard-ascending.
        let ranges = shardpool::weighted_chunks(&sc.touched_prefix, shards);
        let touched: &[u32] = &sc.touched;
        let shard_sc: &[ShardScratch] = &sc.shard_scratch[..shards];
        let shard_msgs: &[Vec<(NodeId, u32, Option<M>)>] = &*shard_staging;
        let mut gitems: Vec<GatherItem<'_, M>> = gather_bufs
            .iter_mut()
            .zip(&ranges)
            .map(|(buf, &(tlo, thi))| GatherItem { buf, tlo, thi })
            .collect();
        pool.run(&mut gitems, |_, it| {
            it.buf.clear();
            for &d in &touched[it.tlo..it.thi] {
                let du = d as usize;
                for (scr, msgs) in shard_sc.iter().zip(shard_msgs) {
                    if scr.count_stamp[du] != g {
                        continue;
                    }
                    let end = scr.local_start[du] as usize;
                    let cnt = scr.local_count[du] as usize;
                    for &i in &scr.order[end - cnt..end] {
                        let i = i as usize;
                        let msg = msgs[i].2.as_ref().expect("staged message present").clone();
                        it.buf.push((scr.recv_ports[i], msg));
                    }
                }
            }
        });
        drop(gitems);
        for buf in gather_bufs.iter_mut() {
            arena.append(buf);
        }
    } else {
        // Low traffic: gather on this thread, moving the messages out
        // of the shard stagings instead of cloning them.
        for &d in &sc.touched {
            let du = d as usize;
            for (scr, msgs) in sc.shard_scratch[..shards]
                .iter()
                .zip(shard_staging.iter_mut())
            {
                if scr.count_stamp[du] != g {
                    continue;
                }
                let end = scr.local_start[du] as usize;
                let cnt = scr.local_count[du] as usize;
                for &i in &scr.order[end - cnt..end] {
                    let i = i as usize;
                    let msg = msgs[i]
                        .2
                        .take()
                        .expect("each staged message is delivered exactly once");
                    arena.push((scr.recv_ports[i], msg));
                }
            }
        }
    }
    for msgs in shard_staging.iter_mut() {
        msgs.clear();
    }
    sent
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::GraphBuilder;

    /// Floods a token from node 0; each node records the round it heard it.
    ///
    /// Message-driven, so it upholds the `ActiveSet` contract with no
    /// explicit wakes.
    struct Flood {
        heard: Vec<Option<u64>>,
        scheduling: Scheduling,
    }

    impl Flood {
        fn new(n: usize) -> Flood {
            Flood {
                heard: vec![None; n],
                scheduling: Scheduling::ActiveSet,
            }
        }
    }

    impl Protocol for Flood {
        type Msg = ();

        fn msg_bits(&self, _: &()) -> u64 {
            1
        }

        fn on_round(&mut self, ctx: &mut NodeCtx<'_, ()>) {
            let v = ctx.node;
            let newly = if ctx.round == 0 && v == 0 {
                self.heard[v] = Some(0);
                true
            } else if self.heard[v].is_none() && !ctx.inbox().is_empty() {
                self.heard[v] = Some(ctx.round);
                true
            } else {
                false
            };
            if newly {
                for p in 0..ctx.ports().len() as u32 {
                    ctx.send(p, ());
                }
            }
        }

        fn scheduling(&self) -> Scheduling {
            self.scheduling
        }
    }

    fn line(n: usize) -> DiGraph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_arc(i, i + 1);
        }
        b.build()
    }

    #[test]
    fn flood_reaches_everyone_in_ecc_rounds() {
        let g = line(6);
        let mut net = Network::new(&g);
        let mut p = Flood::new(6);
        let stats = net.run_until_quiet("flood", &mut p, 100).unwrap();
        for (v, h) in p.heard.iter().enumerate() {
            assert_eq!(*h, Some(v as u64), "node {v}");
        }
        // 5 hops to the far end, +1 round to observe quiescence.
        assert!(stats.rounds <= 7, "rounds = {}", stats.rounds);
        assert_eq!(net.metrics().rounds(), stats.rounds);
    }

    #[test]
    fn flood_crosses_reversed_edges() {
        // Links are bidirectional even though edges are directed.
        let mut b = GraphBuilder::new(3);
        b.add_arc(1, 0);
        b.add_arc(2, 1);
        let g = b.build();
        let mut net = Network::new(&g);
        let mut p = Flood::new(3);
        net.run_until_quiet("flood", &mut p, 100).unwrap();
        assert!(p.heard.iter().all(|h| h.is_some()));
    }

    #[test]
    fn exact_budget_charges_full_rounds() {
        let g = line(4);
        let mut net = Network::new(&g);
        let mut p = Flood::new(4);
        let stats = net.run_rounds("flood", &mut p, 50);
        assert_eq!(stats.rounds, 50);
    }

    #[test]
    fn round_limit_is_an_error() {
        let g = line(10);
        let mut net = Network::new(&g);
        let mut p = Flood::new(10);
        let err = net.run_until_quiet("flood", &mut p, 3);
        assert_eq!(
            err,
            Err(EngineError::RoundLimitExceeded {
                max_rounds: 3,
                rounds: 3,
                // Traffic is dense relative to n, so the engine sweeps
                // all 10 nodes; in round 2 node 2 forwards on both ports.
                last_active: 10,
                last_messages: 2,
            })
        );
        // Node 9 cannot have heard anything within 3 rounds.
        assert!(p.heard[9].is_none());
    }

    #[test]
    fn active_set_matches_full_sweep_exactly() {
        for n in [2usize, 5, 9, 16] {
            let g = line(n);
            let mut active = Network::new(&g);
            let mut pa = Flood::new(n);
            let sa = active.run_until_quiet("flood", &mut pa, 100).unwrap();
            let mut swept = Network::new(&g);
            swept.set_full_sweep(true);
            let mut ps = Flood::new(n);
            let ss = swept.run_until_quiet("flood", &mut ps, 100).unwrap();
            assert_eq!(sa, ss, "stats diverged at n = {n}");
            assert_eq!(pa.heard, ps.heard, "results diverged at n = {n}");
        }
    }

    /// A protocol whose only activity is self-driven: node 0 wakes itself
    /// and sends one message every `period` rounds, with no inbox traffic
    /// to reactivate it.
    struct Metronome {
        period: u64,
        ticks_heard: u64,
    }

    impl Protocol for Metronome {
        type Msg = ();

        fn msg_bits(&self, _: &()) -> u64 {
            1
        }

        fn on_round(&mut self, ctx: &mut NodeCtx<'_, ()>) {
            if ctx.node == 0 {
                if ctx.round.is_multiple_of(self.period) {
                    ctx.send(0, ());
                }
                ctx.wake();
            } else if !ctx.inbox().is_empty() {
                self.ticks_heard += 1;
            }
        }

        fn idle(&self) -> bool {
            true
        }

        fn scheduling(&self) -> Scheduling {
            Scheduling::ActiveSet
        }
    }

    #[test]
    fn wake_keeps_a_quiet_node_scheduled() {
        let g = line(2);
        let mut net = Network::new(&g);
        let mut p = Metronome {
            period: 3,
            ticks_heard: 0,
        };
        let stats = net.run_rounds("metronome", &mut p, 10);
        // Sends at rounds 0, 3, 6, 9; the round-9 send is not observed.
        assert_eq!(stats.messages, 4);
        assert_eq!(p.ticks_heard, 3);
    }

    #[test]
    fn arena_is_reusable_across_phases() {
        // Two protocol runs on one network: generation stamping must not
        // leak the first run's final-round messages into the second.
        let g = line(5);
        let mut net = Network::new(&g);
        let mut p1 = Flood::new(5);
        net.run_until_quiet("first", &mut p1, 100).unwrap();
        let mut p2 = Flood::new(5);
        let stats2 = net.run_until_quiet("second", &mut p2, 100).unwrap();
        assert_eq!(p2.heard, (0..5).map(|v| Some(v as u64)).collect::<Vec<_>>());
        // Same topology, same protocol: both phases cost the same.
        assert_eq!(net.metrics().phase_total("first"), stats2);
    }

    struct DoubleSend;

    impl Protocol for DoubleSend {
        type Msg = ();
        fn msg_bits(&self, _: &()) -> u64 {
            1
        }
        fn on_round(&mut self, ctx: &mut NodeCtx<'_, ()>) {
            if ctx.node == 0 && ctx.round == 0 {
                ctx.send(0, ());
                ctx.send(0, ());
            }
        }
    }

    #[test]
    #[should_panic(expected = "CONGEST violation")]
    fn two_messages_on_one_direction_panic() {
        let g = line(2);
        let mut net = Network::new(&g);
        net.run_rounds("bad", &mut DoubleSend, 2);
    }

    struct FatMessage;

    impl Protocol for FatMessage {
        type Msg = ();
        fn msg_bits(&self, _: &()) -> u64 {
            1 << 20
        }
        fn on_round(&mut self, ctx: &mut NodeCtx<'_, ()>) {
            if ctx.node == 0 && ctx.round == 0 {
                ctx.send(0, ());
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds bandwidth")]
    fn oversized_message_panics() {
        let g = line(2);
        let mut net = Network::new(&g);
        net.run_rounds("fat", &mut FatMessage, 2);
    }

    #[test]
    fn opposite_directions_share_a_link() {
        // Both endpoints may use the same link in the same round.
        struct PingPong;
        impl Protocol for PingPong {
            type Msg = ();
            fn msg_bits(&self, _: &()) -> u64 {
                1
            }
            fn on_round(&mut self, ctx: &mut NodeCtx<'_, ()>) {
                if ctx.round == 0 {
                    ctx.send(0, ());
                }
            }
        }
        let g = line(2);
        let mut net = Network::new(&g);
        let stats = net.run_rounds("pingpong", &mut PingPong, 2);
        assert_eq!(stats.messages, 2);
    }

    #[test]
    fn inbox_order_groups_by_sender_id() {
        // Three spokes send to a hub in one round; the hub's inbox must
        // list them in ascending sender id (the full-sweep send order),
        // regardless of scheduling.
        struct Spokes {
            seen: Vec<u32>,
        }
        impl Protocol for Spokes {
            type Msg = u32;
            fn msg_bits(&self, _: &u32) -> u64 {
                8
            }
            fn on_round(&mut self, ctx: &mut NodeCtx<'_, u32>) {
                if ctx.round == 0 && ctx.node != 0 {
                    ctx.send(0, ctx.node as u32);
                }
                if ctx.node == 0 {
                    for &(_, m) in ctx.inbox() {
                        self.seen.push(m);
                    }
                }
            }
            fn scheduling(&self) -> Scheduling {
                Scheduling::ActiveSet
            }
        }
        let mut b = GraphBuilder::new(4);
        b.add_arc(3, 0);
        b.add_arc(1, 0);
        b.add_arc(2, 0);
        let g = b.build();
        let mut net = Network::new(&g);
        let mut p = Spokes { seen: Vec::new() };
        net.run_rounds("spokes", &mut p, 2);
        assert_eq!(p.seen, vec![1, 2, 3]);
    }

    #[test]
    fn cut_accounting_counts_crossing_bits() {
        let g = line(4);
        let mut net = Network::new(&g);
        net.set_cut(vec![Side::Alice, Side::Alice, Side::Bob, Side::Bob]);
        let mut p = Flood::new(4);
        let stats = net.run_until_quiet("flood", &mut p, 100).unwrap();
        // Only link 1<->2 crosses; flooding sends once in each direction
        // eventually, but node 2 hears before sending back, so exactly the
        // forward message plus node 2's echo cross.
        assert!(stats.cut_bits >= 1);
        assert!(stats.cut_bits <= 2);
    }

    #[test]
    fn word_bits_examples() {
        assert_eq!(word_bits(0), 1);
        assert_eq!(word_bits(1), 1);
        assert_eq!(word_bits(2), 2);
        assert_eq!(word_bits(255), 8);
        assert_eq!(word_bits(256), 9);
    }

    #[test]
    fn inert_fault_plan_changes_nothing() {
        // The fault-aware commit path must be a bit-exact stand-in for
        // the plain one when the plan never fires.
        let g = line(7);
        let mut plain = Network::new(&g);
        let mut pp = Flood::new(7);
        let sp = plain.run_until_quiet("flood", &mut pp, 100).unwrap();
        let mut faulty = Network::new(&g);
        faulty.set_fault_plan(Some(FaultPlan::new(42)));
        let mut pf = Flood::new(7);
        let sf = faulty.run_until_quiet("flood", &mut pf, 100).unwrap();
        assert_eq!(sp, sf);
        assert_eq!(pp.heard, pf.heard);
        assert!(faulty.metrics().faults.is_zero());
        assert_eq!(plain.metrics(), faulty.metrics());
    }

    #[test]
    fn downed_link_severs_the_flood() {
        // Link 2 (between nodes 2 and 3) is down forever: the token
        // reaches nodes 0..=2 only, and the loss is itemized.
        let g = line(6);
        let mut net = Network::new(&g);
        net.set_fault_plan(Some(FaultPlan::new(7).fail_link(2, 0, None)));
        let mut p = Flood::new(6);
        net.run_until_quiet("flood", &mut p, 100).unwrap();
        assert_eq!(p.heard[..3], [Some(0), Some(1), Some(2)]);
        assert_eq!(p.heard[3..], [None, None, None]);
        let fs = net.metrics().faults;
        assert_eq!(fs.dropped_link_down, 1);
        assert_eq!(fs.total_dropped(), 1);
        assert_eq!(fs.faulty_rounds, 1);
    }

    #[test]
    fn crashed_node_is_silent_until_restart() {
        // Node 1 is down for rounds [0, 4): the metronome's sends at
        // rounds 0 and 3 vanish, the round-6 send lands after restart.
        let g = line(2);
        let mut net = Network::new(&g);
        net.set_fault_plan(Some(FaultPlan::new(9).crash_node(1, 0, Some(4))));
        let mut p = Metronome {
            period: 3,
            ticks_heard: 0,
        };
        let stats = net.run_rounds("metronome", &mut p, 10);
        assert_eq!(p.ticks_heard, 1);
        // Rounds 6 and 9 sends are delivered (the round-9 one unobserved).
        assert_eq!(stats.messages, 2);
        let fs = net.metrics().faults;
        assert_eq!(fs.dropped_node_down, 2);
        assert_eq!(fs.faulty_rounds, 2);
    }

    #[test]
    fn delayed_messages_arrive_and_keep_the_network_awake() {
        // Every message is delayed by exactly one round (max_delay = 1).
        // The flood still completes — run_until_quiet must not declare
        // quiescence while traffic is in flight — and every delay is
        // eventually accounted as a late delivery.
        let g = line(5);
        let mut plain = Network::new(&g);
        let mut pp = Flood::new(5);
        let sp = plain.run_until_quiet("flood", &mut pp, 100).unwrap();
        let mut net = Network::new(&g);
        net.set_fault_plan(Some(FaultPlan::new(11).delay_messages(1.0, 1)));
        let mut p = Flood::new(5);
        let stats = net.run_until_quiet("flood", &mut p, 100).unwrap();
        assert_eq!(p.heard.iter().filter(|h| h.is_some()).count(), 5);
        let fs = net.metrics().faults;
        assert!(fs.delayed > 0);
        assert_eq!(fs.delayed, fs.delivered_late);
        assert_eq!(fs.total_dropped(), 0);
        // Same deliveries, one round later each: message count is
        // preserved, rounds stretch.
        assert_eq!(stats.messages, sp.messages);
        assert!(stats.rounds > sp.rounds);
    }

    #[test]
    fn identical_fault_plans_give_identical_metrics() {
        // Seeded fates are a pure function of message identity, so two
        // runs of the same plan agree on Metrics — whose equality
        // includes FaultStats.
        let g = line(8);
        let mk = || {
            FaultPlan::new(1234)
                .fail_link(4, 2, Some(5))
                .drop_messages(0.3)
        };
        let run = |plan: FaultPlan| {
            let mut net = Network::new(&g);
            net.set_fault_plan(Some(plan));
            let mut p = Flood::new(8);
            net.run_rounds("flood", &mut p, 20);
            (p.heard, net.metrics().clone())
        };
        let (h1, m1) = run(mk());
        let (h2, m2) = run(mk());
        assert_eq!(h1, h2);
        assert_eq!(m1, m2);
    }

    #[test]
    #[should_panic(expected = "targets edge 99 but the graph has 2 edges")]
    fn fault_plan_validation_rejects_unknown_links() {
        let g = line(3);
        let mut net = Network::new(&g);
        net.set_fault_plan(Some(FaultPlan::new(1).fail_link(99, 0, None)));
    }
}
