//! Round, message, bit, and cut accounting.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Statistics for one protocol run (one "phase" of an algorithm).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunStats {
    /// Synchronous rounds consumed.
    pub rounds: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Total declared message bits.
    pub bits: u64,
    /// Bits that crossed the labelled Alice/Bob cut (0 when no cut is
    /// configured).
    pub cut_bits: u64,
    /// Largest declared size of any single message, in bits.
    pub max_message_bits: u64,
}

impl RunStats {
    /// Accumulates another run into this one (rounds add up; sizes max).
    pub fn absorb(&mut self, other: &RunStats) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.bits += other.bits;
        self.cut_bits += other.cut_bits;
        self.max_message_bits = self.max_message_bits.max(other.max_message_bits);
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rounds, {} msgs, {} bits",
            self.rounds, self.messages, self.bits
        )
    }
}

/// A named phase in an algorithm's metric log.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Human-readable phase label (e.g. `"hop-bfs"`).
    pub name: String,
    /// Statistics for that phase.
    pub stats: RunStats,
}

/// Telemetry from the engine's adaptive sequential/parallel dispatcher.
///
/// Pure wall-clock bookkeeping: how rounds were routed and what the
/// cost model currently believes. Unlike [`RunStats`], none of this is
/// part of a run's deterministic outcome — two bit-identical runs at
/// different thread counts legitimately dispatch differently — so
/// [`Metrics`] equality deliberately ignores it.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct DispatchStats {
    /// Rounds executed on the parallel three-phase pipeline.
    pub par_rounds: u64,
    /// Contested rounds (at or above the work floor) the cost model
    /// routed to the sequential path.
    pub seq_rounds: u64,
    /// Rounds below the work floor, sequential without consulting the
    /// cost model.
    pub floor_rounds: u64,
    /// Latest EWMA estimate of sequential nanoseconds per unit of work
    /// (0 when never measured).
    pub ewma_seq_ns_per_unit: f64,
    /// Latest EWMA estimate of parallel nanoseconds per unit of work
    /// (0 when never measured).
    pub ewma_par_ns_per_unit: f64,
}

/// Telemetry from an artifact cache consulted while producing a run's
/// answers (see `rpaths_core::cache`).
///
/// Like [`DispatchStats`], this is *not* part of a run's deterministic
/// outcome: a warm cache legitimately answers with zero rounds where a
/// cold one recomputes, and the accounting of the phases that *did* run
/// is what [`Metrics`] equality pins. Cache telemetry is therefore
/// deliberately excluded from equality.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing (the artifact was then recomputed).
    pub misses: u64,
    /// Artifacts inserted (fresh computations and imports).
    pub insertions: u64,
    /// Artifacts evicted to respect the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Accumulates another cache's telemetry into this one.
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
    }

    /// Total lookups (hits plus misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups answered from the cache (`0.0` when no
    /// lookup happened).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// The counter increments since `earlier` (a snapshot taken from the
    /// same monotonically growing stats).
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            insertions: self.insertions - earlier.insertions,
            evictions: self.evictions - earlier.evictions,
        }
    }

    /// `true` when no cache activity was recorded at all.
    pub fn is_zero(&self) -> bool {
        self.lookups() == 0 && self.insertions == 0 && self.evictions == 0
    }
}

/// Telemetry from fault injection (see `congest::faults`).
///
/// Unlike [`DispatchStats`], this *is* part of a run's deterministic
/// outcome: a [`crate::FaultPlan`] decides every message's fate from
/// `(seed, round, link, direction)` alone, so two runs of the same plan
/// at different thread counts must produce bit-identical `FaultStats` —
/// and [`Metrics`] equality deliberately includes it to pin that down.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Messages dropped because their link was down when they were sent.
    pub dropped_link_down: u64,
    /// Messages dropped because their sender or receiver was crashed.
    pub dropped_node_down: u64,
    /// Messages dropped by the plan's per-message drop probability.
    pub dropped_random: u64,
    /// Messages taken off the wire for late delivery.
    pub delayed: u64,
    /// Delayed messages that were eventually delivered (a drive that
    /// ends on an exact round budget may strand the difference
    /// in flight).
    pub delivered_late: u64,
    /// Rounds in which at least one fault event occurred.
    pub faulty_rounds: u64,
}

impl FaultStats {
    /// Accumulates another run's fault telemetry into this one.
    pub fn absorb(&mut self, other: &FaultStats) {
        self.dropped_link_down += other.dropped_link_down;
        self.dropped_node_down += other.dropped_node_down;
        self.dropped_random += other.dropped_random;
        self.delayed += other.delayed;
        self.delivered_late += other.delivered_late;
        self.faulty_rounds += other.faulty_rounds;
    }

    /// Total messages lost to any cause (late deliveries are not
    /// losses).
    pub fn total_dropped(&self) -> u64 {
        self.dropped_link_down + self.dropped_node_down + self.dropped_random
    }

    /// `true` when no fault event was recorded at all.
    pub fn is_zero(&self) -> bool {
        *self == FaultStats::default()
    }
}

/// Cumulative metrics for a [`crate::Network`] across all phases.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Metrics {
    /// Aggregate over all phases.
    pub total: RunStats,
    /// Per-phase breakdown, in execution order.
    pub phases: Vec<PhaseStats>,
    /// Adaptive-dispatch telemetry (excluded from equality; see
    /// [`DispatchStats`]).
    pub dispatch: DispatchStats,
    /// Fault-injection telemetry (included in equality; see
    /// [`FaultStats`]).
    pub faults: FaultStats,
    /// Artifact-cache telemetry (excluded from equality; see
    /// [`CacheStats`]).
    pub cache: CacheStats,
}

/// Equality covers the deterministic accounting only (`total`, `phases`,
/// and `faults`); [`Metrics::dispatch`] is wall-clock telemetry that may
/// differ between bit-identical runs.
impl PartialEq for Metrics {
    fn eq(&self, other: &Metrics) -> bool {
        self.total == other.total && self.phases == other.phases && self.faults == other.faults
    }
}

impl Eq for Metrics {}

impl Metrics {
    /// Records a finished phase.
    pub fn record(&mut self, name: impl Into<String>, stats: RunStats) {
        self.total.absorb(&stats);
        self.phases.push(PhaseStats {
            name: name.into(),
            stats,
        });
    }

    /// Accumulates dispatcher telemetry from one drive: round counters
    /// add up, EWMA estimates are replaced by the latest measured
    /// (non-zero) model state.
    pub fn record_dispatch(&mut self, d: DispatchStats) {
        self.dispatch.par_rounds += d.par_rounds;
        self.dispatch.seq_rounds += d.seq_rounds;
        self.dispatch.floor_rounds += d.floor_rounds;
        if d.ewma_seq_ns_per_unit != 0.0 {
            self.dispatch.ewma_seq_ns_per_unit = d.ewma_seq_ns_per_unit;
        }
        if d.ewma_par_ns_per_unit != 0.0 {
            self.dispatch.ewma_par_ns_per_unit = d.ewma_par_ns_per_unit;
        }
    }

    /// Accumulates fault-injection telemetry from one drive.
    pub fn record_faults(&mut self, f: FaultStats) {
        self.faults.absorb(&f);
    }

    /// Accumulates artifact-cache telemetry from one solve.
    pub fn record_cache(&mut self, c: CacheStats) {
        self.cache.absorb(&c);
    }

    /// Total rounds across all phases.
    pub fn rounds(&self) -> u64 {
        self.total.rounds
    }

    /// Appends every phase of `other` onto this log by draining it,
    /// preserving execution order and leaving `other` empty.
    ///
    /// This is the by-reference way to merge the accounting of two runs
    /// (e.g. a sub-solver's network into an outer solver's metrics):
    /// phase names move instead of being cloned, so merging costs
    /// `O(phases)` pointer moves rather than a deep copy of every name.
    pub fn merge_from(&mut self, other: &mut Metrics) {
        self.total.absorb(&other.total);
        other.total = RunStats::default();
        self.phases.append(&mut other.phases);
        self.record_dispatch(other.dispatch);
        other.dispatch = DispatchStats::default();
        self.faults.absorb(&other.faults);
        other.faults = FaultStats::default();
        self.cache.absorb(&other.cache);
        other.cache = CacheStats::default();
    }

    /// Looks up the accumulated stats of all phases whose name contains
    /// `needle`.
    pub fn phase_total(&self, needle: &str) -> RunStats {
        let mut acc = RunStats::default();
        for p in &self.phases {
            if p.name.contains(needle) {
                acc.absorb(&p.stats);
            }
        }
        acc
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "total: {}", self.total)?;
        for p in &self.phases {
            writeln!(f, "  {:<28} {}", p.name, p.stats)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_adds_and_maxes() {
        let mut a = RunStats {
            rounds: 3,
            messages: 10,
            bits: 100,
            cut_bits: 5,
            max_message_bits: 12,
        };
        let b = RunStats {
            rounds: 2,
            messages: 1,
            bits: 9,
            cut_bits: 0,
            max_message_bits: 30,
        };
        a.absorb(&b);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.messages, 11);
        assert_eq!(a.bits, 109);
        assert_eq!(a.cut_bits, 5);
        assert_eq!(a.max_message_bits, 30);
    }

    #[test]
    fn merge_from_drains_phases_in_order() {
        let mut outer = Metrics::default();
        outer.record(
            "a",
            RunStats {
                rounds: 1,
                messages: 2,
                ..Default::default()
            },
        );
        let mut inner = Metrics::default();
        inner.record(
            "b",
            RunStats {
                rounds: 3,
                max_message_bits: 9,
                ..Default::default()
            },
        );
        inner.record(
            "c",
            RunStats {
                rounds: 4,
                ..Default::default()
            },
        );
        outer.merge_from(&mut inner);
        assert_eq!(outer.rounds(), 8);
        assert_eq!(outer.total.messages, 2);
        assert_eq!(outer.total.max_message_bits, 9);
        assert_eq!(
            outer
                .phases
                .iter()
                .map(|p| p.name.as_str())
                .collect::<Vec<_>>(),
            vec!["a", "b", "c"]
        );
        assert!(inner.phases.is_empty());
        assert_eq!(inner.total, RunStats::default());
    }

    #[test]
    fn cache_stats_rates_and_deltas() {
        let mut c = CacheStats::default();
        assert!(c.is_zero());
        assert_eq!(c.hit_rate(), 0.0);
        c.hits = 3;
        c.misses = 1;
        c.insertions = 1;
        assert_eq!(c.lookups(), 4);
        assert_eq!(c.hit_rate(), 0.75);
        let later = CacheStats {
            hits: 5,
            misses: 2,
            insertions: 2,
            evictions: 1,
        };
        let d = later.delta_since(&c);
        assert_eq!((d.hits, d.misses, d.insertions, d.evictions), (2, 1, 1, 1));
        // Equality ignores cache telemetry, like dispatch telemetry.
        let mut a = Metrics::default();
        let mut b = Metrics::default();
        a.record_cache(later);
        assert_eq!(a, b);
        b.merge_from(&mut a);
        assert_eq!(b.cache.hits, 5);
        assert!(a.cache.is_zero());
    }

    #[test]
    fn metrics_record_and_query() {
        let mut m = Metrics::default();
        m.record(
            "bfs/forward",
            RunStats {
                rounds: 4,
                ..Default::default()
            },
        );
        m.record(
            "bfs/backward",
            RunStats {
                rounds: 6,
                ..Default::default()
            },
        );
        m.record(
            "broadcast",
            RunStats {
                rounds: 10,
                ..Default::default()
            },
        );
        assert_eq!(m.rounds(), 20);
        assert_eq!(m.phase_total("bfs").rounds, 10);
        assert_eq!(m.phase_total("broadcast").rounds, 10);
        assert_eq!(m.phases.len(), 3);
    }
}
