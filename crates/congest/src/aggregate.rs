//! Tree aggregation: combine a per-node value with an associative,
//! commutative operator and deliver the result to every node, in
//! `O(height)` rounds.
//!
//! This is the classic convergecast + downcast pair: leaves report
//! upward, every internal node folds its subtree as reports arrive, the
//! root folds the final value and floods it back down. The paper uses
//! the `Min` instance for 2-SiSP's final aggregation (Definition 2.3)
//! and the reduction of Corollary 6.2.

use graphkit::Dist;

use crate::bfs_tree::BfsTree;
use crate::network::{word_bits, Network, NodeCtx, Protocol, Scheduling};

/// The supported aggregation operators over [`Dist`] values.
///
/// All are associative and commutative with an identity, which is what
/// the convergecast requires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggOp {
    /// Minimum; identity ∞.
    Min,
    /// Maximum (of finite values); identity 0.
    Max,
    /// Saturating sum; identity 0.
    Sum,
}

impl AggOp {
    fn identity(self) -> Dist {
        match self {
            AggOp::Min => Dist::INF,
            AggOp::Max | AggOp::Sum => Dist::ZERO,
        }
    }

    fn fold(self, a: Dist, b: Dist) -> Dist {
        match self {
            AggOp::Min => a.min(b),
            AggOp::Max => a.max(b),
            AggOp::Sum => a + b,
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum AggMsg {
    Up(Dist),
    Down(Dist),
}

struct Aggregate<'t> {
    tree: &'t BfsTree,
    op: AggOp,
    acc: Vec<Dist>,
    waiting: Vec<usize>,
    sent_up: Vec<bool>,
    sent_down: Vec<bool>,
    result: Vec<Option<Dist>>,
}

impl Protocol for Aggregate<'_> {
    type Msg = AggMsg;

    fn msg_bits(&self, m: &AggMsg) -> u64 {
        let d = match m {
            AggMsg::Up(d) | AggMsg::Down(d) => *d,
        };
        2 + word_bits(d.finite().unwrap_or(0))
    }

    fn on_round(&mut self, ctx: &mut NodeCtx<'_, AggMsg>) {
        let v = ctx.node;
        for &(_, msg) in ctx.inbox() {
            match msg {
                AggMsg::Up(d) => {
                    self.acc[v] = self.op.fold(self.acc[v], d);
                    self.waiting[v] -= 1;
                }
                AggMsg::Down(d) => self.result[v] = Some(d),
            }
        }
        if self.waiting[v] == 0 && !self.sent_up[v] {
            self.sent_up[v] = true;
            match self.tree.parent_port[v] {
                Some(pp) => ctx.send(pp, AggMsg::Up(self.acc[v])),
                None => self.result[v] = Some(self.acc[v]),
            }
        }
        if let Some(d) = self.result[v] {
            if !self.sent_down[v] {
                self.sent_down[v] = true;
                let ports = self.tree.child_ports[v].clone();
                for cp in ports {
                    ctx.send(cp, AggMsg::Down(d));
                }
            }
        }
    }

    fn idle(&self) -> bool {
        self.result.iter().all(|r| r.is_some())
    }

    // Leaves fire in round 0 (stepped by the activation base case);
    // every later transition — the last child report arriving, the
    // downcast value arriving — happens in the round a message is
    // delivered.
    fn scheduling(&self) -> Scheduling {
        Scheduling::ActiveSet
    }
}

/// Aggregates `values` with `op` over `tree`; every node learns the
/// result. `O(height)` rounds, charged to `net`.
///
/// # Panics
///
/// Panics if `values.len() != n` or the protocol fails to quiesce within
/// `8·(height + 2)` rounds (a tree inconsistency).
pub fn aggregate(net: &mut Network<'_>, tree: &BfsTree, op: AggOp, values: &[Dist]) -> Dist {
    let n = net.node_count();
    assert_eq!(values.len(), n);
    let waiting: Vec<usize> = (0..n).map(|v| tree.child_ports[v].len()).collect();
    let acc: Vec<Dist> = values.iter().map(|&v| op.fold(op.identity(), v)).collect();
    let mut proto = Aggregate {
        tree,
        op,
        acc,
        waiting,
        sent_up: vec![false; n],
        sent_down: vec![false; n],
        result: vec![None; n],
    };
    net.run_until_quiet("aggregate", &mut proto, 8 * (tree.height + 2))
        .expect("aggregation quiesces in O(height)");
    proto.result[tree.root].expect("root folded the result")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs_tree::build_bfs_tree;
    use graphkit::gen::random_digraph;

    fn setup(n: usize, seed: u64) -> (graphkit::DiGraph, Vec<Dist>) {
        let g = random_digraph(n, 2 * n, seed);
        let values: Vec<Dist> = (0..n).map(|v| Dist::new(((v * 37) % 101) as u64)).collect();
        (g, values)
    }

    #[test]
    fn min_max_sum_match_local_folds() {
        let (g, values) = setup(40, 3);
        for (op, expect) in [
            (AggOp::Min, values.iter().copied().min().unwrap()),
            (AggOp::Max, values.iter().copied().max().unwrap()),
            (AggOp::Sum, values.iter().copied().sum()),
        ] {
            let mut net = Network::new(&g);
            let (tree, _) = build_bfs_tree(&mut net, 0);
            assert_eq!(aggregate(&mut net, &tree, op, &values), expect, "{op:?}");
        }
    }

    #[test]
    fn min_with_infinities() {
        let (g, _) = setup(20, 5);
        let mut values = vec![Dist::INF; 20];
        values[13] = Dist::new(7);
        let mut net = Network::new(&g);
        let (tree, _) = build_bfs_tree(&mut net, 4);
        assert_eq!(
            aggregate(&mut net, &tree, AggOp::Min, &values),
            Dist::new(7)
        );
    }

    #[test]
    fn sum_saturates_at_infinity() {
        let (g, _) = setup(10, 7);
        let mut values = vec![Dist::new(1); 10];
        values[3] = Dist::INF;
        let mut net = Network::new(&g);
        let (tree, _) = build_bfs_tree(&mut net, 0);
        assert_eq!(aggregate(&mut net, &tree, AggOp::Sum, &values), Dist::INF);
    }

    #[test]
    fn rounds_bounded_by_tree_height() {
        let (g, values) = setup(80, 9);
        let mut net = Network::new(&g);
        let (tree, _) = build_bfs_tree(&mut net, 0);
        let before = net.metrics().rounds();
        let _ = aggregate(&mut net, &tree, AggOp::Min, &values);
        let used = net.metrics().rounds() - before;
        assert!(
            used <= 2 * tree.height + 6,
            "used {used} rounds for height {}",
            tree.height
        );
    }

    #[test]
    fn single_node_tree() {
        let g = graphkit::GraphBuilder::new(1).build();
        let mut net = Network::new(&g);
        let (tree, _) = build_bfs_tree(&mut net, 0);
        assert_eq!(
            aggregate(&mut net, &tree, AggOp::Max, &[Dist::new(9)]),
            Dist::new(9)
        );
    }
}
