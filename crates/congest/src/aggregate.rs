//! Tree aggregation: combine a per-node value with an associative,
//! commutative operator and deliver the result to every node, in
//! `O(height)` rounds.
//!
//! This is the classic convergecast + downcast pair: leaves report
//! upward, every internal node folds its subtree as reports arrive, the
//! root folds the final value and floods it back down. The paper uses
//! the `Min` instance for 2-SiSP's final aggregation (Definition 2.3)
//! and the reduction of Corollary 6.2.

use graphkit::Dist;

use crate::bfs_tree::BfsTree;
use crate::network::{word_bits, Network, NodeCtx, Scheduling, ShardedProtocol};

/// The supported aggregation operators over [`Dist`] values.
///
/// All are associative and commutative with an identity, which is what
/// the convergecast requires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggOp {
    /// Minimum; identity ∞.
    Min,
    /// Maximum of the *finite* values; identity 0. Infinite inputs are
    /// ignored rather than absorbing the aggregate, so the result of
    /// all-∞ inputs is the identity 0.
    Max,
    /// Saturating sum; identity 0.
    Sum,
}

impl AggOp {
    fn identity(self) -> Dist {
        match self {
            AggOp::Min => Dist::INF,
            AggOp::Max | AggOp::Sum => Dist::ZERO,
        }
    }

    fn fold(self, a: Dist, b: Dist) -> Dist {
        match self {
            AggOp::Min => a.min(b),
            // "Maximum of finite values": an ∞ operand is the absence of
            // a value, not a value larger than every other — folding it
            // in must not turn the whole aggregate infinite.
            AggOp::Max => {
                if !b.is_finite() {
                    a
                } else if !a.is_finite() {
                    b
                } else {
                    a.max(b)
                }
            }
            AggOp::Sum => a + b,
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum AggMsg {
    Up(Dist),
    Down(Dist),
}

/// Read-only state every node consults: the tree and the operator.
struct AggShared<'t> {
    tree: &'t BfsTree,
    op: AggOp,
}

/// One node's convergecast/downcast state (sharded: the engine steps
/// disjoint slices of these from worker threads).
struct AggNode {
    acc: Dist,
    waiting: usize,
    sent_up: bool,
    sent_down: bool,
    result: Option<Dist>,
}

struct Aggregate<'t> {
    shared: AggShared<'t>,
    nodes: Vec<AggNode>,
}

impl<'t> ShardedProtocol for Aggregate<'t> {
    type Msg = AggMsg;
    type Node = AggNode;
    type Shared = AggShared<'t>;

    fn msg_bits(_: &Self::Shared, m: &AggMsg) -> u64 {
        let d = match m {
            AggMsg::Up(d) | AggMsg::Down(d) => *d,
        };
        2 + word_bits(d.finite().unwrap_or(0))
    }

    fn shared(&self) -> &Self::Shared {
        &self.shared
    }

    fn split(&mut self) -> (&Self::Shared, &mut [Self::Node]) {
        (&self.shared, &mut self.nodes)
    }

    fn step_node(shared: &Self::Shared, node: &mut AggNode, ctx: &mut NodeCtx<'_, AggMsg>) {
        let v = ctx.node;
        for &(_, msg) in ctx.inbox() {
            match msg {
                AggMsg::Up(d) => {
                    node.acc = shared.op.fold(node.acc, d);
                    node.waiting -= 1;
                }
                AggMsg::Down(d) => node.result = Some(d),
            }
        }
        if node.waiting == 0 && !node.sent_up {
            node.sent_up = true;
            match shared.tree.parent_port[v] {
                Some(pp) => ctx.send(pp, AggMsg::Up(node.acc)),
                None => node.result = Some(node.acc),
            }
        }
        if let Some(d) = node.result {
            if !node.sent_down {
                node.sent_down = true;
                for &cp in &shared.tree.child_ports[v] {
                    ctx.send(cp, AggMsg::Down(d));
                }
            }
        }
    }

    fn idle(&self) -> bool {
        self.nodes.iter().all(|nd| nd.result.is_some())
    }

    // Leaves fire in round 0 (stepped by the activation base case);
    // every later transition — the last child report arriving, the
    // downcast value arriving — happens in the round a message is
    // delivered.
    fn scheduling(&self) -> Scheduling {
        Scheduling::ActiveSet
    }
}

/// Aggregates `values` with `op` over `tree`; every node learns the
/// result. `O(height)` rounds, charged to `net`.
///
/// Runs on the sharded-parallel engine path; the result and stats are
/// bit-identical at every thread count.
///
/// # Panics
///
/// Panics if `values.len() != n` or the protocol fails to quiesce within
/// `8·(height + 2)` rounds (a tree inconsistency — [`BfsTree`] values
/// from a successful [`crate::bfs_tree::build_bfs_tree`] always span).
pub fn aggregate(net: &mut Network<'_>, tree: &BfsTree, op: AggOp, values: &[Dist]) -> Dist {
    let n = net.node_count();
    assert_eq!(values.len(), n);
    let mut proto = Aggregate {
        shared: AggShared { tree, op },
        nodes: (0..n)
            .map(|v| AggNode {
                acc: op.fold(op.identity(), values[v]),
                waiting: tree.child_ports[v].len(),
                sent_up: false,
                sent_down: false,
                result: None,
            })
            .collect(),
    };
    net.run_until_quiet_par("aggregate", &mut proto, 8 * (tree.height + 2))
        .expect("aggregation quiesces in O(height)");
    proto.nodes[tree.root]
        .result
        .expect("root folded the result")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs_tree::build_bfs_tree;
    use graphkit::gen::random_digraph;

    fn setup(n: usize, seed: u64) -> (graphkit::DiGraph, Vec<Dist>) {
        let g = random_digraph(n, 2 * n, seed);
        let values: Vec<Dist> = (0..n).map(|v| Dist::new(((v * 37) % 101) as u64)).collect();
        (g, values)
    }

    #[test]
    fn min_max_sum_match_local_folds() {
        let (g, values) = setup(40, 3);
        for (op, expect) in [
            (AggOp::Min, values.iter().copied().min().unwrap()),
            (AggOp::Max, values.iter().copied().max().unwrap()),
            (AggOp::Sum, values.iter().copied().sum()),
        ] {
            let mut net = Network::new(&g);
            let (tree, _) = build_bfs_tree(&mut net, 0).unwrap();
            assert_eq!(aggregate(&mut net, &tree, op, &values), expect, "{op:?}");
        }
    }

    #[test]
    fn min_with_infinities() {
        let (g, _) = setup(20, 5);
        let mut values = vec![Dist::INF; 20];
        values[13] = Dist::new(7);
        let mut net = Network::new(&g);
        let (tree, _) = build_bfs_tree(&mut net, 4).unwrap();
        assert_eq!(
            aggregate(&mut net, &tree, AggOp::Min, &values),
            Dist::new(7)
        );
    }

    #[test]
    fn max_ignores_infinite_inputs() {
        // Regression: a single ∞ input used to absorb the whole Max
        // aggregate; "maximum of finite values" must skip it.
        let (g, _) = setup(20, 6);
        let mut values: Vec<Dist> = (0..20).map(|v| Dist::new(v as u64)).collect();
        values[4] = Dist::INF;
        values[17] = Dist::INF;
        let mut net = Network::new(&g);
        let (tree, _) = build_bfs_tree(&mut net, 2).unwrap();
        assert_eq!(
            aggregate(&mut net, &tree, AggOp::Max, &values),
            Dist::new(19)
        );
    }

    #[test]
    fn max_of_all_infinite_is_the_identity() {
        let (g, _) = setup(12, 8);
        let values = vec![Dist::INF; 12];
        let mut net = Network::new(&g);
        let (tree, _) = build_bfs_tree(&mut net, 0).unwrap();
        assert_eq!(aggregate(&mut net, &tree, AggOp::Max, &values), Dist::ZERO);
    }

    #[test]
    fn sum_saturates_at_infinity() {
        let (g, _) = setup(10, 7);
        let mut values = vec![Dist::new(1); 10];
        values[3] = Dist::INF;
        let mut net = Network::new(&g);
        let (tree, _) = build_bfs_tree(&mut net, 0).unwrap();
        assert_eq!(aggregate(&mut net, &tree, AggOp::Sum, &values), Dist::INF);
    }

    #[test]
    fn rounds_bounded_by_tree_height() {
        let (g, values) = setup(80, 9);
        let mut net = Network::new(&g);
        let (tree, _) = build_bfs_tree(&mut net, 0).unwrap();
        let before = net.metrics().rounds();
        let _ = aggregate(&mut net, &tree, AggOp::Min, &values);
        let used = net.metrics().rounds() - before;
        assert!(
            used <= 2 * tree.height + 6,
            "used {used} rounds for height {}",
            tree.height
        );
    }

    #[test]
    fn single_node_tree() {
        let g = graphkit::GraphBuilder::new(1).build();
        let mut net = Network::new(&g);
        let (tree, _) = build_bfs_tree(&mut net, 0).unwrap();
        assert_eq!(
            aggregate(&mut net, &tree, AggOp::Max, &[Dist::new(9)]),
            Dist::new(9)
        );
    }
}
