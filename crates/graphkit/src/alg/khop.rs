//! Hop-bounded weighted distances (centralized Bellman–Ford layers).
//!
//! The paper's Section 7 reasons about "`h`-hop distances": the cheapest
//! walk using at most `h` edges. This module provides the exact
//! centralized value, used to validate the distributed rounding-based
//! approximations.

use crate::{DiGraph, Dist, EdgeId, NodeId};

/// Cheapest-walk distances from `source` using at most `max_hops` edges.
///
/// Runs `max_hops` rounds of Bellman–Ford relaxation, so it is exact (not
/// an approximation) but costs `O(max_hops · m)` time.
pub fn hop_bounded_dists(
    graph: &DiGraph,
    source: NodeId,
    max_hops: usize,
    filter: impl Fn(EdgeId) -> bool,
) -> Vec<Dist> {
    let n = graph.node_count();
    let mut dist = vec![Dist::INF; n];
    dist[source] = Dist::ZERO;
    relax_rounds(graph, &mut dist, max_hops, filter, false);
    dist
}

/// Cheapest-walk distances *to* `sink` using at most `max_hops` edges.
pub fn hop_bounded_dists_reverse(
    graph: &DiGraph,
    sink: NodeId,
    max_hops: usize,
    filter: impl Fn(EdgeId) -> bool,
) -> Vec<Dist> {
    let n = graph.node_count();
    let mut dist = vec![Dist::INF; n];
    dist[sink] = Dist::ZERO;
    relax_rounds(graph, &mut dist, max_hops, filter, true);
    dist
}

fn relax_rounds(
    graph: &DiGraph,
    dist: &mut [Dist],
    rounds: usize,
    filter: impl Fn(EdgeId) -> bool,
    reverse: bool,
) {
    for _ in 0..rounds {
        let snapshot = dist.to_vec();
        let mut changed = false;
        for (id, e) in graph.edges() {
            if !filter(id) {
                continue;
            }
            let (src, dst) = if reverse {
                (e.to, e.from)
            } else {
                (e.from, e.to)
            };
            let cand = snapshot[src] + e.weight;
            if cand < dist[dst] {
                dist[dst] = cand;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::dijkstra;
    use crate::GraphBuilder;

    fn chain_with_shortcut() -> DiGraph {
        // 0 -1- 1 -1- 2 -1- 3 plus a direct 0 -> 3 of weight 10
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 3, 1);
        b.add_edge(0, 3, 10);
        b.build()
    }

    #[test]
    fn hop_bound_forces_expensive_route() {
        let g = chain_with_shortcut();
        let d1 = hop_bounded_dists(&g, 0, 1, |_| true);
        assert_eq!(d1[3], Dist::new(10)); // only the direct edge fits in 1 hop
        let d3 = hop_bounded_dists(&g, 0, 3, |_| true);
        assert_eq!(d3[3], Dist::new(3));
    }

    #[test]
    fn large_bound_matches_dijkstra() {
        let g = chain_with_shortcut();
        let d = hop_bounded_dists(&g, 0, g.node_count(), |_| true);
        assert_eq!(d, dijkstra(&g, 0, |_| true));
    }

    #[test]
    fn reverse_variant_matches_reversed_graph() {
        let g = chain_with_shortcut();
        let rev = g.reversed();
        assert_eq!(
            hop_bounded_dists_reverse(&g, 3, 2, |_| true),
            hop_bounded_dists(&rev, 3, 2, |_| true)
        );
    }

    #[test]
    fn zero_hops_reaches_only_source() {
        let g = chain_with_shortcut();
        let d = hop_bounded_dists(&g, 0, 0, |_| true);
        assert_eq!(d[0], Dist::ZERO);
        assert!(d[1..].iter().all(|&x| x == Dist::INF));
    }
}
