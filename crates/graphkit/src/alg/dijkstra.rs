//! Dijkstra's algorithm and shortest-path extraction.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{DiGraph, Dist, EdgeId, NodeId, StPath};

/// Weighted distances from `source`, following edge directions, ignoring
/// edges rejected by `filter`.
///
/// # Examples
///
/// ```
/// use graphkit::{alg::dijkstra, Dist, GraphBuilder};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1, 10);
/// b.add_edge(1, 2, 10);
/// b.add_edge(0, 2, 25);
/// let g = b.build();
/// assert_eq!(dijkstra(&g, 0, |_| true)[2], Dist::new(20));
/// ```
pub fn dijkstra(graph: &DiGraph, source: NodeId, filter: impl Fn(EdgeId) -> bool) -> Vec<Dist> {
    dijkstra_with_parents(graph, source, filter).0
}

/// Weighted distances *to* `sink`, following edges backwards.
pub fn dijkstra_reverse(
    graph: &DiGraph,
    sink: NodeId,
    filter: impl Fn(EdgeId) -> bool,
) -> Vec<Dist> {
    let mut dist = vec![Dist::INF; graph.node_count()];
    let mut heap = BinaryHeap::new();
    dist[sink] = Dist::ZERO;
    heap.push(Reverse((Dist::ZERO, sink)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v] {
            continue;
        }
        for e in graph.in_edges(v) {
            if !filter(e) {
                continue;
            }
            let edge = graph.edge(e);
            let cand = d + edge.weight;
            if cand < dist[edge.from] {
                dist[edge.from] = cand;
                heap.push(Reverse((cand, edge.from)));
            }
        }
    }
    dist
}

fn dijkstra_with_parents(
    graph: &DiGraph,
    source: NodeId,
    filter: impl Fn(EdgeId) -> bool,
) -> (Vec<Dist>, Vec<Option<EdgeId>>) {
    let n = graph.node_count();
    let mut dist = vec![Dist::INF; n];
    let mut parent: Vec<Option<EdgeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[source] = Dist::ZERO;
    heap.push(Reverse((Dist::ZERO, source)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v] {
            continue;
        }
        for e in graph.out_edges(v) {
            if !filter(e) {
                continue;
            }
            let edge = graph.edge(e);
            let cand = d + edge.weight;
            if cand < dist[edge.to] {
                dist[edge.to] = cand;
                parent[edge.to] = Some(e);
                heap.push(Reverse((cand, edge.to)));
            }
        }
    }
    (dist, parent)
}

/// Extracts a shortest `s`-`t` path as a validated [`StPath`], or `None`
/// when `t` is unreachable from `s` — or when `s = t`: the trivial
/// zero-length path has no edges and is not representable as an
/// [`StPath`], so callers with identical endpoints must special-case
/// it (its length is 0 and it survives every edge failure).
///
/// This is how test instances obtain the input path `P`: the problem
/// definition requires `P` to be a shortest path, and building it from
/// Dijkstra parents guarantees that.
pub fn shortest_st_path(graph: &DiGraph, s: NodeId, t: NodeId) -> Option<StPath> {
    if s == t {
        return None;
    }
    let (dist, parent) = dijkstra_with_parents(graph, s, |_| true);
    dist[t].finite()?;
    let mut edges = Vec::new();
    let mut v = t;
    while v != s {
        let e = parent[v].expect("reachable non-source vertex has a parent");
        edges.push(e);
        v = graph.edge(e).from;
    }
    edges.reverse();
    Some(StPath::new(graph, edges).expect("parent chain forms a simple path"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn weighted_diamond() -> DiGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 3, 1);
        b.add_edge(0, 2, 1);
        b.add_edge(2, 3, 5);
        b.build()
    }

    #[test]
    fn picks_cheapest_route() {
        let g = weighted_diamond();
        assert_eq!(dijkstra(&g, 0, |_| true)[3], Dist::new(2));
    }

    #[test]
    fn reverse_matches_forward_on_reversed() {
        let g = weighted_diamond();
        let rev = g.reversed();
        assert_eq!(
            dijkstra_reverse(&g, 3, |_| true),
            dijkstra(&rev, 3, |_| true)
        );
    }

    #[test]
    fn unreachable_is_infinite() {
        let mut b = GraphBuilder::new(3);
        b.add_arc(0, 1);
        let g = b.build();
        let d = dijkstra(&g, 0, |_| true);
        assert_eq!(d[2], Dist::INF);
    }

    #[test]
    fn extracted_path_is_shortest() {
        let g = weighted_diamond();
        let p = shortest_st_path(&g, 0, 3).unwrap();
        assert_eq!(p.nodes(), &[0, 1, 3]);
        assert!(p.validate_shortest(&g).is_ok());
    }

    #[test]
    fn extraction_fails_when_unreachable() {
        let mut b = GraphBuilder::new(2);
        b.add_arc(1, 0);
        let g = b.build();
        assert!(shortest_st_path(&g, 0, 1).is_none());
    }

    #[test]
    fn filter_can_sever_route() {
        let g = weighted_diamond();
        // remove the cheap middle edge 1 (1 -> 3): forced through weight-5 edge
        let d = dijkstra(&g, 0, |e| e != 1);
        assert_eq!(d[3], Dist::new(6));
    }
}
