//! Undirected diameter, the `D` of the paper's round bounds.
//!
//! The CONGEST model's `D` is the diameter of the *underlying undirected*
//! communication graph, regardless of edge directions or weights.

use std::collections::VecDeque;

use crate::{DiGraph, NodeId};

/// One undirected BFS from `v` over the precomputed neighbor CSR,
/// reusing the caller's scratch buffers (generation-stamped visitation,
/// so `dist` is never cleared between sources).
fn ecc_from(
    graph: &DiGraph,
    v: NodeId,
    dist: &mut [(u64, usize)],
    queue: &mut VecDeque<NodeId>,
    generation: u64,
) -> Option<usize> {
    let n = graph.node_count();
    queue.clear();
    dist[v] = (generation, 0);
    queue.push_back(v);
    let mut reached = 1;
    let mut ecc = 0;
    while let Some(u) = queue.pop_front() {
        let du = dist[u].1;
        for w in graph.undirected_neighbors(u) {
            if dist[w].0 != generation {
                dist[w] = (generation, du + 1);
                ecc = ecc.max(du + 1);
                reached += 1;
                queue.push_back(w);
            }
        }
    }
    (reached == n).then_some(ecc)
}

/// Undirected eccentricity of `v`: the largest hop distance from `v` to
/// any vertex reachable over undirected edges.
///
/// Returns `None` when some vertex is unreachable (disconnected
/// communication graph).
pub fn undirected_eccentricity(graph: &DiGraph, v: NodeId) -> Option<usize> {
    let n = graph.node_count();
    let mut dist = vec![(0u64, 0usize); n];
    let mut queue = VecDeque::new();
    ecc_from(graph, v, &mut dist, &mut queue, 1)
}

/// Exact undirected diameter via a BFS from every vertex; `O(n·m)` time
/// and `O(n)` space — the per-source scratch is allocated once and
/// generation-stamped, and neighbor iteration borrows the undirected
/// CSR precomputed at graph build time.
///
/// Returns `None` for a disconnected communication graph. Distributed
/// algorithms in this workspace require a connected communication graph,
/// so generators assert this.
pub fn undirected_diameter(graph: &DiGraph) -> Option<usize> {
    let n = graph.node_count();
    let mut dist = vec![(0u64, 0usize); n];
    let mut queue = VecDeque::with_capacity(n);
    let mut best = 0;
    for v in graph.nodes() {
        best = best.max(ecc_from(graph, v, &mut dist, &mut queue, v as u64 + 1)?);
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn directed_cycle_has_small_undirected_diameter() {
        let n = 8;
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            b.add_arc(i, (i + 1) % n);
        }
        let g = b.build();
        // Directed distance 0 -> 7 is 7, but undirected it is 1 hop.
        assert_eq!(undirected_diameter(&g), Some(4));
    }

    #[test]
    fn path_diameter_is_length() {
        let mut b = GraphBuilder::new(5);
        for i in 0..4 {
            b.add_arc(i, i + 1);
        }
        let g = b.build();
        assert_eq!(undirected_diameter(&g), Some(4));
        assert_eq!(undirected_eccentricity(&g, 2), Some(2));
    }

    #[test]
    fn disconnected_reports_none() {
        let mut b = GraphBuilder::new(3);
        b.add_arc(0, 1);
        let g = b.build();
        assert_eq!(undirected_diameter(&g), None);
        assert_eq!(undirected_eccentricity(&g, 0), None);
    }

    #[test]
    fn single_vertex() {
        let g = GraphBuilder::new(1).build();
        assert_eq!(undirected_diameter(&g), Some(0));
    }
}
