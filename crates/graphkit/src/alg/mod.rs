//! Centralized reference algorithms.
//!
//! These are the ground-truth oracles the distributed algorithms are
//! validated against, plus small utilities (diameter, hop-bounded
//! distances) the generators and benchmark harness need. None of them is
//! part of the paper's contribution; they exist so the reproduction can be
//! *checked*.

mod bfs;
mod decomposed;
mod diameter;
mod dijkstra;
mod khop;
mod replacement;

pub use bfs::{bfs, bfs_hop_bounded, bfs_reverse};
pub use decomposed::decomposed_replacement;
pub use diameter::{undirected_diameter, undirected_eccentricity};
pub use dijkstra::{dijkstra, dijkstra_reverse, shortest_st_path};
pub use khop::{hop_bounded_dists, hop_bounded_dists_reverse};
pub use replacement::{replacement_lengths, second_simple_shortest};
