//! Ground-truth replacement-paths oracle.
//!
//! This is the problem statement executed literally: for each edge `e` of
//! `P`, delete `e` and recompute the `s`-`t` distance. It is the
//! correctness reference for every distributed algorithm in the workspace
//! (Definition 2.1 / 2.3 of the paper).

use crate::alg::dijkstra;
use crate::{DiGraph, Dist, StPath};

/// `|st ⋄ e|` for every edge `e = (v_i, v_{i+1})` of `P`, in path order.
///
/// Entry `i` is the length of the shortest `s`-`t` path in `G \ (v_i,
/// v_{i+1})`, or [`Dist::INF`] when removing that edge disconnects `t`
/// from `s`.
///
/// # Examples
///
/// ```
/// use graphkit::{alg::{replacement_lengths, shortest_st_path}, Dist, GraphBuilder};
///
/// // Triangle: 0 -> 1 -> 2 plus a back-up edge 0 -> 2 of weight 5.
/// let mut b = GraphBuilder::new(3);
/// b.add_arc(0, 1);
/// b.add_arc(1, 2);
/// b.add_edge(0, 2, 5);
/// let g = b.build();
/// let p = shortest_st_path(&g, 0, 2).unwrap();
/// assert_eq!(replacement_lengths(&g, &p), vec![Dist::new(5), Dist::new(5)]);
/// ```
pub fn replacement_lengths(graph: &DiGraph, path: &StPath) -> Vec<Dist> {
    let s = path.source();
    let t = path.target();
    path.edges()
        .iter()
        .map(|&banned| dijkstra(graph, s, |e| e != banned)[t])
        .collect()
}

/// The 2-SiSP value (Definition 2.3): the minimum replacement length over
/// all edges of `P`, i.e. the length of the second simple shortest path.
pub fn second_simple_shortest(graph: &DiGraph, path: &StPath) -> Dist {
    replacement_lengths(graph, path)
        .into_iter()
        .min()
        .unwrap_or(Dist::INF)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::shortest_st_path;
    use crate::GraphBuilder;

    /// Line 0..4 with a parallel "detour lane" 5,6,7 connected at both ends.
    fn line_with_detour() -> (DiGraph, StPath) {
        let mut b = GraphBuilder::new(8);
        for i in 0..4 {
            b.add_arc(i, i + 1);
        }
        // detour: 0 -> 5 -> 6 -> 7 -> 4 (length 4 vs direct 4 hops)
        b.add_arc(0, 5);
        b.add_arc(5, 6);
        b.add_arc(6, 7);
        b.add_arc(7, 4);
        let g = b.build();
        let p = shortest_st_path(&g, 0, 4).unwrap();
        (g, p)
    }

    #[test]
    fn detour_replaces_every_edge() {
        let (g, p) = line_with_detour();
        assert_eq!(p.hops(), 4);
        let r = replacement_lengths(&g, &p);
        assert_eq!(r, vec![Dist::new(4); 4]);
        assert_eq!(second_simple_shortest(&g, &p), Dist::new(4));
    }

    #[test]
    fn missing_detour_gives_infinity() {
        let mut b = GraphBuilder::new(3);
        b.add_arc(0, 1);
        b.add_arc(1, 2);
        let g = b.build();
        let p = shortest_st_path(&g, 0, 2).unwrap();
        let r = replacement_lengths(&g, &p);
        assert_eq!(r, vec![Dist::INF, Dist::INF]);
        assert_eq!(second_simple_shortest(&g, &p), Dist::INF);
    }

    #[test]
    fn parallel_edge_is_a_one_hop_replacement() {
        let mut b = GraphBuilder::new(2);
        b.add_arc(0, 1);
        b.add_edge(0, 1, 3);
        let g = b.build();
        let p = shortest_st_path(&g, 0, 1).unwrap();
        assert_eq!(replacement_lengths(&g, &p), vec![Dist::new(3)]);
    }

    #[test]
    fn partial_detours_differ_per_edge() {
        // 0 -> 1 -> 2 -> 3 with a shortcut 1 -> 3 of weight 3.
        let mut b = GraphBuilder::new(4);
        b.add_arc(0, 1);
        b.add_arc(1, 2);
        b.add_arc(2, 3);
        b.add_edge(1, 3, 3);
        let g = b.build();
        let p = shortest_st_path(&g, 0, 3).unwrap();
        let r = replacement_lengths(&g, &p);
        // Removing (0,1): no alternative at all.
        // Removing (1,2) or (2,3): reroute via the shortcut, total 1 + 3.
        assert_eq!(r, vec![Dist::INF, Dist::new(4), Dist::new(4)]);
        assert_eq!(second_simple_shortest(&g, &p), Dist::new(4));
    }
}
