//! Breadth-first search over directed graphs with an edge filter.

use std::collections::VecDeque;

use crate::{DiGraph, Dist, EdgeId, NodeId};

/// Hop distances from `source` following edge directions.
///
/// Edges for which `filter` returns `false` are ignored, which is how
/// callers express `G \ P` or `G \ e`.
///
/// # Examples
///
/// ```
/// use graphkit::{alg::bfs, Dist, GraphBuilder};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_arc(0, 1);
/// b.add_arc(1, 2);
/// let g = b.build();
/// let d = bfs(&g, 0, |_| true);
/// assert_eq!(d, vec![Dist::ZERO, Dist::new(1), Dist::new(2)]);
/// ```
pub fn bfs(graph: &DiGraph, source: NodeId, filter: impl Fn(EdgeId) -> bool) -> Vec<Dist> {
    bfs_hop_bounded(graph, &[source], usize::MAX, filter)
}

/// Hop distances *to* `sink` following edges backwards.
pub fn bfs_reverse(graph: &DiGraph, sink: NodeId, filter: impl Fn(EdgeId) -> bool) -> Vec<Dist> {
    let mut dist = vec![Dist::INF; graph.node_count()];
    let mut queue = VecDeque::new();
    dist[sink] = Dist::ZERO;
    queue.push_back(sink);
    while let Some(v) = queue.pop_front() {
        let next = dist[v] + 1u64;
        for e in graph.in_edges(v) {
            if !filter(e) {
                continue;
            }
            let u = graph.edge(e).from;
            if next < dist[u] {
                dist[u] = next;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Multi-source hop-bounded BFS: distances from the nearest source using
/// at most `max_hops` edges, following edge directions.
pub fn bfs_hop_bounded(
    graph: &DiGraph,
    sources: &[NodeId],
    max_hops: usize,
    filter: impl Fn(EdgeId) -> bool,
) -> Vec<Dist> {
    let mut dist = vec![Dist::INF; graph.node_count()];
    let mut queue = VecDeque::new();
    for &s in sources {
        if dist[s] != Dist::ZERO {
            dist[s] = Dist::ZERO;
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        let here = dist[v].finite().expect("queued vertices are reachable");
        if here as usize >= max_hops {
            continue;
        }
        let next = dist[v] + 1u64;
        for e in graph.out_edges(v) {
            if !filter(e) {
                continue;
            }
            let u = graph.edge(e).to;
            if next < dist[u] {
                dist[u] = next;
                queue.push_back(u);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn cycle(n: usize) -> DiGraph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            b.add_arc(i, (i + 1) % n);
        }
        b.build()
    }

    #[test]
    fn follows_direction() {
        let g = cycle(5);
        let d = bfs(&g, 0, |_| true);
        assert_eq!(d[4], Dist::new(4)); // must go the long way around
    }

    #[test]
    fn reverse_bfs_matches_forward_on_reversed_graph() {
        let g = cycle(6);
        let rev = g.reversed();
        let back = bfs_reverse(&g, 3, |_| true);
        let fwd = bfs(&rev, 3, |_| true);
        assert_eq!(back, fwd);
    }

    #[test]
    fn filter_removes_edges() {
        let g = cycle(4);
        // remove edge 0 (0 -> 1): nothing reachable from 0 any more
        let d = bfs(&g, 0, |e| e != 0);
        assert_eq!(d[1], Dist::INF);
        assert_eq!(d[0], Dist::ZERO);
    }

    #[test]
    fn hop_bound_truncates() {
        let g = cycle(8);
        let d = bfs_hop_bounded(&g, &[0], 3, |_| true);
        assert_eq!(d[3], Dist::new(3));
        assert_eq!(d[4], Dist::INF);
    }

    #[test]
    fn multi_source_takes_nearest() {
        let g = cycle(8);
        let d = bfs_hop_bounded(&g, &[0, 4], usize::MAX, |_| true);
        assert_eq!(d[5], Dist::new(1));
        assert_eq!(d[3], Dist::new(3));
    }
}
