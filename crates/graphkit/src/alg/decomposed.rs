//! A centralized implementation of the paper's short/long detour
//! decomposition (the skeleton shared by Roditty–Zwick's sequential
//! algorithm and the paper's distributed one).
//!
//! This is *not* used by the distributed solvers — it exists as an
//! independent second implementation of the same mathematical
//! decomposition, so the test suite can triangulate: the per-edge BFS
//! oracle, this decomposition, and the distributed algorithms must all
//! agree. A bug in the shared reasoning (e.g. a wrong combine rule at
//! segment boundaries) would show up as this module agreeing with the
//! distributed code while both disagree with the oracle.

use crate::alg::{bfs, bfs_reverse, hop_bounded_dists};
use crate::{DiGraph, Dist, NodeId, StPath};

/// Replacement lengths via the short/long detour decomposition with
/// threshold `zeta` and an explicit landmark set.
///
/// - Short side: for every pair `(k, j)` with a `≤ ζ`-hop detour from
///   `v_k` to `v_j` in `G \ P`, the candidate
///   `|P[s,v_k]| + detour + |P[v_j,t]|` covers edges `k..j`.
/// - Long side: for every landmark `l`, the candidate
///   `min_{k ≤ i}(|P[s,v_k]| + |v_k·l|) + min_{j ≥ i+1}(|l·v_j| + |P[v_j,t]|)`.
///
/// The result is exact whenever every detour either has `≤ ζ` hops or
/// contains a landmark — with `landmarks` = all vertices it is exact for
/// every instance whose detours have at least one interior vertex, and
/// with `zeta >= n` it is unconditionally exact (Lemma 5.3 made
/// deterministic).
pub fn decomposed_replacement(
    graph: &DiGraph,
    path: &StPath,
    zeta: usize,
    landmarks: &[NodeId],
) -> Vec<Dist> {
    let h = path.hops();
    let in_gp = |e: usize| !path.contains_edge(e);
    let prefix: Vec<Dist> = (0..=h).map(|i| path.prefix_length(graph, i)).collect();
    let suffix: Vec<Dist> = (0..=h).map(|i| path.suffix_length(graph, i)).collect();
    let mut best = vec![Dist::INF; h];

    // Short detours.
    for k in 0..h {
        let from_vk = hop_bounded_dists(graph, path.node(k), zeta, in_gp);
        for j in k + 1..=h {
            let cand = prefix[k] + from_vk[path.node(j)] + suffix[j];
            if !cand.is_finite() {
                continue;
            }
            for slot in best.iter_mut().take(j).skip(k) {
                *slot = (*slot).min(cand);
            }
        }
    }

    // Long detours through landmarks (exact, unbounded distances — a
    // centralized program can afford them; the distributed algorithm
    // recovers them w.h.p. through the closure of Lemma 5.4).
    for &l in landmarks {
        let to_l = bfs_reverse(graph, l, in_gp);
        let from_l = bfs(graph, l, in_gp);
        // m[i] = min_{k <= i} (prefix[k] + |v_k l|)
        let mut m = Dist::INF;
        let mut m_at = vec![Dist::INF; h];
        for i in 0..h {
            m = m.min(prefix[i] + to_l[path.node(i)]);
            m_at[i] = m;
        }
        // n[i] = min_{j >= i+1} (|l v_j| + suffix[j])
        let mut nn = Dist::INF;
        let mut n_at = vec![Dist::INF; h];
        for i in (0..h).rev() {
            nn = nn.min(from_l[path.node(i + 1)] + suffix[i + 1]);
            n_at[i] = nn;
        }
        for i in 0..h {
            best[i] = best[i].min(m_at[i] + n_at[i]);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::{replacement_lengths, shortest_st_path};
    use crate::gen::{parallel_lane, planted_path_digraph};

    #[test]
    fn huge_zeta_alone_is_exact() {
        for seed in 0..6 {
            let (g, s, t) = planted_path_digraph(50, 15, 130, seed);
            let p = shortest_st_path(&g, s, t).unwrap();
            let got = decomposed_replacement(&g, &p, g.node_count(), &[]);
            assert_eq!(got, replacement_lengths(&g, &p), "seed {seed}");
        }
    }

    #[test]
    fn tiny_zeta_with_all_landmarks_is_exact_for_interior_detours() {
        // ζ = 1 catches only single-edge detours; landmarks catch every
        // detour with an interior vertex. Together: everything.
        for seed in 0..6 {
            let (g, s, t) = planted_path_digraph(50, 15, 130, seed + 10);
            let p = shortest_st_path(&g, s, t).unwrap();
            let all: Vec<NodeId> = g.nodes().collect();
            let got = decomposed_replacement(&g, &p, 1, &all);
            assert_eq!(got, replacement_lengths(&g, &p), "seed {seed}");
        }
    }

    #[test]
    fn mixed_regime_matches_oracle() {
        let (g, s, t) = parallel_lane(20, 5, 2); // 12-hop detours
        let p = shortest_st_path(&g, s, t).unwrap();
        let all: Vec<NodeId> = g.nodes().collect();
        for zeta in [1usize, 5, 12, 40] {
            let got = decomposed_replacement(&g, &p, zeta, &all);
            assert_eq!(got, replacement_lengths(&g, &p), "zeta {zeta}");
        }
    }

    #[test]
    fn short_side_alone_is_a_sound_upper_bound() {
        let (g, s, t) = planted_path_digraph(40, 12, 90, 3);
        let p = shortest_st_path(&g, s, t).unwrap();
        let oracle = replacement_lengths(&g, &p);
        let got = decomposed_replacement(&g, &p, 3, &[]);
        for (i, (&g_i, &o_i)) in got.iter().zip(&oracle).enumerate() {
            assert!(g_i >= o_i, "edge {i}");
        }
    }
}
