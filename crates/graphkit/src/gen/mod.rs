//! Graph families for tests, examples, and benchmarks.
//!
//! Every generator returns a graph whose *underlying undirected* graph is
//! connected (the CONGEST model needs a connected communication network)
//! and is deterministic given its seed.
//!
//! The families are chosen to exercise the regimes the paper
//! distinguishes:
//!
//! - [`random_digraph`] / [`random_weighted_digraph`]: unstructured
//!   instances for differential testing against the centralized oracle.
//! - [`planted_path_digraph`]: random instances with a *guaranteed*
//!   shortest path of a chosen hop count `h_st`, so benchmarks can sweep
//!   `h_st` independently of `n` (the quantity the paper eliminates from
//!   the round complexity).
//! - [`parallel_lane`]: a path plus a stretched parallel lane with
//!   switch points every `c` hops — detour length is `2 + c·stretch`, so
//!   choosing `c` moves instances between the short-detour and
//!   long-detour regimes of Sections 4 and 5.
//! - [`layered_dag`] and [`grid`]: structured topologies with many
//!   alternative routes.
//! - [`theorem2_family`]: the Ω(D) construction from the proof of
//!   Theorem 2 (two parallel `s`-`t` paths of lengths `D` and `D+1`).
//! - [`star`], [`two_hub`], [`power_law_digraph`]: degree-skewed
//!   topologies (one hub, two adjacent hubs, preferential attachment)
//!   that stress degree-aware shard balancing in the parallel engine.
//! - [`metro_ring`]: a bidirectional cycle of points of presence — the
//!   2-edge-connected carrier topology the fault-injection campaigns
//!   degrade one span at a time.
//! - [`grid_road`]: a bidirectional road grid with random diagonal
//!   chords — realistic two-way street networks where detours backtrack.
//! - [`octopus_pods`]: Octopus-style memory pods on a sparse inter-pod
//!   spine — strongly degree-skewed clusters with long inter-pod detours.

mod families;
mod random;

pub use families::{
    grid, grid_road, layered_dag, metro_ring, octopus_pods, parallel_lane, power_law_digraph, star,
    theorem2_family, two_hub, Theorem2Instance,
};
pub use random::{
    planted_path_digraph, random_digraph, random_reachable_pair, random_weighted_digraph,
};
