//! Deterministic structured graph families.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{DiGraph, GraphBuilder, NodeId};

/// A path of `h` hops plus a parallel "lane" with switch points every
/// `switch_every` hops, stretched by factor `stretch`; returns
/// `(graph, s, t)`.
///
/// Vertices `0..=h` are the planted shortest path. The lane is a directed
/// path of `h · stretch` edges; at every path index `i` that is a multiple
/// of `switch_every` (and at `h`), bidirectional switch edges connect
/// `v_i` with lane position `i · stretch`.
///
/// The replacement path for edge `(v_i, v_{i+1})` must ride the lane
/// between the nearest switches around the failure, so its detour has
/// `2 + gap · stretch` hops where `gap` is the switch spacing. Choosing
/// `switch_every · stretch` below or above the short-detour threshold ζ
/// moves instances between the paper's Section 4 and Section 5 regimes.
///
/// # Panics
///
/// Panics if `h == 0`, `switch_every == 0`, or `stretch == 0`.
pub fn parallel_lane(h: usize, switch_every: usize, stretch: usize) -> (DiGraph, NodeId, NodeId) {
    assert!(h >= 1 && switch_every >= 1 && stretch >= 1);
    let lane_len = h * stretch;
    let mut b = GraphBuilder::new(h + 1 + lane_len + 1);
    for i in 0..h {
        b.add_arc(i, i + 1);
    }
    let lane = |k: usize| h + 1 + k;
    for k in 0..lane_len {
        b.add_arc(lane(k), lane(k + 1));
    }
    let mut i = 0;
    loop {
        // Switch edges both ways keep the potential argument intact:
        // entering or leaving the lane never advances towards t for free.
        b.add_arc(i, lane(i * stretch));
        b.add_arc(lane(i * stretch), i);
        if i == h {
            break;
        }
        i = (i + switch_every).min(h);
    }
    (b.build(), 0, h)
}

/// Directed grid with rightward and downward edges; returns
/// `(graph, s, t)` with `s` the top-left and `t` the bottom-right corner.
///
/// Every monotone staircase is a shortest path, so replacement paths are
/// plentiful and short — a stress test for the short-detour machinery.
///
/// # Panics
///
/// Panics if `rows == 0` or `cols == 0`.
pub fn grid(rows: usize, cols: usize) -> (DiGraph, NodeId, NodeId) {
    assert!(rows >= 1 && cols >= 1);
    let mut b = GraphBuilder::new(rows * cols);
    let at = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_arc(at(r, c), at(r, c + 1));
            }
            if r + 1 < rows {
                b.add_arc(at(r, c), at(r + 1, c));
            }
        }
    }
    (b.build(), at(0, 0), at(rows - 1, cols - 1))
}

/// Road-like bidirectional grid with optional diagonal chords; returns
/// `(graph, s, t)` with `s` the top-left and `t` the bottom-right corner.
///
/// Unlike [`grid`] (a one-way DAG), every street runs both ways, so
/// replacement paths can backtrack — the realistic road-network regime.
/// `chords` random diagonal shortcuts (each a bidirectional pair between
/// a cell and its down-right or down-left neighbour) act as freeway
/// on-ramps that create asymmetric fast routes.
///
/// Deterministic for a given `(rows, cols, chords, seed)`. The graph has
/// `rows·cols` nodes and `2·(rows·(cols-1) + cols·(rows-1)) + 2·chords`
/// arcs (diagonals may repeat: the graph is a multigraph).
///
/// # Panics
///
/// Panics if `rows == 0` or `cols == 0`.
pub fn grid_road(rows: usize, cols: usize, chords: usize, seed: u64) -> (DiGraph, NodeId, NodeId) {
    assert!(rows >= 1 && cols >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(rows * cols);
    let at = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_bidirectional(at(r, c), at(r, c + 1));
            }
            if r + 1 < rows {
                b.add_bidirectional(at(r, c), at(r + 1, c));
            }
        }
    }
    if rows >= 2 && cols >= 2 {
        for _ in 0..chords {
            let r = rng.gen_range(0..rows - 1);
            let c = rng.gen_range(0..cols);
            // Down-right chord, or down-left when at (or rolling) the
            // right edge.
            let c2 = if c + 1 < cols && rng.gen_bool(0.5) {
                c + 1
            } else if c > 0 {
                c - 1
            } else {
                c + 1
            };
            b.add_bidirectional(at(r, c), at(r + 1, c2));
        }
    }
    (b.build(), at(0, 0), at(rows - 1, cols - 1))
}

/// Octopus-style pod topology: `pods` pods of `pod_size` nodes each,
/// joined by a *sparse* inter-pod spine (PAPERS.md: "Octopus: Enhancing
/// CXL Memory Pods via Sparse Topology").
///
/// Pod `p` occupies nodes `[p·pod_size, (p+1)·pod_size)`; its first node
/// is the pod *head* (the switch). Within a pod, the head has a
/// bidirectional spoke to every member, and members form a bidirectional
/// ring (when `pod_size ≥ 3`) so a crashed head degrades but does not
/// disconnect the pod. Heads form a bidirectional ring, plus
/// `extra_spine` random head-to-head shortcuts drawn from `seed` — the
/// sparse spine. The result is strongly degree-skewed (heads dwarf
/// members) with long inter-pod detours, the shape the star/power-law
/// families miss.
///
/// Deterministic for a given `(pods, pod_size, extra_spine, seed)`.
///
/// # Panics
///
/// Panics if `pods == 0`, `pod_size == 0`, or the graph would be a
/// single node (`pods · pod_size < 2`).
pub fn octopus_pods(pods: usize, pod_size: usize, extra_spine: usize, seed: u64) -> DiGraph {
    assert!(pods >= 1 && pod_size >= 1);
    let n = pods * pod_size;
    assert!(n >= 2, "octopus_pods needs at least two nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let head = |p: usize| p * pod_size;
    for p in 0..pods {
        for k in 1..pod_size {
            b.add_bidirectional(head(p), head(p) + k);
        }
        if pod_size >= 3 {
            // Member ring (head included) for intra-pod redundancy.
            for k in 0..pod_size {
                b.add_bidirectional(head(p) + k, head(p) + (k + 1) % pod_size);
            }
        }
    }
    // Spine: ring over heads, then sparse random shortcuts.
    if pods == 2 {
        b.add_bidirectional(head(0), head(1));
    } else if pods >= 3 {
        for p in 0..pods {
            b.add_bidirectional(head(p), head((p + 1) % pods));
        }
    }
    if pods >= 2 {
        for _ in 0..extra_spine {
            let a = rng.gen_range(0..pods);
            let mut c = rng.gen_range(0..pods);
            if c == a {
                c = (c + 1) % pods;
            }
            b.add_bidirectional(head(a), head(c));
        }
    }
    b.build()
}

/// Layered DAG: `s`, then `layers` layers of `width` vertices, then `t`;
/// returns `(graph, s, t)`.
///
/// Each vertex has at least one incoming edge from the previous layer
/// (connectivity), the "spine" `s -> layer_0[0] -> layer_1[0] -> ... -> t`
/// always exists (reachability), and `extra_edges` additional random
/// forward edges create alternative routes. All `s`-`t` paths have exactly
/// `layers + 1` hops, so any of them is a valid `P`.
///
/// # Panics
///
/// Panics if `layers == 0` or `width == 0`.
pub fn layered_dag(
    layers: usize,
    width: usize,
    extra_edges: usize,
    seed: u64,
) -> (DiGraph, NodeId, NodeId) {
    assert!(layers >= 1 && width >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 2 + layers * width;
    let mut b = GraphBuilder::new(n);
    let s = 0;
    let t = n - 1;
    let at = |l: usize, w: usize| 1 + l * width + w;
    for w in 0..width {
        b.add_arc(s, at(0, w));
    }
    for l in 1..layers {
        for w in 0..width {
            let src = if w == 0 { 0 } else { rng.gen_range(0..width) };
            b.add_arc(at(l - 1, src), at(l, w));
        }
    }
    for w in 0..width {
        b.add_arc(at(layers - 1, w), t);
    }
    for _ in 0..extra_edges {
        if layers < 2 {
            break;
        }
        let l = rng.gen_range(0..layers - 1);
        let u = rng.gen_range(0..width);
        let v = rng.gen_range(0..width);
        b.add_arc(at(l, u), at(l + 1, v));
    }
    (b.build(), s, t)
}

/// A star: node `0` is the hub, nodes `1..n` are spokes.
///
/// Spoke arcs alternate orientation (hub→spoke for even spokes,
/// spoke→hub for odd) so both arc directions occur without changing the
/// topology. The undirected graph is connected with diameter 2 and the
/// hub has undirected degree `n - 1` — the most extreme single-shard
/// hot spot a degree-oblivious node partition can hit.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: usize) -> DiGraph {
    assert!(n >= 2, "a star needs a hub and at least one spoke");
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        if v % 2 == 0 {
            b.add_arc(0, v);
        } else {
            b.add_arc(v, 0);
        }
    }
    b.build()
}

/// Two linked hubs (`0` and `1`) with spokes `2..n` alternating between
/// them.
///
/// Splits the star's hot spot in half: the natural two-shard cut either
/// isolates each hub (balanced) or lumps both into one shard
/// (maximally skewed), exercising shard-boundary placement around
/// adjacent heavy nodes.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn two_hub(n: usize) -> DiGraph {
    assert!(n >= 2, "a two-hub graph needs both hubs");
    let mut b = GraphBuilder::new(n);
    b.add_arc(0, 1);
    for v in 2..n {
        let hub = v % 2;
        if v % 4 < 2 {
            b.add_arc(hub, v);
        } else {
            b.add_arc(v, hub);
        }
    }
    b.build()
}

/// A metro ring: `pops` points of presence joined into a bidirectional
/// cycle, the canonical 2-edge-connected carrier topology.
///
/// Every span (the antiparallel arc pair between adjacent PoPs) has a
/// disjoint alternative route the long way around, so any *single* span
/// failure leaves the ring connected — the design case for the fault
/// campaigns: a degraded solve must still answer, just along the longer
/// arc. Two span failures cut the ring into at most two segments.
///
/// Span `i` connects PoPs `i` and `(i + 1) % pops`; spans are added in
/// ascending `i`, so the arcs of span `i` are edges `2i` (forward) and
/// `2i + 1` (backward). The natural endpoints for a diameter-spanning
/// demand are `s = 0` and `t = pops / 2`.
///
/// # Panics
///
/// Panics if `pops < 3` (a cycle needs three vertices).
pub fn metro_ring(pops: usize) -> DiGraph {
    assert!(pops >= 3, "a ring needs at least three points of presence");
    let mut b = GraphBuilder::new(pops);
    for i in 0..pops {
        b.add_bidirectional(i, (i + 1) % pops);
    }
    b.build()
}

/// Preferential-attachment digraph with a power-law degree profile.
///
/// Nodes arrive one at a time; node `v` attaches to an existing node
/// chosen proportionally to its current undirected degree (the classic
/// rich-get-richer urn), with the arc orientation drawn at random. The
/// result is a connected tree-like graph whose few early nodes
/// accumulate most of the degree — the smooth cousin of [`star`] for
/// testing degree-aware work partitioning.
///
/// Deterministic for a given `(n, seed)`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn power_law_digraph(n: usize, seed: u64) -> DiGraph {
    assert!(n >= 2, "preferential attachment needs a seed edge");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    b.add_arc(0, 1);
    // One bag entry per edge endpoint: sampling uniformly from the bag
    // is sampling nodes proportionally to degree.
    let mut bag: Vec<NodeId> = vec![0, 1];
    for v in 2..n {
        let target = bag[rng.gen_range(0..bag.len())];
        if rng.gen_range(0..2) == 0 {
            b.add_arc(target, v);
        } else {
            b.add_arc(v, target);
        }
        bag.push(target);
        bag.push(v);
    }
    b.build()
}

/// The Ω(D) lower-bound family from the proof of Theorem 2.
#[derive(Clone, Debug)]
pub struct Theorem2Instance {
    /// The constructed graph.
    pub graph: DiGraph,
    /// Source vertex.
    pub s: NodeId,
    /// Target vertex.
    pub t: NodeId,
    /// Vertex sequence of the length-`d` shortest path (the input `P`).
    pub short_path: Vec<NodeId>,
    /// Expected 2-SiSP value: `Some(d + 1)` when the long path is intact,
    /// `None` (infinite) when one of its edges was reversed.
    pub expected_sisp: Option<u64>,
}

/// Builds the Theorem 2 construction: two parallel directed `s`-`t` paths
/// of lengths `d` and `d + 1`, with optionally one edge of the longer path
/// reversed.
///
/// Distinguishing "second path length `d+1`" from "no second path"
/// requires information to travel the length of the construction, giving
/// the Ω(D) term of the lower bound. The graph has `2d + 1` vertices and
/// undirected diameter `Θ(d)`.
///
/// # Panics
///
/// Panics if `d < 2` or `reversed_edge` is out of range (`>= d + 1`).
pub fn theorem2_family(d: usize, reversed_edge: Option<usize>) -> Theorem2Instance {
    assert!(d >= 2, "need d >= 2 for two internally disjoint paths");
    if let Some(i) = reversed_edge {
        assert!(i < d + 1, "the long path has d + 1 edges");
    }
    // Vertices: s = 0, t = 1, short internals 2..d+1 (d - 1 of them),
    // long internals d+1..2d+1 (d of them). Total 2d + 1.
    let mut b = GraphBuilder::new(2 * d + 1);
    let s = 0;
    let t = 1;
    let short = |k: usize| 2 + (k - 1); // k in 1..=d-1
    let long = |k: usize| (d + 1) + (k - 1); // k in 1..=d

    let mut short_path = vec![s];
    // Short path: s -> short(1) -> ... -> short(d-1) -> t  (d edges).
    let mut prev = s;
    for k in 1..d {
        b.add_arc(prev, short(k));
        short_path.push(short(k));
        prev = short(k);
    }
    b.add_arc(prev, t);
    short_path.push(t);

    // Long path: s -> long(1) -> ... -> long(d) -> t  (d + 1 edges).
    let mut long_nodes = vec![s];
    long_nodes.extend((1..=d).map(long));
    long_nodes.push(t);
    for (i, w) in long_nodes.windows(2).enumerate() {
        if reversed_edge == Some(i) {
            b.add_arc(w[1], w[0]);
        } else {
            b.add_arc(w[0], w[1]);
        }
    }

    Theorem2Instance {
        graph: b.build(),
        s,
        t,
        short_path,
        expected_sisp: if reversed_edge.is_none() {
            Some(d as u64 + 1)
        } else {
            None
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::{
        replacement_lengths, second_simple_shortest, shortest_st_path, undirected_diameter,
    };
    use crate::{Dist, StPath};

    #[test]
    fn parallel_lane_planted_path_is_shortest() {
        let (g, s, t) = parallel_lane(12, 3, 2);
        let p = shortest_st_path(&g, s, t).unwrap();
        assert_eq!(p.hops(), 12);
        assert!(undirected_diameter(&g).is_some());
    }

    #[test]
    fn parallel_lane_replacement_lengths_follow_switches() {
        let h = 12;
        let (c, stretch) = (3, 2);
        let (g, s, t) = parallel_lane(h, c, stretch);
        let p = shortest_st_path(&g, s, t).unwrap();
        let r = replacement_lengths(&g, &p);
        for (i, &len) in r.iter().enumerate() {
            // Nearest switches around edge (i, i+1).
            let a = (i / c) * c;
            let bnd = ((i / c + 1) * c).min(h);
            let gap = (bnd - a) as u64;
            let expected = (h as u64) - gap + 2 + gap * stretch as u64;
            assert_eq!(len, Dist::new(expected), "edge {i}");
        }
    }

    #[test]
    fn grid_has_many_shortest_paths() {
        let (g, s, t) = grid(4, 5);
        let p = shortest_st_path(&g, s, t).unwrap();
        assert_eq!(p.hops(), 3 + 4);
        let r = replacement_lengths(&g, &p);
        // Interior failures reroute at equal length; only the corners can
        // be pinch points depending on the extracted path.
        assert!(r.iter().any(|d| d.is_finite()));
    }

    #[test]
    fn grid_road_counts_connectivity_and_determinism() {
        let (rows, cols, chords) = (5, 7, 6);
        let (g, s, t) = grid_road(rows, cols, chords, 11);
        assert_eq!(g.node_count(), rows * cols);
        assert_eq!(
            g.edge_count(),
            2 * (rows * (cols - 1) + cols * (rows - 1)) + 2 * chords
        );
        assert!(undirected_diameter(&g).is_some(), "must be connected");
        // Both directions exist: the shortest path backtracks if useful.
        let p = shortest_st_path(&g, s, t).unwrap();
        assert!(p.hops() <= (rows - 1) + (cols - 1));
        let (h, _, _) = grid_road(rows, cols, chords, 11);
        let arcs = |g: &DiGraph| g.edges().map(|(_, e)| (e.from, e.to)).collect::<Vec<_>>();
        assert_eq!(arcs(&g), arcs(&h), "same seed, same graph");
        let (k, _, _) = grid_road(rows, cols, chords, 12);
        assert_ne!(arcs(&g), arcs(&k), "different seed, different chords");
    }

    #[test]
    fn grid_road_replacements_all_finite() {
        // Bidirectional streets: any single failed street has a detour.
        let (g, s, t) = grid_road(4, 6, 0, 0);
        let p = shortest_st_path(&g, s, t).unwrap();
        let r = replacement_lengths(&g, &p);
        assert!(r.iter().all(|d| d.is_finite()));
    }

    #[test]
    fn octopus_pods_shape_and_redundancy() {
        let (pods, pod_size, extra) = (6, 5, 3);
        let g = octopus_pods(pods, pod_size, extra, 5);
        assert_eq!(g.node_count(), pods * pod_size);
        // Pairs: per pod (pod_size-1) spokes + pod_size ring; spine ring
        // pods; extra shortcuts.
        let pairs = pods * ((pod_size - 1) + pod_size) + pods + extra;
        assert_eq!(g.edge_count(), 2 * pairs);
        assert!(undirected_diameter(&g).is_some(), "must be connected");
        // Heads dominate the degree profile.
        let head_deg = g.undirected_degree(0);
        let member_deg = g.undirected_degree(1);
        assert!(head_deg > member_deg, "{head_deg} vs {member_deg}");
        // Determinism.
        let h = octopus_pods(pods, pod_size, extra, 5);
        let arcs = |g: &DiGraph| g.edges().map(|(_, e)| (e.from, e.to)).collect::<Vec<_>>();
        assert_eq!(arcs(&g), arcs(&h));
    }

    #[test]
    fn octopus_pods_degenerate_sizes() {
        // Single pod: just the star + ring.
        let g = octopus_pods(1, 4, 7, 1);
        assert!(undirected_diameter(&g).is_some());
        // Pod size 1: the spine ring alone.
        let g = octopus_pods(5, 1, 2, 1);
        assert!(undirected_diameter(&g).is_some());
        // Two pods: a single spine link, no ring double-edge.
        let g = octopus_pods(2, 3, 0, 1);
        assert_eq!(g.edge_count(), 2 * (2 * (2 + 3) + 1));
        assert!(undirected_diameter(&g).is_some());
    }

    #[test]
    fn layered_dag_paths_have_uniform_length() {
        let (g, s, t) = layered_dag(6, 4, 30, 3);
        let p = shortest_st_path(&g, s, t).unwrap();
        assert_eq!(p.hops(), 7);
        assert!(undirected_diameter(&g).is_some());
    }

    #[test]
    fn metro_ring_is_a_bidirectional_cycle() {
        let pops = 10;
        let g = metro_ring(pops);
        assert_eq!(g.node_count(), pops);
        assert_eq!(g.edge_count(), 2 * pops);
        // Span i = edges (2i, 2i + 1), antiparallel between i and i + 1.
        for i in 0..pops {
            let f = g.edge(2 * i);
            let r = g.edge(2 * i + 1);
            assert_eq!((f.from, f.to), (i, (i + 1) % pops));
            assert_eq!((r.from, r.to), ((i + 1) % pops, i));
        }
        // Antipodal demand: shortest path is half the ring, and every
        // single-edge failure has a finite replacement the long way round.
        let p = shortest_st_path(&g, 0, pops / 2).unwrap();
        assert_eq!(p.hops(), pops / 2);
        let r = replacement_lengths(&g, &p);
        assert!(r.iter().all(|d| d.is_finite()));
        assert_eq!(undirected_diameter(&g), Some(pops / 2));
    }

    #[test]
    fn star_is_connected_with_one_hub() {
        let g = star(31);
        assert_eq!(g.node_count(), 31);
        assert_eq!(g.edge_count(), 30);
        assert_eq!(undirected_diameter(&g), Some(2));
        assert_eq!(g.undirected_degree(0), 30);
        for v in 1..31 {
            assert_eq!(g.undirected_degree(v), 1);
        }
        // Both arc orientations occur.
        assert!(g.out_degree(0) > 0 && g.in_degree(0) > 0);
    }

    #[test]
    fn two_hub_splits_degree_between_hubs() {
        let g = two_hub(40);
        assert!(undirected_diameter(&g).is_some());
        assert_eq!(g.undirected_degree(0), 20);
        assert_eq!(g.undirected_degree(1), 20);
        for v in 2..40 {
            assert_eq!(g.undirected_degree(v), 1);
        }
    }

    #[test]
    fn power_law_is_connected_deterministic_and_skewed() {
        let g = power_law_digraph(400, 7);
        assert_eq!(g.node_count(), 400);
        assert_eq!(g.edge_count(), 399);
        assert!(undirected_diameter(&g).is_some(), "must be connected");
        let h = power_law_digraph(400, 7);
        let arcs = |g: &DiGraph| g.edges().map(|(_, e)| (e.from, e.to)).collect::<Vec<_>>();
        assert_eq!(arcs(&g), arcs(&h), "same seed, same graph");
        // Rich-get-richer: the heaviest node dwarfs the average degree
        // (~2 in a tree).
        let max_deg = g.nodes().map(|v| g.undirected_degree(v)).max().unwrap();
        assert!(max_deg >= 20, "expected a heavy hub, max degree {max_deg}");
    }

    #[test]
    fn theorem2_intact_long_path() {
        let inst = theorem2_family(6, None);
        assert_eq!(inst.graph.node_count(), 13);
        let p = StPath::from_nodes(&inst.graph, &inst.short_path).unwrap();
        assert!(p.validate_shortest(&inst.graph).is_ok());
        assert_eq!(
            second_simple_shortest(&inst.graph, &p),
            Dist::new(inst.expected_sisp.unwrap())
        );
    }

    #[test]
    fn theorem2_reversed_edge_kills_second_path() {
        for rev in [0, 3, 6] {
            let inst = theorem2_family(6, Some(rev));
            let p = StPath::from_nodes(&inst.graph, &inst.short_path).unwrap();
            assert_eq!(second_simple_shortest(&inst.graph, &p), Dist::INF);
        }
    }

    #[test]
    fn theorem2_diameter_scales_with_d() {
        let small = theorem2_family(4, None);
        let large = theorem2_family(16, None);
        let ds = undirected_diameter(&small.graph).unwrap();
        let dl = undirected_diameter(&large.graph).unwrap();
        assert!(dl > ds);
        assert!(dl >= 16 / 2);
    }
}
