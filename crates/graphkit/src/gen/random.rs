//! Random graph generators.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::alg::bfs;
use crate::{DiGraph, GraphBuilder, NodeId};

/// Random directed multigraph on `n` vertices with roughly `extra_edges`
/// random edges on top of a connectivity backbone.
///
/// The backbone is a random spanning tree with randomly oriented edges, so
/// the underlying undirected graph is always connected while directed
/// reachability stays non-trivial.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_digraph(n: usize, extra_edges: usize, seed: u64) -> DiGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    add_random_backbone(&mut b, n, &mut rng);
    let mut added = 0;
    while added < extra_edges {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        b.add_arc(u, v);
        added += 1;
    }
    b.build()
}

/// Random weighted directed multigraph; weights are uniform in
/// `1..=max_weight`.
///
/// # Panics
///
/// Panics if `n == 0` or `max_weight == 0`.
pub fn random_weighted_digraph(
    n: usize,
    extra_edges: usize,
    max_weight: u64,
    seed: u64,
) -> DiGraph {
    assert!(max_weight > 0, "max_weight must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    add_random_backbone_weighted(&mut b, n, max_weight, &mut rng);
    let mut added = 0;
    while added < extra_edges {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        b.add_edge(u, v, rng.gen_range(1..=max_weight));
        added += 1;
    }
    b.build()
}

/// Random unweighted digraph with a planted shortest `s`-`t` path of
/// exactly `h` hops; returns `(graph, s, t)` with `s = 0`, `t = h`.
///
/// Vertices `0..=h` form the path. Every vertex `v` carries a potential
/// `pot(v)` (equal to its index for path vertices) and random edges
/// `u -> v` are only added when `pot(v) <= pot(u) + 1`. Any `s`-`t` path
/// must then raise the potential from `0` to `h` by at most one per hop,
/// so no path shorter than `h` hops exists and the planted path stays
/// shortest. Detours of all lengths remain possible (potential may also
/// *decrease* along an edge), which exercises both the short- and
/// long-detour machinery.
///
/// # Panics
///
/// Panics if `h == 0` or `n < h + 1`.
pub fn planted_path_digraph(
    n: usize,
    h: usize,
    extra_edges: usize,
    seed: u64,
) -> (DiGraph, NodeId, NodeId) {
    assert!(h >= 1, "path must have at least one edge");
    assert!(n > h, "need at least h + 1 vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Path vertices 0..=h with pot(i) = i.
    let mut pot = vec![0usize; n];
    for (i, p) in pot.iter_mut().enumerate().take(h + 1) {
        *p = i;
    }
    for i in 0..h {
        b.add_arc(i, i + 1);
    }
    // Off-path vertices get a random potential and an attachment edge that
    // keeps the communication graph connected.
    for v in h + 1..n {
        let p = rng.gen_range(0..=h);
        pot[v] = p;
        // Edge v_p -> v is allowed (pot(v) = p <= p + 1).
        b.add_arc(p, v);
    }
    let mut added = 0;
    let mut attempts = 0usize;
    while added < extra_edges && attempts < extra_edges.saturating_mul(50) + 1000 {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v || pot[v] > pot[u] + 1 {
            continue;
        }
        // Skip duplicates of planted path edges to keep h_st well defined
        // (a parallel copy of a path edge would be a 1-hop replacement,
        // which is fine, so allow it; only self-loops are rejected above).
        b.add_arc(u, v);
        added += 1;
    }
    let g = b.build();
    debug_assert_eq!(
        bfs(&g, 0, |_| true)[h].finite(),
        Some(h as u64),
        "planted path must be shortest"
    );
    (g, 0, h)
}

/// Picks a reachable `(s, t)` pair with a large directed distance by
/// sampling a handful of BFS trees. Returns `None` when no vertex reaches
/// another.
pub fn random_reachable_pair(graph: &DiGraph, seed: u64) -> Option<(NodeId, NodeId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = graph.node_count();
    if n < 2 {
        return None;
    }
    let mut candidates: Vec<NodeId> = graph.nodes().collect();
    candidates.shuffle(&mut rng);
    let mut best: Option<(NodeId, NodeId, u64)> = None;
    for &s in candidates.iter().take(8.min(n)) {
        let dist = bfs(graph, s, |_| true);
        for t in graph.nodes() {
            if t == s {
                continue;
            }
            if let Some(d) = dist[t].finite() {
                if best.is_none_or(|(_, _, bd)| d > bd) {
                    best = Some((s, t, d));
                }
            }
        }
    }
    best.map(|(s, t, _)| (s, t))
}

fn add_random_backbone(b: &mut GraphBuilder, n: usize, rng: &mut StdRng) {
    let mut order: Vec<NodeId> = (0..n).collect();
    order.shuffle(rng);
    for i in 1..n {
        let child = order[i];
        let parent = order[rng.gen_range(0..i)];
        if rng.gen_bool(0.5) {
            b.add_arc(parent, child);
        } else {
            b.add_arc(child, parent);
        }
    }
}

fn add_random_backbone_weighted(b: &mut GraphBuilder, n: usize, max_w: u64, rng: &mut StdRng) {
    let mut order: Vec<NodeId> = (0..n).collect();
    order.shuffle(rng);
    for i in 1..n {
        let child = order[i];
        let parent = order[rng.gen_range(0..i)];
        let w = rng.gen_range(1..=max_w);
        if rng.gen_bool(0.5) {
            b.add_edge(parent, child, w);
        } else {
            b.add_edge(child, parent, w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::{shortest_st_path, undirected_diameter};

    #[test]
    fn random_digraph_is_connected() {
        for seed in 0..5 {
            let g = random_digraph(40, 80, seed);
            assert_eq!(g.node_count(), 40);
            assert!(
                undirected_diameter(&g).is_some(),
                "seed {seed} disconnected"
            );
        }
    }

    #[test]
    fn random_digraph_is_deterministic() {
        let a = random_digraph(30, 50, 7);
        let c = random_digraph(30, 50, 7);
        assert_eq!(a.edges().collect::<Vec<_>>(), c.edges().collect::<Vec<_>>());
    }

    #[test]
    fn planted_path_has_exact_hops() {
        for seed in 0..5 {
            let (g, s, t) = planted_path_digraph(60, 20, 120, seed);
            let p = shortest_st_path(&g, s, t).expect("s-t reachable");
            assert_eq!(p.hops(), 20, "seed {seed}");
            assert!(p.validate_shortest(&g).is_ok());
            assert!(undirected_diameter(&g).is_some());
        }
    }

    #[test]
    fn planted_path_minimal_sizes() {
        let (g, s, t) = planted_path_digraph(2, 1, 0, 0);
        let p = shortest_st_path(&g, s, t).unwrap();
        assert_eq!(p.hops(), 1);
    }

    #[test]
    fn weighted_digraph_weights_in_range() {
        let g = random_weighted_digraph(30, 60, 9, 3);
        assert!(g.edges().all(|(_, e)| (1..=9).contains(&e.weight)));
        assert!(undirected_diameter(&g).is_some());
    }

    #[test]
    fn reachable_pair_is_reachable() {
        let g = random_digraph(50, 100, 11);
        let (s, t) = random_reachable_pair(&g, 1).expect("some pair reachable");
        assert!(shortest_st_path(&g, s, t).is_some());
    }
}
